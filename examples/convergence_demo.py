#!/usr/bin/env python3
"""The Section-3.1 derivation, live: watch parallel Kruskal *become*
parallel Borůvka.

The paper's fourth contribution is that fully parallelizing Kruskal's
algorithm converges to Borůvka's parallelization.  This demo runs the
three derivation stages on one input and prints the per-round winner
counts — the last two columns are identical, round for round, because
the two "different" algorithms execute the same steps.

Run:  python examples/convergence_demo.py
"""

from repro.core.convergence import (
    boruvka_parallel,
    kruskal_chunked_sorted,
    kruskal_unsorted,
    trace_equivalence,
)
from repro.generators import random_k_out


def main() -> None:
    graph = random_k_out(4096, 4, seed=9)
    graph.name = "r4-demo"
    print(f"input: {graph}\n")

    chunked = kruskal_chunked_sorted(graph, chunk_size=graph.num_vertices // 2)
    unsorted = kruskal_unsorted(graph)
    boruvka = boruvka_parallel(graph)

    print("stage 1  sorted + chunked + index reservations "
          f"(mid-derivation): {chunked.rounds} rounds")
    print("stage 2  unsorted + key reservations "
          f"(= ECL-MST, edge-centric view): {unsorted.rounds} rounds")
    print("stage 3  Boruvka parallelization "
          f"(vertex-centric view): {boruvka.rounds} rounds\n")

    print(f"{'round':>5s} {'stage 2 winners':>16s} {'stage 3 winners':>16s}")
    for i, (a, b) in enumerate(
        zip(unsorted.winners_per_round, boruvka.winners_per_round), 1
    ):
        same = "==" if a == b else "!!"
        print(f"{i:5d} {len(a):16d} {len(b):16d}   {same}")

    report = trace_equivalence(graph)
    assert report.converged
    print("\nsame MSF from all three stages; stages 2 and 3 pick the same")
    print("edges in the same rounds — 'merely a distinction in viewpoint'.")


if __name__ == "__main__":
    main()
