#!/usr/bin/env python3
"""Power-grid planning — the paper's Figure 1 motivation.

"Assume electricity producers and consumers to be the vertices of the
graph, power lines to be the edges, and the weights to be the cost of
maintaining the power lines.  The cheapest distribution grid that
allows everyone to deliver or receive electricity is the MST."

We scatter substations on a map, consider every feasible line (near
neighbors), price each line by its length plus a terrain surcharge,
and let ECL-MST pick the cheapest connected grid.  A baseline
comparison against Prim and Kruskal shows all algorithms agree on the
unique optimum.

Run:  python examples/power_grid.py
"""

import numpy as np
from scipy.spatial import cKDTree

from repro import build_csr, ecl_mst
from repro.baselines import kruskal_serial_mst, prim_mst


def build_candidate_grid(num_stations: int, seed: int = 0):
    """Candidate power lines: each station to its 6 nearest neighbors,
    priced by distance with a rough-terrain multiplier."""
    rng = np.random.default_rng(seed)
    points = rng.random((num_stations, 2)) * 100.0  # km
    terrain = 1.0 + 2.0 * rng.random(num_stations)  # per-station factor

    tree = cKDTree(points)
    _, nbrs = tree.query(points, k=7)
    src = np.repeat(np.arange(num_stations), 6)
    dst = nbrs[:, 1:].ravel()
    length_km = np.linalg.norm(points[src] - points[dst], axis=1)
    surcharge = (terrain[src] + terrain[dst]) / 2.0
    cost = np.maximum(1, (length_km * surcharge * 1000).astype(np.int64))
    return points, build_csr(num_stations, src, dst, cost, name="power-grid")


def main() -> None:
    points, grid = build_candidate_grid(3000, seed=11)
    print(f"candidate grid: {grid}")

    result = ecl_mst(grid, verify=True)
    print(f"cheapest connected grid: {result.num_mst_edges} lines, "
          f"total cost {result.total_weight / 1000:.1f} cost-km")

    # Cost saved versus building every candidate line.
    _, _, all_w, _ = grid.undirected_edges()
    print(f"building everything would cost {int(all_w.sum()) / 1000:.1f}; "
          f"the MST saves "
          f"{100 * (1 - result.total_weight / all_w.sum()):.1f}%")

    # Classic algorithms agree (the weights are unique, so the optimum is).
    for baseline in (prim_mst, kruskal_serial_mst):
        other = baseline(grid)
        assert other.total_weight == result.total_weight
        assert np.array_equal(other.in_mst, result.in_mst)
    print("Prim and Kruskal baselines agree with ECL-MST (unique optimum).")

    # The longest line the grid must maintain (the MST bottleneck edge).
    u, v, w = result.edges()
    worst = int(np.argmax(w))
    d = np.linalg.norm(points[u[worst]] - points[v[worst]])
    print(f"longest line in the grid: station {u[worst]} <-> {v[worst]} "
          f"({d:.2f} km, cost {int(w[worst])})")


if __name__ == "__main__":
    main()
