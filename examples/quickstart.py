#!/usr/bin/env python3
"""Quickstart: compute and verify an MST with ECL-MST.

Builds a small road-network-style graph, runs the simulated-GPU
ECL-MST, verifies the result against serial Kruskal (as the paper's
artifact does after every run), and prints the outcome along with the
per-kernel profile.

Run:  python examples/quickstart.py
"""

from repro import EclMstConfig, ecl_mst
from repro.generators import road_network
from repro.gpusim.spec import RTX_3080_TI, TITAN_V


def main() -> None:
    # 1. Build an input (any CSRGraph works; see repro.graph.build for
    #    constructing one from your own edge list).
    graph = road_network(5000, target_avg_degree=2.8, seed=7)
    print(f"input: {graph}")

    # 2. Run ECL-MST with the default (fully optimized) configuration.
    result = ecl_mst(graph, EclMstConfig(), gpu=RTX_3080_TI, verify=True)
    print(f"MST edges:      {result.num_mst_edges}")
    print(f"total weight:   {result.total_weight}")
    print(f"rounds:         {result.rounds}")
    print(f"modeled time:   {result.modeled_seconds * 1e3:.3f} ms "
          f"(+{result.memcpy_seconds * 1e3:.3f} ms host<->device)")
    print(f"throughput:     {result.throughput_meps():,.0f} Medges/s")

    # 3. Inspect where the time goes (Section 5.1 of the paper: the
    #    init kernel is the most expensive because it touches the CSR).
    print("\nper-kernel modeled time:")
    for name, secs in result.counters.seconds_by_kernel().items():
        share = 100.0 * secs / result.modeled_seconds
        print(f"  {name:12s} {secs * 1e6:9.1f} us  ({share:4.1f}%)")

    # 4. The same computation on the older Titan V (System 1).
    titan = ecl_mst(graph, gpu=TITAN_V)
    print(f"\nTitan V modeled time: {titan.modeled_seconds * 1e3:.3f} ms "
          f"({titan.modeled_seconds / result.modeled_seconds:.2f}x the 3080 Ti)")

    # 5. The selected edges are available as arrays:
    u, v, w = result.edges()
    print(f"\nfirst five MST edges: "
          + ", ".join(f"({u[i]},{v[i]},w={w[i]})" for i in range(5)))


if __name__ == "__main__":
    main()
