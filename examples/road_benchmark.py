#!/usr/bin/env python3
"""Route-planning substrate comparison on road networks.

Road maps are the paper's hardest structural case: average degree ~2.4,
huge diameter, many Borůvka rounds.  This example reproduces the
Table-4 road-map story in miniature: ECL-MST vs the contraction-based
UMinho GPU code (the best baseline on roads) vs cuGraph (whose
flood-style color propagation collapses on deep components) vs the
parallel CPU codes.

Run:  python examples/road_benchmark.py
"""

from repro import ecl_mst
from repro.baselines import (
    cugraph_mst,
    kruskal_serial_mst,
    pbbs_parallel_mst,
    uminho_gpu_mst,
)
from repro.generators import road_network


def main() -> None:
    graph = road_network(20_000, target_avg_degree=2.4, seed=3)
    graph.name = "usa-road-mini"
    print(f"input: {graph} (directed slots: {graph.num_directed_edges})\n")

    runners = [
        ("ECL-MST (GPU)", lambda: ecl_mst(graph, verify=True)),
        ("UMinho GPU (contraction)", lambda: uminho_gpu_mst(graph)),
        ("cuGraph GPU (color flood)", lambda: cugraph_mst(graph)),
        ("PBBS CPU (reservations)", lambda: pbbs_parallel_mst(graph)),
        ("Kruskal serial", lambda: kruskal_serial_mst(graph)),
    ]

    results = []
    for name, fn in runners:
        r = fn()
        results.append((name, r))
        print(
            f"{name:28s} {r.modeled_seconds * 1e3:9.3f} ms   "
            f"{r.throughput_meps():9,.1f} Medges/s   rounds={r.rounds}"
        )

    ecl = results[0][1]
    weights = {r.total_weight for _, r in results}
    assert len(weights) == 1, "all codes must find the same optimum"
    print(f"\nall codes agree: weight {ecl.total_weight}, "
          f"{ecl.num_mst_edges} edges")
    print(
        "note the paper's road-map signature: contraction (UMinho) is the "
        "closest chaser,\nwhile flood-based color propagation (cuGraph) "
        "pays one kernel launch per hop of\ncomponent diameter."
    )


if __name__ == "__main__":
    main()
