#!/usr/bin/env python3
"""Bring-your-own-graph workflow: files in, MSF and analyses out.

Shows the path a downstream user takes with their own data:

1. build a CSRGraph from raw (float-weighted) edge records,
2. save/load it in the interchange formats (DIMACS, METIS, ECL binary),
3. compute and *certify* the MSF (first-principles validation),
4. run the application layer: backbone, clustering, bottleneck routes.

Run:  python examples/custom_graph.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import build_csr, ecl_mst
from repro.apps import bottleneck_weights, mst_backbone, single_linkage_labels
from repro.core.validate import validate_msf
from repro.graph import load_dimacs, quantize_weights, save_dimacs, save_ecl


def main() -> None:
    # 1. Your own data: float-weighted edges (here: a noisy sensor mesh).
    rng = np.random.default_rng(21)
    n = 2000
    pts = rng.random((n, 2))
    u = rng.integers(0, n, 6 * n)
    v = rng.integers(0, n, 6 * n)
    latency_ms = np.linalg.norm(pts[u] - pts[v], axis=1) * 10 + rng.random(6 * n)
    weights = quantize_weights(latency_ms, bits=24)
    graph = build_csr(n, u, v, weights, name="sensor-mesh")
    print(f"built {graph}")

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        # 2. Interchange formats.
        save_dimacs(graph, tmp / "mesh.gr")
        save_ecl(graph, tmp / "mesh.ecl")
        reloaded = load_dimacs(tmp / "mesh.gr", name="sensor-mesh")
        assert reloaded.num_edges == graph.num_edges
        print(f"round-tripped through DIMACS: {reloaded.num_edges} edges intact")

    # 3. MSF + certification (forest, spanning, full cut property).
    result = ecl_mst(graph)
    validate_msf(result)
    print(
        f"MSF certified: {result.num_mst_edges} edges, "
        f"weight {result.total_weight}, {result.rounds} rounds"
    )

    # 4a. Minimal backbone for the mesh's control plane.
    backbone = mst_backbone(graph)
    print(
        f"backbone keeps {backbone.num_edges}/{graph.num_edges} links "
        f"({100 * backbone.num_edges / graph.num_edges:.1f}%)"
    )

    # 4b. Zone the mesh into 4 maintenance clusters.
    labels = single_linkage_labels(graph, k=4, result=result)
    sizes = np.bincount(labels)
    print(f"4 zones of sizes {sorted(sizes.tolist(), reverse=True)}")

    # 4c. Worst-link (bottleneck) latency between two random sensors.
    a, b = int(rng.integers(n)), int(rng.integers(n))
    (bw,) = bottleneck_weights(graph, [(a, b)], result=result)
    print(f"minimax route {a} -> {b}: worst link quantized weight {bw}")


if __name__ == "__main__":
    main()
