#!/usr/bin/env python3
"""Interactive tour of the eight ECL-MST optimizations (Section 5.3).

Removes each optimization cumulatively — exactly the Table-5 ladder —
on one dense input, printing the modeled slowdown and the hardware
counters that explain it (atomics executed, pointer jumps, items
processed, DRAM bytes).

Run:  python examples/optimization_study.py
"""

from repro.core.config import deopt_stages
from repro.core.eclmst import ecl_mst
from repro.generators import random_k_out
from repro.gpusim.spec import RTX_3080_TI


def main() -> None:
    graph = random_k_out(16_384, 4, seed=1)
    graph.name = "r4-mini"
    print(f"input: {graph}\n")
    header = (
        f"{'stage':24s} {'ms':>8s} {'x':>6s} {'items':>10s} "
        f"{'MB':>8s} {'atomics':>9s} {'jumps':>10s} {'launches':>8s}"
    )
    print(header)
    print("-" * len(header))

    base = None
    for name, cfg in deopt_stages():
        r = ecl_mst(graph, cfg, gpu=RTX_3080_TI, verify=True)
        s = r.counters.summary()
        if base is None:
            base = r.modeled_seconds
        print(
            f"{name:24s} {r.modeled_seconds * 1e3:8.3f} "
            f"{r.modeled_seconds / base:6.2f} {s['items']:10.0f} "
            f"{s['bytes'] / 1e6:8.1f} {s['atomics']:9.0f} "
            f"{s['find_jumps']:10.0f} {s['launches']:8.0f}"
        )

    print(
        "\nreading the counters:\n"
        "  - 'No Atomic Guards' executes every atomicMin (atomics jump)\n"
        "  - 'No Filter' keeps heavy edges alive through all rounds (items)\n"
        "  - 'No Impl. Path Compr.' chases longer parent chains (jumps)\n"
        "  - 'Both Edge Dir.' doubles the worklist (items, MB)\n"
        "  - 'No Tuples' pays four transactions per entry (MB)\n"
        "  - 'Topology-Driven' rescans all edges per round but writes no\n"
        "    worklists (items up, MB roughly flat) - the one removal that\n"
        "    can help, as the paper notes\n"
        "  - 'Vertex-Centric' serializes each vertex's edges on one thread"
    )


if __name__ == "__main__":
    main()
