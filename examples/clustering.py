#!/usr/bin/env python3
"""Single-linkage clustering via MST — the medical-imaging motivation.

The paper cites MST analysis in tumor recognition (Brinkhuis et al.):
single-linkage clustering of cell positions is exactly "build the MST,
then cut the k-1 heaviest edges".  We synthesize a few Gaussian blobs
of points, connect near neighbors, run ECL-MST, and recover the blobs
by cutting the heaviest tree edges.

Run:  python examples/clustering.py
"""

import numpy as np
from scipy.spatial import cKDTree

from repro import build_csr, ecl_mst


def make_blobs(n_per_blob: int, centers, spread: float, seed: int = 0):
    rng = np.random.default_rng(seed)
    pts = np.concatenate(
        [c + rng.normal(scale=spread, size=(n_per_blob, 2)) for c in centers]
    )
    labels = np.repeat(np.arange(len(centers)), n_per_blob)
    return pts, labels


def mst_clusters(points: np.ndarray, k: int) -> np.ndarray:
    """Single-linkage k-clustering: MST minus its k-1 heaviest edges."""
    n = points.shape[0]
    tree = cKDTree(points)
    _, nbrs = tree.query(points, k=9)
    src = np.repeat(np.arange(n), 8)
    dst = nbrs[:, 1:].ravel()
    dist = np.linalg.norm(points[src] - points[dst], axis=1)
    w = np.maximum(1, (dist * 1_000_000).astype(np.int64))
    graph = build_csr(n, src, dst, w, name="blobs")

    result = ecl_mst(graph, verify=True)
    u, v, wts = result.edges()

    # Keep all but the k-1 heaviest MST edges, then label components.
    keep = np.argsort(wts)[: max(0, u.size - (k - 1))]
    parent = np.arange(n)

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i in keep:
        a, b = find(int(u[i])), find(int(v[i]))
        if a != b:
            parent[max(a, b)] = min(a, b)
    return np.array([find(i) for i in range(n)])


def main() -> None:
    centers = [(0.0, 0.0), (8.0, 1.0), (4.0, 7.0)]
    points, truth = make_blobs(400, centers, spread=0.8, seed=5)
    clusters = mst_clusters(points, k=len(centers))

    # Score: every truth blob should map to one dominant cluster.
    agreement = 0
    for blob in np.unique(truth):
        members = clusters[truth == blob]
        _, counts = np.unique(members, return_counts=True)
        agreement += counts.max()
    purity = agreement / points.shape[0]
    print(f"{points.shape[0]} points, {len(centers)} blobs")
    print(f"single-linkage purity via ECL-MST: {purity:.1%}")
    assert purity > 0.95, "blobs are well separated; clustering must recover them"
    print("clusters recovered correctly.")


if __name__ == "__main__":
    main()
