#!/usr/bin/env python3
"""Calibration report: modeled performance ratios vs. the paper's.

Prints, for both systems, the geometric-mean runtime of every code
relative to ECL-MST next to the ratio the paper reports, plus the
Table-5 de-optimization deltas.  Used to tune the cost-model constants
once; re-run after any cost-model change.
"""

from __future__ import annotations

import sys

from repro.bench.experiments import build_suite, DEFAULT_SCALE
from repro.bench.harness import SYSTEM1, SYSTEM2, run_grid
from repro.bench.tables import format_seconds
from repro.baselines.registry import TABLE_CODES
from repro.core.config import DEOPT_STAGE_NAMES, deopt_stages
from repro.core.eclmst import ecl_mst
from repro.bench.harness import geomean
from repro.generators import suite as suite_mod

# Paper geomean ratios vs ECL-MST (code -> (msf_ratio, mst_ratio)).
PAPER_SYS2 = {
    "Jucele GPU": (None, 0.0195 / 0.0044),
    "Gunrock GPU": (None, 0.0373 / 0.0044),
    "cuGraph GPU": (0.0805 / 0.0063, 0.0953 / 0.0044),
    "UMinho GPU": (0.2924 / 0.0063, 0.0808 / 0.0044),
    "Lonestar CPU": (2.6685 / 0.0063, 2.0036 / 0.0044),
    "PBBS CPU": (0.1718 / 0.0063, 0.1921 / 0.0044),
    "UMinho CPU": (0.4506 / 0.0063, 0.2589 / 0.0044),
    "PBBS Ser.": (1.5210 / 0.0063, 1.4110 / 0.0044),
}
PAPER_SYS1 = {
    "Jucele GPU": (None, 0.0324 / 0.0070),
    "Gunrock GPU": (None, 0.0485 / 0.0070),
    "UMinho GPU": (0.3978 / 0.0103, 0.1199 / 0.0070),
    "Lonestar CPU": (2.4886 / 0.0103, 1.8148 / 0.0070),
    "PBBS CPU": (0.3335 / 0.0103, 0.3465 / 0.0070),
    "UMinho CPU": (0.4775 / 0.0103, 0.2734 / 0.0070),
    "PBBS Ser.": (1.4231 / 0.0103, 1.2856 / 0.0070),
}
# Table 5 cumulative stage geomeans (seconds); ratios vs full ECL-MST.
PAPER_DEOPT = [0.0044, 0.0056, 0.0061, 0.0079, 0.0125, 0.0203, 0.0270, 0.0255, 0.0358]
# "ECL-MST memcpy" is ~5.6x ECL-MST on System 2, ~4x on System 1.
PAPER_MEMCPY_RATIO = {1: 0.0290 / 0.0070, 2: 0.0247 / 0.0044}


def report(scale: float = DEFAULT_SCALE) -> None:
    graphs = build_suite(scale)
    mst_names = {
        n for n in graphs if suite_mod.SUITE[n].single_component
    }
    for sysno, system, paper in ((1, SYSTEM1, PAPER_SYS1), (2, SYSTEM2, PAPER_SYS2)):
        codes = tuple(
            c for c in TABLE_CODES if sysno == 2 or not c.startswith("cuGraph")
        )
        grid = run_grid(codes, graphs, system)
        ecl_msf = grid.geomean_seconds("ECL-MST")
        ecl_mst_gm = grid.geomean_seconds("ECL-MST", mst_only_names=mst_names)
        print(f"\n=== {system.name} ===")
        print(f"ECL-MST geomean: MSF {format_seconds(ecl_msf)}  MST {format_seconds(ecl_mst_gm)}")
        mem_vals = [
            c.seconds + c.memcpy_seconds
            for c in grid.column("ECL-MST")
            if c.graph_name in mst_names
        ]
        print(
            f"{'code':14s} {'msf x':>8s} {'paper':>7s}   {'mst x':>8s} {'paper':>7s}"
        )
        print(
            f"{'ECL memcpy':14s} {'':>8s} {'':>7s}   "
            f"{geomean(mem_vals) / ecl_mst_gm:8.1f} {PAPER_MEMCPY_RATIO[sysno]:7.1f}"
        )
        for code in codes:
            if code == "ECL-MST":
                continue
            msf = grid.geomean_seconds(code)
            mst = grid.geomean_seconds(code, mst_only_names=mst_names)
            pm, pt = paper.get(code, (None, None))
            msf_s = f"{msf / ecl_msf:8.1f}" if msf else "      NC"
            pm_s = f"{pm:7.1f}" if pm else "     NC"
            print(
                f"{code:14s} {msf_s} {pm_s}   {mst / ecl_mst_gm:8.1f} "
                f"{f'{pt:7.1f}' if pt else '':>7s}"
            )

    print("\n=== Table 5 de-optimization (System 2, MST inputs) ===")
    input_names = sorted(mst_names)
    print(f"{'stage':22s} {'modeled x':>9s} {'paper x':>8s}")
    prev = None
    for (name, cfg), paper_s in zip(deopt_stages(), PAPER_DEOPT):
        gm = geomean(
            [ecl_mst(graphs[g], cfg, gpu=SYSTEM2.gpu).modeled_seconds for g in input_names]
        )
        if prev is None:
            base = gm
        print(f"{name:22s} {gm / base:9.2f} {paper_s / PAPER_DEOPT[0]:8.2f}")
        prev = gm


if __name__ == "__main__":
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_SCALE
    report(scale)
