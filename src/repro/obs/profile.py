"""Exportable run profiles: one JSON artifact per MST run, diffable.

A :class:`RunProfile` captures everything needed to attribute and
compare a run after the fact — a structural graph fingerprint, the
configuration, the flat metric dict, and the per-kernel breakdown —
without pickling and without retaining the graph itself.  Profiles
serialize to plain JSON (:meth:`RunProfile.to_json` /
:meth:`RunProfile.from_json`) and :func:`diff` compares two of them
metric-by-metric for regression hunting (the Table 5 de-optimization
deltas are exactly such diffs).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

__all__ = ["KernelBreakdown", "ProfileDiff", "RunProfile", "diff"]

SCHEMA = "repro.obs.profile/v1"


def graph_fingerprint(graph) -> dict:
    """Structural identity of a graph, cheap and pickle-free.

    The digest covers the CSR arrays (topology + weights), so two
    graphs with the same fingerprint describe the same weighted
    adjacency — enough to know a profile diff compares like with like.
    """
    h = hashlib.blake2b(digest_size=8)
    for arr in (graph.row_ptr, graph.col_idx, graph.weights):
        h.update(arr.tobytes())
    return {
        "name": graph.name,
        "vertices": int(graph.num_vertices),
        "edges": int(graph.num_edges),
        "directed_edges": int(graph.num_directed_edges),
        "digest": h.hexdigest(),
    }


@dataclass
class KernelBreakdown:
    """Aggregate of every launch of one kernel name."""

    name: str
    launches: int = 0
    items: int = 0
    cycles: float = 0.0
    bytes: float = 0.0
    atomics: int = 0
    atomics_skipped: int = 0
    # Worst single-address contention over the launches (max, not sum:
    # it is a per-launch critical path) and the summed dependent-access
    # chain — the per-launch records the roofline attribution needs.
    atomic_max_contention: int = 0
    critical_items: int = 0
    find_jumps: int = 0
    seconds: float = 0.0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "KernelBreakdown":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})


def _kernel_breakdowns(counters) -> dict[str, KernelBreakdown]:
    out: dict[str, KernelBreakdown] = {}
    for k in counters.kernels:
        b = out.get(k.name)
        if b is None:
            b = out[k.name] = KernelBreakdown(name=k.name)
        b.launches += 1
        b.items += k.items
        b.cycles += k.cycles
        b.bytes += k.bytes
        b.atomics += k.atomics
        b.atomics_skipped += k.atomics_skipped
        b.atomic_max_contention = max(
            b.atomic_max_contention, k.atomic_max_contention
        )
        b.critical_items += k.critical_items
        b.find_jumps += k.find_jumps
        b.seconds += k.modeled_seconds
    return out


@dataclass
class RunProfile:
    """Serializable record of one run's identity, config, and cost."""

    schema: str = SCHEMA
    algorithm: str = ""
    graph: dict = field(default_factory=dict)
    config: dict = field(default_factory=dict)
    rounds: int = 0
    total_weight: int = 0
    num_mst_edges: int = 0
    modeled_seconds: float = 0.0
    memcpy_seconds: float = 0.0
    metrics: dict = field(default_factory=dict)
    kernels: dict = field(default_factory=dict)  # name -> KernelBreakdown
    # Roofline bound report (repro.obs.roofline schema); empty when the
    # run's GPUSpec was unavailable to attribute against.
    roofline: dict = field(default_factory=dict)
    # Host-side self-profiling: the simulator's own wall-clock hot
    # spots.  Deliberately kept out of ``metrics`` — wall time is noisy
    # and must never feed the deterministic regression gate.
    host: dict = field(default_factory=dict)
    # Per-round worklist trajectory ([{entries, survivors, added}]) —
    # the dashboard's round-timeline source.  Empty for runners that
    # report no per-round stats (baselines); absent in pre-telemetry
    # profiles (from_dict tolerates both).
    round_log: list = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_result(cls, result, *, gpu=None, tracer=None) -> "RunProfile":
        """Build a profile from any runner's :class:`MstResult`.

        ``gpu``: the :class:`~repro.gpusim.spec.GPUSpec` the run was
        priced with, enabling the roofline bound report; defaults to
        the spec the runner recorded in ``result.extra["gpu_spec"]``.
        ``tracer``: an enabled tracer that observed the run, folding
        its host wall-clock hot spots into the profile.
        """
        from .metrics import collect_result_metrics

        cfg = result.extra.get("config")
        config = dataclasses.asdict(cfg) if dataclasses.is_dataclass(cfg) else {}
        gpu = gpu if gpu is not None else result.extra.get("gpu_spec")
        roofline: dict = {}
        if gpu is not None:
            from .roofline import roofline_report

            roofline = roofline_report(result.counters, gpu).to_dict()
        host: dict = {}
        if tracer is not None and getattr(tracer, "enabled", False):
            from .trace import host_hotspots

            host = {"hotspots": host_hotspots(tracer)}
        return cls(
            algorithm=result.algorithm,
            graph=graph_fingerprint(result.graph),
            config=config,
            rounds=result.rounds,
            total_weight=result.total_weight,
            num_mst_edges=result.num_mst_edges,
            modeled_seconds=result.modeled_seconds,
            memcpy_seconds=result.memcpy_seconds,
            metrics=collect_result_metrics(result),
            kernels=_kernel_breakdowns(result.counters),
            roofline=roofline,
            host=host,
            round_log=[
                dict(s) for s in getattr(result, "round_stats", None) or []
            ],
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        d = dataclasses.asdict(self)
        d["kernels"] = {
            name: (b.to_dict() if isinstance(b, KernelBreakdown) else dict(b))
            for name, b in self.kernels.items()
        }
        return d

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "RunProfile":
        known = {f.name for f in dataclasses.fields(cls)}
        d = {k: v for k, v in d.items() if k in known}
        d["kernels"] = {
            name: KernelBreakdown.from_dict(b)
            for name, b in d.get("kernels", {}).items()
        }
        return cls(**d)

    @classmethod
    def from_json(cls, text: str) -> "RunProfile":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "RunProfile":
        with open(path) as f:
            return cls.from_json(f.read())

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())
            f.write("\n")

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable per-kernel breakdown (the §5.1 profile view)."""
        lines = [
            f"{self.algorithm} on {self.graph.get('name', '?')} "
            f"(|V|={self.graph.get('vertices')}, |E|={self.graph.get('edges')}): "
            f"{self.modeled_seconds * 1e3:.4f} ms modeled, {self.rounds} rounds"
        ]
        total = self.modeled_seconds or 1.0
        name_w = max((len(n) for n in self.kernels), default=6)
        bounds = {
            k.get("name"): k.get("bound", "")
            for k in self.roofline.get("kernels", [])
        }
        for name, b in sorted(
            self.kernels.items(), key=lambda kv: -kv[1].seconds
        ):
            bound = f"  {bounds[name]}-bound" if bounds.get(name) else ""
            lines.append(
                f"  {name.ljust(name_w)} {b.launches:5d}x "
                f"{b.seconds * 1e6:12.2f}us {b.seconds / total * 100:5.1f}%"
                f"{bound}"
            )
        return "\n".join(lines)


@dataclass
class ProfileDiff:
    """Metric-by-metric comparison of two profiles."""

    a: RunProfile
    b: RunProfile
    entries: dict = field(default_factory=dict)
    comparable: bool = True

    def to_dict(self) -> dict:
        return {
            "schema": "repro.obs.profile-diff/v1",
            "comparable": self.comparable,
            "a": {"algorithm": self.a.algorithm, "graph": self.a.graph},
            "b": {"algorithm": self.b.algorithm, "graph": self.b.graph},
            "entries": self.entries,
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def regressions(self, *, threshold: float = 1.05) -> dict:
        """Entries that moved in their *bad* direction by more than
        ``threshold``×.

        Direction-aware via
        :func:`~repro.obs.metrics.metric_direction`: cost-like metrics
        regress when they grow, savings-like metrics (elided atomics,
        filtered edges, throughput) regress when they *shrink*, exact
        metrics (MST weight/edge count) regress on any change, and
        info metrics never gate.  ``threshold=1.0`` is a strict compare
        that only equality passes — the deterministic perf gate's mode.
        """
        out: dict = {}
        from .metrics import metric_direction

        for key, e in self.entries.items():
            direction = metric_direction(key)
            va, vb = e["a"], e["b"]
            if direction == "info":
                continue
            if direction == "exact":
                bad = vb != va
            elif direction == "higher":
                # Shrinking a saving is the regression; a saving
                # appearing from zero is an improvement.
                bad = va > 0 and vb * threshold < va
            else:  # lower
                # A cost appearing where there was none regresses too
                # (the old flat-ratio rule silently skipped ratio=None).
                bad = vb > va * threshold if va > 0 else vb > 0
            if bad:
                out[key] = e
        return out

    def render(self, *, min_ratio: float = 0.0) -> str:
        lines = []
        if not self.comparable:
            lines.append(
                "WARNING: profiles fingerprint different graphs — deltas "
                "compare unlike runs"
            )
        lines.append(f"{'metric':40s} {'a':>14s} {'b':>14s} {'b/a':>8s}")
        for key in sorted(self.entries):
            e = self.entries[key]
            if e["ratio"] is not None and abs(e["ratio"] - 1.0) < min_ratio:
                continue
            ratio = f"{e['ratio']:.3f}" if e["ratio"] is not None else "n/a"
            lines.append(
                f"{key:40s} {e['a']:14.6g} {e['b']:14.6g} {ratio:>8s}"
            )
        return "\n".join(lines)


def diff(a: RunProfile, b: RunProfile) -> ProfileDiff:
    """Compare two profiles over the union of their metric names.

    Each entry records both values, the absolute delta ``b - a`` and
    the ratio ``b / a`` (``None`` when ``a`` is zero).  Histogram
    ``.count``-style keys missing on one side default to zero, so a
    metric disappearing (e.g. atomics elided after removing the guard
    optimization) shows up as a ratio of 0 rather than vanishing.
    """
    from .metrics import metric_direction

    keys = set(a.metrics) | set(b.metrics)
    entries: dict = {}
    for key in sorted(keys):
        va = float(a.metrics.get(key, 0.0))
        vb = float(b.metrics.get(key, 0.0))
        entries[key] = {
            "a": va,
            "b": vb,
            "delta": vb - va,
            "ratio": (vb / va) if va != 0 else None,
            "direction": metric_direction(key),
        }
    comparable = a.graph.get("digest") == b.graph.get("digest")
    return ProfileDiff(a=a, b=b, entries=entries, comparable=comparable)
