"""Observability: span tracing, metrics, and exportable run profiles.

The paper's evidence is observational — the §5.1 kernel-time profile,
the Table 5 de-optimization deltas, the Fig. 6 seed study — so this
package gives every run a uniform way to answer "where did the work
and modeled time go":

* :mod:`~repro.obs.trace` — nested spans (``run > phase > round >
  kernel``) with wall + modeled time, zero-overhead when disabled;
* :mod:`~repro.obs.metrics` — a flat registry of named
  counters/gauges/histograms derived from the measured kernel counters;
* :mod:`~repro.obs.export` — NDJSON span logs and Chrome-trace /
  Perfetto JSON keyed to modeled microseconds;
* :mod:`~repro.obs.profile` — serializable run profiles with
  ``diff()`` for regression hunting;
* :mod:`~repro.obs.roofline` — per-kernel bound classification
  (compute-/memory-/serial-/atomic-/launch-bound) derived from the
  cost model's own time decomposition;
* :mod:`~repro.obs.regress` — benchmark baselines (deterministic
  modeled metrics compared exactly, wall-clock via median+MAD bands)
  backing the ``repro-mst perf`` gate;
* :mod:`~repro.obs.events` — leveled structured events with
  correlation IDs (run → query → span), NDJSON/console sinks, and a
  zero-overhead null log;
* :mod:`~repro.obs.window` — sliding-window counters and histograms
  so live service metrics reflect recent traffic;
* :mod:`~repro.obs.slo` — declarative SLOs evaluated into windowed
  burn rates and alert transitions;
* :mod:`~repro.obs.recorder` — the always-on flight recorder: bounded
  rings of recent events/outcomes/spans, postmortem bundles captured
  on failure signals, and deterministic bundle replay (the
  ``repro-mst postmortem`` / ``repro-mst replay`` verbs);
* :mod:`~repro.obs.dashboard` — the self-contained static HTML run
  dashboard behind ``repro-mst dashboard``.
"""

from .events import (
    NULL_EVENTS,
    ConsoleSink,
    Event,
    EventLog,
    ListSink,
    NDJSONSink,
    NullEventLog,
    configure_events,
    format_event_line,
    get_event_log,
    new_run_id,
    reset_events,
)
from .export import (
    chrome_trace_events,
    to_chrome_trace_json,
    to_ndjson,
    write_chrome_trace,
    write_ndjson,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_result_metrics,
    metric_direction,
)
from .profile import KernelBreakdown, ProfileDiff, RunProfile, diff, graph_fingerprint
from .recorder import (
    FlightRecorder,
    RecorderConfig,
    ReplayReport,
    TeeEventLog,
    bundle_summary,
    load_bundle,
    recent_bundles,
    render_postmortem,
    replay_bundle,
)
from .regress import (
    Baseline,
    BaselineStore,
    RunComparison,
    WallStats,
    compare_to_baseline,
    median_mad,
)
from .roofline import BoundReport, KernelRoofline, launch_shares, roofline_report
from .slo import DEFAULT_SLOS, SLOSpec, SLOStatus, SLOTracker
from .trace import NULL_TRACER, NullTracer, Span, Tracer, host_hotspots
from .window import SlidingCounter, SlidingHistogram

__all__ = [
    "Baseline",
    "BaselineStore",
    "BoundReport",
    "ConsoleSink",
    "Counter",
    "DEFAULT_SLOS",
    "Event",
    "EventLog",
    "FlightRecorder",
    "ListSink",
    "NDJSONSink",
    "NULL_EVENTS",
    "NullEventLog",
    "SLOSpec",
    "SLOStatus",
    "SLOTracker",
    "SlidingCounter",
    "SlidingHistogram",
    "Gauge",
    "Histogram",
    "KernelBreakdown",
    "KernelRoofline",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ProfileDiff",
    "RecorderConfig",
    "ReplayReport",
    "RunComparison",
    "RunProfile",
    "Span",
    "TeeEventLog",
    "Tracer",
    "WallStats",
    "bundle_summary",
    "chrome_trace_events",
    "collect_result_metrics",
    "compare_to_baseline",
    "configure_events",
    "diff",
    "format_event_line",
    "get_event_log",
    "graph_fingerprint",
    "host_hotspots",
    "load_bundle",
    "new_run_id",
    "recent_bundles",
    "render_postmortem",
    "replay_bundle",
    "reset_events",
    "launch_shares",
    "median_mad",
    "metric_direction",
    "roofline_report",
    "to_chrome_trace_json",
    "to_ndjson",
    "write_chrome_trace",
    "write_ndjson",
]
