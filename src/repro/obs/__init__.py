"""Observability: span tracing, metrics, and exportable run profiles.

The paper's evidence is observational — the §5.1 kernel-time profile,
the Table 5 de-optimization deltas, the Fig. 6 seed study — so this
package gives every run a uniform way to answer "where did the work
and modeled time go":

* :mod:`~repro.obs.trace` — nested spans (``run > phase > round >
  kernel``) with wall + modeled time, zero-overhead when disabled;
* :mod:`~repro.obs.metrics` — a flat registry of named
  counters/gauges/histograms derived from the measured kernel counters;
* :mod:`~repro.obs.export` — NDJSON span logs and Chrome-trace /
  Perfetto JSON keyed to modeled microseconds;
* :mod:`~repro.obs.profile` — serializable run profiles with
  ``diff()`` for regression hunting.
"""

from .export import (
    chrome_trace_events,
    to_chrome_trace_json,
    to_ndjson,
    write_chrome_trace,
    write_ndjson,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_result_metrics,
)
from .profile import KernelBreakdown, ProfileDiff, RunProfile, diff, graph_fingerprint
from .trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "KernelBreakdown",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ProfileDiff",
    "RunProfile",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "collect_result_metrics",
    "diff",
    "graph_fingerprint",
    "to_chrome_trace_json",
    "to_ndjson",
    "write_chrome_trace",
    "write_ndjson",
]
