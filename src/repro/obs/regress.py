"""Benchmark baselines and regression verdicts.

A :class:`Baseline` freezes one (input, code, system) measurement in
two regimes:

* **modeled** — the cost model's metric dict is a deterministic
  function of the graph and config, so the comparison is exact: any
  movement in the bad direction (per the
  :func:`~repro.obs.metrics.metric_direction` registry) is a verdict.
* **wall** — host wall-clock is noisy, so the baseline stores N
  repeats summarized as median + MAD, and the comparison asks whether
  the current median escapes the tolerance band
  ``median + max(mad_k * MAD, min_rel * median)``.  Wall verdicts are
  advisory by default; ``compare_to_baseline(..., gate_wall=True)``
  promotes them to gating against same-machine baselines (the CI
  wall-perf-smoke job records fresh on-runner baselines first).

Baselines live as one JSON file each under ``benchmarks/baselines/``
(managed by :class:`BaselineStore`), and comparison reuses
:func:`repro.obs.profile.diff` so `repro-mst perf compare` renders the
same table as `repro-mst profile --baseline`.
"""

from __future__ import annotations

import json
import re
import statistics
from dataclasses import dataclass, field
from pathlib import Path

from .profile import ProfileDiff, RunProfile, diff

__all__ = [
    "Baseline",
    "BaselineStore",
    "RunComparison",
    "WallStats",
    "compare_to_baseline",
    "median_mad",
]

SCHEMA = "repro.obs.baseline/v1"

# Wall-clock tolerance band: regressed when the current median exceeds
# baseline median + max(MAD_K * MAD, MIN_REL * median).  Wide on
# purpose — CI machines are shared and the modeled gate is the real
# instrument; the wall band only catches order-of-magnitude host-side
# blowups (e.g. an accidental O(n^2) in the simulator itself).
WALL_MAD_K = 5.0
WALL_MIN_REL = 0.5


def median_mad(samples: list[float]) -> tuple[float, float]:
    """Median and median-absolute-deviation of a sample list."""
    if not samples:
        return 0.0, 0.0
    med = statistics.median(samples)
    mad = statistics.median(abs(s - med) for s in samples)
    return med, mad


@dataclass
class WallStats:
    """Noisy-metric summary: N repeats, median + MAD."""

    samples: list[float] = field(default_factory=list)

    @property
    def repeats(self) -> int:
        return len(self.samples)

    @property
    def median(self) -> float:
        return median_mad(self.samples)[0]

    @property
    def mad(self) -> float:
        return median_mad(self.samples)[1]

    def band(self, *, mad_k: float = WALL_MAD_K, min_rel: float = WALL_MIN_REL) -> float:
        """Upper edge of the tolerance band for a later measurement."""
        return self.median + max(mad_k * self.mad, min_rel * self.median)

    def to_dict(self) -> dict:
        return {
            "samples_s": list(self.samples),
            "repeats": self.repeats,
            "median_s": self.median,
            "mad_s": self.mad,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WallStats":
        return cls(samples=[float(s) for s in d.get("samples_s", [])])


@dataclass
class Baseline:
    """One frozen (input, code, system) measurement."""

    input: str
    code: str
    system: int
    scale: float
    graph: dict = field(default_factory=dict)  # fingerprint
    metrics: dict = field(default_factory=dict)  # deterministic, modeled
    wall: WallStats = field(default_factory=WallStats)
    recorded_at: str = ""
    schema: str = SCHEMA

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "input": self.input,
            "code": self.code,
            "system": self.system,
            "scale": self.scale,
            "graph": self.graph,
            "metrics": self.metrics,
            "wall": self.wall.to_dict(),
            "recorded_at": self.recorded_at,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Baseline":
        return cls(
            input=d["input"],
            code=d["code"],
            system=int(d["system"]),
            scale=float(d["scale"]),
            graph=d.get("graph", {}),
            metrics=d.get("metrics", {}),
            wall=WallStats.from_dict(d.get("wall", {})),
            recorded_at=d.get("recorded_at", ""),
            schema=d.get("schema", SCHEMA),
        )

    def to_profile(self) -> RunProfile:
        """A minimal profile view, so comparison reuses ProfileDiff."""
        return RunProfile(
            algorithm=self.code, graph=self.graph, metrics=self.metrics
        )


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text)


class BaselineStore:
    """Directory of baseline JSON files, one per (input, code, system)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path(self, input_name: str, code: str, system: int) -> Path:
        return self.root / (
            f"{_slug(code)}__{_slug(input_name)}__sys{system}.json"
        )

    def exists(self, input_name: str, code: str, system: int) -> bool:
        return self.path(input_name, code, system).exists()

    def save(self, baseline: Baseline) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(baseline.input, baseline.code, baseline.system)
        path.write_text(
            json.dumps(baseline.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return path

    def load(self, input_name: str, code: str, system: int) -> Baseline:
        path = self.path(input_name, code, system)
        return Baseline.from_dict(json.loads(path.read_text()))

    def list(self) -> list[Baseline]:
        if not self.root.is_dir():
            return []
        return [
            Baseline.from_dict(json.loads(p.read_text()))
            for p in sorted(self.root.glob("*.json"))
        ]


@dataclass
class RunComparison:
    """Verdicts of one current run against its baseline."""

    baseline: Baseline
    diff: ProfileDiff
    comparable: bool
    modeled_regressions: dict  # metric -> diff entry
    wall_median: float
    wall_band: float
    # When set, a wall-band escape fails ``passed`` instead of being
    # advisory.  Only meaningful against baselines recorded on the same
    # machine (e.g. fresh on-runner CI baselines).
    gate_wall: bool = False

    @property
    def wall_regressed(self) -> bool:
        return self.baseline.wall.repeats > 0 and self.wall_median > self.wall_band

    @property
    def passed(self) -> bool:
        """The gating verdict: modeled-exact, like-for-like, and — when
        ``gate_wall`` is set — inside the wall tolerance band."""
        if not self.comparable or self.modeled_regressions:
            return False
        if self.gate_wall and self.wall_regressed:
            return False
        return True

    def render(self) -> str:
        head = f"{self.baseline.code} on {self.baseline.input}"
        if not self.comparable:
            return (
                f"{head}: INCOMPARABLE — graph fingerprint changed "
                f"(generator or scale drifted; re-record the baseline)"
            )
        lines = []
        if self.modeled_regressions:
            lines.append(
                f"{head}: FAIL — {len(self.modeled_regressions)} modeled "
                f"metric(s) regressed"
            )
            for name, e in sorted(self.modeled_regressions.items()):
                ratio = f"{e['ratio']:.3f}x" if e["ratio"] is not None else "new"
                lines.append(
                    f"    {name:40s} {e['a']:14.6g} -> {e['b']:14.6g} "
                    f"({ratio}, {e['direction']}-is-better)"
                )
        else:
            lines.append(f"{head}: PASS (modeled metrics exact)")
        if self.baseline.wall.repeats > 0:
            verdict = "REGRESSED" if self.wall_regressed else "ok"
            mode = "gated" if self.gate_wall else "advisory"
            lines.append(
                f"    wall {verdict}: median {self.wall_median * 1e3:.1f} ms "
                f"vs baseline {self.baseline.wall.median * 1e3:.1f} ms "
                f"(band <= {self.wall_band * 1e3:.1f} ms, "
                f"MAD {self.baseline.wall.mad * 1e3:.2f} ms, {mode})"
            )
        return "\n".join(lines)


def compare_to_baseline(
    baseline: Baseline,
    profile: RunProfile,
    wall_samples: list[float],
    *,
    threshold: float = 1.0,
    gate_wall: bool = False,
) -> RunComparison:
    """Compare a fresh run against a stored baseline.

    ``threshold=1.0`` is the exact deterministic compare (any modeled
    metric moving in its bad direction fails); a looser value such as
    1.02 tolerates small intentional drifts during development.
    ``gate_wall`` promotes the wall-clock band from advisory to gating
    — use it only against baselines recorded on the same machine.
    """
    d = diff(baseline.to_profile(), profile)
    wall_median, _ = median_mad(wall_samples)
    return RunComparison(
        baseline=baseline,
        diff=d,
        comparable=d.comparable,
        modeled_regressions=d.regressions(threshold=threshold),
        wall_median=wall_median,
        wall_band=baseline.wall.band(),
        gate_wall=gate_wall,
    )
