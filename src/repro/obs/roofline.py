"""Roofline-style bound attribution for simulated kernel launches.

The cost model charges every launch ``launch + max(compute, memory,
serial) + atomic`` (see :func:`repro.gpusim.costmodel.kernel_time_terms`).
This module turns that same decomposition into an attribution: each
launch's modeled time is split into exclusive *shares* — the binding
resource among compute/memory/serial gets the roof term, atomics get
their charge, and the launch overhead absorbs the remainder — so the
shares of a launch sum to its modeled seconds exactly, and the per-run
report explains where the paper's Table-5 optimizations buy their time.

A :class:`BoundReport` aggregates the shares per kernel name, labels
each kernel compute-/memory-/serial-/atomic-/launch-bound by its
largest share, and adds the classic roofline quantities: arithmetic
intensity (counted cycles per DRAM byte), compute/bandwidth
utilization fractions, and a same-address atomic-serialization
contention score (the fraction of the atomic charge explained by the
hottest single address — 1.0 means the minEdge/worklist hot spot fully
serializes the kernel's atomics).

Everything here is a pure function of already-recorded
:class:`~repro.gpusim.counters.KernelCounters` plus a
:class:`~repro.gpusim.spec.GPUSpec`; building a report never touches a
run in flight.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

__all__ = [
    "BOUND_KINDS",
    "KernelRoofline",
    "BoundReport",
    "launch_shares",
    "roofline_report",
]

SCHEMA = "repro.obs.roofline/v1"

# Exclusive attribution buckets; order is the tie-break preference.
BOUND_KINDS = ("compute", "memory", "serial", "atomic", "launch")


def _terms(spec, k) -> dict[str, float]:
    # Lazy: costmodel imports obs.trace, so a module-level import here
    # would close an import cycle through the obs package __init__.
    from ..gpusim.costmodel import kernel_time_terms

    return kernel_time_terms(spec, k)


def launch_shares(spec, k) -> dict[str, float]:
    """Split one launch's modeled seconds into exclusive bound shares.

    The binding term of ``max(compute, memory, serial)`` receives the
    whole roof (the other two overlap beneath it and cost nothing
    extra); ``atomic`` is its full charge; ``launch`` is the remainder
    of the recorded modeled time — the fixed launch overhead for priced
    kernels, and the entire time for externally priced rows such as
    ``host_sync``.  By construction the shares sum to
    ``k.modeled_seconds`` exactly.
    """
    t = _terms(spec, k)
    shares = dict.fromkeys(BOUND_KINDS, 0.0)
    roof = max(t["compute"], t["memory"], t["serial"])
    if roof > 0.0:
        binding = max(("compute", "memory", "serial"), key=lambda n: t[n])
        shares[binding] = roof
    shares["atomic"] = t["atomic"]
    charged = roof + t["atomic"]
    shares["launch"] = k.modeled_seconds - charged
    return shares


@dataclass
class KernelRoofline:
    """Aggregate bound attribution of every launch of one kernel name."""

    name: str
    launches: int = 0
    seconds: float = 0.0
    shares: dict = field(
        default_factory=lambda: dict.fromkeys(BOUND_KINDS, 0.0)
    )
    cycles: float = 0.0
    bytes: float = 0.0
    atomics: int = 0
    # Peak-rate charges of each overlapped resource (not exclusive
    # shares): what the kernel's counted work would cost if that
    # resource alone bound it.  Utilization fractions derive from these.
    compute_seconds: float = 0.0
    memory_seconds: float = 0.0
    atomic_seconds: float = 0.0
    atomic_serial_seconds: float = 0.0

    @property
    def bound(self) -> str:
        """Label: the bucket holding the largest share of the time."""
        return max(BOUND_KINDS, key=lambda n: self.shares.get(n, 0.0))

    @property
    def arithmetic_intensity(self) -> float | None:
        """Counted thread-cycles per DRAM byte (``None`` for no traffic)."""
        if self.bytes <= 0:
            return None
        return self.cycles / self.bytes

    @property
    def compute_utilization(self) -> float:
        """Fraction of the kernel's modeled time the counted cycles
        would need at peak issue rate."""
        return self.compute_seconds / self.seconds if self.seconds > 0 else 0.0

    @property
    def memory_utilization(self) -> float:
        """Fraction of the modeled time the counted DRAM traffic would
        need at effective peak bandwidth."""
        return self.memory_seconds / self.seconds if self.seconds > 0 else 0.0

    @property
    def contention(self) -> float:
        """Same-address atomic-serialization score in [0, 1].

        The fraction of the atomic charge explained by the critical
        path of the hottest single address; 1.0 means the atomic time
        is pure serialization on one location (e.g. a worklist tail
        pointer), ~0 means throughput-limited scattered atomics.
        """
        if self.atomic_seconds <= 0:
            return 0.0
        return min(1.0, self.atomic_serial_seconds / self.atomic_seconds)

    def to_dict(self) -> dict:
        d = dataclasses.asdict(self)
        d["bound"] = self.bound
        d["arithmetic_intensity"] = self.arithmetic_intensity
        d["compute_utilization"] = self.compute_utilization
        d["memory_utilization"] = self.memory_utilization
        d["contention"] = self.contention
        return d


@dataclass
class BoundReport:
    """Per-run bound classification, kernels ordered hottest-first."""

    spec_name: str = ""
    total_seconds: float = 0.0
    kernels: list[KernelRoofline] = field(default_factory=list)

    def kernel(self, name: str) -> KernelRoofline:
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(name)

    def bounds(self) -> dict[str, str]:
        """``{kernel name: bound label}`` for quick lookups."""
        return {k.name: k.bound for k in self.kernels}

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "spec": self.spec_name,
            "total_seconds": self.total_seconds,
            "kernels": [k.to_dict() for k in self.kernels],
        }

    def render(self, *, top_n: int | None = 10) -> str:
        """Table of the top-N kernels by modeled time with their bound
        label, share split, and roofline quantities."""
        rows = self.kernels if top_n is None else self.kernels[:top_n]
        if not rows:
            return "(no launches)"
        name_w = max(6, max(len(k.name) for k in rows))
        lines = [
            f"bound report on {self.spec_name}: "
            f"{self.total_seconds * 1e3:.4f} ms modeled",
            f"  {'kernel'.ljust(name_w)} {'time':>10s} {'run%':>6s} "
            f"{'bound':>8s}  {'cmp%':>5s} {'mem%':>5s} {'ser%':>5s} "
            f"{'atm%':>5s} {'lau%':>5s}  {'AI':>8s} {'util-c':>6s} "
            f"{'util-m':>6s} {'cont':>5s}"
        ]
        total = self.total_seconds or 1.0
        for k in rows:
            secs = k.seconds or 1.0
            pct = {n: k.shares.get(n, 0.0) / secs * 100 for n in BOUND_KINDS}
            ai = (
                f"{k.arithmetic_intensity:8.3f}"
                if k.arithmetic_intensity is not None
                else f"{'-':>8s}"
            )
            lines.append(
                f"  {k.name.ljust(name_w)} {k.seconds * 1e6:8.2f}us "
                f"{k.seconds / total * 100:5.1f}% {k.bound:>8s}  "
                f"{pct['compute']:5.1f} {pct['memory']:5.1f} "
                f"{pct['serial']:5.1f} {pct['atomic']:5.1f} "
                f"{pct['launch']:5.1f}  {ai} "
                f"{k.compute_utilization:6.2f} {k.memory_utilization:6.2f} "
                f"{k.contention:5.2f}"
            )
        if top_n is not None and len(self.kernels) > top_n:
            rest = sum(k.seconds for k in self.kernels[top_n:])
            lines.append(
                f"  ... {len(self.kernels) - top_n} more kernels, "
                f"{rest * 1e6:.2f}us"
            )
        return "\n".join(lines)


def roofline_report(counters, spec) -> BoundReport:
    """Classify every kernel of a run from its recorded counters.

    ``counters`` is a :class:`~repro.gpusim.counters.RunCounters`;
    ``spec`` must be the :class:`~repro.gpusim.spec.GPUSpec` the run was
    priced with, or the shares will not tile the recorded times.
    """
    by_name: dict[str, KernelRoofline] = {}
    for k in counters.kernels:
        agg = by_name.get(k.name)
        if agg is None:
            agg = by_name[k.name] = KernelRoofline(name=k.name)
        t = _terms(spec, k)
        shares = launch_shares(spec, k)
        agg.launches += 1
        agg.seconds += k.modeled_seconds
        for bucket, secs in shares.items():
            agg.shares[bucket] += secs
        agg.cycles += k.cycles
        agg.bytes += k.bytes
        agg.atomics += k.atomics
        agg.compute_seconds += t["compute"]
        agg.memory_seconds += t["memory"]
        agg.atomic_seconds += t["atomic"]
        agg.atomic_serial_seconds += min(t["atomic_serial"], t["atomic"])
    kernels = sorted(by_name.values(), key=lambda k: -k.seconds)
    return BoundReport(
        spec_name=spec.name,
        total_seconds=counters.total_seconds,
        kernels=kernels,
    )
