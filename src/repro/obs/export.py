"""Trace exporters: NDJSON span logs and Chrome-trace JSON.

The Chrome-trace output loads directly in ``chrome://tracing`` or
`Perfetto <https://ui.perfetto.dev>`_.  Timestamps are *modeled
microseconds* on the simulated device clock whenever the trace carries
them (so the picture matches the cost model, not Python's speed), with
a wall-clock fallback for spans recorded without a modeled clock.
"""

from __future__ import annotations

import json
from typing import Iterable

from .trace import Span, Tracer

__all__ = [
    "chrome_trace_events",
    "to_chrome_trace_json",
    "to_ndjson",
    "write_chrome_trace",
    "write_ndjson",
]

# Depth → chrome-trace thread ID.  One lane per nesting level keeps
# nested modeled intervals (which overlap by construction: a round
# contains its kernels) from being mis-stacked by the viewer.
_KIND_ORDER = ("run", "cell", "shard", "phase", "round", "kernel")


def _tid_for(span: Span, depth: int) -> int:
    if span.kind in _KIND_ORDER:
        return _KIND_ORDER.index(span.kind)
    return min(depth, len(_KIND_ORDER) - 1)


def _span_interval(span: Span, wall_origin: float) -> tuple[float, float]:
    """(ts, dur) in microseconds, preferring the modeled clock."""
    if span.modeled_start is not None and span.modeled_end is not None:
        return span.modeled_start * 1e6, (span.modeled_end - span.modeled_start) * 1e6
    dur = span.wall_seconds
    return (span.wall_start - wall_origin) * 1e6, dur * 1e6


def _json_safe(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """Flatten a tracer's span forest into chrome-trace event dicts.

    Every event is a complete ("ph": "X") event with ``name``, ``ts``
    and ``dur`` in microseconds, ``cat`` set to the span kind, and the
    span attributes under ``args``.
    """
    spans = list(tracer.walk())
    wall_origin = min(
        (sp.wall_start for sp, _, _ in spans), default=0.0
    )
    events: list[dict] = []
    for sp, depth, _parent in spans:
        ts, dur = _span_interval(sp, wall_origin)
        events.append(
            {
                "name": sp.name,
                "cat": sp.kind,
                "ph": "X",
                "ts": ts,
                "dur": dur,
                "pid": 0,
                "tid": _tid_for(sp, depth),
                "args": _json_safe(sp.attrs),
            }
        )
    return events


def to_chrome_trace_json(tracer: Tracer, *, indent: int | None = None) -> str:
    """Serialize as the chrome-trace *JSON array* flavour."""
    return json.dumps(chrome_trace_events(tracer), indent=indent)


def to_ndjson(tracer: Tracer) -> str:
    """One JSON object per span per line, depth-first, with lineage.

    Each record is the span's :meth:`~repro.obs.trace.Span.to_dict`
    plus ``id``/``parent_id`` (depth-first indices) and ``depth``, so
    the tree is reconstructible from the flat log.
    """
    ids: dict[int, int] = {}
    lines: list[str] = []
    for i, (sp, depth, parent) in enumerate(tracer.walk()):
        ids[id(sp)] = i
        rec = sp.to_dict()
        rec["id"] = i
        rec["parent_id"] = ids[id(parent)] if parent is not None else None
        rec["depth"] = depth
        rec["attrs"] = _json_safe(rec["attrs"])
        lines.append(json.dumps(rec))
    return "\n".join(lines) + ("\n" if lines else "")


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    with open(path, "w") as f:
        f.write(to_chrome_trace_json(tracer))


def write_ndjson(tracer: Tracer, path: str) -> None:
    with open(path, "w") as f:
        f.write(to_ndjson(tracer))
