"""Lightweight span tracer for runs on the simulated substrate.

A trace is a tree of :class:`Span` objects following the hierarchy

    run > phase > round > kernel

Spans carry a name, a kind, free-form attributes, *wall* time (host
``perf_counter``) and — when a modeled clock is bound — *modeled* time
on the simulated device, so exported traces line up with the cost
model rather than with Python's execution speed.

Tracing is strictly opt-in and zero-overhead by default: every traced
code path holds a :data:`NULL_TRACER` whose methods are no-ops, and
the hot :meth:`~repro.gpusim.costmodel.Device.launch` path guards on
``tracer.enabled`` so a disabled run performs no extra work at all.
Enabling a tracer never changes algorithm behaviour — it only records
what already happened.

Usage::

    from repro import ecl_mst
    from repro.obs import Tracer

    tracer = Tracer()
    result = ecl_mst(graph, tracer=tracer)
    root = tracer.roots[0]              # the "run" span
    for span, depth, parent in tracer.walk():
        print("  " * depth, span.name, span.modeled_seconds)
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "host_hotspots"]


@dataclass
class Span:
    """One timed region of a run.

    ``modeled_start``/``modeled_end`` are seconds on the simulated
    device clock (``None`` when no modeled clock was bound); wall times
    are host ``perf_counter`` seconds.
    """

    name: str
    kind: str = "span"
    attrs: dict = field(default_factory=dict)
    wall_start: float = 0.0
    wall_end: float | None = None
    modeled_start: float | None = None
    modeled_end: float | None = None
    children: list["Span"] = field(default_factory=list)
    # Per-tracer correlation ID (1-based creation order; 0 = unassigned).
    # Structured events reference this so an NDJSON event log can be
    # joined against the exported trace.
    id: int = 0

    @property
    def wall_seconds(self) -> float:
        if self.wall_end is None:
            return 0.0
        return self.wall_end - self.wall_start

    @property
    def modeled_seconds(self) -> float | None:
        if self.modeled_start is None or self.modeled_end is None:
            return None
        return self.modeled_end - self.modeled_start

    def annotate(self, **attrs) -> None:
        """Attach (or overwrite) attributes on this span."""
        self.attrs.update(attrs)

    def walk(
        self, depth: int = 0, parent: "Span | None" = None
    ) -> Iterator[tuple["Span", int, "Span | None"]]:
        """Depth-first ``(span, depth, parent)`` traversal."""
        yield self, depth, parent
        for child in self.children:
            yield from child.walk(depth + 1, self)

    def to_dict(self) -> dict:
        """JSON-friendly representation (children flattened out)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "id": self.id,
            "wall_start": self.wall_start,
            "wall_seconds": self.wall_seconds,
            "modeled_start": self.modeled_start,
            "modeled_seconds": self.modeled_seconds,
            "attrs": dict(self.attrs),
            "num_children": len(self.children),
        }


class _NullSpanContext:
    """Reusable no-op context manager mimicking a span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """The disabled tracer: every operation is a cheap no-op.

    Shared as the :data:`NULL_TRACER` singleton so traced code can call
    tracer methods unconditionally; hot paths may additionally guard on
    ``tracer.enabled`` to skip building arguments.
    """

    enabled = False

    def span(self, name: str, kind: str = "span", **attrs):
        return _NULL_SPAN

    def annotate(self, **attrs) -> None:
        pass

    def kernel(self, counters, modeled_start: float | None = None) -> None:
        pass

    def set_modeled_clock(self, clock) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """Collects a forest of nested spans from one or more runs.

    Parameters
    ----------
    modeled_clock:
        Optional zero-argument callable returning the current modeled
        time in seconds.  Devices bind their own accumulated-time
        clock automatically when the tracer is attached, so callers
        rarely need to pass one.
    """

    enabled = True

    def __init__(self, modeled_clock: Callable[[], float] | None = None) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._clock = modeled_clock
        self._next_id = 0

    def _assign_id(self, sp: Span) -> None:
        self._next_id += 1
        sp.id = self._next_id

    # ------------------------------------------------------------------
    # Clock plumbing
    # ------------------------------------------------------------------
    def set_modeled_clock(self, clock: Callable[[], float] | None) -> None:
        """Bind the simulated-device clock used for modeled timestamps."""
        self._clock = clock

    def _modeled_now(self) -> float | None:
        return self._clock() if self._clock is not None else None

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, kind: str = "span", **attrs):
        """Open a nested span for the duration of the ``with`` block."""
        sp = Span(
            name=name,
            kind=kind,
            attrs=dict(attrs),
            wall_start=time.perf_counter(),
            modeled_start=self._modeled_now(),
        )
        self._assign_id(sp)
        if self._stack:
            self._stack[-1].children.append(sp)
        else:
            self.roots.append(sp)
        self._stack.append(sp)
        try:
            yield sp
        finally:
            self._stack.pop()
            sp.wall_end = time.perf_counter()
            sp.modeled_end = self._modeled_now()

    def annotate(self, **attrs) -> None:
        """Attach attributes to the innermost open span (if any)."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    def kernel(self, counters, modeled_start: float | None = None) -> Span:
        """Record one simulated kernel launch as a leaf span.

        ``counters`` is the launch's
        :class:`~repro.gpusim.counters.KernelCounters`; the span's
        modeled interval is ``[modeled_start, modeled_start +
        counters.modeled_seconds]`` on the device clock.
        """
        now = time.perf_counter()
        sp = Span(
            name=counters.name,
            kind="kernel",
            wall_start=now,
            wall_end=now,
            modeled_start=modeled_start,
            modeled_end=(
                None
                if modeled_start is None
                else modeled_start + counters.modeled_seconds
            ),
            attrs={
                "items": counters.items,
                "cycles": counters.cycles,
                "bytes": counters.bytes,
                "atomics": counters.atomics,
                "atomics_skipped": counters.atomics_skipped,
                "find_jumps": counters.find_jumps,
                "modeled_seconds": counters.modeled_seconds,
            },
        )
        self._assign_id(sp)
        if self._stack:
            self._stack[-1].children.append(sp)
        else:
            self.roots.append(sp)
        return sp

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def walk(self) -> Iterator[tuple[Span, int, Span | None]]:
        """Depth-first ``(span, depth, parent)`` over every root."""
        for root in self.roots:
            yield from root.walk()

    def spans(self, kind: str | None = None) -> list[Span]:
        """All spans in depth-first order, optionally filtered by kind."""
        out = [sp for sp, _, _ in self.walk()]
        if kind is not None:
            out = [sp for sp in out if sp.kind == kind]
        return out

    def clear(self) -> None:
        self.roots = []
        self._stack = []
        self._next_id = 0


def host_hotspots(tracer, top: int | None = 10) -> list[dict]:
    """The simulator's own Python hot spots: *self* wall-clock per span.

    Self time is a span's wall duration minus its children's — kernel
    spans are instantaneous on the host, so the NumPy work of a round
    lands on the round span itself, and the load/build/verify host
    spans carry their own cost.  Rounds are folded into one ``round *``
    row (they share a code path; hundreds of per-round rows would bury
    the signal).  Returns the ``top`` heaviest rows as dicts with
    ``name``/``kind``/``count``/``wall_seconds``, hottest first.
    """
    agg: dict[tuple[str, str], list] = {}
    for sp, _depth, _parent in tracer.walk():
        child_wall = sum(c.wall_seconds for c in sp.children)
        self_seconds = max(0.0, sp.wall_seconds - child_wall)
        name = "round *" if sp.kind == "round" else sp.name
        row = agg.setdefault((name, sp.kind), [0, 0.0])
        row[0] += 1
        row[1] += self_seconds
    rows = [
        {"name": name, "kind": kind, "count": n, "wall_seconds": secs}
        for (name, kind), (n, secs) in agg.items()
    ]
    rows.sort(key=lambda r: -r["wall_seconds"])
    return rows if top is None else rows[:top]
