"""Structured, leveled event log with correlation IDs.

Where :mod:`~repro.obs.trace` answers "where did the time go" after a
run, the event log answers "what is the system doing *right now*": the
service engine emits enqueue/dedup/cache-hit/timeout events, the
resilience ladder emits fault/violation/recovery events, the serving
policy emits shed/retry/degrade/quarantine decisions plus the
edge-triggered ``breaker.open``/``breaker.closed`` transitions, and
the core solver emits phase/round transitions — all as flat,
JSON-renderable
:class:`Event` records that a live tail (or a post-hoc join against
the span trace) can follow.

Correlation is hierarchical: a service **query ID** binds every event
of one query, the solver's **run ID** binds every event of one
``ecl_mst`` invocation, and a **span ID** (the active
:class:`~repro.obs.trace.Span`'s per-tracer ID) ties an event to the
exact trace region it happened in, so an NDJSON event log joins
against its exported trace.

Zero-overhead contract: every emitting code path holds the
:data:`NULL_EVENTS` singleton by default, whose methods are no-ops and
whose ``enabled`` flag lets hot loops skip building event fields
entirely.  Enabling events never changes solver results or modeled
counters — events only record what already happened.

Sinks:

* :class:`NDJSONSink`  — one ``json.dumps`` line per event (machine tail)
* :class:`ConsoleSink` — aligned human-readable lines (stderr tail)
* :class:`ListSink`    — in-memory capture (tests, the admin surface)

The process-global log (:func:`configure_events` /
:func:`get_event_log`) backs the ``repro-mst --log-level/--log-json``
CLI flags; library callers can also pass an explicit log down the
stack, which always wins over the global.
"""

from __future__ import annotations

import io
import json
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, TextIO

__all__ = [
    "LEVELS",
    "Event",
    "EventLog",
    "BoundEventLog",
    "NullEventLog",
    "NULL_EVENTS",
    "NDJSONSink",
    "ConsoleSink",
    "ListSink",
    "configure_events",
    "format_event_line",
    "get_event_log",
    "reset_events",
    "new_run_id",
]

# Severity ladder (syslog-style subset).  ``off`` is a pseudo-level
# above everything: a log configured at ``off`` drops every event.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "off": 99}


@dataclass
class Event:
    """One structured event: a name, a level, a wall timestamp, and
    flat JSON-scalar fields (correlation IDs included)."""

    name: str
    level: str = "info"
    ts: float = 0.0  # wall clock, time.time() seconds
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        d = {"ts": self.ts, "level": self.level, "event": self.name}
        d.update(self.fields)
        return d

    def to_json_line(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, default=str)


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class NDJSONSink:
    """Writes one JSON line per event to a text stream."""

    def __init__(self, stream: TextIO) -> None:
        self.stream = stream
        self._lock = threading.Lock()

    def emit(self, event: Event) -> None:
        line = event.to_json_line()
        with self._lock:
            self.stream.write(line + "\n")
            self.stream.flush()


def format_event_line(
    ts: float, level: str, name: str, fields: dict
) -> str:
    """One human-readable event line (``HH:MM:SS.mmm LEVEL name k=v``).

    Shared by :class:`ConsoleSink` and the flight recorder's postmortem
    timeline, so a live tail and an incident report read identically.
    """
    clock = time.strftime("%H:%M:%S", time.localtime(ts))
    millis = int((ts % 1) * 1000)
    kv = " ".join(f"{k}={v}" for k, v in fields.items())
    return (
        f"{clock}.{millis:03d} {level.upper():7s} {name:24s} {kv}".rstrip()
    )


class ConsoleSink:
    """Human-readable lines (``HH:MM:SS.mmm LEVEL name k=v ...``)."""

    def __init__(self, stream: TextIO | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()

    def emit(self, event: Event) -> None:
        line = format_event_line(
            event.ts, event.level, event.name, event.fields
        )
        with self._lock:
            self.stream.write(line + "\n")
            self.stream.flush()


class ListSink:
    """Captures events in memory (tests and the admin ring buffer)."""

    def __init__(self, maxlen: int | None = None) -> None:
        self.events: list[Event] = []
        self.maxlen = maxlen
        self._lock = threading.Lock()

    def emit(self, event: Event) -> None:
        with self._lock:
            self.events.append(event)
            if self.maxlen is not None and len(self.events) > self.maxlen:
                del self.events[: len(self.events) - self.maxlen]


# ----------------------------------------------------------------------
# Loggers
# ----------------------------------------------------------------------
class NullEventLog:
    """The disabled log: every operation is a cheap no-op.

    Shared as the :data:`NULL_EVENTS` singleton so emitting code can
    call unconditionally; hot paths may additionally guard on
    ``events.enabled`` to avoid building field dicts.
    """

    enabled = False

    def emit(self, name: str, level: str = "info", **fields) -> None:
        pass

    def bind(self, **fields) -> "NullEventLog":
        return self

    def would_emit(self, level: str) -> bool:
        return False


NULL_EVENTS = NullEventLog()


class EventLog:
    """A leveled event log fanning out to one or more sinks.

    ``level`` is the minimum severity kept; anything quieter is
    dropped before the sinks see it.  ``clock`` defaults to
    ``time.time`` and exists for deterministic tests.
    """

    enabled = True

    def __init__(
        self,
        *,
        level: str = "info",
        sinks: tuple | list = (),
        clock: Callable[[], float] | None = None,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(
                f"unknown level {level!r}; choose from {', '.join(LEVELS)}"
            )
        self.level = level
        self._threshold = LEVELS[level]
        self.sinks = list(sinks)
        self._clock = clock or time.time

    def would_emit(self, level: str) -> bool:
        return LEVELS.get(level, 0) >= self._threshold

    def emit(self, name: str, level: str = "info", **fields) -> None:
        if LEVELS.get(level, 0) < self._threshold:
            return
        event = Event(name=name, level=level, ts=self._clock(), fields=fields)
        for sink in self.sinks:
            sink.emit(event)

    def bind(self, **fields) -> "BoundEventLog":
        """A child log whose events all carry ``fields`` (correlation
        IDs such as ``query=...`` / ``run=...``)."""
        return BoundEventLog(self, dict(fields))


class BoundEventLog:
    """An :class:`EventLog` view with correlation fields baked in."""

    enabled = True

    def __init__(self, parent, bound: dict) -> None:
        self._parent = parent
        self.bound = bound

    def would_emit(self, level: str) -> bool:
        return self._parent.would_emit(level)

    def emit(self, name: str, level: str = "info", **fields) -> None:
        self._parent.emit(name, level, **{**self.bound, **fields})

    def bind(self, **fields) -> "BoundEventLog":
        return BoundEventLog(self._parent, {**self.bound, **fields})


# ----------------------------------------------------------------------
# Process-global log (CLI flags) and run-ID allocation
# ----------------------------------------------------------------------
_global_log: EventLog | NullEventLog = NULL_EVENTS
_global_file: io.TextIOBase | None = None
_run_counter = 0
_run_lock = threading.Lock()


def new_run_id() -> str:
    """Monotonic per-process run correlation ID (``run-000001`` ...)."""
    global _run_counter
    with _run_lock:
        _run_counter += 1
        return f"run-{_run_counter:06d}"


def configure_events(
    *,
    level: str = "info",
    json_path: str | None = None,
    console: bool | None = None,
    extra_sinks: tuple | list = (),
) -> EventLog | NullEventLog:
    """Install the process-global event log (the CLI entry point).

    ``json_path`` adds an :class:`NDJSONSink` on that file (``"-"`` =
    stdout); ``console`` adds a :class:`ConsoleSink` on stderr and
    defaults to on exactly when no JSON sink was requested.  A level
    of ``"off"`` with no sinks resets to :data:`NULL_EVENTS`.
    """
    global _global_log, _global_file
    reset_events()
    sinks: list = list(extra_sinks)
    if json_path:
        if json_path == "-":
            sinks.append(NDJSONSink(sys.stdout))
        else:
            _global_file = open(json_path, "w")
            sinks.append(NDJSONSink(_global_file))
    if console is None:
        console = not json_path
    if console and level != "off":
        sinks.append(ConsoleSink())
    if level == "off" or not sinks:
        return _global_log
    _global_log = EventLog(level=level, sinks=sinks)
    return _global_log


def get_event_log() -> EventLog | NullEventLog:
    """The process-global log (``NULL_EVENTS`` unless configured)."""
    return _global_log


def reset_events() -> None:
    """Drop the global log back to :data:`NULL_EVENTS` (closing any
    file sink it owned)."""
    global _global_log, _global_file
    _global_log = NULL_EVENTS
    if _global_file is not None:
        try:
            _global_file.close()
        finally:
            _global_file = None
