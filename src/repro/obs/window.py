"""Sliding-window aggregation for live service metrics.

The lifetime counters in :class:`~repro.obs.metrics.MetricsRegistry`
are the right unit of exchange for run profiles (deterministic,
diffable), but a *serving* system needs recency: ``service.qps`` and
the latency percentiles must reflect the last minute of traffic, not
the whole process lifetime.  This module provides the two windowed
primitives the engine uses:

* :class:`SlidingCounter` — a bucketed ring covering ``window_s``
  seconds; ``total()``/``rate()`` cover only the still-live buckets.
* :class:`SlidingHistogram` — timestamped observations pruned to the
  window; quantiles over what remains.

Both accept explicit per-observation timestamps, tolerate
*out-of-order* arrivals (late observations land in their own
time slot as long as they are still inside the window; anything older
is counted in ``dropped`` rather than silently mis-binned), and are
thread-safe — worker threads record, the admin thread reads.

Clocks are injectable (``clock=...``, defaulting to
``time.monotonic``) so window rollover is exactly testable.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable

__all__ = ["SlidingCounter", "SlidingHistogram"]


class SlidingCounter:
    """Bucketed sliding-window counter.

    The window is split into ``buckets`` equal slices; incrementing
    writes into the slice owning the observation's timestamp, and
    reading sums the slices still inside ``[now - window_s, now]``.
    Resolution is therefore ``window_s / buckets`` — the default 60
    buckets over 60 s gives per-second granularity.
    """

    def __init__(
        self,
        window_s: float = 60.0,
        *,
        buckets: int = 60,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if buckets < 1:
            raise ValueError("buckets must be >= 1")
        self.window_s = float(window_s)
        self.buckets = buckets
        self._width = self.window_s / buckets
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        # slot index (floor(ts / width)) -> accumulated value
        self._slots: dict[int, float] = {}
        self.dropped = 0  # observations older than the window at arrival

    def _slot(self, ts: float) -> int:
        return int(math.floor(ts / self._width))

    def _prune(self, now: float) -> None:
        horizon = self._slot(now - self.window_s)
        if len(self._slots) > 2 * self.buckets:
            stale = [s for s in self._slots if s <= horizon]
            for s in stale:
                del self._slots[s]

    def inc(self, amount: float = 1.0, *, ts: float | None = None) -> None:
        now = self._clock()
        ts = now if ts is None else ts
        with self._lock:
            if ts <= now - self.window_s:
                self.dropped += 1
                return
            self._slots[self._slot(ts)] = (
                self._slots.get(self._slot(ts), 0.0) + amount
            )
            self._prune(now)

    def total(self, *, now: float | None = None) -> float:
        """Sum of observations inside the window ending at ``now``."""
        now = self._clock() if now is None else now
        horizon = self._slot(now - self.window_s)
        with self._lock:
            return sum(v for s, v in self._slots.items() if s > horizon)

    def rate(self, *, now: float | None = None) -> float:
        """Observations per second over the window."""
        return self.total(now=now) / self.window_s


class SlidingHistogram:
    """Timestamped observations pruned to a sliding window.

    ``quantile``/``count``/``mean`` summarize only the observations
    whose timestamp is inside ``[now - window_s, now]``.  Like
    :meth:`~repro.obs.metrics.Histogram.quantile`, an empty window
    yields the documented ``0.0`` sentinel rather than NaN.
    """

    def __init__(
        self,
        window_s: float = 60.0,
        *,
        max_samples: int = 100_000,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = float(window_s)
        self.max_samples = max_samples
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        # (ts, value, exemplar) — exemplar is an opaque correlation ID
        # (the engine passes query IDs) or None.
        self._samples: list[tuple[float, float, object]] = []
        self.dropped = 0

    def observe(
        self, value: float, *, ts: float | None = None, exemplar=None
    ) -> None:
        now = self._clock()
        ts = now if ts is None else ts
        with self._lock:
            if ts <= now - self.window_s:
                self.dropped += 1
                return
            self._samples.append((ts, float(value), exemplar))
            if len(self._samples) > self.max_samples:
                self._prune_locked(now)
                # Still over budget inside the window: shed oldest.
                if len(self._samples) > self.max_samples:
                    self._samples.sort(key=lambda s: s[0])
                    excess = len(self._samples) - self.max_samples
                    del self._samples[:excess]
                    self.dropped += excess

    def _prune_locked(self, now: float) -> None:
        cutoff = now - self.window_s
        self._samples = [s for s in self._samples if s[0] > cutoff]

    def _live_values(self, now: float | None) -> list[float]:
        now = self._clock() if now is None else now
        with self._lock:
            self._prune_locked(now)
            return [v for _, v, _ in self._samples]

    def max_exemplar(self, *, now: float | None = None):
        """The exemplar attached to the window's largest observation
        (``None`` when the window is empty or untagged) — the query to
        pull up when the p95 looks wrong."""
        now = self._clock() if now is None else now
        with self._lock:
            self._prune_locked(now)
            live = [s for s in self._samples if s[2] is not None]
        if not live:
            return None
        return max(live, key=lambda s: s[1])[2]

    def count(self, *, now: float | None = None) -> int:
        return len(self._live_values(now))

    def mean(self, *, now: float | None = None) -> float:
        xs = self._live_values(now)
        return sum(xs) / len(xs) if xs else 0.0

    def quantile(self, q: float, *, now: float | None = None) -> float:
        """Nearest-rank quantile over the live window.

        ``q`` must lie in [0, 1].  Returns the ``0.0`` sentinel for an
        empty window; a single observation answers every quantile.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        xs = sorted(self._live_values(now))
        if not xs:
            return 0.0
        idx = min(len(xs) - 1, max(0, math.ceil(q * len(xs)) - 1))
        return xs[idx]

    def summary(self, *, now: float | None = None) -> dict[str, float]:
        """count/mean/p50/p95/max over the live window.

        When the max observation carries an exemplar, a
        ``max_exemplar`` key rides along; the empty-window sentinel
        shape is unchanged.
        """
        now = self._clock() if now is None else now
        xs = sorted(self._live_values(now))
        if not xs:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}

        def q(frac: float) -> float:
            return xs[min(len(xs) - 1, max(0, math.ceil(frac * len(xs)) - 1))]

        out = {
            "count": len(xs),
            "mean": sum(xs) / len(xs),
            "p50": q(0.5),
            "p95": q(0.95),
            "max": xs[-1],
        }
        exemplar = self.max_exemplar(now=now)
        if exemplar is not None:
            out["max_exemplar"] = exemplar
        return out
