"""Named metrics registry + the standard per-run metric set.

A :class:`MetricsRegistry` holds counters, gauges and histograms under
flat dotted names and renders to one flat, comparable dict — the unit
of exchange for run profiles and profile diffs.  The registry is
deliberately small: metrics here are *descriptive* (derived from the
measured :class:`~repro.gpusim.counters.KernelCounters`), never a
second source of truth.

:func:`collect_result_metrics` maps one
:class:`~repro.core.result.MstResult` onto the standard metric set:
round counts, worklist shrink rate, atomics executed/elided, the
find-jump depth distribution, bytes per edge, and per-kernel modeled
seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collect_result_metrics",
    "metric_direction",
]

# ----------------------------------------------------------------------
# Metric directions: what counts as a *regression* when a metric moves.
# ``lower`` (the default) treats growth as a regression — costs, counts
# of work, modeled seconds.  ``higher`` treats shrinkage as a regression
# — savings such as elided atomics or throughput.  ``exact`` metrics
# must not move at all (correctness outputs).  ``info`` metrics are
# descriptive and never gate (e.g. the sampled filter threshold).
# ----------------------------------------------------------------------
_HIGHER_IS_BETTER = {
    "atomics.elided",
    "atomics.elision_rate",
    "filter.edges_elided",
    "run.throughput_meps",
    "service.cache_hit_ratio",
}
_EXACT = {
    "run.total_weight",
    "run.mst_edges",
    "filter.active",
}
_INFO = {
    "filter.threshold",
    # Service occupancy/volume gauges describe load, not performance.
    "service.queue_depth",
    "service.queries",
    "service.graph_cache_size",
    "service.result_cache_size",
    # Wall-clock latency is host noise: informative for operators,
    # never a deterministic-gate signal (the perf gate compares modeled
    # metrics exactly; a CI runner's scheduling jitter must not fail
    # it).  Covers the windowed p50/p95 gauges and every summary key
    # the service.latency histogram renders (.count/.min/.mean/...).
    "service.p50_latency",
    "service.p95_latency",
    "service.qps",
    # Policy decisions are load-dependent serving behavior, not solver
    # performance: shed/retry/breaker counts describe the traffic the
    # service faced, so they inform operators and never gate diffs.
    "resilience.policy.admitted",
    "resilience.policy.shed",
    "resilience.policy.retries",
    "resilience.policy.breaker_fastfail",
    "resilience.policy.degraded",
    "resilience.policy.quarantined",
    # Sharded-run device count is configuration, not performance (cut
    # size and comms share keep the default lower-is-better direction:
    # a partitioner change that grows them is a real regression).
    "shard.devices",
}
# Flight-recorder ring occupancy and postmortem-bundle counts describe
# what the black box observed, never solver performance — operator
# info, exempt from ProfileDiff regression gating.
_INFO_PREFIXES = (
    "service.latency.",
    "resilience.policy.",
    "obs.recorder.",
    "service.postmortem.",
    # Per-device sharding breakdowns (vertices/edges per shard etc.)
    # describe the partition, never gate diffs; the aggregate costs
    # (shard.imbalance, shard.comms_*, shard.merge_seconds) keep the
    # default lower-is-better direction and *do* gate.
    "shard.device.",
)


def metric_direction(name: str) -> str:
    """``"lower"``, ``"higher"``, ``"exact"``, or ``"info"`` for a
    metric name (see the registry comment above)."""
    if name in _EXACT:
        return "exact"
    if name in _INFO or name.startswith(_INFO_PREFIXES):
        return "info"
    if name in _HIGHER_IS_BETTER:
        return "higher"
    return "lower"


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def as_dict(self) -> dict[str, float]:
        return {self.name: self.value}


@dataclass
class Gauge:
    """Point-in-time value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def as_dict(self) -> dict[str, float]:
        return {self.name: self.value}


@dataclass
class Histogram:
    """Sampled distribution, summarized as count/min/mean/max/quantiles."""

    name: str
    samples: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile of the recorded samples.

        ``q`` must lie in ``[0, 1]`` (anything else — including NaN —
        raises ``ValueError`` rather than mis-indexing).  An empty
        histogram returns the documented ``0.0`` sentinel so metric
        dicts stay numeric; a single observation answers every
        quantile with that observation.
        """
        if not 0.0 <= q <= 1.0:  # NaN fails this comparison too
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if not self.samples:
            return 0.0
        xs = sorted(self.samples)
        idx = min(len(xs) - 1, max(0, math.ceil(q * len(xs)) - 1))
        return xs[idx]

    def as_dict(self) -> dict[str, float]:
        n = len(self.samples)
        if n == 0:
            return {f"{self.name}.count": 0}
        return {
            f"{self.name}.count": n,
            f"{self.name}.min": min(self.samples),
            f"{self.name}.mean": sum(self.samples) / n,
            f"{self.name}.p50": self.quantile(0.5),
            f"{self.name}.p90": self.quantile(0.9),
            f"{self.name}.max": max(self.samples),
        }


class MetricsRegistry:
    """Flat namespace of named metrics.

    Metric families are created on first use (``counter(name)`` etc.)
    and re-registering a name with a different type is an error — the
    registry guarantees one meaning per name.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def as_dict(self) -> dict[str, float]:
        """One flat ``{dotted.name: scalar}`` dict, sorted by name."""
        out: dict[str, float] = {}
        for name in self.names():
            out.update(self._metrics[name].as_dict())
        return out


def collect_result_metrics(result) -> dict[str, float]:
    """The standard flat metric dict for one :class:`MstResult`.

    Works for every runner (ECL-MST and all baselines) since it reads
    only the shared result/counters surface; worklist metrics appear
    when the run recorded per-round stats.
    """
    reg = MetricsRegistry()
    counters = result.counters
    g = result.graph

    reg.gauge("run.rounds").set(result.rounds)
    reg.gauge("run.mst_edges").set(result.num_mst_edges)
    reg.gauge("run.total_weight").set(result.total_weight)
    reg.gauge("run.modeled_seconds").set(result.modeled_seconds)
    reg.gauge("run.memcpy_seconds").set(result.memcpy_seconds)
    if result.modeled_seconds > 0:
        reg.gauge("run.throughput_meps").set(
            g.num_directed_edges / result.modeled_seconds / 1e6
        )

    reg.counter("kernel.launches").inc(counters.num_launches)
    reg.counter("kernel.items").inc(counters.total("items"))
    reg.counter("kernel.cycles").inc(counters.total("cycles"))
    reg.counter("kernel.bytes").inc(counters.total("bytes"))
    atomics = counters.total("atomics")
    elided = counters.total("atomics_skipped")
    reg.counter("atomics.executed").inc(atomics)
    reg.counter("atomics.elided").inc(elided)
    if atomics + elided > 0:
        reg.gauge("atomics.elision_rate").set(elided / (atomics + elided))
    reg.counter("dsu.find_jumps").inc(counters.total("find_jumps"))
    if g.num_directed_edges > 0:
        reg.gauge("memory.bytes_per_edge").set(
            counters.total("bytes") / g.num_directed_edges
        )

    # Find-jump depth distribution: jumps per worklist item, sampled
    # per launch that performed finds (k1/k2 and phase-2 populate).
    depth = reg.histogram("dsu.find_jump_depth")
    for k in counters.kernels:
        if k.find_jumps > 0 and k.items > 0:
            depth.observe(k.find_jumps / k.items)

    # Worklist shrink rate: the per-round survivor fraction (the
    # geometric-decay property that bounds rounds at O(log |V|)).
    stats = getattr(result, "round_stats", None) or []
    shrink = reg.histogram("worklist.shrink_rate")
    for rs in stats:
        entries = rs["entries"] if not hasattr(rs, "entries") else rs.entries
        survivors = (
            rs["survivors"] if not hasattr(rs, "survivors") else rs.survivors
        )
        if entries > 0:
            shrink.observe(survivors / entries)

    # Filtering effectiveness (the §5.4 optimization): how many
    # undirected edges the sampled threshold deferred past phase 1.
    # Higher-is-better in diffs — losing elided edges is a regression.
    plan = (result.extra or {}).get("filter_plan")
    if plan is not None and getattr(plan, "active", False):
        reg.gauge("filter.active").set(1)
        reg.gauge("filter.threshold").set(plan.threshold)
        deferred = int((g.weights >= plan.threshold).sum()) // 2
        reg.counter("filter.edges_elided").inc(deferred)

    # Resilience ladder counters, present only when the run was guarded
    # (result.extra["resilience"] set by the driver).
    res = (result.extra or {}).get("resilience")
    if res:
        for key in (
            "checks_run",
            "invariant_violations",
            "device_faults",
            "rollbacks",
            "retries",
            "phase_restarts",
            "verify_detections",
            "fallbacks",
            "detected",
        ):
            reg.counter(f"resilience.{key}").inc(res.get(key, 0))
        reg.gauge("resilience.backoff_seconds").set(
            res.get("backoff_seconds", 0.0)
        )
    fi = (result.extra or {}).get("fault_injection")
    if fi:
        reg.counter("faults.planned").inc(fi.get("planned", 0))
        reg.counter("faults.injected").inc(fi.get("injected", 0))

    # Sharded execution breakdown (present only for shards > 1 runs):
    # partition quality, stage times, and per-device shares.
    sh = (result.extra or {}).get("shard")
    if sh:
        reg.gauge("shard.devices").set(sh.get("shards", 0))
        reg.gauge("shard.imbalance").set(sh.get("imbalance", 0.0))
        reg.gauge("shard.cut_edges").set(sh.get("cut_edges", 0))
        reg.gauge("shard.comms_seconds").set(sh.get("comms_seconds", 0.0))
        reg.gauge("shard.merge_seconds").set(sh.get("merge_seconds", 0.0))
        reg.gauge("shard.comms_time_share").set(
            sh.get("comms_time_share", 0.0)
        )
        for dev in sh.get("devices", ()):
            i = dev.get("shard", 0)
            for field_name in (
                "vertices",
                "edges",
                "local_seconds",
                "exclusive_seconds",
                "boundary_edges_sent",
            ):
                reg.gauge(f"shard.device.{i}.{field_name}").set(
                    dev.get(field_name, 0)
                )

    out = reg.as_dict()
    # Per-kernel modeled seconds, flat under "seconds.<kernel>".
    for name, secs in sorted(counters.seconds_by_kernel().items()):
        out[f"seconds.{name}"] = secs
    return out
