"""Declarative service-level objectives with windowed burn rates.

An :class:`SLOSpec` names an objective over the service's recent
traffic; an :class:`SLOTracker` feeds one record per served query into
sliding windows (:mod:`~repro.obs.window`) and evaluates each spec
into an :class:`SLOStatus` carrying the measured SLI, the fraction of
error budget consumed, and the **burn rate** — the standard ratio

    burn = (1 - SLI) / (1 - objective)

so ``burn == 1`` means the service is spending its error budget
exactly as fast as the objective allows, and ``burn > alert_burn``
raises an ``slo.burn`` event (see :mod:`~repro.obs.events`) on the
transition into the alerting state (and an ``slo.recovered`` event on
the way back out).

Spec kinds:

* ``availability`` — SLI is the fraction of queries in the window that
  completed ``ok``.
* ``latency`` — SLI is the fraction of queries served within
  ``threshold_s`` seconds.
* ``zero`` — a hard objective on a forbidden-event count (the
  resilience guarantee *escaped faults = 0*): SLI is 1.0 while the
  window holds zero such events and 0.0 otherwise, so a single escape
  saturates the burn rate.
* ``shed`` — SLI is the fraction of queries in the window that were
  *not* load-shed (admission control / open breaker).  Shedding is
  deliberate, but sustained shedding means the service is turning
  users away — the objective bounds how much of that is acceptable.

The default spec set (:data:`DEFAULT_SLOS`) encodes the repo's serving
promises: 99% availability, 95% of queries under one second, zero
escaped faults, and at most 1% of queries shed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .events import NULL_EVENTS
from .window import SlidingCounter

__all__ = ["SLOSpec", "SLOStatus", "SLOTracker", "DEFAULT_SLOS"]

_KINDS = ("availability", "latency", "zero", "shed")


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective (see module docstring for kinds)."""

    name: str
    kind: str
    objective: float = 0.99  # target fraction of good events
    threshold_s: float | None = None  # latency kind: the "good" bound
    alert_burn: float = 1.0  # burn rate that starts alerting

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r}; choose from {', '.join(_KINDS)}"
            )
        if not 0.0 < self.objective <= 1.0:
            raise ValueError("objective must be in (0, 1]")
        if self.kind == "latency" and (
            self.threshold_s is None or self.threshold_s <= 0
        ):
            raise ValueError("latency SLOs need a positive threshold_s")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "threshold_s": self.threshold_s,
            "alert_burn": self.alert_burn,
        }


@dataclass
class SLOStatus:
    """One spec evaluated against the current window.

    ``exemplar`` is the ID of the most recent query that spent this
    spec's error budget (failed / slow / escaped / shed) — the first
    thing to pull out of the flight recorder when the SLO burns.
    """

    spec: SLOSpec
    sli: float
    good: float
    total: float
    burn_rate: float
    alerting: bool
    exemplar: str | None = None

    @property
    def healthy(self) -> bool:
        return not self.alerting

    def to_dict(self) -> dict:
        return {
            "name": self.spec.name,
            "kind": self.spec.kind,
            "objective": self.spec.objective,
            "sli": self.sli,
            "good": self.good,
            "total": self.total,
            "burn_rate": self.burn_rate,
            "alerting": self.alerting,
            "exemplar": self.exemplar,
        }


DEFAULT_SLOS: tuple[SLOSpec, ...] = (
    SLOSpec(name="availability", kind="availability", objective=0.99),
    SLOSpec(
        name="latency-1s", kind="latency", objective=0.95, threshold_s=1.0
    ),
    # The resilience headline: silent corruption never ships.
    SLOSpec(name="escaped-faults", kind="zero", objective=1.0),
    # The overload headline: at most 1% of recent queries load-shed.
    SLOSpec(name="shed-rate", kind="shed", objective=0.99),
)


class SLOTracker:
    """Feeds served-query records into windows and evaluates the specs.

    ``events`` receives ``slo.burn`` / ``slo.recovered`` transitions;
    the default :data:`~repro.obs.events.NULL_EVENTS` keeps evaluation
    silent.  ``clock`` must match the one used for the timestamps
    passed to :meth:`record` (the engine uses ``time.monotonic``).
    """

    def __init__(
        self,
        specs: tuple[SLOSpec, ...] = DEFAULT_SLOS,
        *,
        window_s: float = 60.0,
        events=NULL_EVENTS,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.specs = tuple(specs)
        self.window_s = float(window_s)
        self.events = events
        self._total = SlidingCounter(window_s, clock=clock)
        self._ok = SlidingCounter(window_s, clock=clock)
        self._fast = SlidingCounter(window_s, clock=clock)
        self._escaped = SlidingCounter(window_s, clock=clock)
        self._shed = SlidingCounter(window_s, clock=clock)
        self._alerting: dict[str, bool] = {s.name: False for s in self.specs}
        # Last budget-spending query ID per spec kind (exemplars).
        self._exemplars: dict[str, str] = {}
        # One latency bound serves every latency spec; multiple bounds
        # would need one counter per spec — keep the common case cheap.
        self._latency_bounds = sorted(
            {s.threshold_s for s in self.specs if s.kind == "latency"}
        )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        *,
        ok: bool,
        latency_s: float,
        escaped: int = 0,
        shed: bool = False,
        ts: float | None = None,
        query_id: str | None = None,
    ) -> None:
        """One served query: success flag, latency, escaped-fault count,
        and whether the service load-shed it instead of running it.
        ``query_id`` tags budget-spending records as the per-kind
        exemplar surfaced in :class:`SLOStatus` and burn events."""
        self._total.inc(ts=ts)
        if ok:
            self._ok.inc(ts=ts)
        elif query_id:
            self._exemplars["availability"] = query_id
        fast = False
        for bound in self._latency_bounds:
            if latency_s <= bound:
                self._fast.inc(ts=ts)
                fast = True
                break
        if self._latency_bounds and not fast and query_id:
            self._exemplars["latency"] = query_id
        if escaped:
            self._escaped.inc(escaped, ts=ts)
            if query_id:
                self._exemplars["zero"] = query_id
        if shed:
            self._shed.inc(ts=ts)
            if query_id:
                self._exemplars["shed"] = query_id

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _sli(self, spec: SLOSpec, now: float | None) -> tuple[float, float, float]:
        total = self._total.total(now=now)
        if spec.kind == "availability":
            good = self._ok.total(now=now)
        elif spec.kind == "latency":
            good = self._fast.total(now=now)
        elif spec.kind == "shed":
            good = total - self._shed.total(now=now)
        else:  # zero
            bad = self._escaped.total(now=now)
            return (1.0 if bad == 0 else 0.0), (0.0 if bad else 1.0), bad
        if total == 0:
            return 1.0, 0.0, 0.0  # an idle window burns no budget
        return good / total, good, total

    def evaluate(self, *, now: float | None = None) -> list[SLOStatus]:
        """Every spec's current status; emits burn-state transitions."""
        out = []
        for spec in self.specs:
            sli, good, total = self._sli(spec, now)
            budget = 1.0 - spec.objective
            if budget <= 0.0:  # exact objective (the "zero" kind)
                burn = 0.0 if sli >= 1.0 else float("inf")
            else:
                burn = (1.0 - sli) / budget
            exemplar = self._exemplars.get(spec.kind)
            alerting = burn > spec.alert_burn
            was = self._alerting[spec.name]
            if alerting != was:
                self._alerting[spec.name] = alerting
                fields = {
                    "slo": spec.name,
                    "kind": spec.kind,
                    "sli": round(sli, 6),
                    "burn_rate": burn if burn != float("inf") else "inf",
                    "objective": spec.objective,
                }
                if alerting and exemplar:
                    fields["exemplar"] = exemplar
                self.events.emit(
                    "slo.burn" if alerting else "slo.recovered",
                    level="error" if alerting else "info",
                    **fields,
                )
            out.append(
                SLOStatus(
                    spec=spec,
                    sli=sli,
                    good=good,
                    total=total,
                    burn_rate=burn,
                    alerting=alerting,
                    exemplar=exemplar if alerting else None,
                )
            )
        return out
