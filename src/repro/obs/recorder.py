"""Always-on flight recorder, postmortem bundles, and deterministic replay.

A serving process that dies with exit 4/5/6 — or quietly burns an SLO
— used to take its evidence with it.  This module is the black box:
the :class:`FlightRecorder` keeps cheap bounded ring buffers of what
just happened (recent events, per-query span summaries, query
outcomes, periodic windowed-metric snapshots), and on any failure
signal freezes them — plus the offending query's full reproduction key
— into a self-contained on-disk **postmortem bundle** that the
``repro-mst postmortem`` and ``repro-mst replay`` CLI verbs consume.

Failure signals (capture triggers):

* a typed ``error`` or ``timeout`` :class:`~repro.service.outcome.QueryOutcome`
  (fed through :meth:`FlightRecorder.observe_outcome`);
* an ``slo.burn``, ``breaker.open``, or ``invariant.violated`` event
  crossing the recorder's tee (see below);
* an unhandled exception in the serve path
  (:meth:`FlightRecorder.capture_crash`, called by ``repro-mst serve``).

**The tee.**  The recorder inserts itself into the service's event
flow as a :class:`TeeEventLog`: every event is appended to the event
ring *and* forwarded to whatever log the user configured (the
:data:`~repro.obs.events.NULL_EVENTS` default included).  The tee is
always enabled, so the ring retains debug-level detail even when the
user asked for silence — that is the point of a flight recorder —
while the zero-overhead contract survives where it matters: the
recorder never touches solver inputs, so results and modeled counters
stay bit-identical with the recorder on or off.

**Determinism.**  ECL-MST runs are a pure function of (graph
fingerprint, config hash, fault seed) under the simulated cost model,
so a bundle captured from a seeded-fault failure replays bit-exactly:
:func:`replay_bundle` re-executes the captured query standalone and
diffs status / exit code / error family — and the full success payload
(weight, MST digest, counters-derived metrics) when there is one —
against what was recorded.  Wall-clock timeouts are the documented
exception: scheduling is not part of the replay key.

Bundle files are single JSON documents (``PM_<stamp>_<seq>_<slug>.bundle``,
schema :data:`BUNDLE_SCHEMA`) pruned to ``RecorderConfig.bundle_limit``
per directory; per-(reason, spec) cooldowns keep a failure storm from
turning into a disk storm.  ``/debugz`` (admin server) and the
dashboard's incidents panel read the same :func:`recent_bundles`
listing.
"""

from __future__ import annotations

import json
import platform
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from ..errors import EXIT_REPLAY_DIVERGED, BundleError
from .events import format_event_line

__all__ = [
    "BUNDLE_SCHEMA",
    "TRIGGER_EVENTS",
    "FlightRecorder",
    "RecorderConfig",
    "ReplayReport",
    "TeeEventLog",
    "bundle_summary",
    "load_bundle",
    "recent_bundles",
    "render_postmortem",
    "replay_bundle",
]

BUNDLE_SCHEMA = "repro.obs.postmortem/v1"

# Event names whose appearance on the tee captures a bundle.
TRIGGER_EVENTS = ("slo.burn", "breaker.open", "invariant.violated")

# ``breaker.open`` is emitted while the breaker's own lock is held;
# capturing /statusz there would re-enter ``breaker_snapshots()`` on
# the same lock.  Those bundles skip the statusz block (the metrics
# and ring snapshots are lock-free reads and stay in).
_STATUS_UNSAFE_TRIGGERS = ("breaker.open",)

# Outcome statuses that trigger a capture in observe_outcome.
_FAILURE_STATUSES = ("error", "timeout")


@dataclass(frozen=True)
class RecorderConfig:
    """Flight-recorder sizing and capture-policy knobs.

    The defaults are deliberately small: four rings of a few hundred
    entries cost well under a megabyte and O(1) per observation, which
    is what lets the recorder default to *on*.
    """

    enabled: bool = True
    dir: str = "postmortems"
    events_capacity: int = 512
    outcomes_capacity: int = 256
    spans_capacity: int = 512
    snapshots_capacity: int = 64
    # Non-kernel spans kept per executed query (kernels collapse into
    # one summary entry — a single run can launch thousands).
    spans_per_query: int = 32
    snapshot_interval_s: float = 5.0
    # Per-(reason, spec) bundle cooldown: a failure storm on one spec
    # writes one bundle per window, and counts the rest as suppressed.
    bundle_cooldown_s: float = 30.0
    # On-disk retention: oldest bundles beyond this are pruned.
    bundle_limit: int = 16

    def __post_init__(self) -> None:
        for name in (
            "events_capacity",
            "outcomes_capacity",
            "spans_capacity",
            "snapshots_capacity",
            "bundle_limit",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")


class TeeEventLog:
    """An event log that records into the flight recorder's ring and
    forwards to the user-configured log.

    Always enabled: the ring keeps every level regardless of the inner
    log's threshold (``would_emit`` is unconditionally true), so the
    black box retains debug detail even on a silent service.  Bound
    correlation fields (``query=...``, ``run=...``) reach the ring and
    the inner log alike.
    """

    enabled = True

    def __init__(self, recorder: "FlightRecorder", inner, bound=None) -> None:
        self._recorder = recorder
        self._inner = inner
        self._bound = dict(bound or {})

    def would_emit(self, level: str) -> bool:
        return True

    def bind(self, **fields) -> "TeeEventLog":
        inner = self._inner.bind(**fields) if self._inner.enabled else self._inner
        return TeeEventLog(self._recorder, inner, {**self._bound, **fields})

    def emit(self, name: str, level: str = "info", **fields) -> None:
        self._recorder.record_event(
            name, level, {**self._bound, **fields}
        )
        if self._inner.enabled:
            self._inner.emit(name, level, **fields)


class FlightRecorder:
    """Bounded rings + bundle capture for one :class:`MSTService`.

    Ring appends are single ``deque.append`` calls (thread-safe under
    the GIL, O(1), never blocking a worker); captures are rare, guarded
    by a per-thread reentrancy flag (a capture snapshots service state,
    which can itself emit trigger events) and per-(reason, spec)
    cooldowns, and never raise into the serving path.
    """

    def __init__(
        self,
        config: RecorderConfig | None = None,
        *,
        registry=None,
    ) -> None:
        self.config = config or RecorderConfig()
        self.registry = registry
        self._service = None
        cfg = self.config
        self._events: deque = deque(maxlen=cfg.events_capacity)
        self._outcomes: deque = deque(maxlen=cfg.outcomes_capacity)
        self._spans: deque = deque(maxlen=cfg.spans_capacity)
        self._snapshots: deque = deque(maxlen=cfg.snapshots_capacity)
        self._local = threading.local()
        self._cd_lock = threading.Lock()
        self._cooldowns: dict[str, float] = {}
        # Start the snapshot clock now: the first periodic snapshot is
        # due one interval after boot, not on the first outcome (which
        # would bill every short-lived service a full metrics() walk).
        self._last_snapshot = time.monotonic()
        self._seq_lock = threading.Lock()
        self._seq = 0
        self.bundles_written = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, service) -> "FlightRecorder":
        """Bind the service whose state captures will snapshot."""
        self._service = service
        return self

    def tee(self, inner) -> TeeEventLog:
        """The event log the service should hold: ring + ``inner``."""
        return TeeEventLog(self, inner)

    # ------------------------------------------------------------------
    # Ring feeds (the hot path: cheap, never raising)
    # ------------------------------------------------------------------
    def record_event(self, name: str, level: str, fields: dict) -> None:
        entry = {"ts": time.time(), "level": level, "event": name}
        entry.update(fields)
        self._events.append(entry)
        if name in TRIGGER_EVENTS:
            self.capture(
                reason=name,
                trigger=entry,
                with_status=name not in _STATUS_UNSAFE_TRIGGERS,
            )

    def observe_outcome(self, outcome, *, query=None) -> None:
        """One finished waiter: ring entry, plus a capture on failure."""
        self._outcomes.append(
            {
                "ts": time.time(),
                "id": outcome.id,
                "status": outcome.status,
                "served_by": outcome.served_by,
                "error_kind": outcome.error_kind,
                "error": outcome.error,
                "exit_code": outcome.exit_code,
                "latency_s": round(outcome.latency_s, 6),
                "input": outcome.input,
                "code": outcome.code,
            }
        )
        if outcome.status in _FAILURE_STATUSES:
            self.capture(
                reason=f"outcome-{outcome.status}",
                query=query,
                outcome=outcome,
            )

    def record_spans(self, query_id: str, tracer) -> None:
        """Summarize one executed query's trace into the span ring.

        Non-kernel spans (service/host/run/phase/round) are kept
        individually up to ``spans_per_query``; kernel launches — often
        thousands per run — collapse into one summary entry.
        """
        try:
            spans = tracer.spans()
        except Exception:
            return
        kept = 0
        kernels = 0
        kernel_s = 0.0
        for s in spans:
            if s.kind == "kernel":
                kernels += 1
                kernel_s += s.modeled_seconds or 0.0
                continue
            if kept >= self.config.spans_per_query:
                continue
            kept += 1
            self._spans.append(
                {
                    "query": query_id,
                    "name": s.name,
                    "kind": s.kind,
                    "wall_s": round(s.wall_seconds or 0.0, 6),
                    "modeled_s": round(s.modeled_seconds or 0.0, 9),
                }
            )
        if kernels:
            self._spans.append(
                {
                    "query": query_id,
                    "name": f"[{kernels} kernel launches]",
                    "kind": "kernel-summary",
                    "wall_s": 0.0,
                    "modeled_s": round(kernel_s, 9),
                }
            )

    def maybe_snapshot(self, service=None) -> None:
        """Periodic windowed-metrics snapshot (rate-limited)."""
        now = time.monotonic()
        if now - self._last_snapshot < self.config.snapshot_interval_s:
            return
        self._last_snapshot = now
        svc = service if service is not None else self._service
        if svc is None:
            return
        try:
            metrics = svc.metrics()
        except Exception:
            return
        self._snapshots.append({"ts": time.time(), "metrics": metrics})

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    def capture(
        self,
        *,
        reason: str,
        trigger: dict | None = None,
        query=None,
        outcome=None,
        with_status: bool = True,
    ) -> Path | None:
        """Freeze the rings + repro key into an on-disk bundle.

        Returns the bundle path, or ``None`` when capture was disabled,
        reentrant (a capture's own state snapshot emitted a trigger
        event), cooled down, or failed — a capture must never take the
        serving path down with it.
        """
        if not self.config.enabled:
            return None
        if getattr(self._local, "capturing", False):
            return None
        key = self._cooldown_key(reason, query, outcome)
        now = time.monotonic()
        with self._cd_lock:
            last = self._cooldowns.get(key)
            if (
                last is not None
                and now - last < self.config.bundle_cooldown_s
            ):
                self._count("service.postmortem.suppressed")
                return None
            self._cooldowns[key] = now
        self._local.capturing = True
        try:
            bundle = self._build_bundle(
                reason, trigger, query, outcome, with_status
            )
            path = self._write_bundle(bundle, reason, query, outcome)
            self.bundles_written += 1
            self._count("service.postmortem.bundles")
            svc = self._service
            if svc is not None and svc.events.enabled:
                svc.events.emit(
                    "postmortem.captured",
                    level="warning",
                    reason=reason,
                    bundle=str(path),
                )
            return path
        except Exception:
            self._count("service.postmortem.capture_errors")
            return None
        finally:
            self._local.capturing = False

    def capture_crash(self, exc: BaseException, *, service=None) -> Path | None:
        """An unhandled exception escaped the serve path: last words."""
        if service is not None:
            self._service = service
        return self.capture(
            reason="crash",
            trigger={
                "ts": time.time(),
                "level": "error",
                "event": "serve.crash",
                "type": type(exc).__name__,
                "error": str(exc),
            },
        )

    def _cooldown_key(self, reason: str, query, outcome) -> str:
        spec = ""
        if query is not None:
            try:
                spec = query.spec_key()
            except Exception:
                spec = getattr(query, "id", "") or ""
        elif outcome is not None:
            spec = f"{outcome.input}:{outcome.code}:{outcome.error_kind}"
        return f"{reason}|{spec}"

    def _count(self, name: str) -> None:
        if self.registry is not None:
            try:
                self.registry.counter(name).inc()
            except Exception:
                pass

    def _build_bundle(
        self, reason, trigger, query, outcome, with_status
    ) -> dict:
        from .. import __version__

        svc = self._service
        statusz = None
        metrics = None
        profile = None
        slowdown = 1.0
        if svc is not None:
            slowdown = getattr(svc.config, "slowdown", 1.0)
            try:
                metrics = svc.metrics()
            except Exception:
                metrics = None
            if with_status:
                try:
                    statusz = svc.status()
                except Exception:
                    statusz = None
            profile = svc.latest_profile
        repro: dict = {"slowdown": slowdown}
        if query is not None:
            repro.update(
                input=query.input,
                code=query.code,
                system=query.system,
                scale=query.scale,
                fault_seed=query.fault_seed,
                n_faults=query.n_faults,
            )
            try:
                repro["spec_key"] = query.spec_key()
                repro["config_hash"] = query.config_hash()
            except Exception:
                pass
        if outcome is not None and isinstance(outcome.graph, dict):
            digest = outcome.graph.get("digest")
            if digest:
                repro["graph_digest"] = digest
        return {
            "schema": BUNDLE_SCHEMA,
            "captured_at": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "reason": reason,
            "trigger": trigger,
            "query": query.to_dict() if query is not None else None,
            "outcome": outcome.to_dict() if outcome is not None else None,
            "repro": repro,
            "rings": {
                "events": list(self._events),
                "outcomes": list(self._outcomes),
                "spans": list(self._spans),
                "snapshots": list(self._snapshots),
            },
            "statusz": statusz,
            "metrics": metrics,
            "profile": profile,
            "env": {
                "version": __version__,
                "python": platform.python_version(),
                "platform": platform.platform(),
            },
        }

    def _write_bundle(self, bundle, reason, query, outcome) -> Path:
        directory = Path(self.config.dir)
        directory.mkdir(parents=True, exist_ok=True)
        with self._seq_lock:
            self._seq += 1
            seq = self._seq
        qid = ""
        if query is not None:
            qid = getattr(query, "id", "") or ""
        elif outcome is not None:
            qid = outcome.id
        slug = _slug(reason if not qid else f"{reason}-{qid}")
        stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")
        path = directory / f"PM_{stamp}_{seq:04d}_{slug}.bundle"
        path.write_text(
            json.dumps(bundle, indent=1, sort_keys=True, default=str) + "\n"
        )
        self._prune(directory)
        return path

    def _prune(self, directory: Path) -> None:
        bundles = sorted(directory.glob("PM_*.bundle"))
        for stale in bundles[: max(0, len(bundles) - self.config.bundle_limit)]:
            try:
                stale.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Read side (/debugz, dashboard, service.metrics)
    # ------------------------------------------------------------------
    def metrics(self) -> dict[str, float]:
        """Ring occupancy gauges (merged into ``service.metrics()``)."""
        return {
            "obs.recorder.events": float(len(self._events)),
            "obs.recorder.outcomes": float(len(self._outcomes)),
            "obs.recorder.spans": float(len(self._spans)),
            "obs.recorder.snapshots": float(len(self._snapshots)),
        }

    def debug_snapshot(
        self,
        *,
        events_tail: int = 80,
        outcomes_tail: int = 25,
        spans_tail: int = 40,
    ) -> dict:
        """The admin ``/debugz`` body: ring tails + recent bundles.

        Each ring is snapshotted with one ``list(deque)`` call —
        atomic under the GIL — so concurrent worker appends never
        produce a torn read.
        """
        cfg = self.config
        return {
            "enabled": cfg.enabled,
            "dir": str(cfg.dir),
            "bundles_written": self.bundles_written,
            "rings": {
                "events": {
                    "len": len(self._events),
                    "capacity": cfg.events_capacity,
                },
                "outcomes": {
                    "len": len(self._outcomes),
                    "capacity": cfg.outcomes_capacity,
                },
                "spans": {
                    "len": len(self._spans),
                    "capacity": cfg.spans_capacity,
                },
                "snapshots": {
                    "len": len(self._snapshots),
                    "capacity": cfg.snapshots_capacity,
                },
            },
            "events": list(self._events)[-events_tail:],
            "outcomes": list(self._outcomes)[-outcomes_tail:],
            "spans": list(self._spans)[-spans_tail:],
            "snapshots": list(self._snapshots)[-2:],
            "bundles": recent_bundles(cfg.dir),
        }


def _slug(text: str, *, limit: int = 48) -> str:
    out = "".join(ch if ch.isalnum() else "-" for ch in text).strip("-")
    while "--" in out:
        out = out.replace("--", "-")
    return (out or "bundle")[:limit]


# ----------------------------------------------------------------------
# Bundle files
# ----------------------------------------------------------------------
def load_bundle(path) -> dict:
    """Read and schema-check one bundle file (raises
    :class:`~repro.errors.BundleError` on any problem)."""
    p = Path(path)
    try:
        doc = json.loads(p.read_text())
    except OSError as exc:
        raise BundleError(f"cannot read bundle {p}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise BundleError(f"malformed bundle {p}: {exc}") from None
    if not isinstance(doc, dict) or doc.get("schema") != BUNDLE_SCHEMA:
        got = doc.get("schema") if isinstance(doc, dict) else type(doc).__name__
        raise BundleError(
            f"{p} is not a postmortem bundle "
            f"(schema {got!r}, expected {BUNDLE_SCHEMA!r})"
        )
    return doc


def bundle_summary(bundle: dict, path="") -> dict:
    """The incident-list row for one bundle (dashboard, /debugz)."""
    outcome = bundle.get("outcome") or {}
    query = bundle.get("query") or {}
    return {
        "path": str(path),
        "captured_at": bundle.get("captured_at", ""),
        "reason": bundle.get("reason", "?"),
        "query": query.get("id") or outcome.get("id") or "",
        "status": outcome.get("status", ""),
        "error_kind": outcome.get("error_kind", ""),
        "error": outcome.get("error", ""),
        "exit_code": outcome.get("exit_code", 0),
    }


def recent_bundles(directory, *, limit: int = 20) -> list[dict]:
    """Summaries of the newest bundles in ``directory`` (oldest first);
    unreadable files are skipped, a missing directory is empty."""
    d = Path(directory)
    if not d.is_dir():
        return []
    out = []
    for p in sorted(d.glob("PM_*.bundle"))[-limit:]:
        try:
            out.append(bundle_summary(json.loads(p.read_text()), p))
        except (OSError, json.JSONDecodeError):
            continue
    return out


# ----------------------------------------------------------------------
# Postmortem report
# ----------------------------------------------------------------------
def render_postmortem(
    bundle: dict, *, events_tail: int = 30, spans_tail: int = 20
) -> str:
    """The human-readable incident report for one bundle."""
    lines: list[str] = []
    outcome = bundle.get("outcome") or {}
    query = bundle.get("query") or {}
    qid = query.get("id") or outcome.get("id") or ""
    env = bundle.get("env") or {}
    lines.append(
        f"== postmortem: {bundle.get('reason', '?')} "
        f"at {bundle.get('captured_at', '?')} =="
    )
    lines.append(
        f"repro v{env.get('version', '?')} on python "
        f"{env.get('python', '?')}"
    )
    trigger = bundle.get("trigger")
    if trigger:
        t = {
            k: v
            for k, v in trigger.items()
            if k not in ("ts", "level", "event")
        }
        lines.append(
            f"trigger: {trigger.get('event', '?')} "
            + " ".join(f"{k}={v}" for k, v in t.items())
        )
    if query:
        lines.append("")
        lines.append(f"query {qid}:")
        for k in ("input", "code", "system", "scale", "stage"):
            if query.get(k) not in (None, "", {}):
                lines.append(f"  {k:12s} {query[k]}")
        repro = bundle.get("repro") or {}
        for k in (
            "spec_key",
            "config_hash",
            "graph_digest",
            "fault_seed",
            "n_faults",
            "slowdown",
        ):
            if repro.get(k) not in (None, ""):
                lines.append(f"  {k:12s} {repro[k]}")
    if outcome:
        lines.append("")
        lines.append(
            f"outcome: {outcome.get('status', '?')} "
            f"(exit {outcome.get('exit_code', '?')}, "
            f"kind {outcome.get('error_kind') or '-'}, "
            f"served_by {outcome.get('served_by', '?')})"
        )
        if outcome.get("error"):
            lines.append(f"  error: {outcome['error']}")
    rings = bundle.get("rings") or {}
    events = rings.get("events") or []
    if events:
        lines.append("")
        lines.append(
            f"event timeline (last {min(events_tail, len(events))} of "
            f"{len(events)}; * = the failing query):"
        )
        for e in events[-events_tail:]:
            fields = {
                k: v
                for k, v in e.items()
                if k not in ("ts", "level", "event")
            }
            mark = "*" if qid and fields.get("query") == qid else " "
            lines.append(
                f" {mark} "
                + format_event_line(
                    e.get("ts", 0.0),
                    e.get("level", "info"),
                    e.get("event", "?"),
                    fields,
                )
            )
    spans = [
        s for s in (rings.get("spans") or []) if not qid or s.get("query") == qid
    ]
    if spans:
        lines.append("")
        lines.append(
            f"correlated spans ({'query ' + qid if qid else 'all queries'}):"
        )
        for s in spans[-spans_tail:]:
            lines.append(
                f"  {s.get('name', '?'):28s} {s.get('kind', '?'):15s} "
                f"wall {s.get('wall_s', 0.0) * 1e3:9.3f} ms  "
                f"modeled {s.get('modeled_s', 0.0) * 1e3:9.4f} ms"
            )
    metrics = bundle.get("metrics") or {}
    headline = [
        k
        for k in (
            "service.queries",
            "service.executed",
            "service.errors",
            "service.timeouts",
            "service.qps",
            "service.p50_latency",
            "service.p95_latency",
            "service.cache_hit_ratio",
            "service.postmortem.bundles",
        )
        if k in metrics
    ]
    if headline:
        lines.append("")
        lines.append("headline metrics at capture:")
        for k in headline:
            lines.append(f"  {k:28s} {metrics[k]:.6g}")
    statusz = bundle.get("statusz") or {}
    slos = statusz.get("slos") or []
    if slos:
        lines.append("")
        lines.append("SLOs at capture:")
        for s in slos:
            state = "ALERTING" if s.get("alerting") else "ok"
            exemplar = s.get("exemplar")
            lines.append(
                f"  {s.get('name', '?'):16s} sli {s.get('sli', 0.0):.4f}  "
                f"burn {s.get('burn_rate', 0.0):>8.3g}  {state}"
                + (f"  exemplar {exemplar}" if exemplar else "")
            )
    profile = bundle.get("profile") or {}
    roof = (profile.get("roofline") or {}).get("kernels") or []
    if roof:
        lines.append("")
        lines.append("roofline of the failing run (hottest kernels):")
        for k in roof[:8]:
            lines.append(
                f"  {k.get('name', '?'):24s} {k.get('bound', '?'):8s} "
                f"{k.get('seconds', 0.0) * 1e3:9.4f} ms  "
                f"x{k.get('launches', 0)}"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Deterministic replay
# ----------------------------------------------------------------------
# Always compared; the error string joins them when the recorded
# outcome never went through seed-salted policy retries.
_REPLAY_FIELDS = ("status", "error_kind", "exit_code")
# Compared when both outcomes carry the success payload: this is the
# bit-identity surface (same fields the cold-vs-warm cache tests use).
_PAYLOAD_FIELDS = (
    "algorithm",
    "total_weight",
    "num_mst_edges",
    "rounds",
    "modeled_seconds",
    "mst_digest",
    "metrics",
)


@dataclass
class ReplayReport:
    """Recorded-vs-replayed outcome diff for one bundle."""

    bundle_path: str = ""
    reason: str = ""
    query_id: str = ""
    recorded: dict = field(default_factory=dict)
    replayed: dict = field(default_factory=dict)
    diffs: dict = field(default_factory=dict)
    notes: list = field(default_factory=list)

    @property
    def matched(self) -> bool:
        return not self.diffs

    @property
    def exit_code(self) -> int:
        return 0 if self.matched else EXIT_REPLAY_DIVERGED

    def to_dict(self) -> dict:
        return {
            "bundle": self.bundle_path,
            "reason": self.reason,
            "query": self.query_id,
            "matched": self.matched,
            "exit_code": self.exit_code,
            "diffs": {
                k: {"recorded": a, "replayed": b}
                for k, (a, b) in self.diffs.items()
            },
            "notes": list(self.notes),
            "recorded": self.recorded,
            "replayed": self.replayed,
        }

    def render(self) -> str:
        lines = [
            f"replayed query {self.query_id or '?'} from "
            f"{self.bundle_path or 'bundle'} (reason {self.reason or '?'})"
        ]
        lines.append(
            f"  recorded: {self.recorded.get('status', '?')} "
            f"(exit {self.recorded.get('exit_code', 0)}, "
            f"kind {self.recorded.get('error_kind') or '-'})"
        )
        lines.append(
            f"  replayed: {self.replayed.get('status', '?')} "
            f"(exit {self.replayed.get('exit_code', 0)}, "
            f"kind {self.replayed.get('error_kind') or '-'})"
        )
        if self.matched:
            lines.append("verdict: MATCH — the failure reproduces bit-identically")
        else:
            lines.append("verdict: DIVERGED")
            for name, (a, b) in self.diffs.items():
                lines.append(f"  {name}: recorded {a!r} != replayed {b!r}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def replay_bundle(bundle: dict, *, bundle_path="") -> ReplayReport:
    """Re-execute a bundle's captured query and diff against the record.

    The replay runs standalone — no service, no cache, no policy — with
    the recorded slowdown factor, so what executes is exactly the pure
    function the bundle's repro key names.  Raises
    :class:`~repro.errors.BundleError` when the bundle carries no query
    (event-triggered bundles record context, not a reproducible run).
    """
    from ..service.engine import execute_query
    from ..service.query import Query

    qd = bundle.get("query")
    if not qd:
        raise BundleError(
            f"bundle has no captured query (reason "
            f"{bundle.get('reason', '?')!r}); only outcome-triggered "
            "bundles are replayable"
        )
    query = Query.from_dict(qd)
    recorded = bundle.get("outcome") or {}
    repro = bundle.get("repro") or {}
    slowdown = float(repro.get("slowdown") or 1.0)
    replayed = execute_query(query, slowdown=slowdown).to_dict()

    retries = (recorded.get("policy") or {}).get("retries", 0)
    fields = list(_REPLAY_FIELDS)
    if not retries:
        fields.append("error")
    payload = recorded.get("status") in ("ok", "degraded")
    if payload:
        fields.extend(_PAYLOAD_FIELDS)
    diffs = {}
    for name in fields:
        a = recorded.get(name)
        b = replayed.get(name)
        if name == "error_kind":
            a, b = a or "", b or ""
        if a != b:
            diffs[name] = (a, b)
    if payload:
        a = (recorded.get("graph") or {}).get("digest")
        b = (replayed.get("graph") or {}).get("digest")
        if a != b:
            diffs["graph_digest"] = (a, b)

    notes = []
    if recorded.get("status") == "timeout":
        notes.append(
            "the recorded outcome was a wall-clock timeout; scheduling "
            "is not part of the replay key, so divergence is expected"
        )
    if retries:
        notes.append(
            f"the recorded outcome survived {retries} policy retries "
            "with attempt-salted fault seeds; the replay runs the "
            "original seed once, so the error text may differ"
        )
    if recorded.get("served_by") in ("stale-cache", "serial-fallback"):
        notes.append(
            "the recorded outcome was served degraded "
            f"({recorded.get('served_by')}); the replay executes the "
            "query for real"
        )
    return ReplayReport(
        bundle_path=str(bundle_path),
        reason=bundle.get("reason", ""),
        query_id=qd.get("id", ""),
        recorded=recorded,
        replayed=replayed,
        diffs=diffs,
        notes=notes,
    )
