"""Self-contained HTML run dashboard.

:func:`render_dashboard` turns one :class:`~repro.obs.profile.RunProfile`
(plus, optionally, the benchmark trajectory directory and a live
service snapshot) into a single static HTML file with **no external
assets** — styles, data, and the inline SVG charts are all embedded,
so the file can be archived next to the profile it renders and opened
anywhere.

Sections:

* header + stat tiles — the run's identity and headline numbers
* round timeline — worklist ``entries`` / ``survivors`` / ``added``
  per Alg.-2 round (the geometric-decay observable), from the
  profile's ``round_log``
* kernel share — each kernel's slice of the modeled runtime
* benchmark trajectory — modeled-seconds sparklines per input from
  ``BENCH_*.json`` and a service-QPS sparkline from
  ``BENCH_SERVICE_*.json``
* service — cache hit ratio meter and the SLO table (when a service
  snapshot is supplied)
* a data-table view of every chart (the accessibility fallback)

Chart conventions follow the repo's dataviz rules: categorical hues
in fixed validated order, 2px lines with surface-ringed end markers,
bars ≤ 24px with rounded data-ends, text in ink tokens (never series
colors), a legend for multi-series charts, hover tooltips, and a dark
mode stepped for the dark surface (``prefers-color-scheme``).
"""

from __future__ import annotations

import html
import json
from pathlib import Path

__all__ = ["render_dashboard", "load_trajectory"]

# Validated categorical slots (light, dark) — order is the CVD-safety
# mechanism, do not shuffle.  Slot 1 doubles as the sequential hue.
_SERIES = (
    ("#2a78d6", "#3987e5"),  # blue
    ("#eb6834", "#d95926"),  # orange
    ("#1baf7a", "#199e70"),  # aqua
)
_STATUS_GOOD = "#0ca30c"
_STATUS_CRITICAL = "#d03b3b"

_CSS = """
:root {
  color-scheme: light;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a;
  --s1-track: #cde2fb;
  --good: #0ca30c; --crit: #d03b3b; --good-text: #006300;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --s1: #3987e5; --s2: #d95926; --s3: #199e70;
    --s1-track: #104281;
    --good: #0ca30c; --crit: #d03b3b; --good-text: #0ca30c;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 2px; }
h2 { font-size: 15px; margin: 0 0 10px; font-weight: 600; }
.sub { color: var(--ink-2); margin: 0 0 20px; }
.card {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 10px; padding: 16px 18px; margin: 0 0 16px;
}
.row { display: flex; flex-wrap: wrap; gap: 16px; }
.row > .card { flex: 1 1 340px; margin: 0; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 0 0 16px; }
.tile {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 10px; padding: 10px 16px 12px; min-width: 128px;
}
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 24px; font-weight: 600; }
.tile .hero { font-size: 48px; }
.legend { display: flex; gap: 16px; color: var(--ink-2); font-size: 12px;
  margin: 2px 0 8px; flex-wrap: wrap; }
.legend .key { display: inline-flex; align-items: center; gap: 6px; }
.legend .swatch { width: 14px; height: 3px; border-radius: 2px;
  display: inline-block; }
svg text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif;
  fill: var(--muted); }
svg text.val { fill: var(--ink-2); }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .axis { stroke: var(--axis); stroke-width: 1; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { text-align: right; padding: 4px 10px;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600; }
th:first-child, td:first-child { text-align: left; }
.status { display: inline-flex; align-items: center; gap: 6px; }
.meter { height: 10px; border-radius: 5px; background: var(--s1-track);
  overflow: hidden; }
.meter > div { height: 100%; background: var(--s1);
  border-radius: 5px 0 0 5px; }
details { margin-top: 4px; }
summary { cursor: pointer; color: var(--ink-2); }
#tip {
  position: fixed; display: none; pointer-events: none; z-index: 10;
  background: var(--surface); color: var(--ink);
  border: 1px solid var(--border); border-radius: 6px;
  padding: 5px 9px; font-size: 12px;
  box-shadow: 0 2px 8px rgba(0,0,0,0.18); white-space: pre;
}
.hit { cursor: default; }
footer { color: var(--muted); font-size: 12px; margin-top: 8px; }
"""

_JS = """
(function () {
  var tip = document.getElementById('tip');
  document.addEventListener('mousemove', function (e) {
    var t = e.target.closest('[data-tip]');
    if (!t) { tip.style.display = 'none'; return; }
    tip.textContent = t.getAttribute('data-tip');
    tip.style.display = 'block';
    var x = e.clientX + 12, y = e.clientY + 12;
    var r = tip.getBoundingClientRect();
    if (x + r.width > window.innerWidth - 8) x = e.clientX - r.width - 12;
    if (y + r.height > window.innerHeight - 8) y = e.clientY - r.height - 12;
    tip.style.left = x + 'px'; tip.style.top = y + 'px';
  });
})();
"""


# ----------------------------------------------------------------------
# Formatting helpers
# ----------------------------------------------------------------------
def _esc(s) -> str:
    return html.escape(str(s), quote=True)


def _compact(v: float) -> str:
    """Auto-compact figure: 1,284 / 12.9K / 4.2M."""
    v = float(v)
    for bound, suffix in ((1e9, "B"), (1e6, "M"), (1e4, "K")):
        if abs(v) >= bound:
            return f"{v / (1e9 if suffix == 'B' else 1e6 if suffix == 'M' else 1e3):.1f}{suffix}"
    if v == int(v):
        return f"{int(v):,}"
    return f"{v:,.2f}"


def _seconds(v: float) -> str:
    v = float(v)
    if v <= 0:
        return "0"
    if v < 1e-3:
        return f"{v * 1e6:.1f}µs"
    if v < 1.0:
        return f"{v * 1e3:.2f}ms"
    return f"{v:.2f}s"


# ----------------------------------------------------------------------
# SVG chart builders (inline, no dependencies)
# ----------------------------------------------------------------------
def _round_timeline_svg(rounds: list[dict]) -> str:
    """Three-series line chart of the per-round worklist trajectory."""
    w, h = 560, 220
    pad_l, pad_r, pad_t, pad_b = 46, 64, 12, 26
    iw, ih = w - pad_l - pad_r, h - pad_t - pad_b
    n = len(rounds)
    series = [
        ("entries", "var(--s1)"),
        ("survivors", "var(--s2)"),
        ("added", "var(--s3)"),
    ]
    vmax = max(
        (float(r.get(k, 0)) for r in rounds for k, _ in series), default=1.0
    )
    vmax = vmax or 1.0

    def x(i: int) -> float:
        return pad_l + (iw * i / max(n - 1, 1))

    def y(v: float) -> float:
        return pad_t + ih * (1.0 - v / vmax)

    parts = [
        f'<svg viewBox="0 0 {w} {h}" width="100%" role="img" '
        f'aria-label="Worklist entries, survivors and added edges per round">'
    ]
    # Hairline gridlines at clean fractions + baseline axis.
    for frac in (0.0, 0.5, 1.0):
        gy = pad_t + ih * (1.0 - frac)
        cls = "axis" if frac == 0.0 else "grid"
        parts.append(
            f'<line class="{cls}" x1="{pad_l}" y1="{gy:.1f}" '
            f'x2="{pad_l + iw}" y2="{gy:.1f}"/>'
        )
        parts.append(
            f'<text x="{pad_l - 6}" y="{gy + 4:.1f}" text-anchor="end">'
            f"{_compact(vmax * frac)}</text>"
        )
    for name, color in series:
        pts = " ".join(
            f"{x(i):.1f},{y(float(r.get(name, 0))):.1f}"
            for i, r in enumerate(rounds)
        )
        parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        )
    # Markers with a 2px surface ring + per-point hover targets; direct
    # end labels (selective: endpoint only, in ink not series color).
    for name, color in series:
        for i, r in enumerate(rounds):
            v = float(r.get(name, 0))
            tip = f"round {i} · {name}: {int(v):,}"
            parts.append(
                f'<circle cx="{x(i):.1f}" cy="{y(v):.1f}" r="4" '
                f'fill="{color}" stroke="var(--surface)" stroke-width="2" '
                f'class="hit" data-tip="{_esc(tip)}"/>'
            )
        last = float(rounds[-1].get(name, 0))
        parts.append(
            f'<text class="val" x="{x(n - 1) + 9:.1f}" '
            f'y="{y(last) + 4:.1f}">{name}</text>'
        )
    for i in range(n):
        parts.append(
            f'<text x="{x(i):.1f}" y="{h - 8}" text-anchor="middle">{i}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _kernel_share_svg(kernels: dict, total_s: float) -> str:
    """Horizontal single-hue bars: each kernel's share of modeled time."""
    items = sorted(
        ((name, float(b.get("seconds", 0.0))) for name, b in kernels.items()),
        key=lambda kv: -kv[1],
    )
    if not items:
        return "<p class='sub'>no kernel breakdown in this profile</p>"
    total = total_s or sum(s for _, s in items) or 1.0
    bar_h, gap, pad_l, pad_r = 18, 10, 110, 150
    w = 560
    h = len(items) * (bar_h + gap) + 8
    iw = w - pad_l - pad_r
    vmax = items[0][1] or 1.0
    parts = [
        f'<svg viewBox="0 0 {w} {h}" width="100%" role="img" '
        f'aria-label="Share of modeled runtime per kernel">'
    ]
    parts.append(
        f'<line class="axis" x1="{pad_l}" y1="0" x2="{pad_l}" y2="{h}"/>'
    )
    for i, (name, secs) in enumerate(items):
        top = 4 + i * (bar_h + gap)
        bw = max(iw * secs / vmax, 1.5)
        share = 100.0 * secs / total
        tip = f"{name}: {_seconds(secs)} · {share:.1f}% of modeled time"
        # Rounded data-end, square at the baseline.
        parts.append(
            f'<path d="M{pad_l},{top} h{bw - 4:.1f} q4,0 4,4 v{bar_h - 8} '
            f'q0,4 -4,4 h-{bw - 4:.1f} z" fill="var(--s1)" class="hit" '
            f'data-tip="{_esc(tip)}"/>'
        )
        parts.append(
            f'<text x="{pad_l - 6}" y="{top + bar_h - 5}" '
            f'text-anchor="end">{_esc(name)}</text>'
        )
        parts.append(
            f'<text class="val" x="{pad_l + bw + 6:.1f}" '
            f'y="{top + bar_h - 5}">{share:.1f}% · {_seconds(secs)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _sparkline_svg(values: list[float], *, label: str, fmt=_seconds) -> str:
    """A 12-point-style sparkline; the current period gets the accent."""
    if not values:
        return ""
    w, h, pad = 180, 36, 5
    vmax, vmin = max(values), min(values)
    spread = (vmax - vmin) or 1.0
    n = len(values)

    def x(i: int) -> float:
        return pad + (w - 2 * pad) * i / max(n - 1, 1)

    def y(v: float) -> float:
        return pad + (h - 2 * pad) * (1.0 - (v - vmin) / spread)

    pts = " ".join(f"{x(i):.1f},{y(v):.1f}" for i, v in enumerate(values))
    tip = f"{label}: latest {fmt(values[-1])} over {n} runs"
    return (
        f'<svg viewBox="0 0 {w} {h}" width="{w}" height="{h}" class="hit" '
        f'data-tip="{_esc(tip)}" role="img" aria-label="{_esc(label)} trend">'
        f'<polyline points="{pts}" fill="none" stroke="var(--muted)" '
        'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        f'<circle cx="{x(n - 1):.1f}" cy="{y(values[-1]):.1f}" r="4" '
        'fill="var(--s1)" stroke="var(--surface)" stroke-width="2"/>'
        "</svg>"
    )


# ----------------------------------------------------------------------
# Trajectory loading
# ----------------------------------------------------------------------
def load_trajectory(directory: str | Path) -> tuple[list[dict], list[dict]]:
    """Read ``BENCH_*.json`` / ``BENCH_SERVICE_*.json`` entries, sorted
    by file name (the UTC stamp orders them); unparsable files skip."""
    bench: list[dict] = []
    service: list[dict] = []
    d = Path(directory)
    if not d.is_dir():
        return bench, service
    for path in sorted(d.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if path.name.startswith("BENCH_SERVICE_"):
            service.append(payload)
        else:
            bench.append(payload)
    return bench, service


def _trajectory_section(bench: list[dict], service: list[dict]) -> str:
    rows = []
    by_input: dict[str, list[float]] = {}
    for payload in bench:
        for e in payload.get("entries", []):
            by_input.setdefault(e.get("input", "?"), []).append(
                float(e.get("modeled_seconds", 0.0))
            )
    for name, vals in sorted(by_input.items()):
        rows.append(
            "<tr><td>"
            + _esc(name)
            + "</td><td>"
            + _sparkline_svg(vals, label=f"{name} modeled time")
            + f"</td><td>{_seconds(vals[-1])}</td><td>{len(vals)}</td></tr>"
        )
    qps = [
        float(((p.get("warm") or p.get("cold")) or {}).get("queries_per_second", 0.0))
        for p in service
        if (p.get("warm") or p.get("cold"))
    ]
    if qps:
        rows.append(
            "<tr><td>service QPS</td><td>"
            + _sparkline_svg(qps, label="service QPS", fmt=_compact)
            + f"</td><td>{_compact(qps[-1])}/s</td><td>{len(qps)}</td></tr>"
        )
    if not rows:
        return ""
    return (
        '<div class="card"><h2>Benchmark trajectory</h2>'
        "<table><thead><tr><th>series</th><th>trend</th>"
        "<th>latest</th><th>runs</th></tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table></div>"
    )


# ----------------------------------------------------------------------
# Service + SLO section
# ----------------------------------------------------------------------
def _slo_rows(slos: list[dict]) -> str:
    rows = []
    for s in slos:
        alerting = bool(s.get("alerting"))
        color = _STATUS_CRITICAL if alerting else _STATUS_GOOD
        icon = "●" if not alerting else "▲"  # dot / warning triangle
        word = "burning" if alerting else "ok"
        burn = s.get("burn_rate", 0.0)
        burn_s = "∞" if burn in ("inf", float("inf")) else f"{float(burn):.2f}"
        rows.append(
            f"<tr><td>{_esc(s.get('name'))}</td>"
            f"<td>{_esc(s.get('kind'))}</td>"
            f"<td>{float(s.get('objective', 0)) * 100:.1f}%</td>"
            f"<td>{float(s.get('sli', 0)) * 100:.2f}%</td>"
            f"<td>{burn_s}</td>"
            f'<td style="text-align:left"><span class="status">'
            f'<span style="color:{color}">{icon}</span>{word}</span></td></tr>'
        )
    return "".join(rows)


def _service_section(service: dict | None, slos: list[dict] | None) -> str:
    if not service and not slos:
        return ""
    parts = ['<div class="card"><h2>Service</h2>']
    if service:
        ratio = float(service.get("service.cache_hit_ratio", 0.0))
        pct = max(0.0, min(1.0, ratio)) * 100.0
        parts.append(
            f'<p class="sub">cache hit ratio {pct:.1f}% · '
            f"{_compact(service.get('service.queries', 0))} queries · "
            f"p95 {_seconds(service.get('service.p95_latency', 0.0))} · "
            f"{_compact(service.get('service.qps', 0.0))} qps (window)</p>"
        )
        parts.append(
            f'<div class="meter hit" data-tip="cache hit ratio {pct:.1f}%">'
            f'<div style="width:{pct:.1f}%"></div></div>'
        )
    if slos:
        parts.append(
            "<table><thead><tr><th>SLO</th><th>kind</th><th>objective</th>"
            "<th>SLI</th><th>burn</th><th>state</th></tr></thead><tbody>"
            + _slo_rows(slos)
            + "</tbody></table>"
        )
    parts.append("</div>")
    return "".join(parts)


# ----------------------------------------------------------------------
# The page
# ----------------------------------------------------------------------
def _tile(label: str, value: str, *, hero: bool = False) -> str:
    cls = "value hero" if hero else "value"
    return (
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="{cls}">{value}</div></div>'
    )


def _round_table(rounds: list[dict]) -> str:
    body = "".join(
        f"<tr><td>{i}</td><td>{int(r.get('entries', 0)):,}</td>"
        f"<td>{int(r.get('survivors', 0)):,}</td>"
        f"<td>{int(r.get('added', 0)):,}</td></tr>"
        for i, r in enumerate(rounds)
    )
    return (
        "<details><summary>data table</summary><table><thead>"
        "<tr><th>round</th><th>entries</th><th>survivors</th><th>added</th>"
        f"</tr></thead><tbody>{body}</tbody></table></details>"
    )


def _incidents_section(incidents: list[dict] | None) -> str:
    """The incidents panel: recent postmortem bundles, newest first."""
    if not incidents:
        return ""
    rows = "".join(
        f"<tr><td>{_esc(b.get('captured_at', '?'))}</td>"
        f"<td>{_esc(b.get('reason', '?'))}</td>"
        f"<td>{_esc(b.get('query') or '-')}</td>"
        f"<td>{_esc(b.get('error_kind') or '-')}</td>"
        f"<td>{_esc(str(b.get('exit_code', 0)))}</td>"
        f"<td class=\"mono\">{_esc(str(b.get('path', '')))}</td></tr>"
        for b in reversed(incidents)
    )
    return (
        '<div class="card"><h2>Incidents</h2>'
        "<p>Postmortem bundles captured by the flight recorder — "
        "inspect with <code>repro-mst postmortem</code>, re-execute "
        "with <code>repro-mst replay</code>.</p>"
        "<table><thead><tr><th>captured</th><th>reason</th>"
        "<th>query</th><th>kind</th><th>exit</th><th>bundle</th>"
        f"</tr></thead><tbody>{rows}</tbody></table></div>"
    )


def render_dashboard(
    profile: dict,
    *,
    trajectory: str | Path | None = None,
    service: dict | None = None,
    slos: list[dict] | None = None,
    title: str | None = None,
    incidents: list[dict] | None = None,
) -> str:
    """Render the full dashboard HTML for one run-profile dict.

    ``trajectory`` points at the benchmark trajectory directory
    (``BENCH_*.json``); ``service`` is a flat service-metric dict and
    ``slos`` a list of SLO-status dicts (both optional — the service
    card only renders when data is supplied).  ``incidents`` is a list
    of postmortem-bundle summaries
    (:func:`~repro.obs.recorder.recent_bundles`) rendered as the
    incidents panel.
    """
    graph = profile.get("graph", {})
    rounds = profile.get("round_log") or []
    kernels = profile.get("kernels", {})
    modeled = float(profile.get("modeled_seconds", 0.0))
    name = title or (
        f"{profile.get('algorithm', 'run')} on {graph.get('name', '?')}"
    )

    tiles = [
        _tile("modeled time", _esc(_seconds(modeled)), hero=True),
        _tile("MST weight", _compact(profile.get("total_weight", 0))),
        _tile("MST edges", _compact(profile.get("num_mst_edges", 0))),
        _tile("rounds", _compact(profile.get("rounds", 0))),
    ]
    if service:
        tiles.append(
            _tile(
                "cache hit ratio",
                f"{float(service.get('service.cache_hit_ratio', 0)) * 100:.1f}%",
            )
        )

    timeline = ""
    if rounds:
        legend = "".join(
            f'<span class="key"><span class="swatch" '
            f'style="background:{color}"></span>{label}</span>'
            for label, color in (
                ("entries", "var(--s1)"),
                ("survivors", "var(--s2)"),
                ("added", "var(--s3)"),
            )
        )
        timeline = (
            '<div class="card"><h2>Round timeline</h2>'
            f'<div class="legend">{legend}</div>'
            + _round_timeline_svg(rounds)
            + _round_table(rounds)
            + "</div>"
        )

    kernel_card = (
        '<div class="card"><h2>Kernel share of modeled time</h2>'
        + _kernel_share_svg(kernels, modeled)
        + "</div>"
    )

    bench, service_traj = ([], [])
    if trajectory is not None:
        bench, service_traj = load_trajectory(trajectory)

    sub = (
        f"{_esc(graph.get('name', '?'))} · "
        f"|V| {_compact(graph.get('vertices', 0))} · "
        f"|E| {_compact(graph.get('edges', 0))} · "
        f"digest {_esc(graph.get('digest', '?'))}"
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(name)}</title>
<style>{_CSS}</style>
</head>
<body>
<h1>{_esc(name)}</h1>
<p class="sub">{sub}</p>
<div class="tiles">{''.join(tiles)}</div>
{timeline}
<div class="row">{kernel_card}{_service_section(service, slos)}</div>
{_incidents_section(incidents)}
{_trajectory_section(bench, service_traj)}
<footer>repro-mst dashboard · schema {_esc(profile.get('schema', '?'))}</footer>
<div id="tip"></div>
<script>{_JS}</script>
</body>
</html>
"""
