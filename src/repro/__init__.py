"""Reproduction of "A High-Performance MST Implementation for GPUs"
(ECL-MST, SC '23) on a simulated GPU substrate.

Quickstart::

    from repro import ecl_mst, generators

    g = generators.suite.build("USA-road-d.NY")
    result = ecl_mst(g, verify=True)
    print(result.total_weight, result.modeled_seconds)
"""

from . import apps, baselines, bench, core, dsu, generators, gpusim, graph, obs
from .core import EclMstConfig, MstResult, ecl_mst, verify_mst
from .graph import CSRGraph, build_csr

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "EclMstConfig",
    "MstResult",
    "__version__",
    "apps",
    "baselines",
    "bench",
    "build_csr",
    "core",
    "dsu",
    "ecl_mst",
    "generators",
    "gpusim",
    "graph",
    "obs",
    "verify_mst",
]
