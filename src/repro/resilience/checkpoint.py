"""Solver-state checkpoints for rollback-and-retry.

A checkpoint copies the mutable algorithm state of one
:class:`~repro.core.kernels.MstState` — parent pointers, reservation
array, MST edge mask, the active worklist, and the cached per-round
representatives.  Cost-model accounting (device counters, modeled
time) is deliberately *not* rolled back: a retried round costs real
modeled time, exactly like a retried launch on hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.worklist import EdgeList

__all__ = ["Checkpoint"]


def _copy_edge_list(wl: EdgeList) -> EdgeList:
    return EdgeList(wl.v.copy(), wl.n.copy(), wl.w.copy(), wl.eid.copy())


@dataclass
class Checkpoint:
    """Copy-on-capture snapshot of the mutable solver state."""

    parent: np.ndarray
    min_edge: np.ndarray
    in_mst: np.ndarray
    front: EdgeList
    round_p: np.ndarray | None
    round_q: np.ndarray | None

    @classmethod
    def capture(cls, state) -> "Checkpoint":
        return cls(
            parent=state.parent.copy(),
            min_edge=state.min_edge.copy(),
            in_mst=state.in_mst.copy(),
            front=_copy_edge_list(state.wl.front),
            round_p=None if state._round_p is None else state._round_p.copy(),
            round_q=None if state._round_q is None else state._round_q.copy(),
        )

    def restore(self, state) -> None:
        """Write the snapshot back into ``state`` (fresh copies, so one
        checkpoint can be restored repeatedly)."""
        np.copyto(state.parent, self.parent)
        np.copyto(state.min_edge, self.min_edge)
        np.copyto(state.in_mst, self.in_mst)
        state.wl.front = _copy_edge_list(self.front)
        state.wl._back_parts = []
        state._round_p = None if self.round_p is None else self.round_p.copy()
        state._round_q = None if self.round_q is None else self.round_q.copy()

    @property
    def nbytes(self) -> int:
        """Checkpoint footprint (for metrics)."""
        total = self.parent.nbytes + self.min_edge.nbytes + self.in_mst.nbytes
        total += sum(
            a.nbytes for a in (self.front.v, self.front.n, self.front.w, self.front.eid)
        )
        return total
