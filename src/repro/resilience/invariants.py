"""Online invariant checks over live solver state.

Cheap, vectorized host-side sweeps (like the artifact's end-of-run
verify, they are not charged to the modeled runtime) that catch
corrupted :class:`~repro.core.kernels.MstState` *during* the run:

* ``parent-range``      — every parent pointer lies in ``[0, |V|)``
* ``parent-acyclic``    — pointer-doubling reaches a fixed point, so
  every vertex is root-reachable (no cycles from flipped bits)
* ``mst-edge-count``    — Borůvka adds exactly one edge per union, so
  ``#MST edges == |V| - #roots`` at every round boundary; this also
  bounds edges per component at ``|C| - 1``
* ``minedge-reset``     — after kernel 3 every reservation slot is back
  at the +infinity sentinel (reserved keys only ever decrease within a
  round and are fully reset at its end)
* ``minedge-monotonic`` — between kernel 1 and kernel 3 no reservation
  key may *increase* (per-kernel mode)
* ``minedge-valid-key`` — every live reservation unpacks to a real edge
  whose weight matches the graph (per-kernel mode)
* ``worklist-live``     — worklist entries reference in-range vertices
  and live edge IDs whose weights match the graph

Each violation raises a typed
:class:`~repro.errors.InvariantViolation` carrying the invariant name,
round, and kernel where it was detected.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvariantViolation
from ..gpusim.atomics import KEY_INFINITY, unpack_edge_id, unpack_weight
from ..obs.events import NULL_EVENTS

__all__ = ["InvariantChecker", "ROUND_INVARIANTS", "KERNEL_INVARIANTS"]

ROUND_INVARIANTS = (
    "parent-range",
    "parent-acyclic",
    "mst-edge-count",
    "minedge-reset",
    "worklist-live",
)
KERNEL_INVARIANTS = ("minedge-monotonic", "minedge-valid-key")


def _violation(name: str, detail: str, round_index: int, kernel: str):
    return InvariantViolation(
        f"invariant {name!r} violated at round {round_index} "
        f"({kernel}): {detail}",
        invariant=name,
        round_index=round_index,
        kernel=kernel,
    )


class InvariantChecker:
    """Stateful checker bound to one solver state.

    ``weight_table`` maps edge ID → weight (the driver's per-edge
    table), used to validate packed keys and worklist entries.
    """

    def __init__(self) -> None:
        self._state = None
        self._weight_table: np.ndarray | None = None
        self._minedge_snapshot: np.ndarray | None = None
        self.checks_run = 0
        # Telemetry hook (set by the RoundGuard): violations emit an
        # ``invariant.violated`` event before the typed raise, carrying
        # the guard's run/query correlation IDs.
        self.events = NULL_EVENTS

    def bind(self, state, weight_table: np.ndarray) -> None:
        self._state = state
        self._weight_table = weight_table

    def resync(self) -> None:
        """Forget kernel-level snapshots (after a rollback)."""
        self._minedge_snapshot = None

    def _emit_violation(self, exc: InvariantViolation) -> None:
        if self.events.enabled:
            self.events.emit(
                "invariant.violated",
                level="error",
                invariant=exc.invariant,
                round=exc.round_index,
                kernel=exc.kernel,
            )

    # ------------------------------------------------------------------
    # Round-boundary sweep
    # ------------------------------------------------------------------
    def check_round(self, *, round_index: int, kernel: str = "round-end") -> None:
        """Run the full cheap sweep; raises on the first violation."""
        state = self._state
        self.checks_run += 1
        try:
            self._check_parent(state.parent, round_index, kernel)
            self._check_mst_count(state, round_index, kernel)
            self._check_minedge_reset(state.min_edge, round_index, kernel)
            self._check_worklist(state, round_index, kernel)
        except InvariantViolation as exc:
            self._emit_violation(exc)
            raise
        self._minedge_snapshot = None

    def _check_parent(self, parent, round_index, kernel) -> None:
        n = parent.size
        if n == 0:
            return
        if int(parent.min()) < 0 or int(parent.max()) >= n:
            bad = int(np.flatnonzero((parent < 0) | (parent >= n))[0])
            raise _violation(
                "parent-range",
                f"parent[{bad}] = {int(parent[bad])} outside [0, {n})",
                round_index,
                kernel,
            )
        # Pointer doubling: after ceil(log2 n)+1 squarings every chain
        # has reached its root unless a cycle exists.
        f = parent
        for _ in range(int(np.ceil(np.log2(max(n, 2)))) + 1):
            f = f[f]
        stuck = f != parent[f]
        if stuck.any():
            bad = int(np.flatnonzero(stuck)[0])
            raise _violation(
                "parent-acyclic",
                f"vertex {bad} never reaches a root (parent cycle)",
                round_index,
                kernel,
            )

    def _check_mst_count(self, state, round_index, kernel) -> None:
        n = state.parent.size
        roots = int(np.count_nonzero(state.parent == np.arange(n)))
        edges = int(np.count_nonzero(state.in_mst))
        if edges != n - roots:
            raise _violation(
                "mst-edge-count",
                f"{edges} MST edges but {n} vertices / {roots} roots "
                f"imply exactly {n - roots} (one union per edge)",
                round_index,
                kernel,
            )

    def _check_minedge_reset(self, min_edge, round_index, kernel) -> None:
        live = min_edge != KEY_INFINITY
        if live.any():
            bad = int(np.flatnonzero(live)[0])
            raise _violation(
                "minedge-reset",
                f"min_edge[{bad}] = {int(min_edge[bad]):#x} not reset to "
                "the +infinity sentinel after kernel 3",
                round_index,
                kernel,
            )

    def _check_worklist(self, state, round_index, kernel) -> None:
        wl = state.wl.front
        if len(wl) == 0:
            return
        n = state.parent.size
        m = self._weight_table.size
        for label, arr in (("source", wl.v), ("destination", wl.n)):
            if int(arr.min()) < 0 or int(arr.max()) >= n:
                raise _violation(
                    "worklist-live",
                    f"worklist {label} endpoint outside [0, {n})",
                    round_index,
                    kernel,
                )
        if int(wl.eid.min()) < 0 or int(wl.eid.max()) >= m:
            raise _violation(
                "worklist-live",
                f"worklist edge ID outside [0, {m})",
                round_index,
                kernel,
            )
        mismatch = wl.w != self._weight_table[wl.eid]
        if mismatch.any():
            bad = int(np.flatnonzero(mismatch)[0])
            raise _violation(
                "worklist-live",
                f"worklist entry {bad} weight {int(wl.w[bad])} does not "
                f"match edge {int(wl.eid[bad])}'s weight "
                f"{int(self._weight_table[wl.eid[bad]])}",
                round_index,
                kernel,
            )

    # ------------------------------------------------------------------
    # Per-kernel probes (forced-checking mode)
    # ------------------------------------------------------------------
    def on_kernel(self, kernel: str, round_index: int) -> None:
        """Device-launch hook: snapshot after k1, validate k2/k3."""
        state = self._state
        if state is None:
            return
        try:
            self._on_kernel_checks(kernel, round_index, state)
        except InvariantViolation as exc:
            self._emit_violation(exc)
            raise

    def _on_kernel_checks(self, kernel: str, round_index: int, state) -> None:
        if kernel == "k1_reserve":
            self.checks_run += 1
            self._check_minedge_keys(state, round_index, kernel)
            self._minedge_snapshot = state.min_edge.copy()
        elif kernel in ("k2_union", "k3_reset"):
            if self._minedge_snapshot is None:
                return
            self.checks_run += 1
            grew = state.min_edge > self._minedge_snapshot
            if grew.any():
                bad = int(np.flatnonzero(grew)[0])
                raise _violation(
                    "minedge-monotonic",
                    f"min_edge[{bad}] increased from "
                    f"{int(self._minedge_snapshot[bad]):#x} to "
                    f"{int(state.min_edge[bad]):#x} after reservation",
                    round_index,
                    kernel,
                )
            if kernel == "k3_reset":
                self._minedge_snapshot = None

    def _check_minedge_keys(self, state, round_index, kernel) -> None:
        """Every live reservation must be a real edge's packed key."""
        min_edge = state.min_edge
        live = min_edge != KEY_INFINITY
        if not live.any():
            return
        keys = min_edge[live]
        eids = unpack_edge_id(keys)
        m = self._weight_table.size
        bad_eid = (eids < 0) | (eids >= m)
        if bad_eid.any():
            raise _violation(
                "minedge-valid-key",
                f"reserved key unpacks to edge ID outside [0, {m})",
                round_index,
                kernel,
            )
        mismatch = unpack_weight(keys) != self._weight_table[eids]
        if mismatch.any():
            bad = int(np.flatnonzero(mismatch)[0])
            raise _violation(
                "minedge-valid-key",
                f"reserved key for edge {int(eids[bad])} carries weight "
                f"{int(unpack_weight(keys)[bad])}, graph says "
                f"{int(self._weight_table[eids[bad]])}",
                round_index,
                kernel,
            )
