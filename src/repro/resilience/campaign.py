"""Chaos campaigns: many seeded fault-injected runs, one verdict.

A campaign runs :func:`~repro.core.eclmst.ecl_mst` repeatedly against
one graph with resilience enabled, injecting a deterministic fault (or
several) per trial across every fault model, and classifies each trial:

* **benign**    — fault fired but the result still matches the serial
  Kruskal reference with no detector involvement (e.g. a permuted
  atomic schedule, or a bit flip in a slot the run never reads again);
* **recovered** — a detector (device fault, invariant, or end-of-run
  verify) fired and the returned result matches the reference;
* **escaped**   — the returned result differs from the reference and
  *no* detector fired: silent corruption.  The headline metric — it
  must be zero for the shipped invariant set.

Fault-free dry runs bound the launch/atomic horizons so every planned
fault lands inside the run, and the reference mask is computed once
and shared across trials.

:func:`run_service_campaign` is the chaos-under-**load** variant: it
drives a policy-armed :class:`~repro.service.engine.MSTService` with
oversubscribed concurrent chaos queries on slowed modeled hardware,
deliberately trips the quarantine and the circuit breaker, then
verifies the overload-safety contract — every query resolves to
exactly one *typed* outcome, nothing hangs, nothing escapes (every
``ok``/``degraded`` answer matches the serial reference), and the
breaker both opens and recovers.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.config import EclMstConfig
from ..core.eclmst import ecl_mst
from ..core.verify import reference_mst_mask
from ..gpusim.spec import GPUSpec, RTX_3080_TI
from .faults import FAULT_KINDS, FaultPlan
from .policy import PolicyConfig
from .recovery import ResilienceConfig

__all__ = [
    "TrialOutcome",
    "CampaignReport",
    "run_campaign",
    "ServiceCampaignReport",
    "run_service_campaign",
]


@dataclass
class TrialOutcome:
    """Classification of one fault-injected run."""

    trial: int
    kinds: tuple[str, ...]
    injected: int
    detected: int
    detectors: tuple[str, ...]
    correct: bool
    fallback: bool
    rounds: int

    @property
    def escaped(self) -> bool:
        return not self.correct and self.detected == 0

    @property
    def benign(self) -> bool:
        return self.correct and self.detected == 0

    @property
    def recovered(self) -> bool:
        return self.correct and self.detected > 0


@dataclass
class CampaignReport:
    """Aggregated verdict of a whole campaign."""

    graph_name: str
    seed: int
    trials: list[TrialOutcome] = field(default_factory=list)

    @property
    def injected(self) -> int:
        return sum(t.injected for t in self.trials)

    @property
    def detected(self) -> int:
        return sum(t.detected for t in self.trials)

    @property
    def recovered(self) -> int:
        return sum(1 for t in self.trials if t.recovered)

    @property
    def benign(self) -> int:
        return sum(1 for t in self.trials if t.benign)

    @property
    def escaped(self) -> int:
        return sum(1 for t in self.trials if t.escaped)

    @property
    def fallbacks(self) -> int:
        return sum(1 for t in self.trials if t.fallback)

    def by_kind(self) -> dict[str, dict[str, int]]:
        """Per-fault-model injected/recovered/benign/escaped counts."""
        out: dict[str, dict[str, int]] = {}
        for t in self.trials:
            for kind in t.kinds:
                row = out.setdefault(
                    kind,
                    {"trials": 0, "injected": 0, "recovered": 0, "benign": 0, "escaped": 0},
                )
                row["trials"] += 1
                row["injected"] += t.injected
                row["recovered"] += int(t.recovered)
                row["benign"] += int(t.benign)
                row["escaped"] += int(t.escaped)
        return out

    def to_dict(self) -> dict:
        return {
            "graph": self.graph_name,
            "seed": self.seed,
            "trials": len(self.trials),
            "injected": self.injected,
            "detected": self.detected,
            "recovered": self.recovered,
            "benign": self.benign,
            "escaped": self.escaped,
            "fallbacks": self.fallbacks,
            "by_kind": self.by_kind(),
        }

    def render(self) -> str:
        """Human-readable campaign table."""
        lines = [
            f"chaos campaign on {self.graph_name} (seed {self.seed}): "
            f"{len(self.trials)} trials, {self.injected} faults injected",
            "",
            f"{'fault model':<18} {'trials':>6} {'injected':>8} "
            f"{'recovered':>9} {'benign':>6} {'escaped':>7}",
        ]
        for kind in sorted(self.by_kind()):
            row = self.by_kind()[kind]
            lines.append(
                f"{kind:<18} {row['trials']:>6} {row['injected']:>8} "
                f"{row['recovered']:>9} {row['benign']:>6} {row['escaped']:>7}"
            )
        lines += [
            "",
            f"totals: {self.recovered} recovered, {self.benign} benign, "
            f"{self.fallbacks} serial fallbacks, {self.escaped} ESCAPED",
            (
                "verdict: PASS (no silent corruption escaped)"
                if self.escaped == 0
                else "verdict: FAIL (silent corruption escaped detection!)"
            ),
        ]
        return "\n".join(lines)


def run_campaign(
    graph,
    *,
    n_faults: int = 100,
    seed: int = 0,
    kinds: tuple[str, ...] = FAULT_KINDS,
    faults_per_trial: int = 1,
    config: EclMstConfig | None = None,
    resilience: ResilienceConfig | None = None,
    gpu: GPUSpec = RTX_3080_TI,
    progress=None,
    shards: int = 1,
    shard_strategy: str = "contiguous",
) -> CampaignReport:
    """Inject at least ``n_faults`` faults across seeded trials.

    Trials run until the injected-fault total reaches ``n_faults`` (a
    planned fault can miss if the faulty run ends earlier than the dry
    run did), with a hard cap of ``4 * ceil(n_faults /
    faults_per_trial)`` trials.  ``progress`` is an optional callable
    receiving one line per trial.

    With ``shards > 1`` every run executes across that many simulated
    devices and each trial's faults land on a single seed-selected
    device (``plan.seed % shards``) — the "kill one GPU of the fleet"
    drill.  The dry run shards identically, so the fault horizons match
    the targeted device's local launch/atomic counts.
    """
    config = config or EclMstConfig()
    resilience = resilience or ResilienceConfig()
    reference = reference_mst_mask(graph)
    # Frozen config: smuggle the precomputed reference past the
    # constructor so trials don't re-run serial Kruskal each time.
    object.__setattr__(resilience, "_reference_mask", reference)

    # Fault-free dry run: horizons for the plan generator, plus a
    # sanity check that the resilient driver agrees with the reference.
    dry_injector_plan = FaultPlan(seed=seed)
    dry = ecl_mst(
        graph, config, gpu=gpu, resilience=resilience,
        fault_plan=dry_injector_plan, shards=shards,
        shard_strategy=shard_strategy,
    )
    if not np.array_equal(dry.in_mst, reference):
        raise AssertionError(
            "fault-free resilient run disagrees with the serial reference"
        )
    fi = dry.extra["fault_injection"]
    launches, atomic_calls = fi["launches_seen"], fi["atomic_calls_seen"]

    report = CampaignReport(graph_name=graph.name, seed=seed)
    max_trials = 4 * -(-n_faults // faults_per_trial)
    trial = 0
    while report.injected < n_faults and trial < max_trials:
        # Rotate the kind offset per trial so every fault model appears
        # even at one fault per trial.
        trial_kinds = tuple(
            kinds[(trial + j) % len(kinds)] for j in range(faults_per_trial)
        )
        plan = FaultPlan.generate(
            seed=seed * 100_003 + trial,
            n_faults=faults_per_trial,
            launches=launches,
            atomic_calls=atomic_calls,
            kinds=trial_kinds,
        )
        result = ecl_mst(
            graph, config, gpu=gpu, resilience=resilience, fault_plan=plan,
            shards=shards, shard_strategy=shard_strategy,
        )
        res = result.extra["resilience"]
        inj = result.extra["fault_injection"]
        outcome = TrialOutcome(
            trial=trial,
            kinds=trial_kinds,
            injected=inj["injected"],
            detected=res["detected"],
            detectors=tuple(
                sorted({d["detector"] for d in res["detections"]})
            ),
            correct=bool(np.array_equal(result.in_mst, reference)),
            fallback=res["fallbacks"] > 0,
            rounds=result.rounds,
        )
        if outcome.injected:
            report.trials.append(outcome)
        if progress is not None:
            status = (
                "escaped!"
                if outcome.escaped
                else "recovered"
                if outcome.recovered
                else "benign"
                if outcome.benign
                else "missed"
            )
            progress(
                f"trial {trial:>3} [{','.join(trial_kinds)}] "
                f"injected={outcome.injected} detected={outcome.detected} "
                f"{status}"
            )
        trial += 1
    return report


# ----------------------------------------------------------------------
# Chaos under load: the service-level campaign
# ----------------------------------------------------------------------

# Every status a ticket may legally resolve to.  Anything else is an
# "untyped" outcome and fails the campaign outright.
TYPED_STATUSES = (
    "ok",
    "degraded",
    "shed",
    "quarantined",
    "error",
    "timeout",
    "cancelled",
)


@dataclass
class ServiceCampaignReport:
    """Verdict of one chaos-under-load drill against the service.

    ``passed`` is the overload-safety contract: zero escaped faults
    (every served answer matches the serial reference), zero hung
    tickets, zero untyped outcomes, and — when the breaker drill ran —
    the breaker both opened under poison traffic and recovered after
    its cooldown.
    """

    graph_name: str
    seed: int
    queries: int = 0
    statuses: dict[str, int] = field(default_factory=dict)
    served_by: dict[str, int] = field(default_factory=dict)
    escaped: int = 0
    hung: int = 0
    untyped: int = 0
    breaker_drill: bool = False
    breaker_opened: bool = False
    breaker_recovered: bool = False
    reference_weight: int = 0
    reference_edges: int = 0
    policy: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    def observe(self, outcome, *, reference) -> None:
        """Classify one resolved ticket against the clean reference."""
        self.queries += 1
        status = outcome.status
        self.statuses[status] = self.statuses.get(status, 0) + 1
        if status not in TYPED_STATUSES:
            self.untyped += 1
        if status in ("ok", "degraded"):
            if outcome.served_by:
                self.served_by[outcome.served_by] = (
                    self.served_by.get(outcome.served_by, 0) + 1
                )
            correct = (
                outcome.total_weight == reference.total_weight
                and outcome.num_mst_edges == reference.num_mst_edges
            )
            if not correct:
                self.escaped += 1

    @property
    def passed(self) -> bool:
        breaker_ok = not self.breaker_drill or (
            self.breaker_opened and self.breaker_recovered
        )
        return (
            self.escaped == 0
            and self.hung == 0
            and self.untyped == 0
            and breaker_ok
        )

    def to_dict(self) -> dict:
        return {
            "graph": self.graph_name,
            "seed": self.seed,
            "queries": self.queries,
            "statuses": dict(sorted(self.statuses.items())),
            "served_by": dict(sorted(self.served_by.items())),
            "escaped": self.escaped,
            "hung": self.hung,
            "untyped": self.untyped,
            "breaker_drill": self.breaker_drill,
            "breaker_opened": self.breaker_opened,
            "breaker_recovered": self.breaker_recovered,
            "passed": self.passed,
            "policy": self.policy,
        }

    def render(self) -> str:
        lines = [
            f"chaos-under-load campaign on {self.graph_name} "
            f"(seed {self.seed}): {self.queries} queries",
            "",
            f"{'outcome':<14} {'count':>6}",
        ]
        for status in TYPED_STATUSES:
            if status in self.statuses:
                lines.append(f"{status:<14} {self.statuses[status]:>6}")
        if self.served_by:
            lines.append("")
            lines.append(f"{'served by':<18} {'count':>6}")
            for via, count in sorted(self.served_by.items()):
                lines.append(f"{via:<18} {count:>6}")
        lines += [
            "",
            f"escaped={self.escaped} hung={self.hung} untyped={self.untyped}",
        ]
        if self.breaker_drill:
            lines.append(
                f"breaker: opened={self.breaker_opened} "
                f"recovered={self.breaker_recovered}"
            )
        lines.append(
            "verdict: PASS (overload-safety contract held)"
            if self.passed
            else "verdict: FAIL (overload-safety contract violated!)"
        )
        return "\n".join(lines)


def run_service_campaign(
    input: str = "internet",
    *,
    scale: float = 0.05,
    n_queries: int = 16,
    workers: int = 2,
    max_queue_depth: int = 4,
    slowdown: float = 2.0,
    seed: int = 0,
    policy: PolicyConfig | None = None,
    timeout_s: float = 60.0,
    progress=None,
) -> ServiceCampaignReport:
    """Drive a policy-armed service through an overload + poison drill.

    Four phases, all against one suite input:

    1. **Overload** — ``n_queries`` concurrent chaos queries (one
       injected fault each, guarded by the recovery ladder) at mixed
       priorities against a small queue on ``slowdown``× hardware;
       admission sheds the excess, the rest recover and answer.
    2. **Quarantine** — one deterministically failing spec (unguarded
       ``kernel-fail`` injection) submitted repeatedly until the
       quarantine entry forms and refuses it at submit.
    3. **Break** — distinct failing specs until the per-graph breaker
       opens; further traffic fails fast or degrades.
    4. **Recover** — healthy probes after the cooldown until one
       executes and closes the breaker.

    Every resolved ticket is classified against the clean serial
    reference; see :class:`ServiceCampaignReport` for the verdict.
    """
    from ..service.engine import MSTService, ServiceConfig, execute_query
    from ..service.query import Query

    if policy is None:
        policy = PolicyConfig(
            admission_rate=50.0,
            admission_burst=max(2, n_queries // 3),
            max_retries=2,
            backoff_base_s=0.001,
            backoff_cap_s=0.02,
            breaker_threshold=3,
            breaker_cooldown_s=0.15,
            serve_stale=True,
            degrade_serial=True,
            quarantine_after=2,
            seed=seed,
        )

    def say(line: str) -> None:
        if progress is not None:
            progress(line)

    reference = execute_query(
        Query(input=input, id="reference", scale=scale)
    )
    if not reference.ok:
        raise AssertionError(
            f"clean reference query failed: {reference.error}"
        )
    digest = reference.result_key.split(":", 1)[0]
    report = ServiceCampaignReport(
        graph_name=input,
        seed=seed,
        breaker_drill=policy.breaker_on,
        reference_weight=reference.total_weight,
        reference_edges=reference.num_mst_edges,
    )

    svc = MSTService(
        ServiceConfig(
            workers=workers,
            pool="thread",
            max_queue_depth=max_queue_depth,
            slowdown=slowdown,
            policy=policy,
        )
    )
    try:
        # Phase 1 — overload: oversubscribed concurrent chaos queries.
        say(f"phase 1: {n_queries} concurrent chaos queries (x{slowdown} slowdown)")
        resolved: dict[str, object] = {}

        def submit_and_wait(q: Query) -> None:
            resolved[q.id] = svc.submit(q).outcome()

        threads = []
        for i in range(n_queries):
            q = Query(
                input=input,
                id=f"load-{i}",
                scale=scale,
                priority=i % 3,
                check_cadence=2,
                fault_seed=seed * 1009 + i,
                n_faults=1,
                timeout_s=timeout_s,
            )
            th = threading.Thread(target=submit_and_wait, args=(q,), daemon=True)
            th.start()
            threads.append(th)
        for th in threads:
            th.join(timeout=3 * timeout_s)
            if th.is_alive():
                report.hung += 1
        for out in resolved.values():
            report.observe(out, reference=reference)
        say(
            "phase 1 done: "
            + " ".join(f"{k}={v}" for k, v in sorted(report.statuses.items()))
        )

        def drill(q: Query) -> object:
            out = svc.submit(q).outcome()
            report.observe(out, reference=reference)
            return out

        # Phase 2 — quarantine one deterministically failing spec.
        poison = dict(
            input=input,
            scale=scale,
            priority=2,
            check_cadence=0,  # unguarded: the injected fault escapes to a
            n_faults=1,  # typed error outcome every time
            fault_kinds=("kernel-fail",),
            timeout_s=timeout_s,
        )
        if policy.quarantine_on:
            time.sleep(0.1)  # let the admission bucket refill
            say("phase 2: quarantining a poison spec")
            for j in range(policy.quarantine_after + 1):
                out = drill(
                    Query(id=f"poison-{j}", fault_seed=seed + 777_001, **poison)
                )
                say(f"  poison-{j}: {out.status}")

        # Phase 3 — open the breaker with distinct failing specs.
        if policy.breaker_on:
            say("phase 3: tripping the circuit breaker")
            breaker = svc.policy.breaker(digest)
            for j in range(policy.breaker_threshold + 2):
                if breaker.state == "open":
                    break
                out = drill(
                    Query(
                        id=f"break-{j}",
                        fault_seed=seed + 888_001 + j,
                        **poison,
                    )
                )
                say(f"  break-{j}: {out.status} (breaker {breaker.state})")
            report.breaker_opened = any(
                to == "open" for _frm, to, _why in breaker.transitions
            )

            # Phase 4 — recover: healthy probes after the cooldown.
            say("phase 4: probing until the breaker closes")
            for k in range(40):
                out = drill(
                    Query(
                        input=input,
                        id=f"probe-{k}",
                        scale=scale,
                        priority=2,
                        timeout_s=timeout_s,
                    )
                )
                if out.status == "ok" and breaker.state == "closed":
                    report.breaker_recovered = True
                    say(f"  probe-{k}: ok (breaker closed)")
                    break
                time.sleep(0.05)

        report.policy = svc.policy.status() if svc.policy else {}
        report.metrics = svc.metrics()
    finally:
        svc.close()
    return report
