"""Chaos campaigns: many seeded fault-injected runs, one verdict.

A campaign runs :func:`~repro.core.eclmst.ecl_mst` repeatedly against
one graph with resilience enabled, injecting a deterministic fault (or
several) per trial across every fault model, and classifies each trial:

* **benign**    — fault fired but the result still matches the serial
  Kruskal reference with no detector involvement (e.g. a permuted
  atomic schedule, or a bit flip in a slot the run never reads again);
* **recovered** — a detector (device fault, invariant, or end-of-run
  verify) fired and the returned result matches the reference;
* **escaped**   — the returned result differs from the reference and
  *no* detector fired: silent corruption.  The headline metric — it
  must be zero for the shipped invariant set.

Fault-free dry runs bound the launch/atomic horizons so every planned
fault lands inside the run, and the reference mask is computed once
and shared across trials.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import EclMstConfig
from ..core.eclmst import ecl_mst
from ..core.verify import reference_mst_mask
from ..gpusim.spec import GPUSpec, RTX_3080_TI
from .faults import FAULT_KINDS, FaultPlan
from .recovery import ResilienceConfig

__all__ = ["TrialOutcome", "CampaignReport", "run_campaign"]


@dataclass
class TrialOutcome:
    """Classification of one fault-injected run."""

    trial: int
    kinds: tuple[str, ...]
    injected: int
    detected: int
    detectors: tuple[str, ...]
    correct: bool
    fallback: bool
    rounds: int

    @property
    def escaped(self) -> bool:
        return not self.correct and self.detected == 0

    @property
    def benign(self) -> bool:
        return self.correct and self.detected == 0

    @property
    def recovered(self) -> bool:
        return self.correct and self.detected > 0


@dataclass
class CampaignReport:
    """Aggregated verdict of a whole campaign."""

    graph_name: str
    seed: int
    trials: list[TrialOutcome] = field(default_factory=list)

    @property
    def injected(self) -> int:
        return sum(t.injected for t in self.trials)

    @property
    def detected(self) -> int:
        return sum(t.detected for t in self.trials)

    @property
    def recovered(self) -> int:
        return sum(1 for t in self.trials if t.recovered)

    @property
    def benign(self) -> int:
        return sum(1 for t in self.trials if t.benign)

    @property
    def escaped(self) -> int:
        return sum(1 for t in self.trials if t.escaped)

    @property
    def fallbacks(self) -> int:
        return sum(1 for t in self.trials if t.fallback)

    def by_kind(self) -> dict[str, dict[str, int]]:
        """Per-fault-model injected/recovered/benign/escaped counts."""
        out: dict[str, dict[str, int]] = {}
        for t in self.trials:
            for kind in t.kinds:
                row = out.setdefault(
                    kind,
                    {"trials": 0, "injected": 0, "recovered": 0, "benign": 0, "escaped": 0},
                )
                row["trials"] += 1
                row["injected"] += t.injected
                row["recovered"] += int(t.recovered)
                row["benign"] += int(t.benign)
                row["escaped"] += int(t.escaped)
        return out

    def to_dict(self) -> dict:
        return {
            "graph": self.graph_name,
            "seed": self.seed,
            "trials": len(self.trials),
            "injected": self.injected,
            "detected": self.detected,
            "recovered": self.recovered,
            "benign": self.benign,
            "escaped": self.escaped,
            "fallbacks": self.fallbacks,
            "by_kind": self.by_kind(),
        }

    def render(self) -> str:
        """Human-readable campaign table."""
        lines = [
            f"chaos campaign on {self.graph_name} (seed {self.seed}): "
            f"{len(self.trials)} trials, {self.injected} faults injected",
            "",
            f"{'fault model':<18} {'trials':>6} {'injected':>8} "
            f"{'recovered':>9} {'benign':>6} {'escaped':>7}",
        ]
        for kind in sorted(self.by_kind()):
            row = self.by_kind()[kind]
            lines.append(
                f"{kind:<18} {row['trials']:>6} {row['injected']:>8} "
                f"{row['recovered']:>9} {row['benign']:>6} {row['escaped']:>7}"
            )
        lines += [
            "",
            f"totals: {self.recovered} recovered, {self.benign} benign, "
            f"{self.fallbacks} serial fallbacks, {self.escaped} ESCAPED",
            (
                "verdict: PASS (no silent corruption escaped)"
                if self.escaped == 0
                else "verdict: FAIL (silent corruption escaped detection!)"
            ),
        ]
        return "\n".join(lines)


def run_campaign(
    graph,
    *,
    n_faults: int = 100,
    seed: int = 0,
    kinds: tuple[str, ...] = FAULT_KINDS,
    faults_per_trial: int = 1,
    config: EclMstConfig | None = None,
    resilience: ResilienceConfig | None = None,
    gpu: GPUSpec = RTX_3080_TI,
    progress=None,
) -> CampaignReport:
    """Inject at least ``n_faults`` faults across seeded trials.

    Trials run until the injected-fault total reaches ``n_faults`` (a
    planned fault can miss if the faulty run ends earlier than the dry
    run did), with a hard cap of ``4 * ceil(n_faults /
    faults_per_trial)`` trials.  ``progress`` is an optional callable
    receiving one line per trial.
    """
    config = config or EclMstConfig()
    resilience = resilience or ResilienceConfig()
    reference = reference_mst_mask(graph)
    # Frozen config: smuggle the precomputed reference past the
    # constructor so trials don't re-run serial Kruskal each time.
    object.__setattr__(resilience, "_reference_mask", reference)

    # Fault-free dry run: horizons for the plan generator, plus a
    # sanity check that the resilient driver agrees with the reference.
    dry_injector_plan = FaultPlan(seed=seed)
    dry = ecl_mst(
        graph, config, gpu=gpu, resilience=resilience, fault_plan=dry_injector_plan
    )
    if not np.array_equal(dry.in_mst, reference):
        raise AssertionError(
            "fault-free resilient run disagrees with the serial reference"
        )
    fi = dry.extra["fault_injection"]
    launches, atomic_calls = fi["launches_seen"], fi["atomic_calls_seen"]

    report = CampaignReport(graph_name=graph.name, seed=seed)
    max_trials = 4 * -(-n_faults // faults_per_trial)
    trial = 0
    while report.injected < n_faults and trial < max_trials:
        # Rotate the kind offset per trial so every fault model appears
        # even at one fault per trial.
        trial_kinds = tuple(
            kinds[(trial + j) % len(kinds)] for j in range(faults_per_trial)
        )
        plan = FaultPlan.generate(
            seed=seed * 100_003 + trial,
            n_faults=faults_per_trial,
            launches=launches,
            atomic_calls=atomic_calls,
            kinds=trial_kinds,
        )
        result = ecl_mst(
            graph, config, gpu=gpu, resilience=resilience, fault_plan=plan
        )
        res = result.extra["resilience"]
        inj = result.extra["fault_injection"]
        outcome = TrialOutcome(
            trial=trial,
            kinds=trial_kinds,
            injected=inj["injected"],
            detected=res["detected"],
            detectors=tuple(
                sorted({d["detector"] for d in res["detections"]})
            ),
            correct=bool(np.array_equal(result.in_mst, reference)),
            fallback=res["fallbacks"] > 0,
            rounds=result.rounds,
        )
        if outcome.injected:
            report.trials.append(outcome)
        if progress is not None:
            status = (
                "escaped!"
                if outcome.escaped
                else "recovered"
                if outcome.recovered
                else "benign"
                if outcome.benign
                else "missed"
            )
            progress(
                f"trial {trial:>3} [{','.join(trial_kinds)}] "
                f"injected={outcome.injected} detected={outcome.detected} "
                f"{status}"
            )
        trial += 1
    return report
