"""Seeded, deterministic fault injection for the simulated GPU.

A :class:`FaultPlan` is a fixed list of :class:`FaultEvent` records,
each bound to a global *launch index* (for state corruption and failed
launches) or a global *atomic-batch index* (for lost/doubled/permuted
``atomicMin`` updates).  The :class:`~repro.gpusim.costmodel.Device`
consults the plan's :class:`FaultInjector` on every kernel launch, and
:func:`~repro.gpusim.atomics.atomic_min_u64` consults it per batch, so
the same seed always injects the same faults at the same points of the
same run — campaigns are exactly reproducible.

Fault models (Section 4's "what if the device misbehaves" gap):

* ``bitflip-parent``   — flip one bit of one ``MstState.parent`` entry
* ``bitflip-minedge``  — flip one bit of one packed ``weight:edge-ID``
  reservation key in ``MstState.min_edge``
* ``drop-atomic``      — silently lose one lane of an ``atomicMin``
  batch (a dropped update)
* ``dup-atomic``       — apply one lane of an ``atomicMin`` batch twice
  (a replayed update; idempotent for min, so must be benign)
* ``permute-atomic``   — adversarially permute the lane order of an
  ``atomicMin`` batch (stresses the determinism claim of the packed-key
  tie-break; must be benign)
* ``kernel-fail``      — the launch itself fails, raising a typed
  :class:`~repro.errors.DeviceFault`

Faults are keyed to monotonically increasing global indices, so a
retried round re-executes at *new* indices and the fault does not
re-fire — the transient-fault model rollback-and-retry relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DeviceFault
from ..obs.events import NULL_EVENTS
from ..obs.trace import NULL_TRACER

__all__ = [
    "FAULT_KINDS",
    "ATOMIC_FAULT_KINDS",
    "LAUNCH_FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
]

LAUNCH_FAULT_KINDS = ("bitflip-parent", "bitflip-minedge", "kernel-fail")
ATOMIC_FAULT_KINDS = ("drop-atomic", "dup-atomic", "permute-atomic")
FAULT_KINDS = LAUNCH_FAULT_KINDS + ATOMIC_FAULT_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault.

    ``index`` is a launch index for launch-scoped kinds and an
    atomic-batch index for atomic-scoped kinds.  ``lane`` and ``bit``
    select the victim entry/bit deterministically (reduced modulo the
    live array size at injection time).
    """

    kind: str
    index: int
    lane: int = 0
    bit: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from "
                f"{', '.join(FAULT_KINDS)}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults for one run."""

    seed: int = 0
    events: tuple[FaultEvent, ...] = ()

    @classmethod
    def generate(
        cls,
        seed: int,
        n_faults: int,
        *,
        launches: int,
        atomic_calls: int,
        kinds: tuple[str, ...] = FAULT_KINDS,
    ) -> "FaultPlan":
        """Spread ``n_faults`` events across a run's launch/atomic span.

        ``launches`` and ``atomic_calls`` are horizons from a fault-free
        dry run of the same workload (so every event lands inside the
        run).  Kinds cycle round-robin through ``kinds`` so a campaign
        covers every fault model evenly.
        """
        for k in kinds:
            if k not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {k!r}")
        rng = np.random.default_rng(seed)
        events = []
        for i in range(n_faults):
            kind = kinds[i % len(kinds)]
            horizon = launches if kind in LAUNCH_FAULT_KINDS else atomic_calls
            events.append(
                FaultEvent(
                    kind=kind,
                    index=int(rng.integers(max(1, horizon))),
                    lane=int(rng.integers(1 << 30)),
                    bit=int(rng.integers(62 if kind == "bitflip-parent" else 64)),
                )
            )
        return cls(seed=seed, events=tuple(events))


@dataclass
class InjectedFault:
    """Record of one fault that actually fired."""

    kind: str
    index: int
    kernel: str = "?"
    detail: str = ""


class FaultInjector:
    """Executes a :class:`FaultPlan` against a bound solver state.

    The driver binds the live :class:`~repro.core.kernels.MstState`
    (:meth:`bind_state`); the Device then calls :meth:`on_launch` per
    kernel launch and the atomics layer calls :meth:`perturb_atomics`
    per ``atomicMin`` batch.  Fired faults are logged on
    :attr:`injected` for campaign accounting.
    """

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan or FaultPlan()
        self.launches = 0
        self.atomic_calls = 0
        self.injected: list[InjectedFault] = []
        # Telemetry hooks, set by the driver: fired faults emit
        # ``fault.injected`` events carrying the driver's run
        # correlation ID and the active trace span.
        self.events = NULL_EVENTS
        self.tracer = NULL_TRACER
        self._state = None
        self._by_launch: dict[int, list[FaultEvent]] = {}
        self._by_atomic: dict[int, list[FaultEvent]] = {}
        for ev in self.plan.events:
            table = (
                self._by_launch
                if ev.kind in LAUNCH_FAULT_KINDS
                else self._by_atomic
            )
            table.setdefault(ev.index, []).append(ev)

    def bind_state(self, state) -> None:
        """Point state-corruption faults at this solver state."""
        self._state = state

    # ------------------------------------------------------------------
    # Device hook
    # ------------------------------------------------------------------
    def on_launch(self, kernel: str) -> None:
        """Fire any faults planned for the current launch index."""
        i = self.launches
        self.launches += 1
        for ev in self._by_launch.get(i, ()):
            self._fire_launch_fault(ev, kernel)

    def _emit(self, kind: str, index: int, kernel: str, detail: str) -> None:
        if self.events.enabled:
            cur = getattr(self.tracer, "current", None)
            self.events.emit(
                "fault.injected",
                level="warning",
                kind=kind,
                index=index,
                kernel=kernel,
                detail=detail,
                span=getattr(cur, "id", 0) if cur is not None else 0,
            )

    def _fire_launch_fault(self, ev: FaultEvent, kernel: str) -> None:
        state = self._state
        if ev.kind == "kernel-fail":
            self.injected.append(
                InjectedFault(ev.kind, ev.index, kernel, "launch aborted")
            )
            self._emit(ev.kind, ev.index, kernel, "launch aborted")
            raise DeviceFault(
                f"simulated launch failure of kernel {kernel!r} "
                f"(launch #{ev.index})",
                kernel=kernel,
                launch_index=ev.index,
                kind=ev.kind,
            )
        if state is None:
            return  # nothing bound to corrupt
        if ev.kind == "bitflip-parent":
            arr = state.parent
            if arr.size == 0:
                return
            pos = ev.lane % arr.size
            old = int(arr[pos])
            arr[pos] = old ^ (1 << (ev.bit % 62))
            detail = f"parent[{pos}]: {old} -> {int(arr[pos])}"
        else:  # bitflip-minedge
            arr = state.min_edge
            if arr.size == 0:
                return
            pos = ev.lane % arr.size
            old = int(arr[pos])
            arr[pos] = np.uint64(old ^ (1 << (ev.bit % 64)))
            detail = f"min_edge[{pos}]: {old:#x} -> {int(arr[pos]):#x}"
        self.injected.append(InjectedFault(ev.kind, ev.index, kernel, detail))
        self._emit(ev.kind, ev.index, kernel, detail)

    # ------------------------------------------------------------------
    # Atomics hook
    # ------------------------------------------------------------------
    def perturb_atomics(
        self, idx: np.ndarray, keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply drop/dup/permute faults planned for this batch."""
        i = self.atomic_calls
        self.atomic_calls += 1
        events = self._by_atomic.get(i)
        if not events:
            return idx, keys
        rng = np.random.default_rng(self.plan.seed ^ (i * 0x9E3779B9 + 1))
        for ev in events:
            if keys.size == 0:
                continue  # empty batch: nothing to perturb
            if ev.kind == "drop-atomic":
                lane = ev.lane % keys.size
                keep = np.ones(keys.size, dtype=bool)
                keep[lane] = False
                detail = f"dropped lane {lane} -> slot {int(idx[lane])}"
                idx, keys = idx[keep], keys[keep]
            elif ev.kind == "dup-atomic":
                lane = ev.lane % keys.size
                idx = np.append(idx, idx[lane])
                keys = np.append(keys, keys[lane])
                detail = f"duplicated lane {lane} -> slot {int(idx[lane])}"
            else:  # permute-atomic
                perm = rng.permutation(keys.size)
                idx, keys = idx[perm], keys[perm]
                detail = f"permuted {keys.size} lanes"
            self.injected.append(
                InjectedFault(ev.kind, ev.index, "k1_reserve", detail)
            )
            self._emit(ev.kind, ev.index, "k1_reserve", detail)
        return idx, keys

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-friendly record of what fired (for ``result.extra``)."""
        by_kind: dict[str, int] = {}
        for f in self.injected:
            by_kind[f.kind] = by_kind.get(f.kind, 0) + 1
        return {
            "planned": len(self.plan.events),
            "injected": len(self.injected),
            "launches_seen": self.launches,
            "atomic_calls_seen": self.atomic_calls,
            "by_kind": by_kind,
            "events": [
                {
                    "kind": f.kind,
                    "index": f.index,
                    "kernel": f.kernel,
                    "detail": f.detail,
                }
                for f in self.injected
            ],
        }
