"""Detection-and-recovery ladder for the resilient ECL-MST driver.

The :class:`RoundGuard` wraps every Alg.-2 round:

1. **Checkpoint** the solver state at round entry.
2. Run the round; a :class:`~repro.errors.DeviceFault` (failed launch)
   or :class:`~repro.errors.InvariantViolation` (online check, at the
   configured cadence) triggers **rollback-and-retry** with jittered
   exponential backoff, up to ``max_retries`` attempts.
3. Retries exhausted → **phase restart**: the driver rolls back to the
   phase-entry checkpoint and reruns the whole phase with invariants
   forced on (per-kernel probes + every-round sweeps).
4. A restarted phase failing again → **serial fallback**: the result is
   replaced by the serial Kruskal reference (the paper's verifier),
   recorded as a degraded-mode completion.

An optional end-of-run **verify detector** compares the finished edge
mask against the reference and falls back on mismatch, so silent
corruption that slipped past the invariants is still caught — the
"escaped" count a chaos campaign reports is corruption that evades
*all* of this.

Everything the ladder does is recorded in :class:`ResilienceStats`
(surfaced as ``result.extra["resilience"]`` and ``resilience.*``
metrics) and as ``recovery`` spans on the active tracer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import DeviceFault, InvariantViolation, UnrecoveredFaultError
from ..obs.events import NULL_EVENTS
from ..obs.trace import NULL_TRACER
from .checkpoint import Checkpoint
from .invariants import InvariantChecker

__all__ = [
    "ResilienceConfig",
    "ResilienceStats",
    "RoundGuard",
    "PhaseRestartRequired",
    "SerialFallbackRequired",
]


class PhaseRestartRequired(Exception):
    """Internal escalation: retry budget exhausted, rerun the phase."""


class SerialFallbackRequired(Exception):
    """Internal escalation: degrade to the serial Kruskal reference."""


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the detection/recovery ladder.

    ``check_cadence=0`` disables the per-round invariant sweeps (and
    round checkpointing with them): a fault-free run is then bit- and
    counter-identical to a plain :func:`~repro.core.eclmst.ecl_mst`
    run with zero overhead.
    """

    check_cadence: int = 1  # rounds between invariant sweeps; 0 = off
    check_kernels: bool = False  # per-kernel probes (forced mode)
    max_retries: int = 2  # rollback-and-retry budget per round
    backoff_base_s: float = 0.0005  # jittered exponential backoff base
    backoff_max_s: float = 0.05
    seed: int = 0  # jitter RNG seed
    verify_result: bool = True  # end-of-run verify-vs-reference detector
    serial_fallback: bool = True  # degrade instead of raising

    @property
    def checking_on(self) -> bool:
        return self.check_cadence > 0 or self.check_kernels


@dataclass
class ResilienceStats:
    """Counters of everything the ladder observed and did."""

    checks_run: int = 0
    invariant_violations: int = 0
    device_faults: int = 0
    rollbacks: int = 0
    retries: int = 0
    phase_restarts: int = 0
    verify_detections: int = 0
    fallbacks: int = 0
    backoff_seconds: float = 0.0
    detections: list = field(default_factory=list)

    @property
    def detected(self) -> int:
        """Total detection events (any detector)."""
        return (
            self.invariant_violations
            + self.device_faults
            + self.verify_detections
        )

    def to_dict(self) -> dict:
        return {
            "checks_run": self.checks_run,
            "invariant_violations": self.invariant_violations,
            "device_faults": self.device_faults,
            "rollbacks": self.rollbacks,
            "retries": self.retries,
            "phase_restarts": self.phase_restarts,
            "verify_detections": self.verify_detections,
            "fallbacks": self.fallbacks,
            "backoff_seconds": self.backoff_seconds,
            "detected": self.detected,
            "detections": list(self.detections),
        }


class RoundGuard:
    """Per-round checkpoint/check/retry wrapper threaded through the
    driver; also serves as the Device's per-kernel probe."""

    def __init__(
        self,
        cfg: ResilienceConfig,
        *,
        tracer=None,
        events=None,
        reference_mask: np.ndarray | None = None,
    ) -> None:
        self.cfg = cfg
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.events = events if events is not None else NULL_EVENTS
        self.stats = ResilienceStats()
        self.checker = InvariantChecker()
        self.checker.events = self.events
        self.forced = False
        self._rng = np.random.default_rng(cfg.seed)
        self._round_index = 0
        self._has_faults = False
        self._reference_mask = reference_mask

    def bind(self, state, weight_table: np.ndarray) -> None:
        self.checker.bind(state, weight_table)
        self._has_faults = state.device.fault_injector is not None

    # ------------------------------------------------------------------
    # Activation predicates
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether rounds need checkpoints/checks at all.  False means
        run_round is a pure passthrough — zero overhead."""
        return self.cfg.checking_on or self.forced or self._has_faults

    def _should_sweep(self, round_index: int) -> bool:
        if self.forced or self.cfg.check_kernels:
            return True
        cadence = self.cfg.check_cadence
        return cadence > 0 and round_index % cadence == 0

    def handles(self, exc: BaseException) -> bool:
        """Whether the ladder treats ``exc`` as a detected fault.

        Typed faults and violations always; raw numpy crashes
        (IndexError and friends) only while fault injection is armed —
        corrupted state legitimately crashes kernels, but on a clean
        run such a crash is a bug that must surface.
        """
        if isinstance(exc, (DeviceFault, InvariantViolation)):
            return True
        return self._has_faults and isinstance(
            exc, (IndexError, ValueError, OverflowError)
        )

    # ------------------------------------------------------------------
    # Device probe (per-kernel checks in forced mode)
    # ------------------------------------------------------------------
    def on_kernel(self, kernel: str) -> None:
        if self.forced or self.cfg.check_kernels:
            self.checker.on_kernel(kernel, self._round_index)

    # ------------------------------------------------------------------
    # The ladder, rung 1: rollback-and-retry
    # ------------------------------------------------------------------
    def run_round(self, state, body, round_index: int):
        """Execute one round under checkpoint protection."""
        if not self.active:
            return body()
        self._round_index = round_index
        cp = Checkpoint.capture(state)
        attempts = 0
        while True:
            try:
                out = body()
                if self._should_sweep(round_index):
                    self.stats.checks_run += 1
                    self.checker.check_round(round_index=round_index)
                return out
            except Exception as exc:
                if not self.handles(exc):
                    raise
                self._record_detection(exc, round_index)
                attempts += 1
                cp.restore(state)
                self.checker.resync()
                self.stats.rollbacks += 1
                if self.events.enabled:
                    self.events.emit(
                        "recovery.rollback",
                        level="warning",
                        round=round_index,
                        attempt=attempts,
                        retry=attempts <= self.cfg.max_retries,
                    )
                if attempts > self.cfg.max_retries:
                    # Rung 2 is the phase wrapper's job.
                    raise PhaseRestartRequired from exc
                self.stats.retries += 1
                self._backoff(attempts)

    def _record_detection(self, exc, round_index: int) -> None:
        if isinstance(exc, DeviceFault):
            self.stats.device_faults += 1
            label, kind = "device-fault", exc.kind
            kernel = exc.kernel
        elif isinstance(exc, InvariantViolation):
            self.stats.invariant_violations += 1
            label, kind = "invariant", exc.invariant
            kernel = exc.kernel
        else:
            # A raw crash out of corrupted state (fault injection armed)
            # — counts as a device-side detection.
            self.stats.device_faults += 1
            label, kind = "device-fault", f"kernel-crash:{type(exc).__name__}"
            kernel = "?"
        self.stats.detections.append(
            {
                "round": round_index,
                "detector": label,
                "kind": kind,
                "kernel": kernel,
                "message": str(exc),
            }
        )
        span_id = 0
        if self.tracer.enabled:
            with self.tracer.span(
                f"detected {label}:{kind}",
                kind="recovery",
                round=round_index,
                kernel=kernel,
            ) as sp:
                span_id = getattr(sp, "id", 0)
        if self.events.enabled:
            self.events.emit(
                "recovery.detected",
                level="warning",
                detector=label,
                kind=kind,
                round=round_index,
                kernel=kernel,
                span=span_id,
            )

    def _backoff(self, attempt: int) -> None:
        base = self.cfg.backoff_base_s
        if base <= 0:
            return
        delay = min(
            self.cfg.backoff_max_s,
            base * (2 ** (attempt - 1)) * (1.0 + self._rng.random()),
        )
        self.stats.backoff_seconds += delay
        time.sleep(delay)

    # ------------------------------------------------------------------
    # Rung 2/3 bookkeeping (called by the driver's phase wrapper)
    # ------------------------------------------------------------------
    def note_phase_fault(self, exc) -> None:
        """Record a detection that escaped the per-round guard."""
        self._record_detection(exc, self._round_index)

    def note_phase_restart(self, label: str) -> None:
        self.stats.phase_restarts += 1
        self.forced = True
        self.checker.resync()
        span_id = 0
        if self.tracer.enabled:
            with self.tracer.span(
                f"phase restart: {label}",
                kind="recovery",
                forced_checks=True,
            ) as sp:
                span_id = getattr(sp, "id", 0)
        if self.events.enabled:
            self.events.emit(
                "recovery.phase_restart",
                level="warning",
                phase=label,
                forced_checks=True,
                span=span_id,
            )

    # ------------------------------------------------------------------
    # End-of-run: verify detector + fallback
    # ------------------------------------------------------------------
    def _reference(self, graph) -> np.ndarray:
        if self._reference_mask is None:
            from ..core.verify import reference_mst_mask

            self._reference_mask = reference_mst_mask(graph)
        return self._reference_mask

    def finalize(
        self, graph, in_mst: np.ndarray, fell_through: bool
    ) -> tuple[np.ndarray, bool]:
        """Apply the last ladder rungs; returns ``(edge mask, degraded)``.

        ``fell_through`` means a phase restart already failed and the
        driver is asking for the serial fallback outright.
        """
        if fell_through:
            if not self.cfg.serial_fallback:
                raise UnrecoveredFaultError(
                    "recovery ladder exhausted (retries and phase restart "
                    "failed) and serial fallback is disabled"
                )
            self.stats.fallbacks += 1
            if self.tracer.enabled:
                with self.tracer.span(
                    "serial fallback", kind="recovery", cause="ladder-exhausted"
                ):
                    pass
            if self.events.enabled:
                self.events.emit(
                    "recovery.fallback", level="error", cause="ladder-exhausted"
                )
            return self._reference(graph).copy(), True
        if self.active and self.cfg.verify_result:
            self.stats.checks_run += 1
            ref = self._reference(graph)
            if not np.array_equal(in_mst, ref):
                self.stats.verify_detections += 1
                if self.events.enabled:
                    self.events.emit(
                        "recovery.detected",
                        level="warning",
                        detector="verify",
                        kind="result-mismatch",
                        round=-1,
                        kernel="end-of-run",
                        span=0,
                    )
                self.stats.detections.append(
                    {
                        "round": -1,
                        "detector": "verify",
                        "kind": "result-mismatch",
                        "kernel": "end-of-run",
                        "message": "final edge mask differs from the "
                        "serial Kruskal reference",
                    }
                )
                if not self.cfg.serial_fallback:
                    raise UnrecoveredFaultError(
                        "end-of-run verify detected silent corruption and "
                        "serial fallback is disabled"
                    )
                self.stats.fallbacks += 1
                if self.tracer.enabled:
                    with self.tracer.span(
                        "serial fallback", kind="recovery", cause="verify"
                    ):
                        pass
                if self.events.enabled:
                    self.events.emit(
                        "recovery.fallback", level="error", cause="verify"
                    )
                return ref.copy(), True
        return in_mst, False
