"""Fault injection, online invariant checking, and recovery.

The robustness layer of the simulated GPU substrate:

* :mod:`~repro.resilience.faults` — seeded deterministic
  :class:`FaultPlan`/:class:`FaultInjector` the Device consults to
  inject transient faults (bit flips, lost/doubled/permuted atomics,
  failed launches);
* :mod:`~repro.resilience.invariants` — cheap vectorized online checks
  over live solver state, raising typed
  :class:`~repro.errors.InvariantViolation`;
* :mod:`~repro.resilience.checkpoint` — per-round solver-state
  snapshots for rollback;
* :mod:`~repro.resilience.recovery` — the detection/recovery ladder
  (rollback-and-retry → phase restart with forced checks → serial
  Kruskal fallback), configured by :class:`ResilienceConfig`;
* :mod:`~repro.resilience.campaign` — chaos campaigns reporting
  injected/detected/recovered/escaped counts (``repro-mst chaos``),
  including the chaos-under-load *service* campaign;
* :mod:`~repro.resilience.policy` — the overload-safe **serving**
  policy (admission control/load shedding, budgeted retries with
  decorrelated-jitter backoff, per-graph circuit breakers, poison-
  query quarantine), attached to the service via
  ``ServiceConfig.policy``.
"""

from .campaign import (
    CampaignReport,
    ServiceCampaignReport,
    TrialOutcome,
    run_campaign,
    run_service_campaign,
)
from .checkpoint import Checkpoint
from .faults import (
    ATOMIC_FAULT_KINDS,
    FAULT_KINDS,
    LAUNCH_FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from .invariants import KERNEL_INVARIANTS, ROUND_INVARIANTS, InvariantChecker
from .policy import (
    AdmissionController,
    CircuitBreaker,
    PolicyConfig,
    Quarantine,
    ResiliencePolicy,
    RetryPolicy,
    TokenBucket,
)
from .recovery import ResilienceConfig, ResilienceStats, RoundGuard

__all__ = [
    "ATOMIC_FAULT_KINDS",
    "AdmissionController",
    "CampaignReport",
    "Checkpoint",
    "CircuitBreaker",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InvariantChecker",
    "KERNEL_INVARIANTS",
    "LAUNCH_FAULT_KINDS",
    "PolicyConfig",
    "Quarantine",
    "ROUND_INVARIANTS",
    "ResilienceConfig",
    "ResiliencePolicy",
    "ResilienceStats",
    "RetryPolicy",
    "RoundGuard",
    "ServiceCampaignReport",
    "TokenBucket",
    "TrialOutcome",
    "run_campaign",
    "run_service_campaign",
]
