"""Overload-safe serving policy: admission, retries, breakers, quarantine.

Where the rest of :mod:`repro.resilience` protects one *solver run*
against device faults, this module protects the *service* against its
own traffic: a burst of slow queries must degrade into predictable
typed outcomes instead of a timeout cascade.  Four cooperating
mechanisms, all knobs on :class:`PolicyConfig` and all deterministic
under a seed + injectable clock:

* :class:`TokenBucket` + the queue-depth gate inside
  :class:`AdmissionController` — **load shedding**.  A query is shed
  *before* queueing when the bucket is empty or the queue is too deep
  for its priority; low-priority queries are shed first (they need
  bucket headroom and tolerate less depth), so background traffic
  yields to interactive traffic under pressure.
* :class:`RetryPolicy` — **exponential backoff with decorrelated
  jitter** (the AWS-style ``min(cap, uniform(base, 3 * prev))``
  recurrence) for transient fault/timeout outcomes, budgeted per query
  and deadline-aware: a retry whose backoff would land past the
  query's deadline is not attempted.
* :class:`CircuitBreaker` — **per-graph-fingerprint** failure tracking
  with the classic closed → open → half-open automaton.  While open,
  queries against that graph fail fast (or degrade); cooldowns grow
  exponentially with seeded jitter so probe scheduling is reproducible
  trial-for-trial.  Transitions are edge-triggered ``breaker.open`` /
  ``breaker.closed`` events and are recorded in order for tests.
* :class:`Quarantine` — **poison-query isolation**: a spec that keeps
  failing after its retries is quarantined; later identical
  submissions resolve immediately to a typed ``quarantined`` outcome
  instead of re-entering the retry loop.

:class:`ResiliencePolicy` bundles the four behind one facade the
:class:`~repro.service.engine.MSTService` consults; with
``PolicyConfig()`` (everything off) the facade is never constructed
and the serving path is bit-identical to a policy-free service.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from time import monotonic
from typing import Callable

from ..obs.events import NULL_EVENTS
from ..obs.window import SlidingCounter

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "CircuitBreaker",
    "PolicyConfig",
    "Quarantine",
    "ResiliencePolicy",
    "RetryPolicy",
    "TokenBucket",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "PRIORITY_HIGH",
]

# Query priority levels (higher = more important; sheds last).  The
# Query field is a free int — anything <= 0 is treated as LOW and
# anything >= 2 as HIGH.
PRIORITY_LOW = 0
PRIORITY_NORMAL = 1
PRIORITY_HIGH = 2

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

# Retryable failure families: transient device faults and timeouts.
# Input and verification errors are deterministic — retrying them
# reproduces the failure and burns the budget for nothing.
RETRYABLE_ERROR_KINDS = ("fault", "timeout")


@dataclass(frozen=True)
class PolicyConfig:
    """Every serving-policy knob (attach via ``ServiceConfig.policy``).

    The defaults leave **everything off**: admission, retries, breaker,
    degradation, and quarantine each activate only when their knob is
    nonzero/true, and a fully-off config makes the service skip policy
    construction entirely (bit-identical serving path).
    """

    # --- admission control / load shedding ---
    admission_rate: float = 0.0  # sustained queries/s; 0 = gate off
    admission_burst: int = 8  # token-bucket capacity
    shed_depth_frac: tuple[float, float, float] = (0.5, 0.9, 1.0)
    # queue-depth fraction (of max_queue_depth) at which LOW / NORMAL /
    # HIGH priority queries are shed instead of queued
    # --- retries ---
    max_retries: int = 0  # per-query retry budget; 0 = off
    backoff_base_s: float = 0.01  # decorrelated-jitter floor
    backoff_cap_s: float = 0.25  # per-attempt backoff ceiling
    # --- circuit breaker (per graph fingerprint) ---
    breaker_threshold: int = 0  # consecutive failures to open; 0 = off
    breaker_cooldown_s: float = 1.0  # open duration before half-open
    breaker_probes: int = 1  # half-open successes needed to close
    # --- graceful degradation ---
    serve_stale: bool = False  # shed/broken queries may answer stale
    fresh_ttl_s: float = 0.0  # cache-entry freshness; 0 = never expires
    stale_max_age_s: float = 300.0  # oldest cached result still served
    degrade_serial: bool = False  # serial-Kruskal fallback when broken
    # --- poison-query quarantine ---
    quarantine_after: int = 0  # consecutive failed executions; 0 = off
    # --- determinism ---
    seed: int = 0  # jitter RNG seed (backoff + breaker cooldowns)

    def __post_init__(self) -> None:
        if self.admission_rate < 0:
            raise ValueError("admission_rate must be >= 0")
        if self.admission_burst < 1:
            raise ValueError("admission_burst must be >= 1")
        if len(self.shed_depth_frac) != 3 or any(
            not 0.0 < f <= 1.0 for f in self.shed_depth_frac
        ):
            raise ValueError("shed_depth_frac needs three fractions in (0, 1]")
        if self.max_retries < 0 or self.breaker_threshold < 0:
            raise ValueError("retry/breaker thresholds must be >= 0")
        if self.quarantine_after < 0:
            raise ValueError("quarantine_after must be >= 0")

    @property
    def admission_on(self) -> bool:
        return self.admission_rate > 0

    @property
    def retries_on(self) -> bool:
        return self.max_retries > 0

    @property
    def breaker_on(self) -> bool:
        return self.breaker_threshold > 0

    @property
    def quarantine_on(self) -> bool:
        return self.quarantine_after > 0

    @property
    def degradation_on(self) -> bool:
        return self.serve_stale or self.degrade_serial

    @property
    def enabled(self) -> bool:
        """Whether *any* mechanism is active (off ⇒ no policy object)."""
        return (
            self.admission_on
            or self.retries_on
            or self.breaker_on
            or self.quarantine_on
            or self.degradation_on
        )

    def to_dict(self) -> dict:
        return {
            "admission_rate": self.admission_rate,
            "admission_burst": self.admission_burst,
            "max_retries": self.max_retries,
            "breaker_threshold": self.breaker_threshold,
            "breaker_cooldown_s": self.breaker_cooldown_s,
            "serve_stale": self.serve_stale,
            "fresh_ttl_s": self.fresh_ttl_s,
            "degrade_serial": self.degrade_serial,
            "quarantine_after": self.quarantine_after,
            "seed": self.seed,
        }


# ----------------------------------------------------------------------
# Token bucket
# ----------------------------------------------------------------------
class TokenBucket:
    """Continuous-refill token bucket with an injectable clock.

    ``try_take(reserve=r)`` succeeds only while at least ``cost + r``
    tokens are available — the reserve is how lower-priority callers
    are made to leave headroom for higher-priority ones.
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        *,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock or monotonic
        self._level = self.burst
        self._last = self._clock()
        self._lock = threading.Lock()

    def _refill_locked(self, now: float) -> None:
        if now > self._last:
            self._level = min(self.burst, self._level + (now - self._last) * self.rate)
        self._last = max(self._last, now)

    def level(self) -> float:
        with self._lock:
            self._refill_locked(self._clock())
            return self._level

    def try_take(self, cost: float = 1.0, *, reserve: float = 0.0) -> bool:
        with self._lock:
            self._refill_locked(self._clock())
            if self._level - cost < reserve:
                return False
            self._level -= cost
            return True


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdmissionDecision:
    """What the gate decided and why (``reason`` is the shed cause)."""

    admitted: bool
    reason: str = "ok"  # "ok" | "token-bucket" | "queue-depth"


class AdmissionController:
    """Token bucket + queue-depth gate, priority-aware.

    Priority ``p`` (clamped to LOW/NORMAL/HIGH) buys two things:

    * a deeper queue allowance — ``shed_depth_frac[p] * max_depth``;
    * less token-bucket headroom to leave — LOW must leave half the
      burst unspent, NORMAL one token, HIGH dips to the bottom.

    Both checks are cheap and run before the query ever touches the
    queue, so shedding is O(1) regardless of load.
    """

    def __init__(
        self,
        cfg: PolicyConfig,
        max_queue_depth: int,
        *,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.cfg = cfg
        self.max_queue_depth = max_queue_depth
        self.bucket = TokenBucket(
            cfg.admission_rate, cfg.admission_burst, clock=clock
        )

    @staticmethod
    def _clamp(priority: int) -> int:
        return max(PRIORITY_LOW, min(PRIORITY_HIGH, priority))

    def decide(self, *, priority: int, queue_depth: int) -> AdmissionDecision:
        p = self._clamp(priority)
        allowed_depth = self.cfg.shed_depth_frac[p] * self.max_queue_depth
        if queue_depth >= allowed_depth:
            return AdmissionDecision(False, "queue-depth")
        reserve = (0.5 * self.cfg.admission_burst, 1.0, 0.0)[p]
        if not self.bucket.try_take(1.0, reserve=reserve):
            return AdmissionDecision(False, "token-bucket")
        return AdmissionDecision(True)


# ----------------------------------------------------------------------
# Retry with decorrelated jitter
# ----------------------------------------------------------------------
class RetryPolicy:
    """Per-query retry scheduler (create one per query via
    :meth:`ResiliencePolicy.retry_for`).

    Backoff follows the decorrelated-jitter recurrence: each delay is
    drawn uniformly from ``[base, 3 * previous]`` and capped.  The RNG
    is seeded from ``(policy seed, query key)``, so the exact delay
    sequence — and therefore every downstream decision — replays for a
    given seed regardless of thread interleaving.
    """

    def __init__(self, cfg: PolicyConfig, key: str) -> None:
        self.cfg = cfg
        self._rng = random.Random(f"retry:{cfg.seed}:{key}")
        self._prev = cfg.backoff_base_s
        self.attempts_used = 0
        self.delays: list[float] = []

    def next_delay(self) -> float:
        """Draw (and record) the next backoff delay in seconds."""
        delay = min(
            self.cfg.backoff_cap_s,
            self._rng.uniform(self.cfg.backoff_base_s, 3.0 * self._prev),
        )
        self._prev = max(delay, self.cfg.backoff_base_s)
        return delay

    def should_retry(
        self,
        *,
        error_kind: str,
        delay: float,
        now: float,
        deadline: float | None,
    ) -> bool:
        """Budget + transience + deadline check for one more attempt."""
        if self.attempts_used >= self.cfg.max_retries:
            return False
        if error_kind not in RETRYABLE_ERROR_KINDS:
            return False
        if deadline is not None and now + delay >= deadline:
            return False  # never retry past the query's deadline
        return True

    def note_attempt(self, delay: float) -> None:
        self.attempts_used += 1
        self.delays.append(delay)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Closed → open → half-open breaker for one graph fingerprint.

    * **closed**: requests pass; ``breaker_threshold`` *consecutive*
      failures open it.
    * **open**: requests fail fast until the cooldown elapses; the
      cooldown doubles per consecutive open (seeded jitter on top) so
      a persistently failing backend is probed ever more rarely — and
      reproducibly, since the jitter RNG is seeded per key.
    * **half-open**: one probe at a time passes; ``breaker_probes``
      successes close it, any failure re-opens it.

    ``transitions`` records every state change in order — the
    determinism tests replay a fault plan and compare this list.
    """

    def __init__(
        self,
        cfg: PolicyConfig,
        key: str,
        *,
        clock: Callable[[], float] | None = None,
        events=NULL_EVENTS,
    ) -> None:
        self.cfg = cfg
        self.key = key
        self.events = events
        self._clock = clock or monotonic
        self._lock = threading.Lock()
        self.state = BREAKER_CLOSED
        self.failures = 0  # consecutive failures while closed
        self.opens = 0  # lifetime open count (cooldown exponent)
        self.probe_successes = 0
        self._probe_inflight = False
        self._open_until = 0.0
        self._rng = random.Random(f"breaker:{cfg.seed}:{key}")
        self.transitions: list[tuple[str, str, str]] = []  # (from, to, why)
        self.last_failure_query: str | None = None  # exemplar

    # -- transitions ---------------------------------------------------
    def _move_locked(self, to: str, why: str) -> None:
        frm, self.state = self.state, to
        self.transitions.append((frm, to, why))
        if to == BREAKER_OPEN:
            self.opens += 1
            backoff = self.cfg.breaker_cooldown_s * (2 ** (self.opens - 1))
            self._open_until = self._clock() + backoff * (
                1.0 + 0.1 * self._rng.random()
            )
            self._probe_inflight = False
        elif to == BREAKER_HALF_OPEN:
            self.probe_successes = 0
            self._probe_inflight = False
        elif to == BREAKER_CLOSED:
            self.failures = 0
            self.opens = 0
            self._probe_inflight = False
        # Edge-triggered events: only open/closed are alertable edges;
        # half-open is a scheduling detail (debug).
        if self.events.enabled:
            if to == BREAKER_OPEN:
                fields = {
                    "graph": self.key,
                    "failures": self.failures,
                    "opens": self.opens,
                    "why": why,
                }
                if self.last_failure_query:
                    fields["exemplar"] = self.last_failure_query
                self.events.emit("breaker.open", level="error", **fields)
            elif to == BREAKER_CLOSED:
                self.events.emit(
                    "breaker.closed", level="info", graph=self.key, why=why
                )
            else:
                self.events.emit(
                    "breaker.half_open", level="debug", graph=self.key
                )

    # -- the request-path API ------------------------------------------
    def allow(self) -> bool:
        """Whether a request against this graph may execute now."""
        with self._lock:
            if self.state == BREAKER_CLOSED:
                return True
            now = self._clock()
            if self.state == BREAKER_OPEN:
                if now < self._open_until:
                    return False
                self._move_locked(BREAKER_HALF_OPEN, "cooldown-elapsed")
            # half-open: admit a single probe at a time
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def record(self, ok: bool, *, query_id: str | None = None) -> None:
        """Feed one execution result into the automaton.

        ``query_id`` tags failures: the last failing query becomes the
        exemplar on ``breaker.open`` events and in snapshots."""
        with self._lock:
            if not ok and query_id:
                self.last_failure_query = query_id
            if self.state == BREAKER_HALF_OPEN:
                self._probe_inflight = False
                if ok:
                    self.probe_successes += 1
                    if self.probe_successes >= self.cfg.breaker_probes:
                        self._move_locked(BREAKER_CLOSED, "probe-succeeded")
                else:
                    self._move_locked(BREAKER_OPEN, "probe-failed")
                return
            if self.state == BREAKER_OPEN:
                return  # late completion of a pre-open execution
            if ok:
                self.failures = 0
                return
            self.failures += 1
            if self.failures >= self.cfg.breaker_threshold:
                self._move_locked(BREAKER_OPEN, "threshold")

    def rejecting(self) -> bool:
        """Open and still cooling — a *peek* that consumes nothing.

        Used on the submit path: an advisory fast-fail that must not
        steal half-open probe slots from the worker's authoritative
        :meth:`allow` check (and must not itself trigger the
        open → half-open transition).
        """
        with self._lock:
            return (
                self.state == BREAKER_OPEN
                and self._clock() < self._open_until
            )

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "graph": self.key,
                "state": self.state,
                "failures": self.failures,
                "opens": self.opens,
                "open_for_s": max(0.0, self._open_until - self._clock())
                if self.state == BREAKER_OPEN
                else 0.0,
                "last_failure_query": self.last_failure_query,
            }


# ----------------------------------------------------------------------
# Poison-query quarantine
# ----------------------------------------------------------------------
class Quarantine:
    """Tracks consecutive failed *executions* per query spec.

    Reaching ``quarantine_after`` quarantines the spec: later identical
    submissions resolve immediately (typed ``quarantined`` outcome)
    instead of re-entering the execute/retry loop.  A successful
    execution of the spec (e.g. after an operator clears it) resets
    the count.
    """

    def __init__(self, cfg: PolicyConfig, *, events=NULL_EVENTS) -> None:
        self.cfg = cfg
        self.events = events
        self._lock = threading.Lock()
        self._failures: dict[str, int] = {}
        self._entries: dict[str, dict] = {}

    def check(self, key: str) -> dict | None:
        """The quarantine entry for ``key``, or None if it may run."""
        with self._lock:
            return self._entries.get(key)

    def record(self, key: str, *, ok: bool, error_kind: str = "") -> bool:
        """Feed one final (post-retry) execution result; returns True
        on the edge where the spec becomes quarantined."""
        with self._lock:
            if ok:
                self._failures.pop(key, None)
                self._entries.pop(key, None)
                return False
            count = self._failures.get(key, 0) + 1
            self._failures[key] = count
            if count < self.cfg.quarantine_after or key in self._entries:
                return False
            self._entries[key] = {
                "failures": count,
                "last_error_kind": error_kind,
            }
        if self.events.enabled:
            self.events.emit(
                "policy.quarantine",
                level="error",
                spec=key,
                failures=count,
                last_error_kind=error_kind,
            )
        return True

    def release(self, key: str) -> None:
        with self._lock:
            self._failures.pop(key, None)
            self._entries.pop(key, None)

    def snapshot(self) -> dict[str, dict]:
        with self._lock:
            return {k: dict(v) for k, v in self._entries.items()}


# ----------------------------------------------------------------------
# The facade the service talks to
# ----------------------------------------------------------------------
class ResiliencePolicy:
    """One object bundling admission, breakers, retries and quarantine.

    Also owns the ``resilience.policy.*`` telemetry: lifetime counters
    go into ``registry`` (when given), recent-traffic rates into
    sliding windows surfaced by :meth:`windowed_metrics`, and every
    decision is a structured event.  ``sleeper`` is injectable so retry
    tests never actually sleep.
    """

    WINDOW_KEYS = (
        "admitted",
        "shed",
        "retries",
        "breaker_fastfail",
        "degraded",
        "quarantined",
    )

    def __init__(
        self,
        cfg: PolicyConfig,
        *,
        max_queue_depth: int,
        registry=None,
        events=NULL_EVENTS,
        window_s: float = 60.0,
        clock: Callable[[], float] | None = None,
        sleeper: Callable[[float], None] | None = None,
    ) -> None:
        self.cfg = cfg
        self.events = events
        self.registry = registry
        self._clock = clock or monotonic
        if sleeper is None:
            import time as _time

            sleeper = _time.sleep
        self.sleep = sleeper
        self.admission = (
            AdmissionController(cfg, max_queue_depth, clock=clock)
            if cfg.admission_on
            else None
        )
        self.quarantine = Quarantine(cfg, events=events)
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        self._windows = {
            k: SlidingCounter(window_s, clock=clock) for k in self.WINDOW_KEYS
        }

    # -- telemetry helpers ---------------------------------------------
    def _count(self, key: str, amount: float = 1.0) -> None:
        self._windows[key].inc(amount)
        if self.registry is not None:
            self.registry.counter(f"resilience.policy.{key}").inc(amount)

    def windowed_metrics(self) -> dict[str, float]:
        """Recent-traffic policy gauges (the ``/metrics`` surface)."""
        out = {
            f"resilience.policy.{k}_per_s": w.rate()
            for k, w in self._windows.items()
        }
        admitted = self._windows["admitted"].total()
        shed = self._windows["shed"].total()
        seen = admitted + shed
        out["resilience.policy.shed_rate"] = shed / seen if seen else 0.0
        out["resilience.policy.breakers_open"] = float(
            sum(
                1
                for b in self._breakers.values()
                if b.state != BREAKER_CLOSED
            )
        )
        return out

    # -- admission -----------------------------------------------------
    def admit(self, *, priority: int, queue_depth: int) -> AdmissionDecision:
        if self.admission is None:
            self._count("admitted")
            return AdmissionDecision(True)
        decision = self.admission.decide(
            priority=priority, queue_depth=queue_depth
        )
        self._count("admitted" if decision.admitted else "shed")
        return decision

    def note_shed(self) -> None:
        """Account a shed that bypassed :meth:`admit` (breaker path)."""
        self._count("shed")

    def allow_fallback(self) -> bool:
        """Whether a degraded serial fallback may run *now*.

        The fallback re-enters the token bucket at the lowest priority
        (it must leave headroom for real traffic); with admission off
        it always may.
        """
        if self.admission is None:
            return True
        return self.admission.bucket.try_take(
            1.0, reserve=0.5 * self.cfg.admission_burst
        )

    # -- breakers ------------------------------------------------------
    def breaker(self, graph_digest: str) -> CircuitBreaker:
        with self._breaker_lock:
            b = self._breakers.get(graph_digest)
            if b is None:
                b = CircuitBreaker(
                    self.cfg,
                    graph_digest,
                    clock=self._clock,
                    events=self.events,
                )
                self._breakers[graph_digest] = b
            return b

    def breaker_allows(self, graph_digest: str | None) -> bool:
        """Authoritative check (worker side): may transition the
        breaker and consume a half-open probe slot.  Counts the
        fastfail when it refuses."""
        if not self.cfg.breaker_on or graph_digest is None:
            return True
        if self.breaker(graph_digest).allow():
            return True
        self._count("breaker_fastfail")
        return False

    def breaker_rejects_fast(self, graph_digest: str | None) -> bool:
        """Advisory peek (submit side): True only while the breaker is
        open and cooling.  Never creates a breaker, never transitions
        one, never consumes a probe slot."""
        if not self.cfg.breaker_on or graph_digest is None:
            return False
        with self._breaker_lock:
            b = self._breakers.get(graph_digest)
        if b is None or not b.rejecting():
            return False
        self._count("breaker_fastfail")
        return True

    def breaker_record(
        self,
        graph_digest: str | None,
        *,
        ok: bool,
        query_id: str | None = None,
    ) -> None:
        if self.cfg.breaker_on and graph_digest is not None:
            self.breaker(graph_digest).record(ok, query_id=query_id)

    def breaker_snapshots(self) -> list[dict]:
        with self._breaker_lock:
            breakers = list(self._breakers.values())
        return [b.snapshot() for b in breakers]

    # -- retries -------------------------------------------------------
    def retry_for(self, key: str) -> RetryPolicy:
        return RetryPolicy(self.cfg, key)

    def note_retry(self) -> None:
        self._count("retries")

    # -- degradation / quarantine accounting ---------------------------
    def note_degraded(self) -> None:
        self._count("degraded")

    def note_quarantined(self) -> None:
        self._count("quarantined")

    # -- snapshots ------------------------------------------------------
    def status(self) -> dict:
        """JSON-friendly policy block for ``/statusz``."""
        win = {k: w.total() for k, w in self._windows.items()}
        admitted, shed = win["admitted"], win["shed"]
        seen = admitted + shed
        return {
            "config": self.cfg.to_dict(),
            "window": win,
            "shed_rate": shed / seen if seen else 0.0,
            "breakers": self.breaker_snapshots(),
            "quarantined": self.quarantine.snapshot(),
        }
