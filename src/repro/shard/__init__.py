"""Multi-device sharded MST execution (partitioned Borůvka).

Public surface: :func:`~repro.shard.engine.sharded_mst` (what
``ecl_mst(shards=N)`` delegates to), the partitioners in
:mod:`repro.shard.partition`, and the inter-device
:class:`~repro.gpusim.costmodel.LinkSpec` cost model.
"""

from .engine import BYTES_PER_EDGE, sharded_mst
from .partition import (
    PARTITION_STRATEGIES,
    Partition,
    ShardGraph,
    extract_shards,
    partition_graph,
)

__all__ = [
    "BYTES_PER_EDGE",
    "PARTITION_STRATEGIES",
    "Partition",
    "ShardGraph",
    "extract_shards",
    "partition_graph",
    "sharded_mst",
]
