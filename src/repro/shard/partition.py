"""Graph partitioners for multi-device sharded MST execution.

A partition assigns every vertex to one of ``n_shards`` simulated
devices.  An undirected edge is *internal* when both endpoints land on
the same shard (it is solved locally, device-parallel) and a *cut*
(boundary) edge otherwise (it is shipped to the coordinator for the
merge round — see :mod:`repro.shard.engine`).  Two strategies:

* ``contiguous`` — consecutive vertex ranges, with range boundaries
  placed by binary search on the CSR row pointer so every shard gets
  an (approximately) equal share of the *directed edges*, not the
  vertices.  This is the locality-preserving choice: suite graphs with
  coherent vertex orderings (road networks, meshes) keep most edges
  internal.
* ``hash`` — a multiplicative (Knuth) hash of the vertex ID.  Loads
  balance well on any ordering, at the price of a near-worst-case cut
  — useful as the adversarial baseline when studying comms share.

:func:`extract_shards` materializes each shard's induced internal-edge
subgraph as a standalone :class:`~repro.graph.csr.CSRGraph` (local
vertex IDs ``0..k-1``) plus the mapping arrays needed to lift local
MST selections back to global edge IDs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.build import from_edge_arrays
from ..graph.csr import CSRGraph

__all__ = [
    "PARTITION_STRATEGIES",
    "Partition",
    "ShardGraph",
    "extract_shards",
    "partition_graph",
]

PARTITION_STRATEGIES = ("contiguous", "hash")

# Knuth's multiplicative hash constant (2^32 / phi), applied mod 2^32.
_HASH_MULT = np.uint64(2654435761)
_HASH_MASK = np.uint64(0xFFFFFFFF)


@dataclass
class Partition:
    """A vertex→shard assignment plus its balance/cut statistics."""

    n_shards: int
    strategy: str
    assignment: np.ndarray  # int32, one shard ID per vertex
    loads: tuple  # per-shard directed-edge load (sum of degrees)
    cut_edges: int  # undirected edges with endpoints on two shards

    @property
    def imbalance(self) -> float:
        """Max per-shard edge load over the mean (1.0 = perfect).

        The classic partitioning-quality ratio: modeled sharded time is
        gated by the most loaded device, so imbalance upper-bounds the
        parallel-efficiency loss before comms even enter.
        """
        total = sum(self.loads)
        if not self.loads or total == 0:
            return 1.0
        return max(self.loads) / (total / len(self.loads))


@dataclass
class ShardGraph:
    """One shard's induced internal-edge subgraph plus lift-back maps."""

    shard: int
    graph: CSRGraph
    # Global vertex IDs owned by this shard (ascending); local vertex i
    # is global ``vertices[i]``.
    vertices: np.ndarray
    # Local undirected edge ID → global undirected edge ID.
    eid_map: np.ndarray


def partition_graph(
    graph: CSRGraph, n_shards: int, strategy: str = "contiguous"
) -> Partition:
    """Assign every vertex of ``graph`` to one of ``n_shards`` shards."""
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if strategy not in PARTITION_STRATEGIES:
        raise ValueError(
            f"unknown partition strategy {strategy!r} "
            f"(expected one of {PARTITION_STRATEGIES})"
        )
    n = graph.num_vertices
    if strategy == "hash":
        ids = np.arange(n, dtype=np.uint64)
        assignment = (
            ((ids * _HASH_MULT) & _HASH_MASK) % np.uint64(n_shards)
        ).astype(np.int32)
    else:
        # Split the cumulative directed-degree curve (the row pointer)
        # at n_shards equal targets: shard boundary b_i is the first
        # vertex whose prefix load reaches i/n_shards of the total.
        total = int(graph.row_ptr[-1])
        targets = (total * np.arange(1, n_shards)) // n_shards
        bounds = np.searchsorted(graph.row_ptr[1:], targets, side="left")
        assignment = np.searchsorted(
            bounds, np.arange(n), side="right"
        ).astype(np.int32)

    loads = np.bincount(
        assignment, weights=graph.degrees().astype(np.float64), minlength=n_shards
    ).astype(np.int64)
    u, v, _w, _eid = graph.undirected_edges()
    if u.size:
        cut = int((assignment[u] != assignment[v]).sum())
    else:
        cut = 0
    return Partition(
        n_shards=n_shards,
        strategy=strategy,
        assignment=assignment,
        loads=tuple(int(x) for x in loads),
        cut_edges=cut,
    )


def extract_shards(graph: CSRGraph, part: Partition) -> list[ShardGraph]:
    """Materialize every shard's internal-edge subgraph.

    Each subgraph renumbers the shard's vertices to ``0..k-1``
    (preserving global order, so global ``u < v`` implies local
    ``lo < hi``) and keeps only edges with both endpoints on the shard.
    ``eid_map`` recovers global edge IDs from local ones: it lists the
    kept global IDs in the same ``lexsort((hi, lo))`` order
    :func:`~repro.graph.build.from_edge_arrays` uses to assign local
    IDs.  A shard may legitimately own zero vertices (more shards than
    vertices) or zero edges (isolated vertices) — both yield a valid
    empty/edgeless subgraph.
    """
    u, v, w, eid = graph.undirected_edges()
    a = part.assignment
    if u.size:
        su = a[u]
        internal = su == a[v]
    else:
        su = np.zeros(0, dtype=np.int32)
        internal = np.zeros(0, dtype=bool)

    global_to_local = np.full(graph.num_vertices, -1, dtype=np.int64)
    shards: list[ShardGraph] = []
    for s in range(part.n_shards):
        verts = np.flatnonzero(a == s)
        global_to_local[verts] = np.arange(verts.size)
        mask = internal & (su == s)
        lo = global_to_local[u[mask]].astype(np.int64)
        hi = global_to_local[v[mask]].astype(np.int64)
        sub = from_edge_arrays(
            int(verts.size), lo, hi, w[mask], name=f"{graph.name}/shard{s}"
        )
        # Same sort from_edge_arrays used to assign local edge IDs.
        order = np.lexsort((hi, lo))
        shards.append(
            ShardGraph(
                shard=s,
                graph=sub,
                vertices=verts,
                eid_map=eid[mask][order].astype(np.int64),
            )
        )
    return shards
