"""Multi-device sharded ECL-MST: partitioned Borůvka with a merge round.

The classic distributed-MSF recipe (forest sparsification, as in
filter-Kruskal and the merge-based distributed Borůvka variants):

1. **Partition** the vertices across ``shards`` simulated devices
   (:mod:`repro.shard.partition`) and give each device the induced
   subgraph of its *internal* edges.
2. **Local solve** — every device runs the unmodified single-GPU
   ECL-MST on its subgraph, producing a local minimum spanning
   *forest*.  Devices are independent, so modeled time for this stage
   is the max over devices, not the sum.
3. **Exchange** — each device ships its selected forest edges plus the
   *boundary* (cut) edges it owns to the coordinator over the
   inter-device link (:class:`~repro.gpusim.costmodel.LinkSpec`): an
   alpha-beta charge per device with data to send.
4. **Merge** — the coordinator runs one more ECL-MST over the
   received candidate set (local forests ∪ boundary edges) — the
   inter-shard graph with every shard contracted down to its forest —
   and that run's selection *is* the global MSF.

Correctness is the MSF *sparsification lemma* (cycle property): an
internal edge rejected by its shard's local MSF is the heaviest edge
on a cycle inside that shard — hence on a cycle of the whole graph —
so it can never be in the global MSF and is safe to discard.  The
converse does **not** hold (a locally-selected edge may still lose to
a cheaper path through another shard), which is why local selections
are *candidates* for the merge round, never final.  Because edge IDs
ascend in ``(lo, hi)`` vertex order both globally and in every
subgraph (see :func:`~repro.graph.build.from_edge_arrays`), weight
ties break identically at every level, and the sharded selection is
bit-identical to the single-device solver's — not just in total
weight and edge count but edge-for-edge.

Accounting (the acceptance invariant): ``modeled_seconds =
max_i(local_i) + exchange + merge``.  Each device's *exclusive share*
is its contribution to that critical path — the slowest device owns
the whole local stage, the coordinator (shard 0) owns the merge — so
``sum(exclusive shares) + exchange == modeled_seconds`` exactly.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.result import MstResult, RoundStats
from ..gpusim.costmodel import DEFAULT_LINK, LinkSpec
from ..gpusim.counters import KernelCounters, RunCounters
from ..gpusim.spec import GPUSpec, RTX_3080_TI
from ..graph.build import from_edge_arrays
from ..graph.csr import CSRGraph
from ..obs.events import get_event_log, new_run_id
from ..obs.trace import NULL_TRACER
from .partition import Partition, ShardGraph, extract_shards, partition_graph

__all__ = ["sharded_mst", "BYTES_PER_EDGE"]

# Wire format of the exchange: an edge travels as four 32-bit words
# (u, v, weight, global edge ID).
BYTES_PER_EDGE = 16


def _edge_weight_table(graph: CSRGraph) -> np.ndarray:
    table = np.zeros(graph.num_edges, dtype=np.int64)
    table[graph.edge_ids] = graph.weights
    return table


def _clean_resilience(resilience):
    """Per-shard copy of a ResilienceConfig without the smuggled global
    reference mask (a local run must verify against its *own* subgraph,
    not the whole-graph Kruskal mask a campaign may have attached)."""
    if resilience is None:
        return None
    return dataclasses.replace(resilience)


def sharded_mst(
    graph: CSRGraph,
    config=None,
    *,
    shards: int,
    shard_strategy: str = "contiguous",
    gpu: GPUSpec = RTX_3080_TI,
    link: LinkSpec | None = None,
    verify: bool = False,
    tracer=None,
    resilience=None,
    fault_plan=None,
    events=None,
    deadline: float | None = None,
) -> MstResult:
    """Compute the MSF of ``graph`` across ``shards`` simulated devices.

    Same contract as :func:`~repro.core.eclmst.ecl_mst` (which
    delegates here for ``shards > 1``), plus:

    shards:
        Number of simulated devices (>= 1).  Each gets its own
        :class:`~repro.gpusim.costmodel.Device` with independent kernel
        counters; per-device kernels appear in the combined
        ``result.counters`` under a ``shard{i}/`` prefix (``merge/``
        for the coordinator's merge round), so roofline reports break
        down per device for free.
    shard_strategy:
        ``"contiguous"`` (degree-balanced ranges, the default) or
        ``"hash"`` — see :mod:`repro.shard.partition`.
    link:
        Inter-device interconnect pricing the exchange; defaults to
        :data:`~repro.gpusim.costmodel.DEFAULT_LINK`.
    fault_plan:
        Faults are scoped to *one* device — shard ``plan.seed %
        shards`` — so chaos campaigns kill a single device and the
        existing recovery ladder handles it locally.

    ``result.extra["shard"]`` carries the full breakdown: partition
    stats (``imbalance``, ``cut_edges``), stage times
    (``solve/comms/merge``), ``comms_time_share``, and one record per
    device with its exclusive share of the modeled critical path.
    """
    from ..core.eclmst import ecl_mst

    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    link = link or DEFAULT_LINK
    tracer = tracer if tracer is not None else NULL_TRACER
    events = events if events is not None else get_event_log()
    if events.enabled:
        events = events.bind(run=new_run_id())
        events.emit(
            "shard.run.start",
            graph=graph.name,
            shards=shards,
            strategy=shard_strategy,
        )

    local_resilience = _clean_resilience(resilience)
    fault_shard = (fault_plan.seed % shards) if fault_plan is not None else -1

    with tracer.span(
        f"sharded ecl-mst on {graph.name}",
        kind="run",
        algorithm="ecl-mst-sharded",
        graph=graph.name,
        shards=shards,
        strategy=shard_strategy,
    ):
        with tracer.span("partition", kind="host", strategy=shard_strategy):
            part: Partition = partition_graph(graph, shards, shard_strategy)
            shard_graphs: list[ShardGraph] = extract_shards(graph, part)
            u, v, w, eid = graph.undirected_edges()
            a = part.assignment
            boundary = a[u] != a[v] if u.size else np.zeros(0, dtype=bool)

        # ---- Stage 1: independent local solves, one device each. ----
        local: list[MstResult] = []
        for sg in shard_graphs:
            with tracer.span(
                f"shard {sg.shard}",
                kind="shard",
                shard=sg.shard,
                vertices=int(sg.vertices.size),
                edges=int(sg.graph.num_edges),
            ):
                local.append(
                    ecl_mst(
                        sg.graph,
                        config,
                        gpu=gpu,
                        tracer=tracer,
                        resilience=local_resilience,
                        fault_plan=(
                            fault_plan if sg.shard == fault_shard else None
                        ),
                        events=events,
                        deadline=deadline,
                    )
                )

        # Candidate mask: the union of local forest selections, lifted
        # back to global edge IDs.  Locally-*rejected* internal edges
        # are gone for good (the sparsification lemma); locally
        # selected ones still face the merge round.
        candidates = np.zeros(graph.num_edges, dtype=bool)
        for sg, res in zip(shard_graphs, local):
            if sg.eid_map.size:
                candidates[sg.eid_map[res.in_mst]] = True

        # ---- Stage 2: exchange over the inter-device link. -----------
        # Each device ships its forest edges plus the cut edges it owns
        # (the shard of the lower endpoint); the coordinator's gather
        # serializes the per-device transfers.
        owned_cut = (
            np.bincount(a[u[boundary]], minlength=shards)
            if boundary.any()
            else np.zeros(shards, dtype=np.int64)
        )
        forest_edges = np.array(
            [r.num_mst_edges for r in local], dtype=np.int64
        )
        per_device_edges = forest_edges + owned_cut.astype(np.int64)
        per_device_bytes = BYTES_PER_EDGE * per_device_edges
        comms_seconds = float(
            sum(link.transfer_seconds(float(b)) for b in per_device_bytes)
        )
        exchange_bytes = int(per_device_bytes.sum())
        with tracer.span(
            "boundary exchange",
            kind="shard",
            cut_edges=int(part.cut_edges),
            edges=int(per_device_edges.sum()),
            bytes=exchange_bytes,
            link=link.name,
            seconds=comms_seconds,
        ):
            pass
        if events.enabled:
            events.emit(
                "shard.exchange",
                cut_edges=int(part.cut_edges),
                edges=int(per_device_edges.sum()),
                bytes=exchange_bytes,
                seconds=comms_seconds,
            )

        # ---- Stage 3: merge round on the coordinator. ----------------
        # ECL-MST over (local forests ∪ boundary edges) on the global
        # vertex set: every shard is implicitly contracted to its
        # forest, and this run's selection is the final answer.  With
        # no cut edges the local forests already *are* the global MSF
        # (each shard solved a union of whole components) and the
        # merge is skipped.
        merge_res: MstResult | None = None
        if boundary.any():
            cand_und = candidates[eid] | boundary
            mu, mv, mw, meid = (
                u[cand_und],
                v[cand_und],
                w[cand_und],
                eid[cand_und],
            )
            with tracer.span(
                "merge",
                kind="shard",
                candidates=int(mu.size),
                cut_edges=int(part.cut_edges),
            ):
                merge_graph = from_edge_arrays(
                    graph.num_vertices,
                    mu.astype(np.int64),
                    mv.astype(np.int64),
                    mw,
                    name=f"{graph.name}/merge",
                )
                # from_edge_arrays assigns edge IDs in (lo, hi) order.
                merge_eid_map = meid[np.lexsort((mv, mu))].astype(np.int64)
                merge_res = ecl_mst(
                    merge_graph,
                    config,
                    gpu=gpu,
                    tracer=tracer,
                    resilience=local_resilience,
                    events=events,
                    deadline=deadline,
                )
            sel = np.zeros(graph.num_edges, dtype=bool)
            sel[merge_eid_map[merge_res.in_mst]] = True
        else:
            sel = candidates

    # ------------------------------------------------------------------
    # Assembly: combined result with per-device accounting.
    # ------------------------------------------------------------------
    local_seconds = [r.modeled_seconds for r in local]
    solve_seconds = max(local_seconds, default=0.0)
    critical_shard = int(np.argmax(local_seconds)) if local_seconds else 0
    merge_seconds = merge_res.modeled_seconds if merge_res is not None else 0.0
    modeled_seconds = solve_seconds + comms_seconds + merge_seconds
    comms_time_share = (
        comms_seconds / modeled_seconds if modeled_seconds > 0 else 0.0
    )

    counters = RunCounters()
    for sg, res in zip(shard_graphs, local):
        for k in res.counters.kernels:
            counters.add(
                dataclasses.replace(k, name=f"shard{sg.shard}/{k.name}")
            )
    exchange_counter = KernelCounters(
        name="shard_exchange",
        items=int(per_device_edges.sum()),
        bytes=float(exchange_bytes),
    )
    exchange_counter.modeled_seconds = comms_seconds
    counters.add(exchange_counter)
    if merge_res is not None:
        for k in merge_res.counters.kernels:
            counters.add(dataclasses.replace(k, name=f"merge/{k.name}"))

    devices = []
    for sg, res in zip(shard_graphs, local):
        exclusive = solve_seconds if sg.shard == critical_shard else 0.0
        if sg.shard == 0:
            exclusive += merge_seconds  # shard 0 hosts the coordinator
        devices.append(
            {
                "shard": sg.shard,
                "vertices": int(sg.vertices.size),
                "edges": int(sg.graph.num_edges),
                "local_seconds": float(res.modeled_seconds),
                "exclusive_seconds": float(exclusive),
                "forest_edges": int(res.num_mst_edges),
                "boundary_edges_sent": int(owned_cut[sg.shard]),
                "bytes_sent": int(per_device_bytes[sg.shard]),
                "launches": int(res.counters.num_launches),
                "rounds": int(res.rounds),
                "degraded": res.algorithm.endswith("+serial-fallback"),
            }
        )

    weight_of_edge = _edge_weight_table(graph)
    total_weight = int(weight_of_edge[sel].sum()) if sel.any() else 0
    rounds_total = max((r.rounds for r in local), default=0) + (
        merge_res.rounds if merge_res is not None else 0
    )
    # Devices load their partitions concurrently: memcpy is the max of
    # the local staging costs plus the coordinator's merge staging.
    memcpy = max((r.memcpy_seconds for r in local), default=0.0) + (
        merge_res.memcpy_seconds if merge_res is not None else 0.0
    )

    round_log: list[RoundStats] = []
    for res in local:
        round_log.extend(res.round_stats)
    if merge_res is not None:
        round_log.extend(merge_res.round_stats)

    degraded = any(d["degraded"] for d in devices) or (
        merge_res is not None
        and merge_res.algorithm.endswith("+serial-fallback")
    )
    algorithm = "ecl-mst-sharded" + ("+serial-fallback" if degraded else "")

    shard_extra = {
        "shards": shards,
        "strategy": shard_strategy,
        "link": {
            "name": link.name,
            "latency_us": link.latency_us,
            "bandwidth_gbs": link.bandwidth_gbs,
        },
        "imbalance": float(part.imbalance),
        "cut_edges": int(part.cut_edges),
        "internal_edges": int(graph.num_edges - part.cut_edges),
        "solve_seconds": float(solve_seconds),
        "comms_seconds": float(comms_seconds),
        "merge_seconds": float(merge_seconds),
        "comms_time_share": float(comms_time_share),
        "critical_shard": critical_shard,
        "exchange_bytes": exchange_bytes,
        "merge_edges": int(merge_res.graph.num_edges)
        if merge_res is not None
        else 0,
        "devices": devices,
    }

    extra: dict = {
        "config": config,
        "round_log": round_log,
        "gpu_spec": gpu,
        "shard": shard_extra,
    }
    merged_stats: dict = {}
    res_dicts = [
        r.extra["resilience"] for r in local if "resilience" in r.extra
    ]
    if merge_res is not None and "resilience" in merge_res.extra:
        res_dicts.append(merge_res.extra["resilience"])
    for d in res_dicts:
        for key, val in d.items():
            if isinstance(val, bool):
                merged_stats[key] = merged_stats.get(key, False) or val
            elif isinstance(val, (int, float)):
                merged_stats[key] = merged_stats.get(key, 0) + val
            elif isinstance(val, list):
                merged_stats.setdefault(key, []).extend(val)
            else:
                merged_stats.setdefault(key, val)
    if merged_stats:
        extra["resilience"] = merged_stats
    if fault_plan is not None and 0 <= fault_shard < len(local):
        fi = dict(local[fault_shard].extra.get("fault_injection") or {})
        fi["fault_shard"] = fault_shard
        extra["fault_injection"] = fi

    result = MstResult(
        graph=graph,
        in_mst=sel,
        total_weight=total_weight,
        num_mst_edges=int(np.count_nonzero(sel)),
        rounds=rounds_total,
        modeled_seconds=modeled_seconds,
        counters=counters,
        memcpy_seconds=memcpy,
        algorithm=algorithm,
        extra=extra,
        round_stats=round_log,
    )
    if events.enabled:
        events.emit(
            "shard.run.done",
            graph=graph.name,
            shards=shards,
            rounds=rounds_total,
            mst_edges=result.num_mst_edges,
            total_weight=result.total_weight,
            modeled_seconds=modeled_seconds,
            comms_time_share=comms_time_share,
            degraded=degraded,
        )
    if verify:
        from ..core.verify import verify_mst

        with tracer.span("verify", kind="host"):
            verify_mst(result)
    return result
