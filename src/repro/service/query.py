"""Query model for the batched MST service.

A :class:`Query` names one MST computation — an input source (suite
input name or graph file path), the code/system to run it on, optional
ECL-MST configuration overrides, and service-level knobs (timeout,
resilience cadence, fault injection for chaos queries).  Queries parse
from plain NDJSON dicts (:meth:`Query.from_dict`) and normalize to two
keys:

* :meth:`Query.spec_key` — a digest of the full query *specification*
  (input source + semantics).  Concurrent queries with the same spec
  key coalesce into one execution (in-flight deduplication).
* :meth:`Query.config_hash` — a digest of the semantic knobs only
  (code, system, resolved config, verify, resilience, faults).
  Combined with the graph fingerprint digest it forms the result-cache
  key (:func:`result_key`), so two specs that resolve to the same
  weighted graph share cached results.

Labels (``id``) and scheduling knobs (``timeout_s``, ``priority``) are
deliberately excluded from both keys — they change how a query is
served, never what it computes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.config import DEOPT_STAGE_NAMES, EclMstConfig, deopt_stages
from ..errors import GraphFormatError
from ..shard.partition import PARTITION_STRATEGIES

__all__ = ["Query", "QueryError", "result_key"]

DEFAULT_SCALE = 0.06


class QueryError(GraphFormatError):
    """A malformed service query (bad JSON, unknown field, bad value).

    Subclasses :class:`~repro.errors.GraphFormatError` so the CLI's
    input-error exit code (3) covers malformed queries uniformly.
    """


_FIELDS = {
    "id",
    "input",
    "code",
    "system",
    "scale",
    "stage",
    "config",
    "timeout_s",
    "priority",
    "verify",
    "check_cadence",
    "fault_seed",
    "n_faults",
    "fault_kinds",
    "shards",
    "shard_strategy",
}
_ALIASES = {"timeout": "timeout_s"}


@dataclass
class Query:
    """One MST computation request (see module docstring)."""

    input: str
    id: str = ""
    code: str = "ECL-MST"
    system: int = 2
    scale: float = DEFAULT_SCALE
    stage: str | None = None  # Table-5 de-optimization stage name
    config: dict = field(default_factory=dict)  # EclMstConfig overrides
    timeout_s: float | None = None
    priority: int = 0  # 0 low / 1 normal / >=2 high; sheds lowest first
    verify: bool = False
    check_cadence: int = 0  # resilience sweeps; 0 = unguarded
    fault_seed: int | None = None  # seeded fault injection (chaos query)
    n_faults: int = 0
    fault_kinds: tuple = ()  # fault models to inject; () = all
    # Simulated devices to shard across; 0 = inherit the service's
    # ServiceConfig.shards default (normalized at submit time).
    shards: int = 0
    shard_strategy: str = "contiguous"

    def __post_init__(self) -> None:
        if not self.input or not isinstance(self.input, str):
            raise QueryError(f"query {self.id or '?'}: missing 'input'")
        if not self.id:
            self.id = self.input
        if self.system not in (1, 2):
            raise QueryError(
                f"query {self.id}: system must be 1 or 2, got {self.system!r}"
            )
        if not isinstance(self.scale, (int, float)) or self.scale <= 0:
            raise QueryError(
                f"query {self.id}: scale must be positive, got {self.scale!r}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise QueryError(
                f"query {self.id}: timeout_s must be positive, "
                f"got {self.timeout_s!r}"
            )
        if not isinstance(self.priority, int) or isinstance(self.priority, bool):
            raise QueryError(
                f"query {self.id}: priority must be an int, "
                f"got {self.priority!r}"
            )
        if self.n_faults < 0:
            raise QueryError(
                f"query {self.id}: n_faults must be >= 0, got {self.n_faults}"
            )
        if self.stage is not None and self.stage not in DEOPT_STAGE_NAMES:
            raise QueryError(
                f"query {self.id}: unknown de-opt stage {self.stage!r}; "
                f"choose from {', '.join(DEOPT_STAGE_NAMES)}"
            )
        if (self.stage or self.config) and self.code != "ECL-MST":
            raise QueryError(
                f"query {self.id}: 'stage'/'config' apply only to ECL-MST, "
                f"not {self.code!r}"
            )
        self.fault_kinds = tuple(self.fault_kinds or ())
        if self.fault_kinds:
            from ..resilience.faults import FAULT_KINDS

            unknown = set(self.fault_kinds) - set(FAULT_KINDS)
            if unknown:
                raise QueryError(
                    f"query {self.id}: unknown fault kind(s) "
                    f"{', '.join(sorted(unknown))}; choose from "
                    f"{', '.join(FAULT_KINDS)}"
                )
        if (self.check_cadence or self.n_faults) and self.code != "ECL-MST":
            raise QueryError(
                f"query {self.id}: resilience/fault injection applies only "
                f"to ECL-MST, not {self.code!r}"
            )
        if not isinstance(self.shards, int) or isinstance(self.shards, bool):
            raise QueryError(
                f"query {self.id}: shards must be an int, got {self.shards!r}"
            )
        if self.shards < 0:
            raise QueryError(
                f"query {self.id}: shards must be >= 0, got {self.shards}"
            )
        if self.shard_strategy not in PARTITION_STRATEGIES:
            raise QueryError(
                f"query {self.id}: unknown shard_strategy "
                f"{self.shard_strategy!r}; choose from "
                f"{', '.join(PARTITION_STRATEGIES)}"
            )
        if self.shards > 1 and self.code != "ECL-MST":
            raise QueryError(
                f"query {self.id}: sharded execution applies only to "
                f"ECL-MST, not {self.code!r}"
            )

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Query":
        if not isinstance(d, Mapping):
            raise QueryError(f"query must be a JSON object, got {type(d).__name__}")
        kw: dict[str, Any] = {}
        for key, value in d.items():
            key = _ALIASES.get(key, key)
            if key not in _FIELDS:
                raise QueryError(
                    f"query {d.get('id', '?')}: unknown field {key!r} "
                    f"(known: {', '.join(sorted(_FIELDS))})"
                )
            kw[key] = value
        if "config" in kw and not isinstance(kw["config"], Mapping):
            raise QueryError(
                f"query {d.get('id', '?')}: 'config' must be an object"
            )
        try:
            return cls(**kw)
        except TypeError as exc:
            raise QueryError(f"query {d.get('id', '?')}: {exc}") from None

    @classmethod
    def from_json_line(cls, line: str) -> "Query":
        try:
            d = json.loads(line)
        except json.JSONDecodeError as exc:
            raise QueryError(f"malformed query JSON: {exc}") from None
        return cls.from_dict(d)

    def to_dict(self) -> dict:
        d = dataclasses.asdict(self)
        d["fault_kinds"] = list(self.fault_kinds)
        return {k: v for k, v in d.items() if v not in (None, {}, "", [])}

    # ------------------------------------------------------------------
    # Normalization
    # ------------------------------------------------------------------
    def resolved_config(self) -> EclMstConfig | None:
        """The full :class:`EclMstConfig` this query runs under
        (stage base + overrides), or ``None`` for baseline codes."""
        if self.code != "ECL-MST":
            return None
        base = EclMstConfig()
        if self.stage is not None:
            base = dict(deopt_stages())[self.stage]
        if not self.config:
            return base
        known = {f.name for f in dataclasses.fields(EclMstConfig)}
        unknown = set(self.config) - known
        if unknown:
            raise QueryError(
                f"query {self.id}: unknown config field(s) "
                f"{', '.join(sorted(unknown))} (known: {', '.join(sorted(known))})"
            )
        try:
            return base.with_(**self.config)
        except TypeError as exc:
            raise QueryError(f"query {self.id}: bad config: {exc}") from None

    def _semantics(self) -> dict:
        cfg = self.resolved_config()
        return {
            "code": self.code,
            "system": self.system,
            "config": dataclasses.asdict(cfg) if cfg is not None else {},
            "verify": bool(self.verify),
            "check_cadence": int(self.check_cadence),
            "fault_seed": self.fault_seed,
            "n_faults": int(self.n_faults),
            "fault_kinds": list(self.fault_kinds),
            # Explicit shards=1 and unset (0, inheriting a shards=1
            # service default) hash identically: same computation.  The
            # strategy only matters once there is more than one shard.
            "shards": int(self.shards) or 1,
            "shard_strategy": self.shard_strategy
            if (int(self.shards) or 1) > 1
            else "contiguous",
        }

    @staticmethod
    def _digest(payload: dict) -> str:
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(blob.encode(), digest_size=8).hexdigest()

    def config_hash(self) -> str:
        """Canonical digest of every semantic knob (not the input)."""
        return self._digest(self._semantics())

    def spec_key(self) -> str:
        """Digest of the full specification: semantics + input source.

        Two queries with equal spec keys compute the same thing from
        the same source and may coalesce while in flight.
        """
        payload = self._semantics()
        payload["input"] = self.input
        payload["scale"] = repr(float(self.scale))
        return self._digest(payload)


def result_key(graph_digest: str, query: Query) -> str:
    """Result-cache key: graph fingerprint × canonical config hash."""
    return f"{graph_digest}:{query.config_hash()}"
