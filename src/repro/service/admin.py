"""Admin/introspection HTTP endpoints for a live :class:`MSTService`.

A tiny stdlib :class:`~http.server.ThreadingHTTPServer` running on a
daemon thread — no web framework, no new dependencies — exposing the
four classic operational endpoints:

* ``/healthz``   — liveness: ``200 ok`` while the service is up.
* ``/statusz``   — JSON snapshot: build version, uptime, config, cache
  and queue occupancy, windowed latency summary, and every SLO's
  current burn state (:meth:`MSTService.status`).
* ``/metrics``   — Prometheus text exposition (version 0.0.4) of the
  service's :class:`~repro.obs.metrics.MetricsRegistry`, plus per-SLO
  ``repro_slo_*`` gauges and — with the serving policy armed —
  per-graph ``repro_breaker_*`` gauges labeled by fingerprint.
* ``/profilez``  — the most recent executed query's
  :class:`~repro.obs.profile.RunProfile` as JSON (requires
  ``ServiceConfig.keep_profile``; ``404`` until a query has executed).
* ``/debugz``    — the flight recorder's black box: ring-buffer tails
  (events, outcomes, span summaries, metric snapshots) plus the list
  of recent postmortem bundles on disk (requires the recorder, which
  ``ServiceConfig`` arms by default; ``404`` when disabled).

Metric names are sanitized for Prometheus (dots → underscores, a
``repro_`` namespace prefix); counters and gauges carry ``# TYPE``
lines, and each histogram's ``.count``/``.sum``/``.min``/``.max``
satellites render as untyped samples of the same family.

The server binds ``port=0`` for an OS-assigned port (tests), serves
each request on its own thread, and never touches solver state — it
only *reads* the service's registries, so scraping cannot perturb
modeled results.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["AdminServer", "render_prometheus", "sanitize_metric_name"]


def sanitize_metric_name(name: str, *, prefix: str = "repro_") -> str:
    """Map a dotted registry name onto a legal Prometheus name.

    ``service.p50_latency`` → ``repro_service_p50_latency``.  Any
    character outside ``[a-zA-Z0-9_:]`` becomes ``_``; a leading digit
    gains a ``_`` guard.
    """
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch in "_:" else "_")
    flat = "".join(out)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return prefix + flat


def _sample_value(value: float) -> str:
    """Render one sample value (Prometheus accepts +Inf/-Inf/NaN)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def render_prometheus(service) -> str:
    """The ``/metrics`` body: registry + SLO gauges, text format 0.0.4.

    One ``# HELP``/``# TYPE`` pair per family, samples sorted by name
    so the exposition is deterministic for a given service state.
    """
    from ..obs.metrics import Counter

    reg = service.registry
    flat = service.metrics()  # refreshes gauges from current state
    counters = {
        name
        for name, metric in reg._metrics.items()
        if isinstance(metric, Counter)
    }
    lines: list[str] = []
    for name in sorted(flat):
        value = flat[name]
        prom = sanitize_metric_name(name)
        kind = "counter" if name in counters else "gauge"
        lines.append(f"# HELP {prom} {name}")
        lines.append(f"# TYPE {prom} {kind}")
        lines.append(f"{prom} {_sample_value(float(value))}")
    for status in service.slo_statuses():
        d = status.to_dict()
        label = f'{{slo="{d["name"]}"}}'
        for field in ("sli", "burn_rate"):
            prom = sanitize_metric_name(f"slo.{field}")
            lines.append(f"# HELP {prom} SLO {field} for {d['name']}")
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom}{label} {_sample_value(float(d[field]))}")
        prom = sanitize_metric_name("slo.alerting")
        lines.append(f"# HELP {prom} 1 while the SLO burn alert is firing")
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom}{label} {_sample_value(1.0 if d['alerting'] else 0.0)}")
    policy = getattr(service, "policy", None)
    if policy is not None:
        snapshots = sorted(
            policy.breaker_snapshots(), key=lambda b: b["graph"]
        )
        if snapshots:
            open_name = sanitize_metric_name("breaker.open")
            fail_name = sanitize_metric_name("breaker.failures")
            lines.append(
                f"# HELP {open_name} 1 while the graph's circuit breaker "
                "is not closed"
            )
            lines.append(f"# TYPE {open_name} gauge")
            for b in snapshots:
                label = f'{{graph="{b["graph"]}",state="{b["state"]}"}}'
                value = 0.0 if b["state"] == "closed" else 1.0
                lines.append(f"{open_name}{label} {_sample_value(value)}")
            lines.append(
                f"# HELP {fail_name} consecutive failures seen by the "
                "graph's circuit breaker"
            )
            lines.append(f"# TYPE {fail_name} gauge")
            for b in snapshots:
                label = f'{{graph="{b["graph"]}"}}'
                lines.append(
                    f"{fail_name}{label} {_sample_value(float(b['failures']))}"
                )
    shard = getattr(service, "latest_shard", None)
    if shard:
        per_device = (
            ("vertices", "vertices owned by the shard"),
            ("edges", "internal edges solved on the shard"),
            ("local_seconds", "modeled local-solve seconds"),
            ("exclusive_seconds", "exclusive share of the critical path"),
            ("boundary_edges_sent", "cut edges shipped to the coordinator"),
        )
        devices = shard.get("devices", [])
        for field, help_text in per_device:
            prom = sanitize_metric_name(f"shard.device.{field}")
            lines.append(f"# HELP {prom} {help_text} (latest sharded query)")
            lines.append(f"# TYPE {prom} gauge")
            for dev in devices:
                label = f'{{shard="{dev.get("shard", 0)}"}}'
                lines.append(
                    f"{prom}{label} "
                    f"{_sample_value(float(dev.get(field, 0)))}"
                )
    return "\n".join(lines) + "\n"


def _json_safe(obj):
    """Replace non-finite floats so the body is strict JSON."""
    if isinstance(obj, dict):
        return {k: _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    if isinstance(obj, float) and not math.isfinite(obj):
        return "inf" if obj > 0 else ("-inf" if obj < 0 else "nan")
    return obj


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-admin/1.0"

    # The service is attached to the *server* object (one handler
    # instance exists per request).
    @property
    def service(self):
        return self.server.mst_service  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # silence per-request stderr spam
        pass

    def _send(self, code: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, code: int, obj) -> None:
        self._send(
            code,
            json.dumps(_json_safe(obj), indent=2, sort_keys=True) + "\n",
            "application/json",
        )

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path in ("/", "/healthz"):
                self._send(200, "ok\n", "text/plain; charset=utf-8")
            elif path == "/statusz":
                self._send_json(200, self.service.status())
            elif path == "/metrics":
                self._send(
                    200,
                    render_prometheus(self.service),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/profilez":
                profile = self.service.latest_profile
                if profile is None:
                    self._send_json(
                        404,
                        {
                            "error": "no profile recorded yet",
                            "hint": "needs ServiceConfig.keep_profile and "
                            "at least one executed (non-cached) query",
                        },
                    )
                else:
                    self._send_json(200, profile)
            elif path == "/debugz":
                recorder = getattr(self.service, "recorder", None)
                if recorder is None:
                    self._send_json(
                        404,
                        {
                            "error": "flight recorder disabled",
                            "hint": "needs ServiceConfig.recorder (on by "
                            "default; --no-recorder turns it off)",
                        },
                    )
                else:
                    self._send_json(200, recorder.debug_snapshot())
            else:
                self._send_json(
                    404,
                    {
                        "error": f"unknown path {path!r}",
                        "endpoints": [
                            "/healthz",
                            "/statusz",
                            "/metrics",
                            "/profilez",
                            "/debugz",
                        ],
                    },
                )
        except BrokenPipeError:  # client went away mid-write
            pass
        except Exception as exc:  # never kill the serving thread
            try:
                self._send_json(500, {"error": str(exc)})
            except Exception:
                pass


class AdminServer:
    """The admin endpoint thread bound to one :class:`MSTService`.

    ``port=0`` asks the OS for a free port (read it back from
    :attr:`port` after :meth:`start`).  Usable as a context manager.
    """

    def __init__(self, service, *, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "AdminServer":
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer((self.host, self._requested_port), _Handler)
        httpd.daemon_threads = True
        httpd.mst_service = self.service  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-admin",
            daemon=True,
        )
        self._thread.start()
        if self.service.events.enabled:
            self.service.events.emit(
                "admin.started", level="info", url=self.url
            )
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "AdminServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
