"""A small thread-safe LRU cache with hit/miss accounting.

Used twice by the service: as the *result cache* (cache key →
:class:`~repro.service.outcome.QueryOutcome`) and as the *build cache*
(graph source key → loaded :class:`~repro.graph.csr.CSRGraph`), the
latter because graph loading/generation dominates host wall time per
the PR 3 ``host_hotspots`` attribution.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

__all__ = ["LRUCache"]


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    ``capacity <= 0`` disables caching entirely (every lookup misses),
    which keeps the call sites branch-free.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            if self.capacity <= 0 or key not in self._data:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value, creating (and caching) it on miss.

        The factory runs outside the lock — a concurrent miss on the
        same key may build twice and last-write-wins, which is safe for
        the service's idempotent values (graphs, outcomes).
        """
        sentinel = object()
        value = self.get(key, sentinel)
        if value is not sentinel:
            return value
        value = factory()
        self.put(key, value)
        return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def keys(self) -> list:
        """Current keys, LRU-first (a snapshot; no recency update)."""
        with self._lock:
            return list(self._data)

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Like :meth:`get` but without touching recency or hit/miss
        counters — for advisory reads (e.g. staleness pruning) that
        must not perturb eviction order or cache statistics."""
        with self._lock:
            if self.capacity <= 0:
                return default
            return self._data.get(key, default)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._data),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
