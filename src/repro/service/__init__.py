"""Batched MST query service.

The serving path of the reproduction: many queries, one process,
amortized work.  See :mod:`~repro.service.engine` for the three-level
pipeline (result cache → build cache → worker pool with in-flight
dedup), :mod:`~repro.service.query` for the query model and cache-key
normalization, and :mod:`~repro.service.batch` for the NDJSON batch
front end used by ``repro-mst serve`` and ``repro-mst sweep``.

Failures leave evidence: the engine arms an always-on flight recorder
(:mod:`~repro.obs.recorder`) by default, which captures self-contained
postmortem bundles on typed error outcomes, SLO burns, breaker opens,
and serve-path crashes — inspect them with ``repro-mst postmortem``
and re-execute them deterministically with ``repro-mst replay``.
"""

from .admin import AdminServer, render_prometheus
from .batch import (
    BatchSummary,
    parse_batch_lines,
    record_service_trajectory,
    run_batch_lines,
    summarize,
    sweep_queries,
)
from .cache import LRUCache
from .engine import MSTService, ServiceConfig, Ticket, execute_query
from .outcome import QueryOutcome, batch_exit_code, classify_error
from .query import Query, QueryError, result_key

__all__ = [
    "AdminServer",
    "BatchSummary",
    "LRUCache",
    "MSTService",
    "Query",
    "QueryError",
    "QueryOutcome",
    "ServiceConfig",
    "Ticket",
    "batch_exit_code",
    "classify_error",
    "execute_query",
    "parse_batch_lines",
    "record_service_trajectory",
    "render_prometheus",
    "result_key",
    "run_batch_lines",
    "summarize",
    "sweep_queries",
]
