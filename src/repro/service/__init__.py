"""Batched MST query service.

The serving path of the reproduction: many queries, one process,
amortized work.  See :mod:`~repro.service.engine` for the three-level
pipeline (result cache → build cache → worker pool with in-flight
dedup), :mod:`~repro.service.query` for the query model and cache-key
normalization, and :mod:`~repro.service.batch` for the NDJSON batch
front end used by ``repro-mst serve`` and ``repro-mst sweep``.
"""

from .admin import AdminServer, render_prometheus
from .batch import (
    BatchSummary,
    parse_batch_lines,
    record_service_trajectory,
    run_batch_lines,
    summarize,
    sweep_queries,
)
from .cache import LRUCache
from .engine import MSTService, ServiceConfig, Ticket, execute_query
from .outcome import QueryOutcome, batch_exit_code, classify_error
from .query import Query, QueryError, result_key

__all__ = [
    "AdminServer",
    "BatchSummary",
    "LRUCache",
    "MSTService",
    "Query",
    "QueryError",
    "QueryOutcome",
    "ServiceConfig",
    "Ticket",
    "batch_exit_code",
    "classify_error",
    "execute_query",
    "parse_batch_lines",
    "record_service_trajectory",
    "render_prometheus",
    "result_key",
    "run_batch_lines",
    "summarize",
    "sweep_queries",
]
