"""Batch front end: NDJSON in/out, suite sweeps, trajectory entries.

The ``repro-mst serve --batch FILE`` format is one JSON object per
line (see :class:`~repro.service.query.Query` for the fields)::

    {"id": "q1", "input": "internet", "scale": 0.06}
    {"id": "q2", "input": "internet", "scale": 0.06, "config": {"filtering": false}}

Output is one :class:`~repro.service.outcome.QueryOutcome` JSON object
per input line, in input order.  A malformed line becomes a failed
*outcome* for that line (``error_kind="input"``) — the batch keeps
going, and the batch exit code reports the most severe per-query code
(3 input / 4 verify / 5 unrecovered / 1 generic), uniformly with the
single-shot CLI commands.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterable, Sequence

from .engine import MSTService
from .outcome import QueryOutcome, batch_exit_code
from .query import Query, QueryError

__all__ = [
    "BatchSummary",
    "parse_batch_lines",
    "record_service_trajectory",
    "run_batch_lines",
    "summarize",
    "sweep_queries",
]

TRAJECTORY_SCHEMA = "repro.bench.service-trajectory/v1"


def parse_batch_lines(lines: Iterable[str]) -> list[Query | QueryOutcome]:
    """Parse NDJSON lines into queries; malformed lines become
    pre-failed outcomes so their batch neighbors still run."""
    items: list[Query | QueryOutcome] = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            items.append(Query.from_json_line(line))
        except QueryError as exc:
            items.append(
                QueryOutcome.failure(
                    _LinePlaceholder(f"line-{lineno}"),
                    QueryError(f"line {lineno}: {exc}"),
                )
            )
    return items


@dataclass
class _LinePlaceholder:
    """Stand-in query identity for a line that never parsed."""

    id: str
    input: str = ""
    code: str = ""
    system: int = 0
    scale: float = 0.0


def run_batch_lines(
    lines: Iterable[str], service: MSTService
) -> list[QueryOutcome]:
    return service.run_batch(parse_batch_lines(lines))


# ----------------------------------------------------------------------
# Suite sweeps
# ----------------------------------------------------------------------
def sweep_queries(
    selection: str,
    *,
    scale: float,
    code: str = "ECL-MST",
    system: int = 2,
    repeat: int = 1,
) -> list[Query]:
    """Queries for one pass (or ``repeat`` passes) over the generator
    suite: ``"all"``, ``"mst"`` (single-component inputs), or a
    comma-separated list of input names."""
    from ..generators.suite import INPUT_NAMES, MST_INPUT_NAMES

    if selection == "all":
        names: Sequence[str] = INPUT_NAMES
    elif selection == "mst":
        names = MST_INPUT_NAMES
    else:
        names = tuple(s.strip() for s in selection.split(",") if s.strip())
        unknown = set(names) - set(INPUT_NAMES)
        if unknown:
            raise QueryError(
                f"unknown suite input(s) {', '.join(sorted(unknown))}; "
                f"choose from {', '.join(INPUT_NAMES)}"
            )
    if not names:
        raise QueryError("empty sweep selection")
    return [
        Query(
            input=name,
            id=f"{name}#r{rep}",
            code=code,
            system=system,
            scale=scale,
        )
        for rep in range(max(1, repeat))
        for name in names
    ]


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------
@dataclass
class BatchSummary:
    """Aggregates of one served batch, renderable and serializable."""

    total: int = 0
    ok: int = 0
    errors: int = 0
    timeouts: int = 0
    cache_hits: int = 0
    # Serving-policy outcomes (all zero — and omitted from render —
    # without a policy attached).
    shed: int = 0
    degraded: int = 0
    quarantined: int = 0
    cancelled: int = 0
    exit_code: int = 0
    wall_seconds: float = 0.0
    metrics: dict = field(default_factory=dict)

    @property
    def qps(self) -> float:
        return self.total / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def cache_hit_ratio(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "ok": self.ok,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "shed": self.shed,
            "degraded": self.degraded,
            "quarantined": self.quarantined,
            "cancelled": self.cancelled,
            "cache_hits": self.cache_hits,
            "cache_hit_ratio": self.cache_hit_ratio,
            "queries_per_second": self.qps,
            "wall_seconds": self.wall_seconds,
            "exit_code": self.exit_code,
            "metrics": self.metrics,
        }

    def render(self) -> str:
        lines = [
            f"served {self.total} queries in {self.wall_seconds:.3f}s "
            f"({self.qps:.1f} queries/s)",
            f"  ok {self.ok}  errors {self.errors}  timeouts {self.timeouts}"
            f"  cache hits {self.cache_hits} "
            f"(ratio {self.cache_hit_ratio:.2f})",
        ]
        if self.shed or self.degraded or self.quarantined or self.cancelled:
            lines.append(
                f"  shed {self.shed}  degraded {self.degraded}"
                f"  quarantined {self.quarantined}"
                f"  cancelled {self.cancelled}"
            )
        for key in (
            "service.p50_latency",
            "service.p95_latency",
            "service.executed",
            "service.graph_cache_hits",
        ):
            if key in self.metrics:
                lines.append(f"  {key:26s} {self.metrics[key]:.6g}")
        lines.append(f"exit code: {self.exit_code}")
        return "\n".join(lines)


def summarize(
    outcomes: Sequence[QueryOutcome],
    service: MSTService,
    *,
    wall_seconds: float,
) -> BatchSummary:
    by_status = {s: sum(1 for o in outcomes if o.status == s) for s in
                 ("error", "timeout", "shed", "degraded", "quarantined",
                  "cancelled")}
    return BatchSummary(
        total=len(outcomes),
        ok=sum(1 for o in outcomes if o.ok),
        errors=by_status["error"],
        timeouts=by_status["timeout"],
        shed=by_status["shed"],
        degraded=by_status["degraded"],
        quarantined=by_status["quarantined"],
        cancelled=by_status["cancelled"],
        cache_hits=sum(1 for o in outcomes if o.cache_hit),
        exit_code=batch_exit_code(outcomes),
        wall_seconds=wall_seconds,
        metrics=service.metrics(),
    )


# ----------------------------------------------------------------------
# Benchmark trajectory
# ----------------------------------------------------------------------
def record_service_trajectory(
    cold: BatchSummary,
    warm: BatchSummary | None,
    *,
    selection: str,
    scale: float,
    code: str,
    system: int,
    workers: int,
    trajectory_dir: str | Path,
    stamp: str | None = None,
) -> Path:
    """Append one service-throughput entry to the benchmark trajectory
    (sibling of the perf gate's ``BENCH_<stamp>.json`` entries)."""
    trajectory = Path(trajectory_dir)
    trajectory.mkdir(parents=True, exist_ok=True)
    stamp = stamp or datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")
    path = trajectory / f"BENCH_SERVICE_{stamp}.json"
    payload = {
        "schema": TRAJECTORY_SCHEMA,
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "suite": selection,
        "scale": scale,
        "code": code,
        "system": system,
        "workers": workers,
        "cold": cold.to_dict(),
        "warm": warm.to_dict() if warm is not None else None,
        "speedup_warm_over_cold": (
            warm.qps / cold.qps if warm is not None and cold.qps > 0 else None
        ),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
