"""Serializable result of one service query, plus the error taxonomy map.

A :class:`QueryOutcome` is what the service returns and what ``serve``
emits as one NDJSON line: either a success (MST weight / edge-set
digest / counters-derived metrics — enough to prove bit-identity
between cold and warm runs) or a typed failure that maps onto the
CLI's uniform exit codes (3 input / 4 verify / 5 unrecovered fault /
6 overloaded / 1 generic).  A failure never carries a partial result
and never escapes as an exception: one bad query must not poison its
batch.

With the serving policy on (PR 7), four more statuses appear:
``shed`` (admission control or an open breaker rejected it before it
ran — exit code 6), ``degraded`` (answered, but via a stale cached
result or the serial fallback; carries the full success payload plus
``policy`` metadata saying how), ``quarantined`` (a poison spec
refused before the retry loop), and ``cancelled`` (still queued when
the service shut down).  ``degraded`` counts as *served* for
availability accounting; the rest count against it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from ..baselines.errors import NotConnectedError
from ..errors import (
    EXIT_INPUT_ERROR,
    EXIT_OVERLOADED,
    EXIT_UNRECOVERED_FAULT,
    EXIT_VERIFY_FAILED,
    DeadlineExceeded,
    DeviceFault,
    GraphFormatError,
    InvariantViolation,
    Overloaded,
    ReproError,
    UnrecoveredFaultError,
    VerificationError,
)

__all__ = [
    "QueryOutcome",
    "batch_exit_code",
    "classify_error",
    "edges_digest",
]

SCHEMA = "repro.service.outcome/v1"

# How an outcome was served: a real execution, the result cache, by
# attaching to an identical in-flight execution, or (degraded only) a
# stale cache entry / the serial-Kruskal fallback.
SERVED_EXECUTE = "execute"
SERVED_CACHE = "result-cache"
SERVED_COALESCED = "coalesced"
SERVED_STALE = "stale-cache"
SERVED_FALLBACK = "serial-fallback"

# Statuses that carry the full success payload in to_dict().
_PAYLOAD_STATUSES = ("ok", "degraded")


def classify_error(exc: BaseException) -> tuple[str, int]:
    """Map an exception onto ``(error_kind, exit_code)``.

    The same families → codes mapping as ``repro.cli.main`` so batch
    results and single-shot commands report failures identically.
    """
    if isinstance(exc, GraphFormatError):
        return "input", EXIT_INPUT_ERROR
    if isinstance(exc, VerificationError):
        return "verify", EXIT_VERIFY_FAILED
    if isinstance(exc, (DeviceFault, InvariantViolation, UnrecoveredFaultError)):
        return "fault", EXIT_UNRECOVERED_FAULT
    if isinstance(exc, Overloaded):
        return "overloaded", EXIT_OVERLOADED
    if isinstance(exc, DeadlineExceeded):
        return "timeout", 1
    if isinstance(exc, NotConnectedError):
        return "not-connected", 1
    if isinstance(exc, ReproError):
        return "error", 1
    return "internal", 1


def edges_digest(result) -> str:
    """Order-independent digest of the selected MST edge set.

    Hashes the ``(u, v, w)`` arrays in canonical (CSR) edge order —
    two results with equal digests selected the same weighted edges.
    """
    h = hashlib.blake2b(digest_size=8)
    for arr in result.edges():
        h.update(arr.tobytes())
    return h.hexdigest()


@dataclass
class QueryOutcome:
    """One query's result summary (see module docstring)."""

    id: str
    input: str = ""
    code: str = "ECL-MST"
    system: int = 2
    scale: float = 0.0
    # "ok" | "error" | "timeout" | "shed" | "degraded" | "quarantined"
    # | "cancelled"
    status: str = "ok"
    served_by: str = SERVED_EXECUTE
    error_kind: str = ""
    error: str = ""
    exit_code: int = 0
    # Success payload — everything needed to check bit-identity.
    algorithm: str = ""
    graph: dict = field(default_factory=dict)  # fingerprint
    total_weight: int = 0
    num_mst_edges: int = 0
    rounds: int = 0
    modeled_seconds: float = 0.0
    mst_digest: str = ""
    metrics: dict = field(default_factory=dict)
    resilience: dict = field(default_factory=dict)
    # Sharded-execution breakdown (result.extra["shard"]), present only
    # when the query ran across multiple simulated devices.
    shard: dict = field(default_factory=dict)
    # Serving-policy metadata (retries used, staleness, shed reason…).
    policy: dict = field(default_factory=dict)
    # Service accounting (never part of identity comparisons).
    result_key: str = ""
    load_seconds: float = 0.0
    run_seconds: float = 0.0
    latency_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def served(self) -> bool:
        """The client got an answer (full-fidelity or degraded).

        This is what the availability SLO counts: a degraded answer is
        still an answer; shed/quarantined/cancelled/error are not.
        """
        return self.status in _PAYLOAD_STATUSES

    @property
    def cache_hit(self) -> bool:
        """Served without executing (result cache or coalesced)."""
        return self.ok and self.served_by != SERVED_EXECUTE

    def identity(self) -> dict:
        """The fields that must be bit-identical between a cold run and
        any cached/coalesced serving of the same query."""
        return {
            "algorithm": self.algorithm,
            "graph_digest": self.graph.get("digest"),
            "total_weight": self.total_weight,
            "num_mst_edges": self.num_mst_edges,
            "rounds": self.rounds,
            "modeled_seconds": self.modeled_seconds,
            "mst_digest": self.mst_digest,
            "metrics": self.metrics,
        }

    def replay_identity(self) -> dict:
        """The fields a deterministic replay must reproduce exactly.

        Extends :meth:`identity` with the typed-failure surface, so it
        covers error outcomes (where the payload fields are absent)
        as well as successes — the comparison contract of
        ``repro-mst replay``.
        """
        out = {
            "status": self.status,
            "error_kind": self.error_kind,
            "exit_code": self.exit_code,
        }
        if self.status in _PAYLOAD_STATUSES:
            out.update(self.identity())
        return out

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def failure(
        cls,
        query,
        exc: BaseException,
        *,
        status: str = "error",
        latency_s: float = 0.0,
    ) -> "QueryOutcome":
        kind, code = classify_error(exc)
        if status == "timeout":
            kind, code = "timeout", 1
        elif status == "cancelled":
            kind, code = "cancelled", 1
        elif status == "shed":
            kind, code = "overloaded", EXIT_OVERLOADED
        elif status == "quarantined":
            kind, code = "quarantined", EXIT_OVERLOADED
        return cls(
            id=getattr(query, "id", "?") or "?",
            input=getattr(query, "input", ""),
            code=getattr(query, "code", ""),
            system=getattr(query, "system", 0),
            scale=getattr(query, "scale", 0.0),
            status=status,
            error_kind=kind,
            error=str(exc),
            exit_code=code,
            latency_s=latency_s,
        )

    # ------------------------------------------------------------------
    # Serialization (NDJSON lines)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        d = dataclasses.asdict(self)
        d["schema"] = SCHEMA
        d["cache_hit"] = self.cache_hit
        if self.status in _PAYLOAD_STATUSES:
            if self.ok:
                d.pop("error_kind"), d.pop("error")
            elif not self.error:
                d.pop("error_kind"), d.pop("error")
        else:
            for k in (
                "algorithm",
                "graph",
                "total_weight",
                "num_mst_edges",
                "rounds",
                "modeled_seconds",
                "mst_digest",
                "metrics",
                "resilience",
                "shard",
            ):
                d.pop(k)
        if not self.resilience:
            d.pop("resilience", None)
        if not self.shard:
            d.pop("shard", None)
        if not self.policy:
            d.pop("policy", None)
        return d

    def to_json_line(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "QueryOutcome":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})


def batch_exit_code(outcomes) -> int:
    """The uniform batch exit code: 0 when every query succeeded, else
    the *highest* per-query code so the most severe failure family wins
    (6 overloaded > 5 unrecovered > 4 verify > 3 input > 1
    generic/timeout).  Degraded answers carry code 0 — the client was
    served."""
    return max((o.exit_code for o in outcomes), default=0)
