"""The batched MST query engine.

:class:`MSTService` serves many :class:`~repro.service.query.Query`
objects through a three-level pipeline:

1. **Result cache** — an LRU keyed on *graph fingerprint × canonical
   config hash* (:func:`~repro.service.query.result_key`).  An
   identical query is answered from memory with a bit-identical
   :class:`~repro.service.outcome.QueryOutcome` (same weight, edge-set
   digest, counters-derived metrics), marked ``served_by =
   "result-cache"``.
2. **Build cache** — an LRU of loaded/generated
   :class:`~repro.graph.csr.CSRGraph` objects keyed on the input
   *source* (suite name + scale, or file path + size/mtime signature
   via :func:`repro.graph.io.file_signature`), so queries that differ
   only in config/system skip the load — the dominant host cost per
   the PR 3 ``host_hotspots`` table.
3. **Worker pool** — thread- or process-based, with a bounded queue
   (submit blocks when full), per-query timeout/cancellation, and
   in-flight deduplication: concurrent queries with the same spec key
   attach to one execution (``served_by = "coalesced"``).

Each query executes under its own tracer (host ``load``/``run`` spans
feed the outcome's latency breakdown) and its own resilience scope:
faults and the recovery ladder are per-query, and a failing query
returns a typed error outcome instead of poisoning the pool.

The service exports aggregate metrics into a
:class:`~repro.obs.metrics.MetricsRegistry` — ``service.qps``,
``service.cache_hit_ratio``, ``service.queue_depth``,
``service.p50_latency`` / ``service.p95_latency`` and the underlying
counters — via :meth:`MSTService.metrics`.

**Overload safety** (optional, zero-overhead when off): attaching a
:class:`~repro.resilience.policy.PolicyConfig` via
``ServiceConfig.policy`` arms the serving policy —

* admission control sheds excess queries *before* they queue (typed
  ``shed`` outcomes, lowest ``Query.priority`` first);
* transient ``fault``/``timeout`` failures retry with decorrelated-
  jitter backoff, budgeted per query and never past its deadline
  (deadlines also propagate into the solver's round loop);
* a per-graph-fingerprint circuit breaker fails fast while a graph
  keeps failing, probing deterministically on a seeded cooldown;
* shed/broken/exhausted queries optionally degrade to a stale cached
  result (``served_by: stale-cache``) or the serial-Kruskal fallback
  (``served_by: serial-fallback``), and poison specs are quarantined.

With ``policy=None`` (the default) none of this code runs and serving
behavior — results, counters, metrics — is bit-identical to a
policy-free build.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path

from ..errors import Overloaded
from ..obs.events import get_event_log
from ..obs.metrics import MetricsRegistry
from ..obs.recorder import FlightRecorder, RecorderConfig
from ..obs.slo import SLOTracker
from ..obs.trace import Tracer
from ..obs.window import SlidingCounter, SlidingHistogram
from ..resilience.policy import PolicyConfig, ResiliencePolicy
from .cache import LRUCache
from .outcome import (
    SERVED_CACHE,
    SERVED_COALESCED,
    SERVED_EXECUTE,
    SERVED_FALLBACK,
    SERVED_STALE,
    QueryOutcome,
    edges_digest,
)
from .query import Query, QueryError, result_key

__all__ = ["MSTService", "ServiceConfig", "Ticket", "execute_query"]

# The degraded-mode algorithm: the paper's serial Kruskal reference,
# already a registered baseline runner.
_FALLBACK_CODE = "PBBS Ser."


@dataclass(frozen=True)
class ServiceConfig:
    """Service sizing and scheduling knobs."""

    workers: int = 4
    pool: str = "thread"  # "thread" | "process"
    result_cache_size: int = 256
    graph_cache_size: int = 32
    max_queue_depth: int = 64  # in-flight bound; submit blocks when full
    default_timeout_s: float | None = None
    # Live-telemetry knobs: the sliding window backing service.qps /
    # p50 / p95 and the SLO burn rates, and whether executed queries
    # retain their latest run profile (the admin /profilez payload).
    window_s: float = 60.0
    keep_profile: bool = False
    # Overload-safe serving (None = off, bit-identical to a policy-free
    # build) and an exact cost-model slowdown factor for chaos-under-
    # load testing (GPUSpec.slowed, as the perf gate's CI job uses).
    policy: PolicyConfig | None = None
    slowdown: float = 1.0
    # Default simulated-device count for queries that don't say
    # (Query.shards == 0 inherits this at submit time); 1 = the
    # single-GPU paper algorithm, untouched.
    shards: int = 1
    # Default union executor for ECL-MST queries whose config doesn't
    # name one (inherited at submit time, before any cache key is
    # computed).  Both engines are bit-identical; "scalar" keeps the
    # reference walk for differential debugging.
    engine: str = "vectorized"
    # Always-on flight recorder (None = off).  The default instance is
    # frozen and shared; it only sizes ring buffers and names the
    # postmortem directory, so sharing is safe.
    recorder: RecorderConfig | None = RecorderConfig()

    def __post_init__(self) -> None:
        if self.pool not in ("thread", "process"):
            raise ValueError(f"pool must be 'thread' or 'process', got {self.pool!r}")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        from ..core.config import ENGINES

        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {sorted(ENGINES)}, got {self.engine!r}"
            )
        if (
            self.policy is not None
            and self.policy.enabled
            and self.pool == "process"
        ):
            raise ValueError(
                "serving policy requires pool='thread' (process workers "
                "share no breaker/retry/quarantine state with the parent)"
            )


# ----------------------------------------------------------------------
# Query execution (pure function of query + graph; also the process-
# pool job, so it must stay importable at module top level)
# ----------------------------------------------------------------------
def _graph_source_key(query: Query) -> tuple:
    """Build-cache key for the query's input source.

    File inputs carry a size/mtime signature so an edited file is a
    miss; suite inputs are keyed on (name, scale) — generation is
    seeded and deterministic.
    """
    from ..cli import _FORMAT_LOADERS  # single source of format truth

    p = Path(query.input)
    if p.suffix in _FORMAT_LOADERS and p.exists():
        from ..graph.io import file_signature

        return ("file", str(p.resolve()), file_signature(p))
    return ("suite", query.input, repr(float(query.scale)))


def _load_graph_for(query: Query):
    """Load or generate the query's input graph (uncached)."""
    kind = _graph_source_key(query)[0]
    if kind == "file":
        from ..cli import _load_graph

        return _load_graph(query.input)
    from ..generators import suite

    try:
        return suite.build(query.input, scale=query.scale)
    except KeyError as exc:
        raise QueryError(f"query {query.id}: {exc.args[0]}") from None


def _build_fault_plan(query: Query, config, graph, gpu):
    """A seeded per-query fault plan (chaos queries), horizons taken
    from a fault-free dry run as the campaign module does."""
    from ..core.eclmst import ecl_mst
    from ..resilience.faults import FAULT_KINDS, FaultPlan

    dry = ecl_mst(
        graph,
        config,
        gpu=gpu,
        fault_plan=FaultPlan(seed=query.fault_seed or 0),
        shards=int(query.shards) or 1,
        shard_strategy=query.shard_strategy,
    )
    fi = dry.extra["fault_injection"]
    return FaultPlan.generate(
        seed=query.fault_seed or 0,
        n_faults=query.n_faults,
        launches=fi["launches_seen"],
        atomic_calls=fi["atomic_calls_seen"],
        kinds=query.fault_kinds or FAULT_KINDS,
    )


def execute_query(
    query: Query,
    graph=None,
    *,
    tracer=None,
    profile_sink=None,
    slowdown: float = 1.0,
    deadline: float | None = None,
    events=None,
) -> QueryOutcome:
    """Run one query to completion and summarize it as an outcome.

    Raises nothing query-related: every typed failure becomes an error
    outcome.  ``graph`` may be pre-resolved (build cache); ``tracer``
    defaults to a fresh per-query :class:`Tracer`.  ``profile_sink``,
    when given, receives the finished run's
    :class:`~repro.obs.profile.RunProfile` as a plain dict (the admin
    server's ``/profilez`` payload) — it is only called on success.
    ``slowdown`` uniformly slows the modeled hardware by that exact
    factor (chaos-under-load testing); ``deadline`` is a
    ``time.perf_counter`` timestamp propagated into the ECL-MST round
    loop, past which the run aborts as a timeout outcome.  ``events``
    overrides the process-global event log (the service passes its
    recorder tee here so solver events reach the flight-recorder ring).
    """
    from ..obs.profile import graph_fingerprint

    tracer = tracer or Tracer()
    t0 = time.perf_counter()
    try:
        with tracer.span(f"query {query.id}", kind="service", query=query.id):
            with tracer.span("load input", kind="host", input=query.input):
                if graph is None:
                    graph = _load_graph_for(query)
                fingerprint = graph_fingerprint(graph)
            load_s = time.perf_counter() - t0
            t1 = time.perf_counter()
            with tracer.span("run", kind="host", code=query.code):
                result = _run_code(
                    query,
                    graph,
                    tracer,
                    slowdown=slowdown,
                    deadline=deadline,
                    events=events,
                )
            run_s = time.perf_counter() - t1
    except BaseException as exc:  # typed failures -> error outcome
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return QueryOutcome.failure(
            query, exc, latency_s=time.perf_counter() - t0
        )
    from ..obs.metrics import collect_result_metrics

    if profile_sink is not None:
        from ..obs.profile import RunProfile

        try:
            profile_sink(
                RunProfile.from_result(result, tracer=tracer).to_dict()
            )
        except Exception:  # profiling must never fail the query
            pass

    return QueryOutcome(
        id=query.id,
        input=query.input,
        code=query.code,
        system=query.system,
        scale=query.scale,
        algorithm=result.algorithm,
        graph=fingerprint,
        total_weight=int(result.total_weight),
        num_mst_edges=int(result.num_mst_edges),
        rounds=int(result.rounds),
        modeled_seconds=float(result.modeled_seconds),
        mst_digest=edges_digest(result),
        metrics=collect_result_metrics(result),
        resilience=dict(result.extra.get("resilience") or {}),
        shard=dict(result.extra.get("shard") or {}),
        result_key=result_key(fingerprint["digest"], query),
        load_seconds=load_s,
        run_seconds=run_s,
        latency_s=time.perf_counter() - t0,
    )


def _run_code(
    query: Query,
    graph,
    tracer,
    *,
    slowdown: float = 1.0,
    deadline=None,
    events=None,
):
    from ..baselines.registry import get_runner
    from ..bench.harness import SYSTEM1, SYSTEM2

    system = SYSTEM1 if query.system == 1 else SYSTEM2
    if slowdown != 1.0:
        system = replace(
            system,
            gpu=system.gpu.slowed(slowdown),
            cpu=system.cpu.slowed(slowdown),
        )
    if query.code == "ECL-MST":
        from ..core.eclmst import ecl_mst

        config = query.resolved_config()
        resilience = None
        if query.check_cadence > 0:
            from ..resilience import ResilienceConfig

            resilience = ResilienceConfig(check_cadence=query.check_cadence)
        fault_plan = None
        if query.n_faults > 0:
            fault_plan = _build_fault_plan(query, config, graph, system.gpu)
        # Bind the query ID into the solver's event log so solver/
        # resilience events join back to the serving-layer events (the
        # solver adds its own run ID on top).
        log = events if events is not None else get_event_log()
        events = log.bind(query=query.id) if log.enabled else None
        return ecl_mst(
            graph,
            config,
            gpu=system.gpu,
            verify=query.verify,
            tracer=tracer,
            resilience=resilience,
            fault_plan=fault_plan,
            events=events,
            deadline=deadline,
            shards=int(query.shards) or 1,
            shard_strategy=query.shard_strategy,
        )
    try:
        runner = get_runner(query.code)
    except KeyError:
        from ..baselines.registry import RUNNERS

        raise QueryError(
            f"query {query.id}: unknown code {query.code!r}; "
            f"choose from {', '.join(RUNNERS)}"
        ) from None
    result = runner.run(graph, gpu=system.gpu, cpu=system.cpu, tracer=tracer)
    if query.verify:
        from ..core.verify import verify_mst

        verify_mst(result)
    return result


def _process_job(query_dict: dict, slowdown: float = 1.0) -> dict:
    """Process-pool entry point: parse, execute, return a plain dict.

    Runs in a worker process with no shared caches — the parent still
    dedups in flight and caches the returned outcome.  (The serving
    policy is thread-pool-only; only the slowdown knob crosses the
    process boundary.)
    """
    query = Query.from_dict(query_dict)
    return execute_query(query, slowdown=slowdown).to_dict()


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
@dataclass
class Ticket:
    """Handle for one submitted query.

    ``outcome()`` waits (honoring the query's timeout, measured from
    submission) and always returns a :class:`QueryOutcome` — timeouts
    become ``status="timeout"`` outcomes, and a query still queued at
    its deadline is cancelled cleanly without ever executing.
    """

    query: Query
    future: concurrent.futures.Future
    submitted_at: float
    primary: bool  # False when attached to an in-flight duplicate
    service: "MSTService"

    def outcome(self) -> QueryOutcome:
        q = self.query
        timeout = (
            q.timeout_s
            if q.timeout_s is not None
            else self.service.config.default_timeout_s
        )
        remaining = None
        if timeout is not None:
            remaining = max(0.0, self.submitted_at + timeout - time.perf_counter())
        try:
            raw = self.future.result(timeout=remaining)
        except concurrent.futures.TimeoutError:
            return self.service._on_timeout(self, timeout)
        except concurrent.futures.CancelledError:
            # The executor cancelled it before it ran (service
            # shutdown): a typed "cancelled" outcome, not a timeout —
            # the client never got a chance, not a slow answer.
            return self.service._cancelled_outcome(self)
        if isinstance(raw, dict):  # process pool returns plain dicts
            raw = QueryOutcome.from_dict(raw)
        return self.service._personalize(self, raw)


class MSTService:
    """Batched MST query engine (see module docstring).

    Usable as a context manager; :meth:`close` drains the pool.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        registry: MetricsRegistry | None = None,
        events=None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.registry = registry or MetricsRegistry()
        self.events = events if events is not None else get_event_log()
        # Flight recorder: constructed first and teed into the event
        # flow so everything downstream (SLO tracker, policy, solver
        # runs) feeds its rings — even when the user-facing log is the
        # NULL_EVENTS default.
        self.recorder: FlightRecorder | None = None
        if self.config.recorder is not None and self.config.recorder.enabled:
            self.recorder = FlightRecorder(
                self.config.recorder, registry=self.registry
            ).attach(self)
            self.events = self.recorder.tee(self.events)
        self.results = LRUCache(self.config.result_cache_size)
        self.graphs = LRUCache(self.config.graph_cache_size)
        # Sliding windows behind service.qps / p50 / p95 and the SLOs:
        # recent traffic, not process lifetime (the lifetime histogram
        # still exists for totals).
        self._lat_window = SlidingHistogram(window_s=self.config.window_s)
        self._done_window = SlidingCounter(window_s=self.config.window_s)
        self.slo = SLOTracker(
            window_s=self.config.window_s, events=self.events
        )
        self.started_at = time.time()
        self.latest_profile: dict | None = None
        # Most recent executed query's shard breakdown (the /metrics
        # per-device repro_shard_* gauges); None until a sharded query
        # has run.
        self.latest_shard: dict | None = None
        self._lock = threading.Lock()
        self._closed = False
        self._inflight: dict[str, concurrent.futures.Future] = {}
        # Serving policy: constructed only when any mechanism is armed,
        # so a policy-free service runs exactly the pre-policy code.
        self.policy: ResiliencePolicy | None = None
        if self.config.policy is not None and self.config.policy.enabled:
            self.policy = ResiliencePolicy(
                self.config.policy,
                max_queue_depth=self.config.max_queue_depth,
                registry=self.registry,
                events=self.events,
                window_s=self.config.window_s,
            )
        # When each result-cache entry was stored (staleness metadata
        # for degraded serving); maintained only with the policy on.
        self._cached_at: dict[str, float] = {}
        # Learned spec-key -> result-key mapping: lets the submit path
        # answer repeat queries from the result cache without loading
        # the graph (and gives process mode result-cache semantics,
        # since worker processes share no memory with the parent).
        self._spec_to_rkey: dict[str, str] = {}
        self._slots = threading.BoundedSemaphore(self.config.max_queue_depth)
        self._depth = 0
        self._first_submit: float | None = None
        self._last_done: float | None = None
        self._executor = self._make_executor()

    def _make_executor(self):
        if self.config.pool == "process":
            return concurrent.futures.ProcessPoolExecutor(
                max_workers=self.config.workers
            )
        return concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="mst-service",
        )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, query: Query) -> Ticket:
        """Enqueue one query; blocks while the queue is at capacity.

        With the serving policy armed, a query may instead resolve
        immediately: quarantined specs, admission-shed queries, and
        breaker-broken graphs get typed outcomes (optionally degraded
        to a stale cached answer) without touching the queue.
        """
        now = time.perf_counter()
        if query.shards == 0 and self.config.shards > 1:
            # Inherit the service's device count *before* any key is
            # computed, so dedup/caching see the resolved spec.
            query = replace(query, shards=self.config.shards)
        if (
            query.code == "ECL-MST"
            and "engine" not in query.config
            and self.config.engine != ServiceConfig.engine
        ):
            # Same pre-key inheritance for the union executor: only
            # non-default service engines need injecting (an absent
            # field already resolves to the EclMstConfig default).
            query = replace(
                query, config={**query.config, "engine": self.config.engine}
            )
        self.registry.counter("service.queries").inc()
        if self._closed:
            return self._resolved_ticket(
                query, self._shutdown_outcome(query), now
            )
        if self.events.enabled:
            self.events.emit(
                "service.enqueue",
                level="debug",
                query=query.id,
                input=query.input,
                code=query.code,
            )
        with self._lock:
            if self._first_submit is None:
                self._first_submit = now
            key = None
            try:
                key = query.spec_key()
            except QueryError:
                pass  # unresolvable config: fails in the worker instead
            if key is not None and key in self._inflight:
                self.registry.counter("service.dedup_hits").inc()
                if self.events.enabled:
                    self.events.emit(
                        "service.dedup", level="info", query=query.id
                    )
                return Ticket(query, self._inflight[key], now, False, self)
            rkey = self._spec_to_rkey.get(key) if key is not None else None
        if rkey is not None:
            cached = self.results.get(rkey)
            if cached is not None and self._is_fresh(rkey):
                self.registry.counter("service.result_cache_hits").inc()
                if self.events.enabled:
                    self.events.emit(
                        "service.cache_hit",
                        level="info",
                        query=query.id,
                        path="submit",
                    )
                return self._resolved_ticket(
                    query, replace(cached, served_by=SERVED_CACHE), now
                )
        if self.policy is not None:
            gated = self._policy_gate(query, key, rkey, now)
            if gated is not None:
                return gated
        self._slots.acquire()
        deadline = None
        timeout = (
            query.timeout_s
            if query.timeout_s is not None
            else self.config.default_timeout_s
        )
        if timeout is not None:
            deadline = now + timeout
        try:
            if self.config.pool == "process":
                self.registry.counter("service.executed").inc()
                future = self._executor.submit(
                    _process_job, query.to_dict(), self.config.slowdown
                )
            else:
                future = self._executor.submit(self._thread_job, query, deadline)
        except RuntimeError:
            # Raced with close(): the executor refused the job after we
            # took a slot.  Give the slot back and resolve typed.
            self._slots.release()
            return self._resolved_ticket(
                query, self._shutdown_outcome(query), now
            )
        with self._lock:
            self._depth += 1
            self.registry.gauge("service.queue_depth").set(self._depth)
            if key is not None:
                self._inflight[key] = future
        # Registered after the in-flight map so a fast completion still
        # cleans up: a callback added to a finished future fires
        # immediately in this thread.
        future.add_done_callback(lambda _f: self._release(key))
        return Ticket(query, future, now, True, self)

    def _release(self, key: str | None) -> None:
        with self._lock:
            self._depth -= 1
            self.registry.gauge("service.queue_depth").set(self._depth)
            self._last_done = time.perf_counter()
            if key is not None:
                self._inflight.pop(key, None)
        self._slots.release()

    # ------------------------------------------------------------------
    # Serving policy (submit side)
    # ------------------------------------------------------------------
    def _resolved_ticket(
        self, query: Query, outcome: QueryOutcome, now: float
    ) -> Ticket:
        """A ticket already carrying its outcome (shed/cached/refused)."""
        done: concurrent.futures.Future = concurrent.futures.Future()
        done.set_result(outcome)
        return Ticket(query, done, now, True, self)

    def _shutdown_outcome(self, query: Query) -> QueryOutcome:
        return QueryOutcome.failure(
            query,
            Overloaded("service is shut down", reason="shutdown"),
            status="cancelled",
        )

    def _policy_gate(
        self, query: Query, key: str | None, rkey: str | None, now: float
    ) -> Ticket | None:
        """Admission + quarantine + learned-fingerprint breaker checks.

        Returns a resolved ticket when the query must not queue, or
        ``None`` to proceed.  Runs *after* the dedup/result-cache fast
        paths: answering from memory is nearly free, so overload
        protection only guards execution capacity.
        """
        pol = self.policy
        assert pol is not None
        if pol.cfg.quarantine_on and key is not None:
            entry = pol.quarantine.check(key)
            if entry is not None:
                pol.note_quarantined()
                if self.events.enabled:
                    self.events.emit(
                        "policy.refused",
                        level="warning",
                        query=query.id,
                        reason="quarantine",
                        failures=entry["failures"],
                    )
                out = QueryOutcome.failure(
                    query,
                    Overloaded(
                        f"query spec quarantined after {entry['failures']} "
                        "consecutive failures",
                        reason="quarantine",
                    ),
                    status="quarantined",
                )
                out.policy = {"reason": "quarantine", **entry}
                return self._resolved_ticket(query, out, now)
        with self._lock:
            depth = self._depth
        decision = pol.admit(priority=query.priority, queue_depth=depth)
        if not decision.admitted:
            return self._shed_ticket(query, rkey, now, decision.reason)
        if rkey is not None and pol.breaker_rejects_fast(
            rkey.split(":", 1)[0]
        ):
            pol.note_shed()
            return self._shed_ticket(query, rkey, now, "breaker-open")
        return None

    def _shed_ticket(
        self, query: Query, rkey: str | None, now: float, reason: str
    ) -> Ticket:
        """Resolve a shed query: degraded stale answer if allowed and
        available, else a typed ``shed`` outcome (exit code 6)."""
        stale = self._stale_outcome(query, rkey, cause=reason)
        if stale is not None:
            return self._resolved_ticket(query, stale, now)
        if self.events.enabled:
            self.events.emit(
                "policy.shed",
                level="warning",
                query=query.id,
                reason=reason,
                priority=query.priority,
            )
        out = QueryOutcome.failure(
            query,
            Overloaded(f"query shed ({reason})", reason=reason),
            status="shed",
        )
        out.policy = {"reason": reason, "priority": query.priority}
        return self._resolved_ticket(query, out, now)

    # ------------------------------------------------------------------
    # Staleness bookkeeping (policy only; no-ops when off)
    # ------------------------------------------------------------------
    def _cache_result(self, rkey: str, outcome: QueryOutcome) -> None:
        self.results.put(rkey, outcome)
        if self.policy is None:
            return
        with self._lock:
            self._cached_at[rkey] = time.monotonic()
            # Prune timestamps for evicted entries once the side table
            # outgrows the cache — O(capacity) amortized, rare.
            if len(self._cached_at) > 2 * max(8, self.config.result_cache_size):
                live = set(self.results.keys())
                for k in [k for k in self._cached_at if k not in live]:
                    del self._cached_at[k]

    def _age_of(self, rkey: str) -> float | None:
        at = self._cached_at.get(rkey)
        return None if at is None else max(0.0, time.monotonic() - at)

    def _is_fresh(self, rkey: str) -> bool:
        """Whether a cached result may serve as a normal cache hit.

        Always true without the policy (entries never expire, the
        pre-policy behavior).  With ``fresh_ttl_s`` armed, older
        entries stop short-circuiting execution — they remain eligible
        only for *degraded* stale serving under duress.
        """
        pol = self.policy
        if pol is None or pol.cfg.fresh_ttl_s <= 0:
            return True
        age = self._age_of(rkey)
        return age is None or age <= pol.cfg.fresh_ttl_s

    def _stale_outcome(
        self, query: Query, rkey: str | None, *, cause: str
    ) -> QueryOutcome | None:
        """A degraded answer from the result cache, if policy allows."""
        pol = self.policy
        if pol is None or not pol.cfg.serve_stale or rkey is None:
            return None
        cached = self.results.peek(rkey)
        if cached is None:
            return None
        age = self._age_of(rkey) or 0.0
        if age > pol.cfg.stale_max_age_s:
            return None
        pol.note_degraded()
        if self.events.enabled:
            self.events.emit(
                "policy.degraded",
                level="warning",
                query=query.id,
                mode="stale-cache",
                cause=cause,
                staleness_s=round(age, 3),
            )
        out = replace(cached, status="degraded", served_by=SERVED_STALE)
        out.policy = {
            "degraded": "stale-cache",
            "cause": cause,
            "staleness_s": round(age, 3),
        }
        return out

    # ------------------------------------------------------------------
    # Worker side (thread pool)
    # ------------------------------------------------------------------
    def _thread_job(self, query: Query, deadline: float | None) -> QueryOutcome:
        if deadline is not None and time.perf_counter() > deadline:
            # Spent its whole budget waiting in the queue: never run.
            return QueryOutcome.failure(
                query,
                TimeoutError("deadline expired while queued"),
                status="timeout",
            )
        tracer = Tracer()
        try:
            graph = self._resolve_graph(query)
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.registry.counter("service.errors").inc()
            if self.events.enabled:
                self.events.emit(
                    "service.error",
                    level="error",
                    query=query.id,
                    error=str(exc),
                )
            return QueryOutcome.failure(query, exc)
        from ..obs.profile import graph_fingerprint

        digest = graph_fingerprint(graph)["digest"]
        rkey = result_key(digest, query)
        cached = self.results.get(rkey)
        if cached is not None and self._is_fresh(rkey):
            self.registry.counter("service.result_cache_hits").inc()
            if self.events.enabled:
                self.events.emit(
                    "service.cache_hit",
                    level="info",
                    query=query.id,
                    path="worker",
                )
            return replace(cached, served_by=SERVED_CACHE)
        pol = self.policy
        if pol is not None and not pol.breaker_allows(digest):
            # Open breaker (authoritative, post-graph-load): fail fast
            # or degrade; never burn an execution on a broken graph.
            degraded = self._degraded_answer(
                query, graph, rkey, tracer, cause="breaker-open"
            )
            if degraded is not None:
                return degraded
            pol.note_shed()
            if self.events.enabled:
                self.events.emit(
                    "policy.shed",
                    level="warning",
                    query=query.id,
                    reason="breaker-open",
                    priority=query.priority,
                )
            out = QueryOutcome.failure(
                query,
                Overloaded(
                    "circuit breaker open for this graph",
                    reason="breaker-open",
                ),
                status="shed",
            )
            out.policy = {"reason": "breaker-open", "graph": digest}
            return out
        self.registry.counter("service.executed").inc()
        if self.events.enabled:
            self.events.emit(
                "service.execute",
                level="info",
                query=query.id,
                input=query.input,
                code=query.code,
            )
        outcome = self._execute_with_retries(
            query, graph, tracer, deadline, rkey
        )
        if self.recorder is not None:
            self.recorder.record_spans(query.id, tracer)
        if pol is not None:
            pol.breaker_record(digest, ok=outcome.ok, query_id=query.id)
            if pol.cfg.quarantine_on:
                try:
                    skey = query.spec_key()
                except QueryError:  # pragma: no cover - unresolvable spec
                    skey = None
                if skey is not None and pol.quarantine.record(
                    skey, ok=outcome.ok, error_kind=outcome.error_kind
                ):
                    pol.note_quarantined()
        if outcome.ok:
            self._cache_result(rkey, outcome)
        else:
            self.registry.counter("service.errors").inc()
            if self.events.enabled:
                self.events.emit(
                    "service.error",
                    level="error",
                    query=query.id,
                    error=outcome.error or "?",
                )
            if pol is not None and outcome.error_kind in ("fault", "timeout"):
                degraded = self._degraded_answer(
                    query,
                    graph,
                    rkey,
                    tracer,
                    cause=f"retries-exhausted:{outcome.error_kind}",
                )
                if degraded is not None:
                    degraded.policy.setdefault(
                        "original_error", outcome.error_kind
                    )
                    return degraded
        return outcome

    def _execute_with_retries(
        self,
        query: Query,
        graph,
        tracer,
        deadline: float | None,
        rkey: str,
    ) -> QueryOutcome:
        """Execute, retrying transient failures under the policy budget.

        Backoff follows the per-query seeded decorrelated-jitter
        schedule; a retry is only attempted for ``fault``/``timeout``
        outcomes, within the budget, and never past the deadline.
        Chaos queries (seeded fault injection) re-run with an
        attempt-salted fault seed so the injected fault actually moves
        — exactly as a real transient would — while the *result*
        stays keyed (and cached) under the original spec.
        """
        sink = self._store_profile if self.config.keep_profile else None
        outcome = execute_query(
            query,
            graph,
            tracer=tracer,
            profile_sink=sink,
            slowdown=self.config.slowdown,
            deadline=deadline,
            events=self.events,
        )
        pol = self.policy
        if pol is None or not pol.cfg.retries_on:
            return outcome
        retry = pol.retry_for(rkey)
        attempt = 0
        while not outcome.ok:
            delay = retry.next_delay()
            if not retry.should_retry(
                error_kind=outcome.error_kind,
                delay=delay,
                now=time.perf_counter(),
                deadline=deadline,
            ):
                break
            retry.note_attempt(delay)
            pol.note_retry()
            if self.events.enabled:
                self.events.emit(
                    "policy.retry",
                    level="warning",
                    query=query.id,
                    attempt=retry.attempts_used,
                    delay_s=round(delay, 6),
                    error_kind=outcome.error_kind,
                )
            pol.sleep(delay)
            attempt += 1
            attempt_query = query
            if query.n_faults > 0:
                attempt_query = replace(
                    query,
                    fault_seed=(query.fault_seed or 0) + 1_000_003 * attempt,
                )
            outcome = execute_query(
                attempt_query,
                graph,
                tracer=Tracer(),
                profile_sink=sink,
                slowdown=self.config.slowdown,
                deadline=deadline,
                events=self.events,
            )
        if retry.attempts_used:
            if outcome.ok:
                # Re-key a salted chaos retry back to the original spec
                # so caching/dedup see one query, not per-attempt ones.
                outcome = replace(outcome, result_key=rkey)
            outcome.policy = {
                **outcome.policy,
                "retries": retry.attempts_used,
                "backoff_s": round(sum(retry.delays), 6),
            }
        return outcome

    def _degraded_answer(
        self, query: Query, graph, rkey: str, tracer, *, cause: str
    ) -> QueryOutcome | None:
        """Stale cached answer, else serial fallback, else ``None``.

        The serial fallback runs at reduced priority: it re-enters the
        admission bucket with the lowest-priority reserve, so degraded
        work never crowds out admitted traffic.
        """
        pol = self.policy
        if pol is None:
            return None
        stale = self._stale_outcome(query, rkey, cause=cause)
        if stale is not None:
            return stale
        if pol.cfg.degrade_serial and pol.allow_fallback():
            return self._serial_fallback(query, graph, tracer, cause)
        return None

    def _serial_fallback(
        self, query: Query, graph, tracer, cause: str
    ) -> QueryOutcome | None:
        """Answer with the serial-Kruskal baseline, marked degraded."""
        fallback_query = replace(
            query,
            code=_FALLBACK_CODE,
            stage=None,
            config={},
            check_cadence=0,
            fault_seed=None,
            n_faults=0,
            fault_kinds=(),
        )
        fb = execute_query(
            fallback_query,
            graph,
            tracer=tracer,
            slowdown=self.config.slowdown,
            events=self.events,
        )
        if not fb.ok:
            return None
        pol = self.policy
        assert pol is not None
        pol.note_degraded()
        if self.events.enabled:
            self.events.emit(
                "policy.degraded",
                level="warning",
                query=query.id,
                mode="serial-fallback",
                cause=cause,
            )
        out = replace(
            fb,
            id=query.id,
            code=query.code,
            status="degraded",
            served_by=SERVED_FALLBACK,
            result_key="",  # never cached as the real answer
        )
        out.policy = {
            "degraded": "serial-fallback",
            "cause": cause,
            "algorithm": fb.algorithm,
        }
        return out

    def _store_profile(self, profile: dict) -> None:
        """Retain the most recent executed query's run profile (the
        admin server's ``/profilez`` payload)."""
        with self._lock:
            self.latest_profile = profile

    def _resolve_graph(self, query: Query):
        skey = _graph_source_key(query)
        before = self.graphs.hits
        graph = self.graphs.get_or_create(skey, lambda: _load_graph_for(query))
        if self.graphs.hits > before:
            self.registry.counter("service.graph_cache_hits").inc()
        return graph

    # ------------------------------------------------------------------
    # Ticket support
    # ------------------------------------------------------------------
    def _personalize(self, ticket: Ticket, raw: QueryOutcome) -> QueryOutcome:
        """Each waiter gets its own copy: its id, its latency, and a
        ``coalesced`` marker when it attached to another execution."""
        latency = time.perf_counter() - ticket.submitted_at
        served = raw.served_by
        if not ticket.primary and raw.ok:
            served = SERVED_COALESCED
        if raw.ok and raw.result_key:
            if raw.served_by == SERVED_EXECUTE:
                # Idempotent for thread workers; in process mode this is
                # where the parent's result cache learns the outcome.
                self._cache_result(raw.result_key, raw)
            with self._lock:
                try:
                    self._spec_to_rkey[ticket.query.spec_key()] = raw.result_key
                except QueryError:  # pragma: no cover - unresolvable spec
                    pass
        out = replace(
            raw, id=ticket.query.id, served_by=served, latency_s=latency
        )
        self.registry.histogram("service.latency").observe(latency)
        self._observe_done(out, latency, query=ticket.query)
        if out.status == "timeout":
            self.registry.counter("service.timeouts").inc()
        return out

    def _observe_done(
        self, out: QueryOutcome, latency: float, query: Query | None = None
    ) -> None:
        """Feed one finished waiter into the sliding windows, SLOs, and
        the flight recorder.

        Availability counts *served* outcomes — a degraded answer is
        still an answer — while shed queries feed the shed-rate SLO.
        Without the policy, served == ok and shed never happens, so
        the accounting is unchanged.  The outcome's query ID rides
        along as the exemplar for the latency window and SLOs.
        """
        self._lat_window.observe(latency, exemplar=out.id)
        self._done_window.inc()
        if out.shard:
            self.latest_shard = out.shard
            reg = self.registry
            reg.gauge("shard.devices").set(out.shard.get("shards", 0))
            reg.gauge("shard.imbalance").set(out.shard.get("imbalance", 0.0))
            reg.gauge("shard.cut_edges").set(out.shard.get("cut_edges", 0))
            reg.gauge("shard.comms_time_share").set(
                out.shard.get("comms_time_share", 0.0)
            )
        escaped = 0
        res = out.resilience
        if isinstance(res, dict):
            escaped = int(res.get("escaped", 0) or 0)
        self.slo.record(
            ok=out.served,
            latency_s=latency,
            escaped=escaped,
            shed=out.status == "shed",
            query_id=out.id,
        )
        rec = self.recorder
        if rec is not None:
            rec.observe_outcome(out, query=query)
            rec.maybe_snapshot(self)

    def _timeout_outcome(
        self, ticket: Ticket, timeout: float | None, why: str
    ) -> QueryOutcome:
        self.registry.counter("service.timeouts").inc()
        latency = time.perf_counter() - ticket.submitted_at
        self.registry.histogram("service.latency").observe(latency)
        if self.events.enabled:
            self.events.emit(
                "service.timeout",
                level="warning",
                query=ticket.query.id,
                timeout_s=timeout,
                why=why,
            )
        out = QueryOutcome.failure(
            ticket.query,
            TimeoutError(f"{why} (timeout {timeout}s)"),
            status="timeout",
            latency_s=latency,
        )
        self._observe_done(out, latency, query=ticket.query)
        return out

    def _on_timeout(self, ticket: Ticket, timeout: float | None) -> QueryOutcome:
        if ticket.future.cancel():
            # Still queued: cancelled cleanly, never executed.  (The
            # done callback fires on cancel and releases the dedup key
            # and slot.)
            return self._timeout_outcome(
                ticket, timeout, "cancelled while queued"
            )
        # Already running: the computation finishes in the background
        # (and may still warm the cache); this waiter stops waiting.
        # Drop the dedup key NOW — if the execution is wedged, later
        # identical queries must not coalesce onto a dead ticket and
        # inherit its fate (slot/depth accounting stays with the done
        # callback, which fires if the execution ever finishes).
        self._drop_inflight(ticket)
        return self._timeout_outcome(
            ticket, timeout, "timed out while executing"
        )

    def _drop_inflight(self, ticket: Ticket) -> None:
        """Release a ticket's dedup key without touching slot/depth
        accounting (compare-and-pop: only if the map still points at
        this ticket's future)."""
        try:
            key = ticket.query.spec_key()
        except QueryError:  # pragma: no cover - unresolvable spec
            return
        with self._lock:
            if self._inflight.get(key) is ticket.future:
                del self._inflight[key]

    def _cancelled_outcome(self, ticket: Ticket) -> QueryOutcome:
        """Typed outcome for a query cancelled before execution (the
        executor dropped it at shutdown)."""
        latency = time.perf_counter() - ticket.submitted_at
        self.registry.counter("service.cancelled").inc()
        self.registry.histogram("service.latency").observe(latency)
        if self.events.enabled:
            self.events.emit(
                "service.cancelled",
                level="warning",
                query=ticket.query.id,
            )
        out = QueryOutcome.failure(
            ticket.query,
            Overloaded(
                "cancelled before execution (service shutdown)",
                reason="shutdown",
            ),
            status="cancelled",
            latency_s=latency,
        )
        self._observe_done(out, latency, query=ticket.query)
        return out

    # ------------------------------------------------------------------
    # Batch interface
    # ------------------------------------------------------------------
    def run_batch(self, items) -> list[QueryOutcome]:
        """Serve a mixed list of :class:`Query` and pre-failed
        :class:`QueryOutcome` entries (malformed lines), preserving
        order.  Never raises for per-query failures."""
        tickets: list[Ticket | QueryOutcome] = []
        for item in items:
            if isinstance(item, QueryOutcome):
                self.registry.counter("service.queries").inc()
                self.registry.counter("service.errors").inc()
                if self.recorder is not None:
                    self.recorder.observe_outcome(item)
                tickets.append(item)
            else:
                tickets.append(self.submit(item))
        return [
            t if isinstance(t, QueryOutcome) else t.outcome() for t in tickets
        ]

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """One flat dict of service metrics (the ISSUE's aggregate set
        plus the underlying counters), refreshed from current state."""
        reg = self.registry
        queries = reg.counter("service.queries").value
        hits = (
            reg.counter("service.result_cache_hits").value
            + reg.counter("service.dedup_hits").value
        )
        reg.gauge("service.cache_hit_ratio").set(
            hits / queries if queries else 0.0
        )
        # p50/p95/qps reflect the sliding window (recent traffic), not
        # the process lifetime: a long-lived service reports what it is
        # doing *now*.  The lifetime histogram stays in the registry
        # for totals (service.latency.count / .sum).
        reg.gauge("service.p50_latency").set(self._lat_window.quantile(0.5))
        reg.gauge("service.p95_latency").set(self._lat_window.quantile(0.95))
        reg.gauge("service.qps").set(self._done_window.rate())
        out = {
            k: v
            for k, v in reg.as_dict().items()
            if not k.startswith("service.latency.")
        }
        out["service.graph_cache_size"] = float(len(self.graphs))
        out["service.result_cache_size"] = float(len(self.results))
        if self.policy is not None:
            out.update(self.policy.windowed_metrics())
        if self.recorder is not None:
            out.update(self.recorder.metrics())
        return out

    def slo_statuses(self):
        """Evaluate every SLO against the current window (and emit
        burn/recovered alert events on state transitions)."""
        return self.slo.evaluate()

    def status(self) -> dict:
        """JSON-friendly live snapshot (the admin ``/statusz`` body)."""
        from .. import __version__

        with self._lock:
            depth = self._depth
        return {
            "version": __version__,
            "uptime_s": time.time() - self.started_at,
            "config": {
                "workers": self.config.workers,
                "pool": self.config.pool,
                "result_cache_size": self.config.result_cache_size,
                "graph_cache_size": self.config.graph_cache_size,
                "max_queue_depth": self.config.max_queue_depth,
                "window_s": self.config.window_s,
                "shards": self.config.shards,
            },
            "queue_depth": depth,
            "caches": {
                "results": len(self.results),
                "graphs": len(self.graphs),
            },
            "window": {
                "completed": self._done_window.total(),
                "qps": self._done_window.rate(),
                "latency": self._lat_window.summary(),
            },
            "shard": (
                {
                    "shards": self.latest_shard.get("shards", 0),
                    "strategy": self.latest_shard.get("strategy", ""),
                    "imbalance": self.latest_shard.get("imbalance", 0.0),
                    "cut_edges": self.latest_shard.get("cut_edges", 0),
                    "comms_time_share": self.latest_shard.get(
                        "comms_time_share", 0.0
                    ),
                    "devices": self.latest_shard.get("devices", []),
                }
                if self.latest_shard
                else {"shards": self.config.shards}
            ),
            "slos": [s.to_dict() for s in self.slo_statuses()],
            "policy": (
                {"enabled": True, **self.policy.status()}
                if self.policy is not None
                else {"enabled": False}
            ),
            "recorder": (
                {
                    "enabled": True,
                    "dir": str(self.recorder.config.dir),
                    "bundles_written": self.recorder.bundles_written,
                }
                if self.recorder is not None
                else {"enabled": False}
            ),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, *, wait: bool = True) -> None:
        """Shut the pool down.

        ``wait=False`` cancels still-queued work: those tickets (and
        any later :meth:`submit`) resolve to typed ``cancelled``
        outcomes instead of hanging or raising.
        """
        self._closed = True
        self._executor.shutdown(wait=wait, cancel_futures=not wait)

    def __enter__(self) -> "MSTService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
