"""Road-network-like graphs (USA-road-d.NY / .USA / europe_osm analogs).

Road maps are near-planar, have very low average degree (2.1-2.8 in
Table 2), tiny maximum degree (8-13), a single connected component,
huge diameter, and distance weights (the ``-d`` DIMACS variants).  We
reproduce those properties by construction:

1. scatter ``n`` points uniformly in the unit square,
2. Delaunay-triangulate them (planar candidate edge set),
3. take the *Euclidean MST* of the triangulation as the backbone —
   always connected, maximum degree ≤ 6,
4. add the shortest remaining triangulation edges (with a little
   jitter so the selection isn't purely radial) until the target
   average degree is met,
5. weight every edge by its scaled Euclidean length.

The large diameter that makes road networks the *round-count* stress
test for Borůvka-style codes emerges from the spatial locality.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay

from ..graph.build import from_edge_arrays
from ..graph.csr import CSRGraph

__all__ = ["road_network"]


def _delaunay_edges(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    tri = Delaunay(points)
    s = tri.simplices
    lo = np.concatenate([s[:, 0], s[:, 1], s[:, 2]]).astype(np.int64)
    hi = np.concatenate([s[:, 1], s[:, 2], s[:, 0]]).astype(np.int64)
    lo, hi = np.minimum(lo, hi), np.maximum(lo, hi)
    key = lo * points.shape[0] + hi
    _, uniq = np.unique(key, return_index=True)
    return lo[uniq], hi[uniq]


def _euclidean_mst_mask(
    points: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> np.ndarray:
    """Kruskal over the candidate edges by length; True = backbone edge."""
    lengths = np.linalg.norm(points[lo] - points[hi], axis=1)
    order = np.argsort(lengths, kind="stable")
    parent = np.arange(points.shape[0], dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = int(parent[root])
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    mask = np.zeros(lo.size, dtype=bool)
    remaining = points.shape[0] - 1
    for i in order:
        if remaining == 0:
            break
        ra, rb = find(int(lo[i])), find(int(hi[i]))
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)
            mask[i] = True
            remaining -= 1
    return mask


def road_network(
    num_vertices: int,
    *,
    target_avg_degree: float = 2.5,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """Build a connected road-map-like graph.

    ``target_avg_degree`` is the directed-slot average degree from
    Table 2 (2.1 for europe_osm, 2.4 for USA, 2.8 for NY); it must be
    at least ``2 (n - 1) / n`` since the backbone tree is always kept.
    """
    if num_vertices < 3:
        raise ValueError("need at least 3 vertices")
    rng = np.random.default_rng(seed)
    points = rng.random((num_vertices, 2))
    lo, hi = _delaunay_edges(points)
    backbone = _euclidean_mst_mask(points, lo, hi)

    target_edges = max(
        num_vertices - 1, int(round(target_avg_degree * num_vertices / 2))
    )
    extra_needed = target_edges - int(np.count_nonzero(backbone))
    if extra_needed > 0:
        cand = np.flatnonzero(~backbone)
        lengths = np.linalg.norm(points[lo[cand]] - points[hi[cand]], axis=1)
        # Jitter the ranking so the extras aren't purely the shortest
        # (real road grids mix short blocks with longer connectors).
        jitter = rng.random(cand.size) * float(lengths.mean())
        pick = cand[np.argsort(lengths + jitter)[:extra_needed]]
        keep = backbone.copy()
        keep[pick] = True
    else:
        keep = backbone

    lo, hi = lo[keep], hi[keep]
    d = np.linalg.norm(points[lo] - points[hi], axis=1)
    w = np.maximum(1, (d * 1_000_000).astype(np.int64))
    return from_edge_arrays(
        num_vertices, lo, hi, w, name=name or f"road-{num_vertices}"
    )
