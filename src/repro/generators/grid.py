"""2D grid graphs (the paper's ``2d-2e20.sym`` input).

A ``side × side`` four-neighbor grid: every interior vertex has degree
4 (Table 2 lists d-avg 4.0, d-max 4), a single connected component, and
random hash weights.
"""

from __future__ import annotations

import numpy as np

from ..graph.build import from_edge_arrays
from ..graph.weights import hash_weight

__all__ = ["grid2d"]


def grid2d(side: int, *, seed: int = 0, name: str | None = None):
    """Build a ``side × side`` grid graph.

    Vertices are numbered row-major; vertex ``(r, c)`` is ``r * side + c``
    and connects to its right and down neighbors (mirroring makes the
    graph undirected).
    """
    if side < 1:
        raise ValueError("side must be >= 1")
    idx = np.arange(side * side, dtype=np.int64).reshape(side, side)
    right_u = idx[:, :-1].ravel()
    right_v = idx[:, 1:].ravel()
    down_u = idx[:-1, :].ravel()
    down_v = idx[1:, :].ravel()
    lo = np.concatenate([right_u, down_u])
    hi = np.concatenate([right_v, down_v])
    w = hash_weight(lo, hi, seed=seed)
    return from_edge_arrays(side * side, lo, hi, w, name=name or f"2d-{side}x{side}.sym")
