"""Uniform random graphs (the paper's ``r4-2e23.sym`` input).

``r4`` graphs give every vertex ``k = 4`` outgoing random edges, for an
average (directed) degree of about ``2k = 8`` after symmetrization —
matching Table 2's d-avg of 8.0 with a tight maximum degree (26).
"""

from __future__ import annotations

import numpy as np

from ..graph.build import build_csr
from ..graph.csr import CSRGraph
from ..graph.weights import hash_weight

__all__ = ["random_k_out", "erdos_renyi"]


def random_k_out(
    num_vertices: int, k: int = 4, *, seed: int = 0, name: str | None = None
) -> CSRGraph:
    """Each vertex draws ``k`` uniform random neighbors (``rK`` inputs).

    Self-loops and duplicates are cleaned by the CSR builder, so the
    realized average degree is marginally below ``2k``.  For ``k >= 2``
    and non-trivial sizes the result is almost surely connected, like
    the paper's r4 input (1 connected component).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = np.random.default_rng(seed)
    u = np.repeat(np.arange(num_vertices, dtype=np.int64), k)
    v = rng.integers(0, num_vertices, size=num_vertices * k, dtype=np.int64)
    lo, hi = np.minimum(u, v), np.maximum(u, v)
    w = hash_weight(lo, hi, seed=seed)
    return build_csr(
        num_vertices, lo, hi, w, name=name or f"r{k}-{num_vertices}.sym"
    )


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    *,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """G(n, m)-style random graph with ``num_edges`` sampled pairs.

    Used by tests and examples that need arbitrary-density random
    inputs (duplicates are merged, so the realized edge count can be
    slightly below ``num_edges``).
    """
    rng = np.random.default_rng(seed)
    u = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    v = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    lo, hi = np.minimum(u, v), np.maximum(u, v)
    w = hash_weight(lo, hi, seed=seed)
    return build_csr(num_vertices, lo, hi, w, name=name or f"er-{num_vertices}")
