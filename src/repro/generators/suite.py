"""The 17-input evaluation suite (Table 2), as scaled synthetic analogs.

Each paper input is bound to a generator reproducing its *type*: degree
profile, connected-component structure and weight style.  Absolute
sizes are scaled down (the originals range up to 182M edges, far beyond
what a pure-Python substrate should chew through in benchmarks); the
``scale`` parameter multiplies vertex counts so size trends can still
be swept.

Usage::

    from repro.generators import suite
    g = suite.build("coPapersDBLP")          # default scale
    graphs = suite.build_all(scale=0.5)      # the whole suite, smaller
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..graph.csr import CSRGraph
from .delaunay import delaunay_graph
from .grid import grid2d
from .random_graphs import random_k_out
from .rmat import kronecker, rmat
from .roads import road_network
from .scalefree import internet_topology, preferential_attachment

__all__ = [
    "INPUT_NAMES",
    "MST_INPUT_NAMES",
    "PAPER_TABLE2",
    "InputSpec",
    "SUITE",
    "build",
    "build_all",
]


@dataclass(frozen=True)
class InputSpec:
    """Binding of a paper input name to its synthetic generator."""

    name: str
    kind: str
    builder: Callable[[float, int], CSRGraph]
    single_component: bool  # True rows are "MST inputs" in the tables

    def build(self, scale: float = 1.0, seed: int = 0) -> CSRGraph:
        g = self.builder(scale, seed)
        g.name = self.name
        return g


def _n(base: int, scale: float) -> int:
    return max(16, int(base * scale))


def _side(base: int, scale: float) -> int:
    return max(4, int(base * scale**0.5))


SUITE: dict[str, InputSpec] = {
    # name: generator matched to the Table-2 row (type, d-avg, CC count).
    "2d-2e20.sym": InputSpec(
        "2d-2e20.sym",
        "grid",
        lambda s, seed: grid2d(_side(64, s), seed=seed),
        True,
    ),
    "amazon0601": InputSpec(
        "amazon0601",
        "co-purchases",
        lambda s, seed: preferential_attachment(
            _n(4000, s), 6, num_components=7, seed=seed
        ),
        False,
    ),
    "as-skitter": InputSpec(
        "as-skitter",
        "Internet topo.",
        lambda s, seed: preferential_attachment(
            _n(8000, s), 6, num_components=26, seed=seed
        ),
        False,
    ),
    "citationCiteseer": InputSpec(
        "citationCiteseer",
        "publication cit.",
        lambda s, seed: preferential_attachment(_n(2700, s), 4, seed=seed),
        True,
    ),
    "cit-Patents": InputSpec(
        "cit-Patents",
        "patent cit.",
        lambda s, seed: preferential_attachment(
            _n(9000, s), 4, num_components=40, component_size=6, seed=seed
        ),
        False,
    ),
    "coPapersDBLP": InputSpec(
        "coPapersDBLP",
        "publication cit.",
        lambda s, seed: preferential_attachment(_n(2000, s), 28, seed=seed),
        True,
    ),
    "delaunay_n24": InputSpec(
        "delaunay_n24",
        "triangulation",
        lambda s, seed: delaunay_graph(_n(8000, s), seed=seed),
        True,
    ),
    "europe_osm": InputSpec(
        "europe_osm",
        "road map",
        lambda s, seed: road_network(
            _n(16000, s), target_avg_degree=2.1, seed=seed
        ),
        True,
    ),
    "in-2004": InputSpec(
        "in-2004",
        "web links",
        lambda s, seed: preferential_attachment(
            _n(3500, s), 10, num_components=10, seed=seed
        ),
        False,
    ),
    "internet": InputSpec(
        "internet",
        "Internet topo.",
        lambda s, seed: internet_topology(_n(2000, s), seed=seed),
        True,
    ),
    "kron_g500-logn21": InputSpec(
        "kron_g500-logn21",
        "Kronecker",
        lambda s, seed: kronecker(_log2n(4096, s), edge_factor=48.0, seed=seed),
        False,
    ),
    "r4-2e23.sym": InputSpec(
        "r4-2e23.sym",
        "random",
        lambda s, seed: random_k_out(_n(8192, s), 4, seed=seed),
        True,
    ),
    "rmat16.sym": InputSpec(
        "rmat16.sym",
        "RMAT",
        lambda s, seed: rmat(_log2n(1024, s), edge_factor=7.4, seed=seed),
        False,
    ),
    "rmat22.sym": InputSpec(
        "rmat22.sym",
        "RMAT",
        lambda s, seed: rmat(_log2n(8192, s), edge_factor=7.8, seed=seed),
        False,
    ),
    "soc-LiveJournal1": InputSpec(
        "soc-LiveJournal1",
        "community",
        lambda s, seed: preferential_attachment(
            _n(8000, s), 8, num_components=16, seed=seed
        ),
        False,
    ),
    "USA-road-d.NY": InputSpec(
        "USA-road-d.NY",
        "road map",
        lambda s, seed: road_network(
            _n(4000, s), target_avg_degree=2.8, seed=seed
        ),
        True,
    ),
    "USA-road-d.USA": InputSpec(
        "USA-road-d.USA",
        "road map",
        lambda s, seed: road_network(
            _n(16000, s), target_avg_degree=2.4, seed=seed
        ),
        True,
    ),
}

INPUT_NAMES: tuple[str, ...] = tuple(SUITE)
MST_INPUT_NAMES: tuple[str, ...] = tuple(
    name for name, spec in SUITE.items() if spec.single_component
)


def _log2n(base_n: int, scale: float) -> int:
    """Scale a power-of-two vertex count, returned as the exponent."""
    import math

    n = max(64, int(base_n * scale))
    return max(6, round(math.log2(n)))


def build(name: str, scale: float = 1.0, seed: int = 0) -> CSRGraph:
    """Build the named suite input at the given scale."""
    try:
        spec = SUITE[name]
    except KeyError:
        raise KeyError(
            f"unknown input {name!r}; choose from {', '.join(INPUT_NAMES)}"
        ) from None
    return spec.build(scale, seed)


def build_all(scale: float = 1.0, seed: int = 0) -> dict[str, CSRGraph]:
    """Build the entire 17-graph suite."""
    return {name: spec.build(scale, seed) for name, spec in SUITE.items()}


# Paper Table 2, verbatim, for side-by-side reporting in EXPERIMENTS.md.
PAPER_TABLE2: dict[str, dict] = {
    "2d-2e20.sym": dict(edges=4190208, vertices=1048576, kind="grid", ccs=1, davg=4.0, dmax=4),
    "amazon0601": dict(edges=4886816, vertices=403394, kind="co-purchases", ccs=7, davg=12.1, dmax=2752),
    "as-skitter": dict(edges=22190596, vertices=1696415, kind="Internet topo.", ccs=756, davg=13.1, dmax=35455),
    "citationCiteseer": dict(edges=2313294, vertices=268495, kind="publication cit.", ccs=1, davg=8.6, dmax=1318),
    "cit-Patents": dict(edges=33037894, vertices=3774768, kind="patent cit.", ccs=3627, davg=8.8, dmax=793),
    "coPapersDBLP": dict(edges=30491458, vertices=540486, kind="publication cit.", ccs=1, davg=56.4, dmax=3299),
    "delaunay_n24": dict(edges=100663202, vertices=16777216, kind="triangulation", ccs=1, davg=6.0, dmax=26),
    "europe_osm": dict(edges=108109320, vertices=50912018, kind="road map", ccs=1, davg=2.1, dmax=13),
    "in-2004": dict(edges=27182946, vertices=1382908, kind="web links", ccs=134, davg=19.7, dmax=21869),
    "internet": dict(edges=387240, vertices=124651, kind="Internet topo.", ccs=1, davg=3.1, dmax=151),
    "kron_g500-logn21": dict(edges=182081864, vertices=2097152, kind="Kronecker", ccs=553159, davg=86.8, dmax=213904),
    "r4-2e23.sym": dict(edges=67108846, vertices=8388608, kind="random", ccs=1, davg=8.0, dmax=26),
    "rmat16.sym": dict(edges=967866, vertices=65536, kind="RMAT", ccs=3900, davg=14.8, dmax=569),
    "rmat22.sym": dict(edges=65660814, vertices=4194304, kind="RMAT", ccs=428640, davg=15.7, dmax=3687),
    "soc-LiveJournal1": dict(edges=85702474, vertices=4847571, kind="community", ccs=1876, davg=17.7, dmax=20333),
    "USA-road-d.NY": dict(edges=730100, vertices=264346, kind="road map", ccs=1, davg=2.8, dmax=8),
    "USA-road-d.USA": dict(edges=57708624, vertices=23947347, kind="road map", ccs=1, davg=2.4, dmax=9),
}
