"""Delaunay triangulation graphs (the paper's ``delaunay_n24`` input).

Delaunay graphs of uniform random points are planar, connected, and
have an average directed degree of ~6 with a tiny maximum (Table 2:
d-avg 6.0, d-max 26) — they stress the *round count* of Borůvka-style
codes (the paper measures 15 kernel rounds on delaunay_n24, its
maximum).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay

from ..graph.build import build_csr
from ..graph.csr import CSRGraph

__all__ = ["delaunay_graph"]


def delaunay_graph(
    num_vertices: int, *, seed: int = 0, name: str | None = None
) -> CSRGraph:
    """Delaunay triangulation of ``num_vertices`` uniform random points.

    Edge weights are scaled Euclidean lengths, as in the DIMACS
    instances the paper draws from.
    """
    if num_vertices < 3:
        raise ValueError("Delaunay triangulation needs at least 3 points")
    rng = np.random.default_rng(seed)
    points = rng.random((num_vertices, 2))
    tri = Delaunay(points)
    simplices = tri.simplices
    # Each triangle contributes its three sides.
    lo = np.concatenate(
        [simplices[:, 0], simplices[:, 1], simplices[:, 2]]
    ).astype(np.int64)
    hi = np.concatenate(
        [simplices[:, 1], simplices[:, 2], simplices[:, 0]]
    ).astype(np.int64)
    lo, hi = np.minimum(lo, hi), np.maximum(lo, hi)
    d = np.linalg.norm(points[lo] - points[hi], axis=1)
    w = np.maximum(1, (d * 1_000_000).astype(np.int64))
    return build_csr(
        num_vertices, lo, hi, w, name=name or f"delaunay-{num_vertices}"
    )
