"""Synthetic graph generators covering the paper's 17-input suite."""

from .delaunay import delaunay_graph
from .grid import grid2d
from .random_graphs import erdos_renyi, random_k_out
from .rmat import kronecker, rmat
from .roads import road_network
from .scalefree import internet_topology, preferential_attachment
from . import suite

__all__ = [
    "delaunay_graph",
    "erdos_renyi",
    "grid2d",
    "internet_topology",
    "kronecker",
    "preferential_attachment",
    "random_k_out",
    "rmat",
    "road_network",
    "suite",
]
