"""RMAT and Kronecker (Graph500-style) generators.

Covers the paper's ``rmat16.sym``, ``rmat22.sym`` and
``kron_g500-logn21`` inputs.  RMAT recursively subdivides the adjacency
matrix into quadrants chosen with probabilities ``(a, b, c, d)``; the
Graph500 Kronecker generator is RMAT with ``(0.57, 0.19, 0.19, 0.05)``.
Both produce heavy-tailed degree distributions and — crucially for the
MSF-vs-MST distinction the paper draws — many connected components,
because low-ID-biased sampling leaves a large fraction of vertices
isolated (kron_g500-logn21 has 553k components out of 2.1M vertices).
"""

from __future__ import annotations

import numpy as np

from ..graph.build import build_csr
from ..graph.csr import CSRGraph
from ..graph.weights import hash_weight

__all__ = ["rmat", "kronecker"]


def _rmat_pairs(
    scale: int,
    num_edges: int,
    a: float,
    b: float,
    c: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``num_edges`` (u, v) pairs from the RMAT distribution.

    Fully vectorized: one pass per bit of ``scale``, each drawing a
    quadrant for all edges at once.
    """
    u = np.zeros(num_edges, dtype=np.int64)
    v = np.zeros(num_edges, dtype=np.int64)
    ab = a + b
    abc = a + b + c
    for bit in range(scale - 1, -1, -1):
        r = rng.random(num_edges)
        # Quadrants: a -> (0,0), b -> (0,1), c -> (1,0), d -> (1,1).
        go_down = r >= ab  # c or d quadrant sets the row bit
        go_right = (r >= a) & (r < ab) | (r >= abc)  # b or d sets the column bit
        u |= go_down.astype(np.int64) << bit
        v |= go_right.astype(np.int64) << bit
    return u, v


def rmat(
    scale: int,
    edge_factor: float = 8.0,
    *,
    a: float = 0.45,
    b: float = 0.22,
    c: float = 0.22,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """RMAT graph with ``2**scale`` vertices and ``edge_factor * n`` samples.

    Default quadrant probabilities follow the classic RMAT paper; the
    resulting cleaned graph has a power-law-ish degree distribution and
    typically thousands of small components, like rmat16/rmat22.sym.
    """
    n = 1 << scale
    m = int(edge_factor * n)
    rng = np.random.default_rng(seed)
    u, v = _rmat_pairs(scale, m, a, b, c, rng)
    lo, hi = np.minimum(u, v), np.maximum(u, v)
    w = hash_weight(lo, hi, seed=seed)
    return build_csr(n, lo, hi, w, name=name or f"rmat{scale}.sym")


def kronecker(
    scale: int,
    edge_factor: float = 16.0,
    *,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """Graph500 Kronecker graph (``kron_g500-lognN``-style).

    Uses the Graph500 parameters ``(a, b, c) = (0.57, 0.19, 0.19)`` and
    a random vertex permutation, as the reference generator does, so
    degree is decoupled from vertex ID.
    """
    n = 1 << scale
    m = int(edge_factor * n)
    rng = np.random.default_rng(seed)
    u, v = _rmat_pairs(scale, m, 0.57, 0.19, 0.19, rng)
    perm = rng.permutation(n).astype(np.int64)
    u, v = perm[u], perm[v]
    lo, hi = np.minimum(u, v), np.maximum(u, v)
    w = hash_weight(lo, hi, seed=seed)
    return build_csr(n, lo, hi, w, name=name or f"kron_g500-logn{scale}")
