"""Scale-free / power-law generators for the web, social, citation and
internet-topology inputs (amazon0601, as-skitter, citationCiteseer,
cit-Patents, coPapersDBLP, in-2004, soc-LiveJournal1, internet).

These inputs share a heavy-tailed degree distribution — a few hub
vertices with degree in the thousands while most vertices have a
handful of neighbors (Table 2's d-max columns).  That skew is exactly
what makes vertex-centric MST codes lose: the paper reports its largest
wins (≥19×) on amazon0601, rmat16.sym and soc-LiveJournal1, crediting
hybrid warp/thread parallelization and edge-centric processing.

We use preferential attachment (Barabási–Albert) with an optional
extra-component tail so the Table-2 connected-component counts can be
matched.
"""

from __future__ import annotations

import numpy as np

from ..graph.build import build_csr
from ..graph.csr import CSRGraph
from ..graph.weights import hash_weight

__all__ = ["preferential_attachment", "internet_topology"]


def _pa_edges(
    n: int, m: int, rng: np.random.Generator, offset: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Barabási–Albert edges on vertices ``offset .. offset + n - 1``.

    Each arriving vertex attaches to ``m`` targets sampled from the
    running endpoint multiset (degree-proportional sampling).  The loop
    is per-vertex but each iteration is O(m), so generating 10^5-vertex
    graphs takes well under a second.
    """
    if n <= m:
        raise ValueError("need n > m for preferential attachment")
    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    # Endpoint multiset, pre-sized: every edge contributes 2 entries.
    pool = np.empty(2 * m * n, dtype=np.int64)
    pool_len = 0
    # Seed clique-ish core: connect the first m+1 vertices in a star.
    core = np.arange(1, m + 1, dtype=np.int64)
    us.append(np.zeros(m, dtype=np.int64))
    vs.append(core.copy())
    pool[pool_len : pool_len + m] = 0
    pool_len += m
    pool[pool_len : pool_len + m] = core
    pool_len += m
    for t in range(m + 1, n):
        picks = pool[rng.integers(0, pool_len, size=m)]
        src = np.full(m, t, dtype=np.int64)
        us.append(src)
        vs.append(picks.copy())
        pool[pool_len : pool_len + m] = t
        pool_len += m
        pool[pool_len : pool_len + m] = picks
        pool_len += m
    u = np.concatenate(us) + offset
    v = np.concatenate(vs) + offset
    return u, v


def preferential_attachment(
    num_vertices: int,
    m: int = 5,
    *,
    num_components: int = 1,
    component_size: int = 8,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """Scale-free graph with a controllable component count.

    The main component holds most vertices; ``num_components - 1``
    additional small preferential-attachment islands (about
    ``component_size`` vertices each) supply the extra connected
    components that inputs like amazon0601 (7 CCs) or cit-Patents
    (3,627 CCs) exhibit.
    """
    if num_components < 1:
        raise ValueError("num_components must be >= 1")
    rng = np.random.default_rng(seed)
    extra = num_components - 1
    island_size = max(2, component_size)
    island_total = extra * island_size
    main_n = num_vertices - island_total
    if main_n <= m + 1:
        raise ValueError("num_vertices too small for the requested components")
    u, v = _pa_edges(main_n, m, rng)
    if extra:
        island_m = 1
        parts_u = [u]
        parts_v = [v]
        offset = main_n
        for _ in range(extra):
            iu, iv = _pa_edges(island_size, island_m, rng, offset=offset)
            parts_u.append(iu)
            parts_v.append(iv)
            offset += island_size
        u = np.concatenate(parts_u)
        v = np.concatenate(parts_v)
    lo, hi = np.minimum(u, v), np.maximum(u, v)
    w = hash_weight(lo, hi, seed=seed)
    return build_csr(
        num_vertices, lo, hi, w, name=name or f"pa-{num_vertices}-m{m}"
    )


def internet_topology(
    num_vertices: int,
    *,
    extra_edge_fraction: float = 0.55,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """Internet-AS-style topology (the paper's ``internet`` input).

    Mostly tree-like preferential attachment (m = 1) plus a fraction of
    peering shortcuts, giving the low average degree (3.1) but skewed
    hubs (d-max 151 at 124k vertices) of AS graphs.
    """
    rng = np.random.default_rng(seed)
    u, v = _pa_edges(num_vertices, 1, rng)
    n_extra = int(extra_edge_fraction * num_vertices)
    if n_extra:
        # Shortcuts also attach preferentially: sample endpoints from
        # the degree-weighted pool (reuse edge endpoints).
        pool = np.concatenate([u, v])
        eu = pool[rng.integers(0, pool.size, size=n_extra)]
        ev = rng.integers(0, num_vertices, size=n_extra, dtype=np.int64)
        u = np.concatenate([u, eu])
        v = np.concatenate([v, ev])
    lo, hi = np.minimum(u, v), np.maximum(u, v)
    w = hash_weight(lo, hi, seed=seed)
    return build_csr(num_vertices, lo, hi, w, name=name or "internet")
