"""Command-line interface.

Subcommands::

    repro-mst exp <key> [--scale S] [--seeds N]   # regenerate a paper artifact
    repro-mst exp list                            # available experiments
    repro-mst exp all                             # everything
    repro-mst run <code> <input> [--system 1|2]   # one code on one input
    repro-mst codes                               # available MST codes
    repro-mst inputs                              # the 17-input suite
    repro-mst artifact <dir> [--scale S]          # artifact-style CSV workflow
    repro-mst report [--out FILE] [--scale S]     # full markdown repro report
    repro-mst convert <in> <out>                  # graph format conversion
    repro-mst mst <graphfile> [--out edges.txt]   # MSF of a graph file
    repro-mst trace <input> [--format chrome|ndjson] [--out FILE]
    repro-mst profile <input> [--baseline FILE] [--format json|chrome|ndjson]
    repro-mst chaos <input> [--faults N --seed S]  # fault-injection campaign
    repro-mst serve --batch FILE [--workers N --pool thread|process]
    repro-mst sweep <suite> [--repeat N --record [DIR]]

For backwards compatibility, a bare experiment key also works:
``python -m repro table4`` ≡ ``python -m repro exp table4``.

Exit codes: 0 success; 1 not-connected / campaign failure; 2 usage;
3 malformed input (:class:`~repro.errors.GraphFormatError`);
4 verification failure; 5 unrecovered device fault.  ``serve`` and
``sweep`` apply the same taxonomy per query and exit with the most
severe per-query code — a malformed query fails its line in the
output NDJSON without aborting the batch.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .bench.experiments import DEFAULT_SCALE, EXPERIMENTS

__all__ = ["main"]

_FORMAT_LOADERS = {
    ".ecl": "load_ecl",
    ".gr": "load_dimacs",
    ".graph": "load_metis",
    ".txt": "load_edge_list",
}
_FORMAT_SAVERS = {
    ".ecl": "save_ecl",
    ".gr": "save_dimacs",
    ".graph": "save_metis",
    ".txt": "save_edge_list",
}


def _load_graph(path: str):
    from . import graph as graph_mod

    suffix = Path(path).suffix
    loader = _FORMAT_LOADERS.get(suffix)
    if loader is None:
        raise SystemExit(
            f"unknown graph format {suffix!r}; use one of "
            f"{', '.join(_FORMAT_LOADERS)}"
        )
    return getattr(graph_mod, loader)(path)


def _save_graph(g, path: str) -> None:
    from . import graph as graph_mod

    suffix = Path(path).suffix
    saver = _FORMAT_SAVERS.get(suffix)
    if saver is None:
        raise SystemExit(
            f"unknown graph format {suffix!r}; use one of "
            f"{', '.join(_FORMAT_SAVERS)}"
        )
    getattr(graph_mod, saver)(g, path)


def _cmd_exp(args) -> int:
    if args.key == "list":
        for key, exp in EXPERIMENTS.items():
            print(f"{key:10s} {exp.description}")
        return 0
    keys = list(EXPERIMENTS) if args.key == "all" else [args.key]
    for key in keys:
        if key not in EXPERIMENTS:
            print(
                f"unknown experiment {key!r}; try: {', '.join(EXPERIMENTS)}",
                file=sys.stderr,
            )
            return 2
        exp = EXPERIMENTS[key]
        print(f"== {exp.description} ==")
        if key == "fig6":
            print(exp.run(args.scale, seeds=args.seeds))
        else:
            print(exp.run(args.scale))
        print()
    return 0


def _cmd_run(args) -> int:
    from .baselines.errors import NotConnectedError
    from .baselines.registry import get_runner
    from .bench.harness import SYSTEM1, SYSTEM2
    from .generators import suite

    system = SYSTEM1 if args.system == 1 else SYSTEM2
    try:
        runner = get_runner(args.code)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    g = suite.build(args.input, scale=args.scale)
    try:
        r = runner.run(g, gpu=system.gpu, cpu=system.cpu)
    except NotConnectedError as exc:
        print(f"NC: {exc}")
        return 1
    print(f"{args.code} on {args.input} ({system.name}):")
    print(f"  edges={r.num_mst_edges} weight={r.total_weight} rounds={r.rounds}")
    print(
        f"  modeled {r.modeled_seconds * 1e3:.4f} ms  "
        f"({r.throughput_meps():,.1f} Medges/s)"
    )
    return 0


def _cmd_codes(_args) -> int:
    from .baselines.registry import RUNNERS, TABLE_CODES

    for name, runner in RUNNERS.items():
        star = "*" if name in TABLE_CODES else " "
        msf = "MSF" if runner.supports_msf else "MST-only"
        print(f"{star} {name:22s} {runner.kind:14s} {msf}")
    print("\n(* = appears in the paper's Tables 3/4)")
    return 0


def _cmd_inputs(args) -> int:
    from .bench.tables import render_table2
    from .generators import suite

    print(render_table2(suite.build_all(scale=args.scale)))
    return 0


def _cmd_artifact(args) -> int:
    from .bench import artifact

    directory = Path(args.directory)
    print(f"set_up: writing inputs to {directory / 'inputs'}")
    artifact.set_up(directory / "inputs", scale=args.scale)
    print("run_all_compare: running every code on every input ...")
    artifact.run_all_compare(directory, scale=args.scale)
    print("run_all_deoptimize: running the de-optimization ladder ...")
    artifact.run_all_deoptimize(directory, scale=args.scale)
    print(artifact.generate_compare_tables(directory))
    print(artifact.generate_deopt_tables(directory))
    return 0


def _cmd_report(args) -> int:
    from .bench.report import generate_report

    text = generate_report(args.out, scale=args.scale)
    if args.out:
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def _resolve_input(name: str, scale: float):
    """A suite input name, or a path to a graph file in a known format."""
    if Path(name).suffix in _FORMAT_LOADERS and Path(name).exists():
        return _load_graph(name)
    from .generators import suite

    return suite.build(name, scale=scale)


def _traced_run(args):
    """Run one (instrumented) code under a tracer; shared by
    ``trace`` and ``profile``."""
    from .baselines.registry import get_runner
    from .bench.harness import SYSTEM1, SYSTEM2
    from .core.config import EclMstConfig, deopt_stages
    from .core.eclmst import ecl_mst
    from .obs import Tracer

    system = SYSTEM1 if args.system == 1 else SYSTEM2
    tracer = Tracer()
    # Loading/generating the input is host work worth seeing in the
    # self-profile, so it happens under the tracer too.
    with tracer.span("load input", kind="host", input=args.input):
        g = _resolve_input(args.input, args.scale)
    stage = getattr(args, "stage", None)
    code = getattr(args, "code", "ECL-MST")
    if stage is not None:
        stages = dict(deopt_stages())
        if stage not in stages:
            raise SystemExit(
                f"unknown de-opt stage {stage!r}; choose from "
                f"{', '.join(stages)}"
            )
        result = ecl_mst(g, stages[stage], gpu=system.gpu, tracer=tracer)
    elif code == "ECL-MST":
        result = ecl_mst(g, EclMstConfig(), gpu=system.gpu, tracer=tracer)
    else:
        runner = get_runner(code)
        result = runner.run(g, gpu=system.gpu, cpu=system.cpu, tracer=tracer)
        if runner.kind == "gpu":
            # GPU baselines price against the same spec; let the
            # profile attribute their kernels on the roofline too.
            result.extra.setdefault("gpu_spec", system.gpu)
    return result, tracer


def _emit(text: str, out: str | None) -> None:
    if out:
        with open(out, "w") as f:
            f.write(text)
            if not text.endswith("\n"):
                f.write("\n")
        print(f"written to {out}")
    else:
        print(text)


def _cmd_trace(args) -> int:
    from .obs import to_chrome_trace_json, to_ndjson

    result, tracer = _traced_run(args)
    if args.format == "ndjson":
        _emit(to_ndjson(tracer), args.out)
    else:
        _emit(to_chrome_trace_json(tracer), args.out)
    print(
        f"# traced {result.algorithm} on {args.input}: "
        f"{len(tracer.spans())} spans, "
        f"{result.counters.num_launches} launches, "
        f"{result.modeled_seconds * 1e3:.4f} ms modeled",
        file=sys.stderr,
    )
    return 0


def _render_host_hotspots(profile) -> str:
    rows = profile.host.get("hotspots", [])
    if not rows:
        return ""
    lines = ["host wall-clock hot spots (self time):"]
    for r in rows:
        lines.append(
            f"  {r['name']:24s} {r['kind']:7s} {r['count']:5d}x "
            f"{r['wall_seconds'] * 1e3:9.3f} ms"
        )
    return "\n".join(lines)


def _cmd_profile(args) -> int:
    from .obs import RunProfile, diff, to_chrome_trace_json, to_ndjson

    result, tracer = _traced_run(args)
    profile = RunProfile.from_result(result, tracer=tracer)
    if args.baseline:
        baseline = RunProfile.load(args.baseline)
        d = diff(baseline, profile)
        print(d.render() if args.format == "text" else d.to_json())
        return 0
    if args.format == "chrome":
        _emit(to_chrome_trace_json(tracer), args.out)
    elif args.format == "ndjson":
        _emit(to_ndjson(tracer), args.out)
    elif args.format in ("text", "roofline"):
        from .obs.roofline import roofline_report

        sections = []
        if args.format == "text":
            sections.append(profile.render())
        gpu = result.extra.get("gpu_spec")
        if gpu is not None:
            sections.append(
                roofline_report(result.counters, gpu).render(top_n=args.top)
            )
        elif args.format == "roofline":
            print("no GPU spec for this code; roofline unavailable",
                  file=sys.stderr)
            return 2
        if args.format == "text":
            hot = _render_host_hotspots(profile)
            if hot:
                sections.append(hot)
        _emit("\n\n".join(sections), args.out)
    else:
        _emit(profile.to_json(), args.out)
    return 0


def _cmd_convert(args) -> int:
    g = _load_graph(args.src)
    _save_graph(g, args.dst)
    print(
        f"converted {args.src} -> {args.dst} "
        f"(|V|={g.num_vertices}, |E|={g.num_edges})"
    )
    return 0


def _cmd_chaos(args) -> int:
    from .resilience import ResilienceConfig, run_campaign
    from .resilience.faults import FAULT_KINDS

    if args.serve:
        # Chaos-under-load: drive a policy-armed service instead of a
        # bare solver loop (overload + quarantine + breaker drill).
        from .resilience import run_service_campaign

        progress = (
            (lambda line: print(line, file=sys.stderr))
            if args.verbose
            else None
        )
        report = run_service_campaign(
            args.input,
            scale=args.scale,
            n_queries=args.queries,
            slowdown=args.slowdown,
            seed=args.seed,
            progress=progress,
        )
        print(report.render())
        return 0 if report.passed else 1

    kinds = FAULT_KINDS
    if args.kinds:
        kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
        unknown = set(kinds) - set(FAULT_KINDS)
        if unknown:
            print(
                f"unknown fault kind(s) {', '.join(sorted(unknown))}; "
                f"choose from {', '.join(FAULT_KINDS)}",
                file=sys.stderr,
            )
            return 2
    g = _resolve_input(args.input, args.scale)
    resilience = ResilienceConfig(check_cadence=args.cadence)
    progress = (
        (lambda line: print(line, file=sys.stderr)) if args.verbose else None
    )
    report = run_campaign(
        g,
        n_faults=args.faults,
        seed=args.seed,
        kinds=kinds,
        faults_per_trial=args.faults_per_trial,
        resilience=resilience,
        progress=progress,
        shards=args.shards,
    )
    print(report.render())
    return 0 if report.escaped == 0 else 1


def _split_inputs(text: str) -> tuple[str, ...]:
    return tuple(s.strip() for s in text.split(",") if s.strip())


def _cmd_perf(args) -> int:
    from .bench import gate

    inputs = _split_inputs(args.inputs)
    if args.perf_command == "record":
        paths, traj = gate.perf_record(
            inputs,
            code=args.code,
            system=args.system,
            scale=args.scale,
            repeats=args.repeats,
            store_dir=args.store,
            trajectory_dir=args.trajectory,
            slowdown=args.slowdown,
        )
        for p in paths:
            print(f"baseline written: {p}")
        print(f"trajectory entry: {traj}")
        return 0
    if args.perf_command == "compare":
        print(
            gate.perf_compare(
                inputs,
                code=args.code,
                system=args.system,
                scale=args.scale,
                repeats=args.repeats,
                store_dir=args.store,
                slowdown=args.slowdown,
                min_ratio=args.min_ratio,
            )
        )
        return 0
    # check
    report = gate.perf_check(
        inputs,
        code=args.code,
        system=args.system,
        scale=args.scale,
        repeats=args.repeats,
        store_dir=args.store,
        slowdown=args.slowdown,
        threshold=args.threshold,
        gate_wall=getattr(args, "gate_wall", False),
    )
    print(report.render())
    return 0 if report.passed else 1


def _parse_wall_cells(text: str):
    from .bench.gate import WallCell

    cells = []
    for part in _split_inputs(text):
        fields = part.split(":")
        if len(fields) < 2:
            raise SystemExit(
                f"bad wall cell {part!r}; expected input:scale[:gated]"
            )
        cells.append(
            WallCell(
                input=fields[0],
                scale=float(fields[1]),
                gated=len(fields) > 2 and fields[2] == "gated",
            )
        )
    return tuple(cells)


def _cmd_perf_wall(args) -> int:
    from .bench import gate

    path, payload = gate.record_wall_trajectory(
        _parse_wall_cells(args.cells),
        system=args.system,
        repeats=args.repeats,
        seed=args.seed,
        trajectory_dir=args.trajectory,
        min_speedup=args.min_speedup,
        floor=args.floor,
    )
    print(gate.render_wall_report(payload))
    print(f"trajectory entry: {path}")
    if args.no_gate:
        return 0
    return 0 if payload["gate"]["passed"] else 1


def _policy_from_args(args):
    """A :class:`PolicyConfig` from the CLI knobs, or ``None`` when
    every overload-safety mechanism is left off."""
    from .resilience.policy import PolicyConfig

    policy = PolicyConfig(
        admission_rate=getattr(args, "admission_rate", 0.0),
        admission_burst=getattr(args, "admission_burst", 8),
        max_retries=getattr(args, "max_retries", 0),
        breaker_threshold=getattr(args, "breaker_threshold", 0),
        breaker_cooldown_s=getattr(args, "breaker_cooldown", 1.0),
        serve_stale=getattr(args, "serve_stale", False),
        fresh_ttl_s=getattr(args, "fresh_ttl", 0.0),
        degrade_serial=getattr(args, "degrade_serial", False),
        quarantine_after=getattr(args, "quarantine_after", 0),
        seed=getattr(args, "policy_seed", 0),
    )
    return policy if policy.enabled else None


def _service_from_args(args):
    from .obs.recorder import RecorderConfig
    from .service import MSTService, ServiceConfig

    recorder = None
    if not getattr(args, "no_recorder", False):
        recorder = RecorderConfig(
            dir=getattr(args, "postmortem_dir", "postmortems")
        )
    return MSTService(
        ServiceConfig(
            workers=args.workers,
            pool=args.pool,
            result_cache_size=args.cache_size,
            graph_cache_size=args.graph_cache_size,
            max_queue_depth=args.queue_depth,
            default_timeout_s=args.timeout,
            shards=getattr(args, "shards", 1),
            engine=getattr(args, "engine", "vectorized"),
            # Admin endpoints imply profile retention (/profilez).
            keep_profile=getattr(args, "admin_port", None) is not None,
            policy=_policy_from_args(args),
            slowdown=getattr(args, "slowdown", 1.0),
            recorder=recorder,
        )
    )


def _cmd_serve(args) -> int:
    import time

    from .service import run_batch_lines, summarize

    if args.batch == "-":
        lines = sys.stdin.read().splitlines()
    else:
        try:
            lines = Path(args.batch).read_text().splitlines()
        except OSError as exc:
            from .errors import EXIT_INPUT_ERROR

            print(f"input error: cannot read batch file: {exc}", file=sys.stderr)
            return EXIT_INPUT_ERROR
    admin = None
    t0 = time.perf_counter()
    with _service_from_args(args) as service:
        if args.admin_port is not None:
            from .service.admin import AdminServer

            admin = AdminServer(service, port=args.admin_port).start()
            print(f"admin endpoints at {admin.url}", file=sys.stderr)
        try:
            try:
                outcomes = run_batch_lines(lines, service)
            except BaseException as exc:
                # Last words: an unhandled exception in the serve path
                # still leaves a postmortem bundle behind.
                if not isinstance(exc, KeyboardInterrupt) and (
                    service.recorder is not None
                ):
                    service.recorder.capture_crash(exc, service=service)
                raise
            summary = summarize(
                outcomes, service, wall_seconds=time.perf_counter() - t0
            )
            _emit("\n".join(o.to_json_line() for o in outcomes), args.out)
            print(summary.render(), file=sys.stderr)
            if args.linger > 0:
                # Keep the admin endpoints scrapeable after the batch
                # (CI smoke tests, manual inspection).
                print(f"lingering {args.linger:g}s ...", file=sys.stderr)
                time.sleep(args.linger)
        finally:
            if admin is not None:
                admin.stop()
    return summary.exit_code


def _cmd_sweep(args) -> int:
    import time

    from .service import (
        batch_exit_code,
        record_service_trajectory,
        summarize,
        sweep_queries,
    )

    one_pass = sweep_queries(
        args.suite,
        scale=args.scale,
        code=args.code,
        system=args.system,
        repeat=1,
    )
    outcomes = []
    with _service_from_args(args) as service:
        # Cold pass first, then the warm repeats — measured separately
        # so the summary (and the recorded trajectory entry) reports
        # the cache's amortization as cold-vs-warm throughput.
        t0 = time.perf_counter()
        cold_outcomes = service.run_batch(one_pass)
        cold = summarize(
            cold_outcomes, service, wall_seconds=time.perf_counter() - t0
        )
        outcomes.extend(cold_outcomes)
        warm = None
        if args.repeat > 1:
            import dataclasses

            warm_queries = [
                dataclasses.replace(q, id=f"{q.input}#r{rep}")
                for rep in range(1, args.repeat)
                for q in one_pass
            ]
            t1 = time.perf_counter()
            warm_outcomes = service.run_batch(warm_queries)
            warm = summarize(
                warm_outcomes, service, wall_seconds=time.perf_counter() - t1
            )
            outcomes.extend(warm_outcomes)
    if args.out:
        _emit("\n".join(o.to_json_line() for o in outcomes), args.out)
    print(f"== cold pass ==\n{cold.render()}")
    if warm is not None:
        print(f"\n== warm passes (x{args.repeat - 1}) ==\n{warm.render()}")
        if cold.qps > 0:
            print(f"\nwarm/cold throughput: {warm.qps / cold.qps:.2f}x")
    if args.record:
        path = record_service_trajectory(
            cold,
            warm,
            selection=args.suite,
            scale=args.scale,
            code=args.code,
            system=args.system,
            workers=args.workers,
            trajectory_dir=args.record,
        )
        print(f"trajectory entry: {path}")
    return batch_exit_code(outcomes)


def _cmd_mst(args) -> int:
    from .core.config import EclMstConfig
    from .core.eclmst import ecl_mst

    g = _resolve_input(args.graph, args.scale)
    r = ecl_mst(
        g,
        EclMstConfig(engine=args.engine),
        verify=args.verify,
        shards=args.shards,
        shard_strategy=args.shard_strategy,
    )
    print(
        f"MSF of {args.graph}: {r.num_mst_edges} edges, "
        f"weight {r.total_weight}, {r.rounds} rounds"
    )
    sh = r.extra.get("shard")
    if sh:
        print(
            f"sharded across {sh['shards']} devices ({sh['strategy']}): "
            f"imbalance {sh['imbalance']:.3f}, cut edges {sh['cut_edges']}, "
            f"comms share {sh['comms_time_share']:.1%} "
            f"of {r.modeled_seconds * 1e3:.3f} ms modeled"
        )
        for dev in sh["devices"]:
            print(
                f"  shard {dev['shard']}: {dev['vertices']} vertices, "
                f"{dev['edges']} edges, "
                f"local {dev['local_seconds'] * 1e3:.3f} ms, "
                f"sent {dev['boundary_edges_sent']} boundary edges"
            )
    if args.out:
        u, v, w = r.edges()
        with open(args.out, "w") as f:
            f.write(f"# MSF of {g.name}: weight {r.total_weight}\n")
            for i in range(u.size):
                f.write(f"{u[i]} {v[i]} {w[i]}\n")
        print(f"edge list written to {args.out}")
    return 0


def _cmd_dashboard(args) -> int:
    import json as _json

    from .obs.dashboard import render_dashboard

    if args.profile:
        try:
            profile = _json.loads(Path(args.profile).read_text())
        except (OSError, _json.JSONDecodeError) as exc:
            from .errors import EXIT_INPUT_ERROR

            print(f"input error: cannot read profile: {exc}", file=sys.stderr)
            return EXIT_INPUT_ERROR
    else:
        if not args.input:
            from .errors import EXIT_INPUT_ERROR

            print(
                "input error: give an input to run, or --profile FILE",
                file=sys.stderr,
            )
            return EXIT_INPUT_ERROR
        # No saved profile: run the input fresh and profile it.
        from .obs import RunProfile

        result, tracer = _traced_run(args)
        profile = RunProfile.from_result(result, tracer=tracer).to_dict()
    from .obs.recorder import recent_bundles

    html = render_dashboard(
        profile,
        trajectory=args.trajectory,
        title=args.title,
        incidents=recent_bundles(args.postmortems),
    )
    out = Path(args.out or "dashboard.html")
    out.write_text(html)
    print(f"dashboard written to {out}")
    return 0


def _cmd_postmortem(args) -> int:
    import json as _json

    from .obs.recorder import (
        bundle_summary,
        load_bundle,
        recent_bundles,
        render_postmortem,
    )

    target = Path(args.bundle)
    if target.is_dir():
        # Incident listing mode: summarize every bundle in the dir.
        rows = recent_bundles(target, limit=args.limit)
        if args.json:
            print(_json.dumps(rows, indent=2, sort_keys=True))
        elif not rows:
            print(f"no postmortem bundles in {target}")
        else:
            for r in rows:
                print(
                    f"{r['captured_at']}  {r['reason']:18s} "
                    f"query={r['query'] or '-':12s} "
                    f"exit={r['exit_code']}  {r['path']}"
                )
        return 0
    bundle = load_bundle(target)
    if args.json:
        print(
            _json.dumps(
                bundle_summary(bundle, target), indent=2, sort_keys=True
            )
        )
    else:
        print(render_postmortem(bundle, events_tail=args.events))
    return 0


def _cmd_replay(args) -> int:
    import json as _json

    from .obs.recorder import load_bundle, replay_bundle

    bundle = load_bundle(args.bundle)
    report = replay_bundle(bundle, bundle_path=args.bundle)
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return report.exit_code


def _add_log_flags(parser: argparse.ArgumentParser, *, trailing: bool = False) -> None:
    """Register the global event-log flags.

    ``trailing=True`` is the subcommand variant: SUPPRESS defaults keep
    a value given *before* the command name from being clobbered by the
    subparser's pass, so both positions work.
    """
    parser.add_argument(
        "--log-level",
        choices=("off", "debug", "info", "warning", "error"),
        dest="log_level",
        default=argparse.SUPPRESS if trailing else "off",
        help="structured event-log level (off = zero-overhead null log)",
    )
    parser.add_argument(
        "--log-json",
        dest="log_json",
        metavar="FILE",
        default=argparse.SUPPRESS if trailing else None,
        help="write events as NDJSON to FILE ('-' = stdout); implies "
        "--log-level info unless set explicitly",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mst",
        description="ECL-MST reproduction: regenerate paper artifacts, run "
        "MST codes, convert graphs.",
    )
    _add_log_flags(parser)
    sub = parser.add_subparsers(dest="command")

    p_exp = sub.add_parser("exp", help="regenerate a paper table/figure")
    p_exp.add_argument("key", help="experiment key, 'list', or 'all'")
    p_exp.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    p_exp.add_argument("--seeds", type=int, default=99)
    p_exp.set_defaults(fn=_cmd_exp)

    p_run = sub.add_parser("run", help="run one code on one suite input")
    p_run.add_argument("code")
    p_run.add_argument("input")
    p_run.add_argument("--system", type=int, choices=(1, 2), default=2)
    p_run.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    p_run.set_defaults(fn=_cmd_run)

    p_codes = sub.add_parser("codes", help="list available MST codes")
    p_codes.set_defaults(fn=_cmd_codes)

    p_inputs = sub.add_parser("inputs", help="show the input suite (Table 2)")
    p_inputs.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    p_inputs.set_defaults(fn=_cmd_inputs)

    p_art = sub.add_parser(
        "artifact", help="run the artifact-style CSV workflow"
    )
    p_art.add_argument("directory")
    p_art.add_argument("--scale", type=float, default=0.25)
    p_art.set_defaults(fn=_cmd_artifact)

    p_rep = sub.add_parser(
        "report", help="run the evaluation and emit a markdown report"
    )
    p_rep.add_argument("--out", help="write the report to this file")
    p_rep.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    p_rep.set_defaults(fn=_cmd_report)

    p_conv = sub.add_parser("convert", help="convert between graph formats")
    p_conv.add_argument("src")
    p_conv.add_argument("dst")
    p_conv.set_defaults(fn=_cmd_convert)

    p_mst = sub.add_parser(
        "mst", help="compute the MSF of a graph file or suite input"
    )
    p_mst.add_argument("graph", help="graph file path or suite input name")
    p_mst.add_argument("--out", help="write the MSF edge list here")
    p_mst.add_argument("--verify", action="store_true")
    p_mst.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    p_mst.add_argument(
        "--shards",
        type=int,
        default=1,
        help="simulated devices to shard across (1 = single-GPU)",
    )
    p_mst.add_argument(
        "--shard-strategy",
        choices=("contiguous", "hash"),
        default="contiguous",
        dest="shard_strategy",
        help="vertex partitioner for --shards > 1",
    )
    p_mst.add_argument(
        "--engine",
        choices=("vectorized", "scalar"),
        default="vectorized",
        help="union executor: batched waves or the reference "
        "one-entry-at-a-time walk (bit-identical results)",
    )
    p_mst.set_defaults(fn=_cmd_mst)

    p_chaos = sub.add_parser(
        "chaos",
        help="run a seeded fault-injection campaign against ECL-MST",
    )
    p_chaos.add_argument("input", help="suite input name or graph file path")
    p_chaos.add_argument(
        "--faults", type=int, default=100, help="faults to inject (min)"
    )
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument(
        "--kinds", help="comma-separated fault models (default: all)"
    )
    p_chaos.add_argument(
        "--faults-per-trial", type=int, default=1, dest="faults_per_trial"
    )
    p_chaos.add_argument(
        "--cadence",
        type=int,
        default=1,
        help="rounds between invariant sweeps (0 = off)",
    )
    p_chaos.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    p_chaos.add_argument(
        "--serve",
        action="store_true",
        help="chaos-under-load drill: oversubscribed concurrent chaos "
        "queries against a policy-armed service (suite inputs only)",
    )
    p_chaos.add_argument(
        "--queries",
        type=int,
        default=16,
        help="concurrent queries in the --serve overload phase",
    )
    p_chaos.add_argument(
        "--slowdown",
        type=float,
        default=2.0,
        help="modeled-hardware slowdown factor for --serve",
    )
    p_chaos.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard the solver across N simulated devices; faults hit "
        "one device per trial (seed-selected)",
    )
    p_chaos.add_argument(
        "-v", "--verbose", action="store_true", help="per-trial progress"
    )
    p_chaos.set_defaults(fn=_cmd_chaos)

    def _obs_common(p) -> None:
        p.add_argument(
            "input", help="suite input name or graph file path"
        )
        p.add_argument("--code", default="ECL-MST", help="MST code to run")
        p.add_argument(
            "--stage",
            help="run ECL-MST at a Table-5 de-optimization stage "
            "(e.g. 'No Atomic Guards')",
        )
        p.add_argument("--system", type=int, choices=(1, 2), default=2)
        p.add_argument("--scale", type=float, default=DEFAULT_SCALE)
        p.add_argument("--out", help="write the artifact to this file")

    p_trace = sub.add_parser(
        "trace", help="emit a span trace of one run (Perfetto/NDJSON)"
    )
    _obs_common(p_trace)
    p_trace.add_argument(
        "--format", choices=("chrome", "ndjson"), default="chrome"
    )
    p_trace.set_defaults(fn=_cmd_trace)

    p_prof = sub.add_parser(
        "profile",
        help="emit (or diff) a JSON run profile with per-kernel breakdown",
    )
    _obs_common(p_prof)
    p_prof.add_argument(
        "--baseline", help="diff against this previously saved profile"
    )
    p_prof.add_argument(
        "--format",
        choices=("json", "chrome", "ndjson", "text", "roofline"),
        default="json",
    )
    p_prof.add_argument(
        "--top",
        type=int,
        default=10,
        help="kernels shown in the roofline bound table",
    )
    p_prof.set_defaults(fn=_cmd_profile)

    p_dash = sub.add_parser(
        "dashboard",
        help="render a self-contained static HTML run dashboard",
    )
    p_dash.add_argument(
        "input",
        nargs="?",
        help="suite input name or graph file to run fresh "
        "(omit when using --profile)",
    )
    p_dash.add_argument(
        "--profile",
        help="render this saved run-profile JSON instead of running",
    )
    p_dash.add_argument("--code", default="ECL-MST", help="MST code to run")
    p_dash.add_argument("--system", type=int, choices=(1, 2), default=2)
    p_dash.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    p_dash.add_argument(
        "--trajectory",
        default="benchmarks/trajectory",
        help="benchmark trajectory directory for the sparkline section",
    )
    p_dash.add_argument("--title", help="page title override")
    p_dash.add_argument(
        "--postmortems",
        default="postmortems",
        help="postmortem bundle directory for the incidents panel",
    )
    p_dash.add_argument(
        "--out", "-o", help="output HTML path (default dashboard.html)"
    )
    p_dash.set_defaults(fn=_cmd_dashboard)

    p_pm = sub.add_parser(
        "postmortem",
        help="render a postmortem bundle as an incident report "
        "(or list a bundle directory)",
    )
    p_pm.add_argument(
        "bundle",
        help="a PM_*.bundle file, or a directory of them to list",
    )
    p_pm.add_argument(
        "--events",
        type=int,
        default=30,
        help="event-timeline tail length in the report",
    )
    p_pm.add_argument(
        "--limit",
        type=int,
        default=20,
        help="max bundles shown in directory-listing mode",
    )
    p_pm.add_argument(
        "--json", action="store_true", help="machine-readable summary"
    )
    p_pm.set_defaults(fn=_cmd_postmortem)

    p_replay = sub.add_parser(
        "replay",
        help="deterministically re-execute a bundle's captured query "
        "and diff against the recorded outcome",
    )
    p_replay.add_argument("bundle", help="a PM_*.bundle file")
    p_replay.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    p_replay.set_defaults(fn=_cmd_replay)

    def _service_common(p) -> None:
        p.add_argument("--workers", type=int, default=4)
        p.add_argument(
            "--pool", choices=("thread", "process"), default="thread"
        )
        p.add_argument(
            "--cache-size",
            type=int,
            default=256,
            dest="cache_size",
            help="result-cache capacity (0 disables)",
        )
        p.add_argument(
            "--graph-cache-size",
            type=int,
            default=32,
            dest="graph_cache_size",
            help="build-cache capacity for loaded graphs (0 disables)",
        )
        p.add_argument(
            "--queue-depth",
            type=int,
            default=64,
            dest="queue_depth",
            help="max in-flight queries (submits block when full)",
        )
        p.add_argument(
            "--timeout",
            type=float,
            default=None,
            help="default per-query timeout in seconds",
        )
        p.add_argument(
            "--shards",
            type=int,
            default=1,
            help="default simulated-device count for queries that "
            "don't set their own 'shards' (1 = single-GPU)",
        )
        p.add_argument(
            "--engine",
            choices=("vectorized", "scalar"),
            default="vectorized",
            help="default union executor for queries that don't set "
            "their own 'engine' (results are bit-identical)",
        )
        # Overload-safety policy knobs (all off by default; any nonzero/
        # true knob arms the serving policy, which needs --pool thread).
        p.add_argument(
            "--admission-rate",
            type=float,
            default=0.0,
            dest="admission_rate",
            help="admission token-bucket refill (queries/s; 0 = off)",
        )
        p.add_argument(
            "--admission-burst",
            type=int,
            default=8,
            dest="admission_burst",
            help="admission token-bucket capacity",
        )
        p.add_argument(
            "--max-retries",
            type=int,
            default=0,
            dest="max_retries",
            help="per-query retry budget for transient failures (0 = off)",
        )
        p.add_argument(
            "--breaker-threshold",
            type=int,
            default=0,
            dest="breaker_threshold",
            help="consecutive failures opening a graph's circuit "
            "breaker (0 = off)",
        )
        p.add_argument(
            "--breaker-cooldown",
            type=float,
            default=1.0,
            dest="breaker_cooldown",
            help="seconds an open breaker cools before probing",
        )
        p.add_argument(
            "--serve-stale",
            action="store_true",
            dest="serve_stale",
            help="answer shed/broken queries from stale cache entries "
            "(degraded outcomes)",
        )
        p.add_argument(
            "--fresh-ttl",
            type=float,
            default=0.0,
            dest="fresh_ttl",
            help="cache-entry freshness window in seconds (0 = never "
            "expires); older entries only serve degraded",
        )
        p.add_argument(
            "--degrade-serial",
            action="store_true",
            dest="degrade_serial",
            help="fall back to serial Kruskal (reduced priority) when "
            "retries are exhausted or the breaker is open",
        )
        p.add_argument(
            "--quarantine-after",
            type=int,
            default=0,
            dest="quarantine_after",
            help="consecutive failed executions before a query spec is "
            "quarantined (0 = off)",
        )
        p.add_argument(
            "--policy-seed",
            type=int,
            default=0,
            dest="policy_seed",
            help="seed for backoff jitter and breaker cooldown jitter",
        )
        p.add_argument(
            "--slowdown",
            type=float,
            default=1.0,
            help="slow the modeled hardware by this exact factor "
            "(chaos-under-load testing)",
        )
        p.add_argument(
            "--no-recorder",
            action="store_true",
            dest="no_recorder",
            help="disable the always-on flight recorder (no rings, no "
            "postmortem bundles)",
        )
        p.add_argument(
            "--postmortem-dir",
            default="postmortems",
            dest="postmortem_dir",
            help="directory the flight recorder writes PM_*.bundle "
            "files into",
        )
        p.add_argument("--out", help="write result NDJSON to this file")

    p_serve = sub.add_parser(
        "serve",
        help="serve a batch of MST queries (NDJSON in, NDJSON out)",
    )
    p_serve.add_argument(
        "--batch",
        required=True,
        help="NDJSON query file ('-' reads stdin)",
    )
    p_serve.add_argument(
        "--admin-port",
        type=int,
        default=None,
        dest="admin_port",
        metavar="PORT",
        help="expose /healthz /statusz /metrics /profilez /debugz on "
        "this port (0 = OS-assigned)",
    )
    p_serve.add_argument(
        "--linger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep the process (and admin endpoints) alive this long "
        "after the batch completes",
    )
    _service_common(p_serve)
    p_serve.set_defaults(fn=_cmd_serve)

    p_sweep = sub.add_parser(
        "sweep",
        help="run the generator suite through the query service",
    )
    p_sweep.add_argument(
        "suite",
        help="'all', 'mst', or comma-separated suite input names",
    )
    # Sweep defaults to the perf gate's small scale: a full-suite pass
    # should stay in smoke territory.
    p_sweep.add_argument("--scale", type=float, default=0.06)
    p_sweep.add_argument("--code", default="ECL-MST")
    p_sweep.add_argument("--system", type=int, choices=(1, 2), default=2)
    p_sweep.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="passes over the suite (>1 measures warm throughput)",
    )
    p_sweep.add_argument(
        "--record",
        nargs="?",
        const="benchmarks/trajectory",
        default=None,
        help="append a BENCH_SERVICE_<stamp>.json trajectory entry "
        "(optionally to DIR)",
    )
    _service_common(p_sweep)
    p_sweep.set_defaults(fn=_cmd_sweep)

    from .bench.gate import (
        BASELINE_DIR,
        DEFAULT_GATE_INPUTS,
        DEFAULT_GATE_SCALE,
        DEFAULT_MIN_SPEEDUP,
        DEFAULT_REPEATS,
        DEFAULT_WALL_CELLS,
        DEFAULT_WALL_REPEATS,
        TRAJECTORY_DIR,
        WALL_FLOOR,
    )

    p_perf = sub.add_parser(
        "perf",
        help="benchmark-regression gate: record baselines, compare, check",
    )
    perf_sub = p_perf.add_subparsers(dest="perf_command", required=True)

    def _perf_common(p, *, for_record: bool) -> None:
        p.add_argument(
            "--inputs",
            default=",".join(DEFAULT_GATE_INPUTS),
            help="comma-separated suite input names",
        )
        p.add_argument("--code", default="ECL-MST")
        p.add_argument("--system", type=int, choices=(1, 2), default=2)
        p.add_argument(
            "--scale",
            type=float,
            # record needs a concrete scale; compare/check default to
            # each baseline's recorded scale (like-for-like).
            default=DEFAULT_GATE_SCALE if for_record else None,
        )
        p.add_argument(
            "--repeats",
            type=int,
            default=DEFAULT_REPEATS,
            help="wall-clock repetitions (median + MAD)",
        )
        p.add_argument("--store", default=BASELINE_DIR)
        p.add_argument(
            "--slowdown",
            type=float,
            default=1.0,
            help="inject a synthetic NxN cost-model slowdown (CI gate test)",
        )
        p.set_defaults(fn=_cmd_perf)

    p_rec = perf_sub.add_parser(
        "record", help="write baselines + a BENCH_<stamp>.json trajectory entry"
    )
    _perf_common(p_rec, for_record=True)
    p_rec.add_argument("--trajectory", default=TRAJECTORY_DIR)

    p_cmp = perf_sub.add_parser(
        "compare", help="render the full metric diff against the baselines"
    )
    _perf_common(p_cmp, for_record=False)
    p_cmp.add_argument(
        "--min-ratio",
        type=float,
        default=0.0,
        dest="min_ratio",
        help="hide metrics whose ratio is within this of 1.0",
    )

    p_chk = perf_sub.add_parser(
        "check", help="exit nonzero if any modeled metric regressed"
    )
    _perf_common(p_chk, for_record=False)
    p_chk.add_argument(
        "--threshold",
        type=float,
        default=1.0,
        help="bad-direction ratio tolerated (1.0 = exact compare)",
    )
    p_chk.add_argument(
        "--gate-wall",
        action="store_true",
        dest="gate_wall",
        help="fail on wall-band escapes too (use against fresh "
        "same-machine baselines, e.g. recorded earlier in the CI job)",
    )

    p_wall = perf_sub.add_parser(
        "wall",
        help="scalar-vs-vectorized engine head-to-head; writes a "
        "BENCH_WALL_<stamp>.json trajectory entry",
    )
    p_wall.add_argument(
        "--cells",
        default=",".join(
            f"{c.input}:{c.scale:g}{':gated' if c.gated else ''}"
            for c in DEFAULT_WALL_CELLS
        ),
        help="comma-separated input:scale[:gated] cells",
    )
    p_wall.add_argument("--system", type=int, choices=(1, 2), default=2)
    p_wall.add_argument(
        "--repeats", type=int, default=DEFAULT_WALL_REPEATS
    )
    p_wall.add_argument("--seed", type=int, default=7)
    p_wall.add_argument("--trajectory", default=TRAJECTORY_DIR)
    p_wall.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        dest="min_speedup",
        help="required scalar/vectorized speedup on gated cells",
    )
    p_wall.add_argument(
        "--floor",
        type=float,
        default=WALL_FLOOR,
        help="minimum speedup every cell (gated or not) must clear",
    )
    p_wall.add_argument(
        "--no-gate",
        action="store_true",
        dest="no_gate",
        help="record the trajectory entry but always exit zero",
    )
    p_wall.set_defaults(fn=_cmd_perf_wall)

    # The event-log flags also parse *after* the subcommand name
    # (`repro-mst serve ... --log-json events.ndjson`), not just before.
    for sp in sub.choices.values():
        _add_log_flags(sp, trailing=True)

    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Back-compat: bare `profile` (no input) is the §5.1 experiment key,
    # predating the `profile <input>` subcommand.
    if argv == ["profile"]:
        argv = ["exp", "profile"]
    # Back-compat: a bare experiment key maps onto the `exp` subcommand.
    known = {
        "exp",
        "run",
        "codes",
        "inputs",
        "artifact",
        "convert",
        "mst",
        "report",
        "trace",
        "profile",
        "chaos",
        "perf",
        "serve",
        "sweep",
        "dashboard",
        "postmortem",
        "replay",
    }
    if argv and argv[0] not in known and not argv[0].startswith("-"):
        argv = ["exp", *argv]
    parser = _build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "fn", None):
        parser.print_help()
        return 2
    level = getattr(args, "log_level", "off")
    json_path = getattr(args, "log_json", None)
    if json_path and level == "off":
        level = "info"  # asking for a log file means asking for events
    if level != "off":
        from .obs.events import configure_events

        configure_events(level=level, json_path=json_path)
    from .errors import (
        EXIT_INPUT_ERROR,
        EXIT_OVERLOADED,
        EXIT_UNRECOVERED_FAULT,
        EXIT_VERIFY_FAILED,
        DeviceFault,
        GraphFormatError,
        InvariantViolation,
        Overloaded,
        UnrecoveredFaultError,
        VerificationError,
    )

    try:
        return args.fn(args)
    except GraphFormatError as exc:
        print(f"input error: {exc}", file=sys.stderr)
        return EXIT_INPUT_ERROR
    except VerificationError as exc:
        print(f"verification failed: {exc}", file=sys.stderr)
        return EXIT_VERIFY_FAILED
    except (DeviceFault, InvariantViolation, UnrecoveredFaultError) as exc:
        print(f"unrecovered fault: {exc}", file=sys.stderr)
        return EXIT_UNRECOVERED_FAULT
    except Overloaded as exc:
        print(f"overloaded: {exc}", file=sys.stderr)
        return EXIT_OVERLOADED


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
