"""Shared error taxonomy for the whole package.

One module, no dependencies, imported from everywhere: input problems,
verification failures, and substrate faults are distinct exception
families so callers (and the CLI's exit codes) can tell them apart.

Hierarchy::

    ReproError
    ├── GraphFormatError      (also ValueError)    — malformed input files
    │   └── BundleError                            — unreadable postmortem bundle
    ├── NotConnectedError     (also ValueError)    — MST-only code, MSF input
    ├── VerificationError     (also AssertionError) — result != serial Kruskal
    ├── DeviceFault           (also RuntimeError)  — simulated hardware fault
    ├── InvariantViolation    (also AssertionError) — online check tripped
    ├── UnrecoveredFaultError (also RuntimeError)  — recovery ladder exhausted
    ├── DeadlineExceeded      (also TimeoutError)  — query deadline hit mid-run
    └── Overloaded            (also RuntimeError)  — admission control shed it

The CLI maps the families onto distinct nonzero exit codes
(:data:`EXIT_INPUT_ERROR`, :data:`EXIT_VERIFY_FAILED`,
:data:`EXIT_UNRECOVERED_FAULT`, :data:`EXIT_OVERLOADED`); ``2`` stays
argparse's usage-error code and ``1`` the generic failure (timeouts
included — a timeout is a scheduling outcome, overload is a deliberate
serving decision, so the two carry different codes).
:data:`EXIT_REPLAY_DIVERGED` is the ``repro-mst replay`` verdict code:
the bundle replayed cleanly but the re-executed outcome differs from
the recorded one — not an input problem and not a fault, a
determinism finding in its own exit family.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "BundleError",
    "NotConnectedError",
    "VerificationError",
    "DeviceFault",
    "InvariantViolation",
    "UnrecoveredFaultError",
    "DeadlineExceeded",
    "Overloaded",
    "EXIT_INPUT_ERROR",
    "EXIT_VERIFY_FAILED",
    "EXIT_UNRECOVERED_FAULT",
    "EXIT_OVERLOADED",
    "EXIT_REPLAY_DIVERGED",
]

EXIT_INPUT_ERROR = 3
EXIT_VERIFY_FAILED = 4
EXIT_UNRECOVERED_FAULT = 5
EXIT_OVERLOADED = 6
EXIT_REPLAY_DIVERGED = 7


class ReproError(Exception):
    """Base class of every error this package raises deliberately."""


class GraphFormatError(ReproError, ValueError):
    """An input graph file or edge array is malformed.

    Raised with enough context to find the problem (path, line number,
    offending value) instead of letting numpy produce garbage arrays or
    an IndexError deep inside CSR construction.
    """


class BundleError(GraphFormatError):
    """A postmortem bundle is missing, malformed, or not replayable.

    A bundle is an input file like any graph file, so this rides the
    :class:`GraphFormatError` family and exits with
    :data:`EXIT_INPUT_ERROR` — distinct from
    :data:`EXIT_REPLAY_DIVERGED`, which means the bundle was fine but
    the replayed outcome disagreed with the recorded one.
    """


class NotConnectedError(ReproError, ValueError):
    """Input has multiple connected components but the code is MST-only.

    The paper reports these cells as "NC": the Jucele and Gunrock codes
    can compute MSTs but not MSFs (Section 4).
    """


class VerificationError(ReproError, AssertionError):
    """Raised when a result disagrees with the serial Kruskal reference."""


class DeviceFault(ReproError, RuntimeError):
    """A simulated transient hardware fault surfaced by the substrate.

    Carries where it happened so recovery can report it: the kernel
    being launched, the global launch index, and the fault kind.
    """

    def __init__(
        self,
        message: str,
        *,
        kernel: str = "?",
        launch_index: int = -1,
        kind: str = "unknown",
    ) -> None:
        super().__init__(message)
        self.kernel = kernel
        self.launch_index = launch_index
        self.kind = kind


class InvariantViolation(ReproError, AssertionError):
    """An online invariant check found corrupted solver state.

    ``invariant`` names the check that tripped, ``round_index`` the
    Alg.-2 round and ``kernel`` the launch (or ``"round-end"``) where
    it was detected.
    """

    def __init__(
        self,
        message: str,
        *,
        invariant: str = "?",
        round_index: int = -1,
        kernel: str = "round-end",
    ) -> None:
        super().__init__(message)
        self.invariant = invariant
        self.round_index = round_index
        self.kernel = kernel


class UnrecoveredFaultError(ReproError, RuntimeError):
    """The whole recovery ladder (retry, phase restart, fallback) failed
    or was disabled while a fault remained detected."""


class DeadlineExceeded(ReproError, TimeoutError):
    """A query's deadline expired while the solver was still running.

    The service propagates per-query deadlines into
    :func:`~repro.core.eclmst.ecl_mst`, which checks them at round
    boundaries (the same cadence the invariant sweeps use) and aborts
    with this error instead of burning worker time on an answer nobody
    is waiting for.  Classified as a timeout outcome, never retried
    past the deadline.
    """


class Overloaded(ReproError, RuntimeError):
    """The service shed this query to protect itself (admission control,
    queue-depth gate, or an open circuit breaker).

    Distinct from a timeout: the query was *rejected before running*,
    so the client may safely retry later — the CLI surfaces it as
    :data:`EXIT_OVERLOADED`.  ``reason`` says which gate fired
    (``"token-bucket"``, ``"queue-depth"``, ``"breaker-open"``,
    ``"shutdown"``).
    """

    def __init__(self, message: str, *, reason: str = "overload") -> None:
        super().__init__(message)
        self.reason = reason
