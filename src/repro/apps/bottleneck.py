"""Minimax (bottleneck) path queries — the route-planning motivation.

For any two vertices, the path between them *in the MST* minimizes the
maximum edge weight over all connecting paths (the classic minimax
property; Held & Karp's TSP bounds and the paper's route-planning
citation both lean on it).  This module answers bottleneck queries by
walking the MST.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.eclmst import ecl_mst
from ..core.result import MstResult
from ..graph.csr import CSRGraph

__all__ = ["bottleneck_weights"]


def bottleneck_weights(
    graph: CSRGraph,
    queries: list[tuple[int, int]],
    *,
    result: MstResult | None = None,
) -> list[int | None]:
    """Minimax path weight for each ``(source, target)`` query.

    Returns ``None`` for pairs in different connected components.
    Complexity: O(|V|) per distinct source (BFS over the MSF).
    """
    if result is None:
        result = ecl_mst(graph)
    n = graph.num_vertices
    u, v, w = result.edges()
    # Forest adjacency.
    adj: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for i in range(u.size):
        a, b, wt = int(u[i]), int(v[i]), int(w[i])
        adj[a].append((b, wt))
        adj[b].append((a, wt))

    answers: list[int | None] = []
    cache: dict[int, np.ndarray] = {}
    for s, t in queries:
        if not (0 <= s < n and 0 <= t < n):
            raise IndexError(f"query ({s}, {t}) out of range")
        if s == t:
            answers.append(0)
            continue
        if s not in cache:
            # BFS from s recording the max edge weight along the path.
            maxw = np.full(n, -1, dtype=np.int64)
            maxw[s] = 0
            q = deque([s])
            while q:
                x = q.popleft()
                for y, wt in adj[x]:
                    if maxw[y] < 0:
                        maxw[y] = max(maxw[x], wt)
                        q.append(y)
            cache[s] = maxw
        val = int(cache[s][t])
        answers.append(None if val < 0 else val)
    return answers
