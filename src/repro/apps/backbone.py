"""Graph sparsification via spanning structures (network analysis).

* :func:`mst_backbone` — the MSF itself as a graph: the minimal
  connectivity skeleton used in network-analysis pipelines.
* :func:`kmst_spanner` — the union of ``k`` successive edge-disjoint
  MSFs (compute an MSF, remove its edges, repeat).  The union is the
  standard ``k``-connectivity certificate: it preserves every cut of
  size ≤ k while keeping at most ``k (|V| - 1)`` edges.
"""

from __future__ import annotations

import numpy as np

from ..core.eclmst import ecl_mst
from ..graph.build import build_csr
from ..graph.csr import CSRGraph

__all__ = ["mst_backbone", "kmst_spanner"]


def mst_backbone(graph: CSRGraph) -> CSRGraph:
    """The MSF of ``graph`` as a standalone :class:`CSRGraph`."""
    result = ecl_mst(graph)
    u, v, w = result.edges()
    return build_csr(
        graph.num_vertices, u, v, w, name=f"{graph.name}-backbone"
    )


def kmst_spanner(graph: CSRGraph, k: int) -> CSRGraph:
    """Union of ``k`` successive edge-disjoint MSFs of ``graph``.

    Raises
    ------
    ValueError
        If ``k`` is not positive.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    su, sv, sw = [], [], []
    current = graph
    for round_no in range(k):
        if current.num_edges == 0:
            break
        result = ecl_mst(current)
        u, v, w = result.edges()
        if u.size == 0:
            break
        su.append(u)
        sv.append(v)
        sw.append(w)
        # Remove the selected edges and rebuild the remainder.
        gu, gv, gw, geid = current.undirected_edges()
        remaining = ~result.in_mst[geid]
        current = build_csr(
            graph.num_vertices,
            gu[remaining],
            gv[remaining],
            gw[remaining],
            name=f"{graph.name}-rest{round_no}",
        )
    if not su:
        from ..graph.build import empty_graph

        return empty_graph(graph.num_vertices, f"{graph.name}-spanner{k}")
    return build_csr(
        graph.num_vertices,
        np.concatenate(su),
        np.concatenate(sv),
        np.concatenate(sw),
        name=f"{graph.name}-spanner{k}",
    )
