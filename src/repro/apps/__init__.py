"""Downstream applications built on the MST API — the domains the
paper's introduction motivates (network analysis, route planning,
medical diagnostics)."""

from .backbone import kmst_spanner, mst_backbone
from .bottleneck import bottleneck_weights
from .clustering import single_linkage_labels

__all__ = [
    "bottleneck_weights",
    "kmst_spanner",
    "mst_backbone",
    "single_linkage_labels",
]
