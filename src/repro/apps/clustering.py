"""Single-linkage clustering via MST (tumor-recognition motivation).

Cutting the ``k - 1`` heaviest edges of an MST yields exactly the
``k``-cluster single-linkage partition — the classic equivalence the
paper's medical-diagnostics citation (Brinkhuis et al.) builds on.
"""

from __future__ import annotations

import numpy as np

from ..core.eclmst import ecl_mst
from ..core.result import MstResult
from ..graph.csr import CSRGraph

__all__ = ["single_linkage_labels"]


def single_linkage_labels(
    graph: CSRGraph, k: int, *, result: MstResult | None = None
) -> np.ndarray:
    """``k``-cluster single-linkage labels for the vertices of ``graph``.

    Parameters
    ----------
    graph:
        Weighted similarity/distance graph (lower weight = closer).
    k:
        Number of clusters; must be at least the number of connected
        components (components can never merge).
    result:
        Optional precomputed MSF of ``graph`` (saves recomputation when
        sweeping ``k``).

    Returns
    -------
    labels:
        ``(num_vertices,)`` array of cluster IDs in ``[0, k')`` where
        ``k'`` equals ``k`` (or the component count if larger).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if result is None:
        result = ecl_mst(graph)
    u, v, w = result.edges()
    n = graph.num_vertices
    cuts = max(0, min(u.size, result.num_mst_edges - (n - k)))
    # Keep all MSF edges except the `cuts` heaviest.
    keep = np.argsort(w, kind="stable")[: u.size - cuts] if cuts else np.arange(u.size)

    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = int(parent[x])
        return x

    for i in keep:
        a, b = find(int(u[i])), find(int(v[i]))
        if a != b:
            parent[max(a, b)] = min(a, b)
    roots = np.array([find(i) for i in range(n)])
    _, labels = np.unique(roots, return_inverse=True)
    return labels
