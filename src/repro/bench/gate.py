"""The perf gate: record baselines, compare runs, fail CI on regression.

Workflow (surfaced as ``repro-mst perf record|compare|check``):

* :func:`perf_record` runs the gate inputs, writes one
  :class:`~repro.obs.regress.Baseline` per (input, code, system) to the
  baseline store, and appends a ``BENCH_<stamp>.json`` entry to the
  benchmark trajectory so the repo accumulates a performance history.
* :func:`perf_compare` re-runs and renders the full metric diff against
  the stored baseline (reusing :class:`~repro.obs.profile.ProfileDiff`).
* :func:`perf_check` re-runs and returns a :class:`GateReport` whose
  ``passed`` gates CI: modeled metrics compare exactly (deterministic
  cost model), wall-clock medians are advisory against the stored
  median+MAD band.

``slowdown`` scales every hardware rate via
:meth:`~repro.gpusim.spec.GPUSpec.slowed` — the synthetic cost-model
regression the CI job injects to prove the gate trips.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from ..baselines.registry import get_runner
from ..generators import suite
from ..obs.profile import RunProfile
from ..obs.regress import (
    Baseline,
    BaselineStore,
    RunComparison,
    WallStats,
    compare_to_baseline,
)
from .harness import SYSTEM1, SYSTEM2, SystemSpec

__all__ = [
    "DEFAULT_GATE_INPUTS",
    "DEFAULT_GATE_SCALE",
    "DEFAULT_REPEATS",
    "BASELINE_DIR",
    "TRAJECTORY_DIR",
    "GateReport",
    "perf_check",
    "perf_compare",
    "perf_record",
]

# Two structurally different small suite inputs: a scale-free topology
# (atomic-contention heavy) and a grid (memory/launch heavy).  Small
# enough that record+check stays in CI-smoke territory.
DEFAULT_GATE_INPUTS = ("internet", "2d-2e20.sym")
DEFAULT_GATE_SCALE = 0.06
DEFAULT_REPEATS = 3
BASELINE_DIR = "benchmarks/baselines"
TRAJECTORY_DIR = "benchmarks/trajectory"

TRAJECTORY_SCHEMA = "repro.bench.trajectory/v1"


def _system(number: int) -> SystemSpec:
    return SYSTEM1 if number == 1 else SYSTEM2


def _measured_run(
    input_name: str,
    *,
    code: str,
    system: SystemSpec,
    scale: float,
    repeats: int,
    slowdown: float = 1.0,
):
    """Run one gate cell: modeled result once-equivalent (deterministic
    across repeats), wall-clock sampled per repeat.

    Returns ``(profile, wall_samples)``; the profile carries the
    roofline report attributed against the (possibly slowed) GPU spec.
    """
    runner = get_runner(code)
    gpu = system.gpu.slowed(slowdown) if slowdown != 1.0 else system.gpu
    cpu = system.cpu.slowed(slowdown) if slowdown != 1.0 else system.cpu
    graph = suite.build(input_name, scale=scale)
    result = None
    walls: list[float] = []
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = runner.run(graph, gpu=gpu, cpu=cpu)
        walls.append(time.perf_counter() - t0)
    assert result is not None
    gpu_for_roofline = gpu if runner.kind == "gpu" else None
    profile = RunProfile.from_result(result, gpu=gpu_for_roofline)
    return profile, walls


def _utc_stamp() -> str:
    return datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")


def perf_record(
    inputs: tuple[str, ...] = DEFAULT_GATE_INPUTS,
    *,
    code: str = "ECL-MST",
    system: int = 2,
    scale: float = DEFAULT_GATE_SCALE,
    repeats: int = DEFAULT_REPEATS,
    store_dir: str | Path = BASELINE_DIR,
    trajectory_dir: str | Path = TRAJECTORY_DIR,
    slowdown: float = 1.0,
    stamp: str | None = None,
) -> tuple[list[Path], Path]:
    """Record baselines for every gate input and append one trajectory
    entry; returns ``(baseline paths, trajectory path)``."""
    store = BaselineStore(store_dir)
    sysspec = _system(system)
    recorded_at = datetime.now(timezone.utc).isoformat(timespec="seconds")
    paths: list[Path] = []
    entries: list[dict] = []
    for name in inputs:
        profile, walls = _measured_run(
            name,
            code=code,
            system=sysspec,
            scale=scale,
            repeats=repeats,
            slowdown=slowdown,
        )
        baseline = Baseline(
            input=name,
            code=code,
            system=system,
            scale=scale,
            graph=profile.graph,
            metrics=profile.metrics,
            wall=WallStats(samples=walls),
            recorded_at=recorded_at,
        )
        paths.append(store.save(baseline))
        entries.append(
            {
                "input": name,
                "graph_digest": profile.graph.get("digest"),
                "rounds": profile.rounds,
                "modeled_seconds": profile.modeled_seconds,
                "wall_median_s": baseline.wall.median,
                "wall_mad_s": baseline.wall.mad,
                "launches": profile.metrics.get("kernel.launches"),
                "bounds": {
                    k["name"]: k["bound"]
                    for k in profile.roofline.get("kernels", [])
                },
            }
        )
    trajectory = Path(trajectory_dir)
    trajectory.mkdir(parents=True, exist_ok=True)
    traj_path = trajectory / f"BENCH_{stamp or _utc_stamp()}.json"
    import json

    traj_path.write_text(
        json.dumps(
            {
                "schema": TRAJECTORY_SCHEMA,
                "recorded_at": recorded_at,
                "code": code,
                "system": system,
                "scale": scale,
                "repeats": repeats,
                "entries": entries,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    return paths, traj_path


@dataclass
class GateReport:
    """All per-input verdicts of one ``perf check`` invocation."""

    comparisons: list[RunComparison] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.missing and all(c.passed for c in self.comparisons)

    def render(self) -> str:
        lines = []
        for name in self.missing:
            lines.append(
                f"{name}: MISSING baseline — run `repro-mst perf record`"
            )
        for c in self.comparisons:
            lines.append(c.render())
        lines.append(
            "perf check: "
            + ("PASS" if self.passed else "FAIL")
            + f" ({len(self.comparisons)} compared, {len(self.missing)} missing)"
        )
        return "\n".join(lines)


def perf_check(
    inputs: tuple[str, ...] = DEFAULT_GATE_INPUTS,
    *,
    code: str = "ECL-MST",
    system: int = 2,
    scale: float | None = None,  # None -> each baseline's recorded scale
    repeats: int = DEFAULT_REPEATS,
    store_dir: str | Path = BASELINE_DIR,
    slowdown: float = 1.0,
    threshold: float = 1.0,
) -> GateReport:
    """Re-run the gate inputs and compare each against its baseline."""
    store = BaselineStore(store_dir)
    sysspec = _system(system)
    report = GateReport()
    for name in inputs:
        if not store.exists(name, code, system):
            report.missing.append(name)
            continue
        baseline = store.load(name, code, system)
        profile, walls = _measured_run(
            name,
            code=code,
            system=sysspec,
            scale=baseline.scale if scale is None else scale,
            repeats=repeats,
            slowdown=slowdown,
        )
        report.comparisons.append(
            compare_to_baseline(baseline, profile, walls, threshold=threshold)
        )
    return report


def perf_compare(
    inputs: tuple[str, ...] = DEFAULT_GATE_INPUTS,
    *,
    code: str = "ECL-MST",
    system: int = 2,
    scale: float | None = None,  # None -> each baseline's recorded scale
    repeats: int = DEFAULT_REPEATS,
    store_dir: str | Path = BASELINE_DIR,
    slowdown: float = 1.0,
    min_ratio: float = 0.0,
) -> str:
    """Render the full metric diff of a fresh run per gate input."""
    store = BaselineStore(store_dir)
    sysspec = _system(system)
    sections: list[str] = []
    for name in inputs:
        if not store.exists(name, code, system):
            sections.append(
                f"{name}: no baseline recorded (run `repro-mst perf record`)"
            )
            continue
        baseline = store.load(name, code, system)
        profile, walls = _measured_run(
            name,
            code=code,
            system=sysspec,
            scale=baseline.scale if scale is None else scale,
            repeats=repeats,
            slowdown=slowdown,
        )
        comparison = compare_to_baseline(baseline, profile, walls)
        sections.append(
            f"== {code} on {name} vs baseline "
            f"(recorded {baseline.recorded_at or 'unknown'}) ==\n"
            + comparison.diff.render(min_ratio=min_ratio)
            + "\n"
            + comparison.render()
        )
    return "\n\n".join(sections)
