"""The perf gate: record baselines, compare runs, fail CI on regression.

Workflow (surfaced as ``repro-mst perf record|compare|check``):

* :func:`perf_record` runs the gate inputs, writes one
  :class:`~repro.obs.regress.Baseline` per (input, code, system) to the
  baseline store, and appends a ``BENCH_<stamp>.json`` entry to the
  benchmark trajectory so the repo accumulates a performance history.
* :func:`perf_compare` re-runs and renders the full metric diff against
  the stored baseline (reusing :class:`~repro.obs.profile.ProfileDiff`).
* :func:`perf_check` re-runs and returns a :class:`GateReport` whose
  ``passed`` gates CI: modeled metrics compare exactly (deterministic
  cost model), wall-clock medians are advisory against the stored
  median+MAD band — or gating with ``gate_wall=True`` against fresh
  same-machine baselines.
* :func:`record_wall_trajectory` measures the scalar-vs-vectorized
  execution-engine head-to-head on identical graphs and appends a
  ``BENCH_WALL_<stamp>.json`` entry, so host wall-clock becomes a
  first-class, gated trajectory next to the modeled one.

``slowdown`` scales every hardware rate via
:meth:`~repro.gpusim.spec.GPUSpec.slowed` — the synthetic cost-model
regression the CI job injects to prove the gate trips.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from ..baselines.registry import get_runner
from ..generators import suite
from ..obs.profile import RunProfile
from ..obs.regress import (
    Baseline,
    BaselineStore,
    RunComparison,
    WallStats,
    compare_to_baseline,
)
from .harness import SYSTEM1, SYSTEM2, SystemSpec

__all__ = [
    "DEFAULT_GATE_INPUTS",
    "DEFAULT_GATE_SCALE",
    "DEFAULT_REPEATS",
    "DEFAULT_WALL_CELLS",
    "DEFAULT_WALL_REPEATS",
    "DEFAULT_MIN_SPEEDUP",
    "BASELINE_DIR",
    "TRAJECTORY_DIR",
    "GateReport",
    "WallCell",
    "perf_check",
    "perf_compare",
    "perf_record",
    "record_wall_trajectory",
    "render_wall_report",
]

# Two structurally different small suite inputs: a scale-free topology
# (atomic-contention heavy) and a grid (memory/launch heavy).  Small
# enough that record+check stays in CI-smoke territory.
DEFAULT_GATE_INPUTS = ("internet", "2d-2e20.sym")
DEFAULT_GATE_SCALE = 0.06
DEFAULT_REPEATS = 3
BASELINE_DIR = "benchmarks/baselines"
TRAJECTORY_DIR = "benchmarks/trajectory"

TRAJECTORY_SCHEMA = "repro.bench.trajectory/v1"


def _system(number: int) -> SystemSpec:
    return SYSTEM1 if number == 1 else SYSTEM2


def _measured_run(
    input_name: str,
    *,
    code: str,
    system: SystemSpec,
    scale: float,
    repeats: int,
    slowdown: float = 1.0,
):
    """Run one gate cell: modeled result once-equivalent (deterministic
    across repeats), wall-clock sampled per repeat.

    Returns ``(profile, wall_samples)``; the profile carries the
    roofline report attributed against the (possibly slowed) GPU spec.
    """
    runner = get_runner(code)
    gpu = system.gpu.slowed(slowdown) if slowdown != 1.0 else system.gpu
    cpu = system.cpu.slowed(slowdown) if slowdown != 1.0 else system.cpu
    graph = suite.build(input_name, scale=scale)
    result = None
    walls: list[float] = []
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = runner.run(graph, gpu=gpu, cpu=cpu)
        walls.append(time.perf_counter() - t0)
    assert result is not None
    gpu_for_roofline = gpu if runner.kind == "gpu" else None
    profile = RunProfile.from_result(result, gpu=gpu_for_roofline)
    return profile, walls


def _utc_stamp() -> str:
    return datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")


def perf_record(
    inputs: tuple[str, ...] = DEFAULT_GATE_INPUTS,
    *,
    code: str = "ECL-MST",
    system: int = 2,
    scale: float = DEFAULT_GATE_SCALE,
    repeats: int = DEFAULT_REPEATS,
    store_dir: str | Path = BASELINE_DIR,
    trajectory_dir: str | Path = TRAJECTORY_DIR,
    slowdown: float = 1.0,
    stamp: str | None = None,
) -> tuple[list[Path], Path]:
    """Record baselines for every gate input and append one trajectory
    entry; returns ``(baseline paths, trajectory path)``."""
    store = BaselineStore(store_dir)
    sysspec = _system(system)
    recorded_at = datetime.now(timezone.utc).isoformat(timespec="seconds")
    paths: list[Path] = []
    entries: list[dict] = []
    for name in inputs:
        profile, walls = _measured_run(
            name,
            code=code,
            system=sysspec,
            scale=scale,
            repeats=repeats,
            slowdown=slowdown,
        )
        baseline = Baseline(
            input=name,
            code=code,
            system=system,
            scale=scale,
            graph=profile.graph,
            metrics=profile.metrics,
            wall=WallStats(samples=walls),
            recorded_at=recorded_at,
        )
        paths.append(store.save(baseline))
        entries.append(
            {
                "input": name,
                "graph_digest": profile.graph.get("digest"),
                "rounds": profile.rounds,
                "modeled_seconds": profile.modeled_seconds,
                "wall_median_s": baseline.wall.median,
                "wall_mad_s": baseline.wall.mad,
                "launches": profile.metrics.get("kernel.launches"),
                "bounds": {
                    k["name"]: k["bound"]
                    for k in profile.roofline.get("kernels", [])
                },
            }
        )
    trajectory = Path(trajectory_dir)
    trajectory.mkdir(parents=True, exist_ok=True)
    traj_path = trajectory / f"BENCH_{stamp or _utc_stamp()}.json"
    import json

    traj_path.write_text(
        json.dumps(
            {
                "schema": TRAJECTORY_SCHEMA,
                "recorded_at": recorded_at,
                "code": code,
                "system": system,
                "scale": scale,
                "repeats": repeats,
                "entries": entries,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    return paths, traj_path


@dataclass
class GateReport:
    """All per-input verdicts of one ``perf check`` invocation."""

    comparisons: list[RunComparison] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.missing and all(c.passed for c in self.comparisons)

    def render(self) -> str:
        lines = []
        for name in self.missing:
            lines.append(
                f"{name}: MISSING baseline — run `repro-mst perf record`"
            )
        for c in self.comparisons:
            lines.append(c.render())
        lines.append(
            "perf check: "
            + ("PASS" if self.passed else "FAIL")
            + f" ({len(self.comparisons)} compared, {len(self.missing)} missing)"
        )
        return "\n".join(lines)


def perf_check(
    inputs: tuple[str, ...] = DEFAULT_GATE_INPUTS,
    *,
    code: str = "ECL-MST",
    system: int = 2,
    scale: float | None = None,  # None -> each baseline's recorded scale
    repeats: int = DEFAULT_REPEATS,
    store_dir: str | Path = BASELINE_DIR,
    slowdown: float = 1.0,
    threshold: float = 1.0,
    gate_wall: bool = False,
) -> GateReport:
    """Re-run the gate inputs and compare each against its baseline.

    ``gate_wall`` promotes the wall-clock band from advisory to gating;
    only sound against baselines recorded on this same machine (CI
    records fresh on-runner baselines immediately before checking).
    """
    store = BaselineStore(store_dir)
    sysspec = _system(system)
    report = GateReport()
    for name in inputs:
        if not store.exists(name, code, system):
            report.missing.append(name)
            continue
        baseline = store.load(name, code, system)
        profile, walls = _measured_run(
            name,
            code=code,
            system=sysspec,
            scale=baseline.scale if scale is None else scale,
            repeats=repeats,
            slowdown=slowdown,
        )
        report.comparisons.append(
            compare_to_baseline(
                baseline,
                profile,
                walls,
                threshold=threshold,
                gate_wall=gate_wall,
            )
        )
    return report


WALL_SCHEMA = "repro.bench.wall/v1"


@dataclass(frozen=True)
class WallCell:
    """One engine head-to-head measurement cell.

    ``gated`` marks the union-heavy flagships whose scalar/vectorized
    speedup must clear ``min_speedup`` for the wall gate to pass; the
    remaining cells are recorded for the honest trajectory but only
    enforce that the vectorized engine is not slower than ``floor``.
    """

    input: str
    scale: float
    gated: bool = False


# Union-heavy graphs (road, grid meshes) carry the per-winner union
# cost the vectorized engine batches away, so they gate; the scale-free
# rows are contention-bound and ride along as honest context.
DEFAULT_WALL_CELLS: tuple[WallCell, ...] = (
    WallCell("USA-road-d.NY", 32.0, gated=True),
    WallCell("2d-2e20.sym", 16.0),
    WallCell("internet", 16.0),
    WallCell("rmat22.sym", 8.0),
)
DEFAULT_WALL_REPEATS = 5
DEFAULT_MIN_SPEEDUP = 3.0
WALL_FLOOR = 0.8


def record_wall_trajectory(
    cells: tuple[WallCell, ...] = DEFAULT_WALL_CELLS,
    *,
    system: int = 2,
    repeats: int = DEFAULT_WALL_REPEATS,
    seed: int = 7,
    trajectory_dir: str | Path = TRAJECTORY_DIR,
    stamp: str | None = None,
    min_speedup: float = DEFAULT_MIN_SPEEDUP,
    floor: float = WALL_FLOOR,
) -> tuple[Path, dict]:
    """Measure the scalar-vs-vectorized engine head-to-head and append a
    ``BENCH_WALL_<stamp>.json`` trajectory entry.

    Both engines run the identical solver build on the identical graph,
    so the speedup column isolates the execution-engine change; the
    modeled results are asserted equal while measuring, which makes
    every recorded speedup a like-for-like number by construction.
    Returns ``(path, payload)``; ``payload["gate"]["passed"]`` is the
    wall-gate verdict (gated cells clear ``min_speedup``, every cell
    clears ``floor``).
    """
    from ..core.config import EclMstConfig
    from ..core.eclmst import ecl_mst

    sysspec = _system(system)
    recorded_at = datetime.now(timezone.utc).isoformat(timespec="seconds")
    entries: list[dict] = []
    for cell in cells:
        graph = suite.build(cell.input, scale=cell.scale, seed=seed)
        medians: dict[str, float] = {}
        mads: dict[str, float] = {}
        modeled: dict[str, float] = {}
        weight: dict[str, int] = {}
        for engine in ("vectorized", "scalar"):
            cfg = EclMstConfig(engine=engine)
            # One untimed warmup per engine: first-call costs (deferred
            # imports, allocator growth) would otherwise shift every
            # early sample and bias the median.  Both engines get the
            # same treatment, so the speedup stays like-for-like.
            result = ecl_mst(graph, cfg, gpu=sysspec.gpu)
            walls: list[float] = []
            for _ in range(max(1, repeats)):
                t0 = time.perf_counter()
                result = ecl_mst(graph, cfg, gpu=sysspec.gpu)
                walls.append(time.perf_counter() - t0)
            stats = WallStats(samples=walls)
            medians[engine] = stats.median
            mads[engine] = stats.mad
            modeled[engine] = float(result.modeled_seconds)
            weight[engine] = int(result.total_weight)
        if modeled["vectorized"] != modeled["scalar"] or (
            weight["vectorized"] != weight["scalar"]
        ):
            raise AssertionError(
                f"engines diverged on {cell.input}: the head-to-head is "
                "only meaningful while both engines are bit-identical"
            )
        speedup = (
            medians["scalar"] / medians["vectorized"]
            if medians["vectorized"] > 0
            else float("inf")
        )
        entries.append(
            {
                "input": cell.input,
                "scale": cell.scale,
                "gated": cell.gated,
                "wall_median_s": {
                    "vectorized": medians["vectorized"],
                    "scalar": medians["scalar"],
                },
                "wall_mad_s": {
                    "vectorized": mads["vectorized"],
                    "scalar": mads["scalar"],
                },
                "modeled_seconds": modeled["vectorized"],
                "speedup": speedup,
            }
        )
    gated = [e for e in entries if e["gated"]]
    passed = all(e["speedup"] >= min_speedup for e in gated) and all(
        e["speedup"] >= floor for e in entries
    )
    payload = {
        "schema": WALL_SCHEMA,
        "recorded_at": recorded_at,
        "system": system,
        "repeats": repeats,
        "seed": seed,
        "gate": {
            "min_speedup": min_speedup,
            "floor": floor,
            "passed": passed,
        },
        "entries": entries,
    }
    trajectory = Path(trajectory_dir)
    trajectory.mkdir(parents=True, exist_ok=True)
    path = trajectory / f"BENCH_WALL_{stamp or _utc_stamp()}.json"
    import json

    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path, payload


def render_wall_report(payload: dict) -> str:
    """Human-readable table for one BENCH_WALL payload."""
    lines = [
        f"engine head-to-head (system {payload['system']}, "
        f"{payload['repeats']} repeats)"
    ]
    for e in payload["entries"]:
        med = e["wall_median_s"]
        tag = "GATED" if e["gated"] else "     "
        lines.append(
            f"  {tag} {e['input']:16s} x{e['scale']:<5g} "
            f"vectorized {med['vectorized'] * 1e3:8.1f} ms   "
            f"scalar {med['scalar'] * 1e3:8.1f} ms   "
            f"speedup {e['speedup']:5.2f}x"
        )
    gate = payload["gate"]
    lines.append(
        f"wall gate: {'PASS' if gate['passed'] else 'FAIL'} "
        f"(gated cells >= {gate['min_speedup']:.2f}x, "
        f"all cells >= {gate['floor']:.2f}x)"
    )
    return "\n".join(lines)


def perf_compare(
    inputs: tuple[str, ...] = DEFAULT_GATE_INPUTS,
    *,
    code: str = "ECL-MST",
    system: int = 2,
    scale: float | None = None,  # None -> each baseline's recorded scale
    repeats: int = DEFAULT_REPEATS,
    store_dir: str | Path = BASELINE_DIR,
    slowdown: float = 1.0,
    min_ratio: float = 0.0,
) -> str:
    """Render the full metric diff of a fresh run per gate input."""
    store = BaselineStore(store_dir)
    sysspec = _system(system)
    sections: list[str] = []
    for name in inputs:
        if not store.exists(name, code, system):
            sections.append(
                f"{name}: no baseline recorded (run `repro-mst perf record`)"
            )
            continue
        baseline = store.load(name, code, system)
        profile, walls = _measured_run(
            name,
            code=code,
            system=sysspec,
            scale=baseline.scale if scale is None else scale,
            repeats=repeats,
            slowdown=slowdown,
        )
        comparison = compare_to_baseline(baseline, profile, walls)
        sections.append(
            f"== {code} on {name} vs baseline "
            f"(recorded {baseline.recorded_at or 'unknown'}) ==\n"
            + comparison.diff.render(min_ratio=min_ratio)
            + "\n"
            + comparison.render()
        )
    return "\n\n".join(sections)
