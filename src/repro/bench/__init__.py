"""Benchmark harness reproducing the paper's tables and figures."""

from .experiments import (
    DEFAULT_SCALE,
    EXPERIMENTS,
    build_suite,
    exp_deopt,
    exp_filter_accuracy,
    exp_kernel_profile,
    exp_runtime_table,
    exp_seed_variability,
    exp_table2,
    exp_throughput_figure,
)
from . import artifact
from .gate import GateReport, perf_check, perf_compare, perf_record
from .report import generate_report
from .figures import BoxStats, seed_sweep, throughput_series
from .harness import SYSTEM1, SYSTEM2, Cell, GridResult, SystemSpec, geomean, run_grid
from .tables import render_runtime_table, render_table2

__all__ = [
    "BoxStats",
    "artifact",
    "Cell",
    "DEFAULT_SCALE",
    "EXPERIMENTS",
    "GridResult",
    "SYSTEM1",
    "SYSTEM2",
    "SystemSpec",
    "build_suite",
    "exp_deopt",
    "exp_filter_accuracy",
    "exp_kernel_profile",
    "exp_runtime_table",
    "exp_seed_variability",
    "exp_table2",
    "exp_throughput_figure",
    "GateReport",
    "generate_report",
    "geomean",
    "perf_check",
    "perf_compare",
    "perf_record",
    "render_runtime_table",
    "render_table2",
    "run_grid",
    "seed_sweep",
    "throughput_series",
]
