"""One-command reproduction report.

:func:`generate_report` runs the full evaluation (both systems, the
de-optimization ladder, the §5.1/§5.2 claims) and writes a single
markdown document with measured-vs-paper deltas — the automated version
of EXPERIMENTS.md's tables.  Exposed as ``repro-mst report``.
"""

from __future__ import annotations

import statistics
from pathlib import Path

from ..baselines.registry import TABLE_CODES
from ..core.config import deopt_stages
from ..core.eclmst import ecl_mst
from ..generators import suite as suite_mod
from .experiments import build_suite, exp_degree_correlation
from .harness import SYSTEM1, SYSTEM2, run_grid, geomean

__all__ = ["generate_report", "PAPER_GEOMEAN_RATIOS", "PAPER_DEOPT_RATIOS"]

# Paper geomean ratios vs ECL-MST: {system: {code: (msf, mst)}}.
PAPER_GEOMEAN_RATIOS = {
    1: {
        "Jucele GPU": (None, 4.6),
        "Gunrock GPU": (None, 6.9),
        "UMinho GPU": (38.6, 17.1),
        "Lonestar CPU": (241.6, 259.3),
        "PBBS CPU": (32.4, 49.5),
        "UMinho CPU": (46.4, 39.1),
        "PBBS Ser.": (138.2, 183.7),
    },
    2: {
        "Jucele GPU": (None, 4.4),
        "Gunrock GPU": (None, 8.5),
        "cuGraph GPU": (12.8, 21.7),
        "UMinho GPU": (46.4, 18.4),
        "Lonestar CPU": (423.6, 455.4),
        "PBBS CPU": (27.3, 43.7),
        "UMinho CPU": (71.5, 58.8),
        "PBBS Ser.": (241.4, 320.7),
    },
}

# Table 5 cumulative slowdowns vs fully-optimized ECL-MST.
PAPER_DEOPT_RATIOS = (1.00, 1.27, 1.39, 1.80, 2.84, 4.61, 6.14, 5.80, 8.14)


def _fmt(x: float | None) -> str:
    return "NC" if x is None else f"{x:.1f}x"


def generate_report(
    path: str | Path | None = None, *, scale: float = 1.0
) -> str:
    """Run the evaluation and return (and optionally write) the report."""
    graphs = build_suite(scale)
    mst_names = {n for n in graphs if suite_mod.SUITE[n].single_component}
    lines: list[str] = [
        "# Reproduction report",
        "",
        f"Suite scale: {scale}  ·  {len(graphs)} inputs "
        f"({len(mst_names)} single-component)",
        "",
    ]

    for sysno, system in ((1, SYSTEM1), (2, SYSTEM2)):
        codes = tuple(
            c for c in TABLE_CODES if sysno == 2 or not c.startswith("cuGraph")
        )
        grid = run_grid(codes, graphs, system)
        ecl_msf = grid.geomean_seconds("ECL-MST")
        ecl_mst_gm = grid.geomean_seconds("ECL-MST", mst_only_names=mst_names)
        lines += [
            f"## {system.name}",
            "",
            f"ECL-MST geomean: {ecl_mst_gm * 1e6:.1f} µs (MST inputs), "
            f"{ecl_msf * 1e6:.1f} µs (all inputs)",
            "",
            "| Code | MST meas. | MST paper | MSF meas. | MSF paper |",
            "|---|---|---|---|---|",
        ]
        fastest_everywhere = True
        for code in codes[1:]:
            mst_r = grid.geomean_seconds(code, mst_only_names=mst_names)
            msf_r = grid.geomean_seconds(code)
            pm, pt = PAPER_GEOMEAN_RATIOS[sysno].get(code, (None, None))
            lines.append(
                f"| {code} | {_fmt(mst_r / ecl_mst_gm if mst_r else None)} "
                f"| {_fmt(pt)} | {_fmt(msf_r / ecl_msf if msf_r else None)} "
                f"| {_fmt(pm)} |"
            )
            for name in graphs:
                cell = grid.cell(code, name)
                mine = grid.cell("ECL-MST", name)
                if cell.seconds is not None and cell.seconds < mine.seconds:
                    fastest_everywhere = False
        lines += [
            "",
            f"ECL-MST fastest on every input: "
            f"{'yes' if fastest_everywhere else 'NO'}",
            "",
        ]

    # De-optimization ladder.
    lines += [
        "## De-optimization ladder (System 2, MST inputs)",
        "",
        "| Stage | Measured | Paper |",
        "|---|---|---|",
    ]
    base = None
    for (name, cfg), paper in zip(deopt_stages(), PAPER_DEOPT_RATIOS):
        gm = geomean(
            [
                ecl_mst(graphs[g], cfg, gpu=SYSTEM2.gpu).modeled_seconds
                for g in sorted(mst_names)
            ]
        )
        if base is None:
            base = gm
        lines.append(f"| {name} | {gm / base:.2f}x | {paper:.2f}x |")

    # §5.2 degree correlation.
    corr_out = exp_degree_correlation(scale)
    corr = corr_out.splitlines()[-1].split(",")[-1]
    lines += [
        "",
        "## Section 5.2 — throughput vs average degree",
        "",
        f"Pearson correlation across the suite: **{corr}** "
        "(paper: 'significantly correlate[s]').",
        "",
    ]

    # §5.1 profile medians.
    inits, k1s = [], []
    for g in graphs.values():
        r = ecl_mst(g, gpu=SYSTEM2.gpu)
        by = r.counters.seconds_by_kernel()
        inits.append(100 * by.get("init", 0.0) / r.modeled_seconds)
        k1s.append(100 * by.get("k1_reserve", 0.0) / r.modeled_seconds)
    lines += [
        "## Section 5.1 — kernel profile",
        "",
        f"Median init share {statistics.median(inits):.0f}% (paper ~40%), "
        f"median kernel-1 share {statistics.median(k1s):.0f}% (paper ~35%).",
        "",
    ]

    text = "\n".join(lines)
    if path is not None:
        Path(path).write_text(text + "\n")
    return text
