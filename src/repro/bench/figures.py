"""Series renderers for the paper's figures (CSV + ASCII bars).

* Figures 3/4 — throughput in millions of edges per second per input
  per code (bar charts in the paper).
* Figure 5 — throughput of each de-optimization stage.
* Figure 6 — throughput distribution across random filter seeds
  (box-and-whisker: min, Q1, median, Q3, max).
* Figure 7 — relative distance of the realized filter cut from the
  target edge budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import EclMstConfig
from ..core.eclmst import ecl_mst
from ..core.filtering import plan_filtering, threshold_accuracy
from ..graph.csr import CSRGraph
from ..gpusim.spec import GPUSpec, RTX_3080_TI
from .harness import GridResult

__all__ = [
    "throughput_series",
    "render_throughput_figure",
    "BoxStats",
    "seed_sweep",
    "render_seed_figure",
    "filter_accuracy_series",
    "render_filter_accuracy_figure",
    "ascii_bar_chart",
]


def throughput_series(
    grid: GridResult, codes: tuple[str, ...]
) -> dict[str, dict[str, float | None]]:
    """``{code: {input: Medges/s or None}}`` from a runtime grid."""
    out: dict[str, dict[str, float | None]] = {}
    for code in codes:
        series: dict[str, float | None] = {}
        for name, g in grid.graphs.items():
            series[name] = grid.cell(code, name).throughput_meps(
                g.num_directed_edges
            )
        out[code] = series
    return out


def ascii_bar_chart(
    series: dict[str, float | None], *, width: int = 56, unit: str = "Medges/s"
) -> str:
    """Horizontal ASCII bars, one row per key."""
    vals = [v for v in series.values() if v is not None]
    peak = max(vals) if vals else 1.0
    label_w = max((len(k) for k in series), default=0)
    lines = []
    for key, v in series.items():
        if v is None:
            lines.append(f"{key.ljust(label_w)}  NC")
            continue
        bar = "#" * max(1, int(round(v / peak * width)))
        lines.append(f"{key.ljust(label_w)}  {bar} {v:,.1f} {unit}")
    return "\n".join(lines)


def render_throughput_figure(
    grid: GridResult, codes: tuple[str, ...], *, title: str
) -> str:
    """Figures 3/4: per-input bars for every code, plus a CSV block."""
    series = throughput_series(grid, codes)
    lines = [title, ""]
    # CSV header block (machine-readable, like the artifact's outputs).
    lines.append("input," + ",".join(codes))
    for name in grid.graphs:
        cells = []
        for code in codes:
            v = series[code][name]
            cells.append("NC" if v is None else f"{v:.1f}")
        lines.append(f"{name}," + ",".join(cells))
    lines.append("")
    for name in grid.graphs:
        lines.append(f"-- {name} --")
        lines.append(
            ascii_bar_chart({c: series[c][name] for c in codes})
        )
        lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 6: random-seed throughput variability
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BoxStats:
    """Box-and-whisker summary of a throughput distribution."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @classmethod
    def from_values(cls, values: list[float]) -> "BoxStats":
        if not values:
            raise ValueError("no values")
        arr = np.asarray(sorted(values), dtype=np.float64)
        return cls(
            minimum=float(arr[0]),
            q1=float(np.percentile(arr, 25)),
            median=float(np.percentile(arr, 50)),
            q3=float(np.percentile(arr, 75)),
            maximum=float(arr[-1]),
        )

    @property
    def relative_spread(self) -> float:
        """(max - min) / median — the variability the paper discusses."""
        return (self.maximum - self.minimum) / self.median if self.median else 0.0


def seed_sweep(
    graph: CSRGraph,
    *,
    seeds: int = 99,
    gpu: GPUSpec = RTX_3080_TI,
    base: EclMstConfig | None = None,
) -> tuple[BoxStats, int]:
    """Run ECL-MST with ``seeds`` different filter-sampling seeds.

    Returns the throughput distribution and the seed achieving the
    median throughput (the paper uses the median seed for every other
    experiment).
    """
    base = base or EclMstConfig()
    results: list[tuple[float, int]] = []
    for seed in range(seeds):
        r = ecl_mst(graph, base.with_(seed=seed), gpu=gpu)
        results.append((r.throughput_meps(), seed))
    values = [v for v, _ in results]
    stats = BoxStats.from_values(values)
    median_seed = min(results, key=lambda t: abs(t[0] - stats.median))[1]
    return stats, median_seed


def render_seed_figure(stats_by_input: dict[str, BoxStats]) -> str:
    """Figure 6 as a text table (box stats per input)."""
    lines = [
        "input,min,q1,median,q3,max,relative_spread",
    ]
    for name, s in stats_by_input.items():
        lines.append(
            f"{name},{s.minimum:.1f},{s.q1:.1f},{s.median:.1f},"
            f"{s.q3:.1f},{s.maximum:.1f},{s.relative_spread * 100:.2f}%"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 7: filter-threshold accuracy
# ----------------------------------------------------------------------
def filter_accuracy_series(
    graphs: dict[str, CSRGraph],
    *,
    config: EclMstConfig | None = None,
    target_factor: float = 3.0,
) -> dict[str, float]:
    """Relative distance from the target budget, per filtered input.

    Inputs whose average degree is below the filtering cutoff are
    omitted (no filtering happens there), as in the paper.
    """
    config = config or EclMstConfig()
    out: dict[str, float] = {}
    for name, g in graphs.items():
        plan = plan_filtering(g, config)
        acc = threshold_accuracy(g, plan, target_factor=target_factor)
        if acc is not None:
            out[name] = acc
    return out


def render_filter_accuracy_figure(series: dict[str, float]) -> str:
    """Figure 7 as signed-percentage bars around zero."""
    lines = ["input,relative_distance_pct"]
    for name, v in series.items():
        lines.append(f"{name},{v * 100:+.1f}%")
    lines.append("")
    label_w = max((len(k) for k in series), default=0)
    for name, v in series.items():
        mag = min(40, int(round(abs(v) * 20)))
        bar = ("-" if v < 0 else "+") * max(1, mag)
        lines.append(f"{name.ljust(label_w)}  {bar} {v * 100:+.1f}%")
    return "\n".join(lines)
