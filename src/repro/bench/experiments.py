"""Declarative experiment definitions — one per paper table/figure.

Every function regenerates one artifact of the paper's evaluation
(Section 5) on the scaled synthetic suite.  The CLI
(``python -m repro <experiment>``) and the pytest benchmarks in
``benchmarks/`` are thin wrappers over these.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.registry import TABLE_CODES
from ..core.config import DEOPT_STAGE_NAMES, EclMstConfig, deopt_stages
from ..core.eclmst import ecl_mst
from ..generators import suite as suite_mod
from ..graph.csr import CSRGraph
from .figures import (
    BoxStats,
    filter_accuracy_series,
    render_filter_accuracy_figure,
    render_seed_figure,
    render_throughput_figure,
    seed_sweep,
)
from .harness import SYSTEM1, SYSTEM2, GridResult, SystemSpec, run_grid
from .tables import render_deopt_table, render_runtime_table, render_table2

__all__ = [
    "DEFAULT_SCALE",
    "build_suite",
    "exp_table2",
    "exp_degree_correlation",
    "exp_runtime_table",
    "exp_throughput_figure",
    "exp_deopt",
    "exp_seed_variability",
    "exp_filter_accuracy",
    "exp_kernel_profile",
    "EXPERIMENTS",
]

DEFAULT_SCALE = 1.0

_suite_cache: dict[tuple[float, int], dict[str, CSRGraph]] = {}


def build_suite(scale: float = DEFAULT_SCALE, seed: int = 0) -> dict[str, CSRGraph]:
    """Build (and memoize) the 17-input suite at ``scale``."""
    key = (scale, seed)
    if key not in _suite_cache:
        _suite_cache[key] = suite_mod.build_all(scale=scale, seed=seed)
    return _suite_cache[key]


def _system_codes(system: SystemSpec) -> tuple[str, ...]:
    # cuGraph "is incompatible with System 1, so we only compare to it
    # on System 2" (Section 4).
    if system is SYSTEM1:
        return tuple(c for c in TABLE_CODES if not c.startswith("cuGraph"))
    return TABLE_CODES


def exp_table2(scale: float = DEFAULT_SCALE) -> str:
    """Table 2: the input inventory."""
    return render_table2(build_suite(scale))


_grid_cache: dict[tuple[str, float], GridResult] = {}


def _runtime_grid(system: SystemSpec, scale: float, verify: bool = False) -> GridResult:
    key = (system.name, scale)
    if key not in _grid_cache:
        _grid_cache[key] = run_grid(
            _system_codes(system), build_suite(scale), system, verify=verify
        )
    return _grid_cache[key]


def exp_runtime_table(system: int = 2, scale: float = DEFAULT_SCALE) -> str:
    """Tables 3/4: the full code × input runtime grid on one system."""
    sysspec = SYSTEM1 if system == 1 else SYSTEM2
    grid = _runtime_grid(sysspec, scale)
    return (
        f"{sysspec.name} computation times in seconds (modeled)\n\n"
        + render_runtime_table(grid, _system_codes(sysspec))
    )


def exp_throughput_figure(system: int = 2, scale: float = DEFAULT_SCALE) -> str:
    """Figures 3/4: throughput in Medges/s on one system."""
    sysspec = SYSTEM1 if system == 1 else SYSTEM2
    grid = _runtime_grid(sysspec, scale)
    return render_throughput_figure(
        grid,
        _system_codes(sysspec),
        title=f"{sysspec.name} throughput (millions of edges per second)",
    )


def exp_deopt(
    scale: float = DEFAULT_SCALE, *, as_figure: bool = False
) -> str:
    """Table 5 / Figure 5: the cumulative de-optimization study.

    Runs on System 2 (the faster GPU), MST inputs only, exactly as the
    paper does.
    """
    graphs = build_suite(scale)
    # The paper's Table 5 uses the 9 single-component inputs.
    input_names = tuple(
        n for n in graphs if suite_mod.SUITE[n].single_component
    )
    times: dict[tuple[str, str], float] = {}
    tputs: dict[tuple[str, str], float] = {}
    for stage_name, cfg in deopt_stages():
        for gname in input_names:
            g = graphs[gname]
            r = ecl_mst(g, cfg, gpu=SYSTEM2.gpu)
            times[(stage_name, gname)] = r.modeled_seconds
            tputs[(stage_name, gname)] = r.throughput_meps()
    if not as_figure:
        return (
            "Table 5: ECL-MST computation times in seconds when gradually "
            "removing performance optimizations (System 2, modeled)\n\n"
            + render_deopt_table(DEOPT_STAGE_NAMES, times, input_names)
        )
    # Figure 5: throughputs per stage per input (CSV).
    lines = ["input," + ",".join(DEOPT_STAGE_NAMES)]
    for gname in input_names:
        lines.append(
            f"{gname},"
            + ",".join(f"{tputs[(s, gname)]:.1f}" for s in DEOPT_STAGE_NAMES)
        )
    return "\n".join(lines)


def exp_seed_variability(
    scale: float = DEFAULT_SCALE, *, seeds: int = 99
) -> str:
    """Figure 6: throughput across random filter-sampling seeds."""
    graphs = build_suite(scale)
    stats: dict[str, BoxStats] = {}
    for name, g in graphs.items():
        stats[name], _ = seed_sweep(g, seeds=seeds, gpu=SYSTEM2.gpu)
    return render_seed_figure(stats)


def exp_filter_accuracy(scale: float = DEFAULT_SCALE) -> str:
    """Figure 7: realized vs target filter cut (filtered inputs only)."""
    series = filter_accuracy_series(build_suite(scale))
    return render_filter_accuracy_figure(series)


def exp_kernel_profile(scale: float = DEFAULT_SCALE) -> str:
    """Section 5.1 profiling claims: per-kernel time split and launch
    counts (init ≈ 40%, kernel 1 ≈ 35%, kernels 2/3 ≈ 12% each; between
    4 and 15 computation rounds depending on input)."""
    graphs = build_suite(scale)
    lines = [
        "input,init_pct,k1_pct,k2_pct,k3_pct,k1_launches,rounds",
    ]
    for name, g in graphs.items():
        r = ecl_mst(g, EclMstConfig(), gpu=SYSTEM2.gpu)
        by_kernel = r.counters.seconds_by_kernel()
        total = r.modeled_seconds
        pct = lambda k: 100.0 * by_kernel.get(k, 0.0) / total  # noqa: E731
        lines.append(
            f"{name},{pct('init'):.1f},{pct('k1_reserve'):.1f},"
            f"{pct('k2_union'):.1f},{pct('k3_reset'):.1f},"
            f"{r.counters.launches_of('k1_reserve')},{r.rounds}"
        )
    return "\n".join(lines)


def exp_degree_correlation(scale: float = DEFAULT_SCALE) -> str:
    """Section 5.2 claim: "ECL-MST's throughput [correlates] with the
    average degree ... disqualifying an edge from the MST is faster
    than including an edge."  Computes the per-input throughput vs
    average degree and their Pearson correlation."""
    import numpy as np

    graphs = build_suite(scale)
    lines = ["input,avg_degree,throughput_meps"]
    degs, tputs = [], []
    for name, g in graphs.items():
        r = ecl_mst(g, EclMstConfig(), gpu=SYSTEM2.gpu)
        davg = g.num_directed_edges / max(1, g.num_vertices)
        t = r.throughput_meps()
        degs.append(davg)
        tputs.append(t)
        lines.append(f"{name},{davg:.1f},{t:.1f}")
    corr = float(np.corrcoef(degs, tputs)[0, 1])
    lines.append(f"pearson_correlation,,{corr:.3f}")
    return "\n".join(lines)


@dataclass(frozen=True)
class Experiment:
    """CLI binding of one paper artifact."""

    key: str
    description: str
    run: callable


EXPERIMENTS: dict[str, Experiment] = {
    "table2": Experiment("table2", "Input inventory (Table 2)", exp_table2),
    "table3": Experiment(
        "table3",
        "System 1 runtimes (Table 3)",
        lambda scale=DEFAULT_SCALE: exp_runtime_table(1, scale),
    ),
    "table4": Experiment(
        "table4",
        "System 2 runtimes (Table 4)",
        lambda scale=DEFAULT_SCALE: exp_runtime_table(2, scale),
    ),
    "table5": Experiment(
        "table5", "De-optimization runtimes (Table 5)", exp_deopt
    ),
    "fig3": Experiment(
        "fig3",
        "System 1 throughput (Figure 3)",
        lambda scale=DEFAULT_SCALE: exp_throughput_figure(1, scale),
    ),
    "fig4": Experiment(
        "fig4",
        "System 2 throughput (Figure 4)",
        lambda scale=DEFAULT_SCALE: exp_throughput_figure(2, scale),
    ),
    "fig5": Experiment(
        "fig5",
        "De-optimization throughput (Figure 5)",
        lambda scale=DEFAULT_SCALE: exp_deopt(scale, as_figure=True),
    ),
    "fig6": Experiment(
        "fig6", "Seed variability (Figure 6)", exp_seed_variability
    ),
    "fig7": Experiment(
        "fig7", "Filter-threshold accuracy (Figure 7)", exp_filter_accuracy
    ),
    "profile": Experiment(
        "profile", "Per-kernel time split (Section 5.1)", exp_kernel_profile
    ),
    "degcorr": Experiment(
        "degcorr",
        "Throughput vs average degree (Section 5.2)",
        exp_degree_correlation,
    ),
}
