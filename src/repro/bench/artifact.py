"""Artifact-style experiment workflow (paper Appendix).

The SC'23 artifact is organized as: ``set_up.sh`` downloads and
converts the 17 inputs and builds all codes; ``run_all_compare.sh``
runs every code on every input and writes ``[code]_out.csv`` files;
``run_all_deoptimize.sh`` writes ``ecl_mst_[deopts]_out.csv``; the
``generate_*_tables.py`` scripts turn the CSVs into the paper's tables.

This module reproduces that workflow against the synthetic suite:

* :func:`set_up` — materialize the suite as ECL binary files;
* :func:`run_all_compare` — per-code CSVs of (input, runtime, throughput);
* :func:`run_all_deoptimize` — the de-optimization CSV;
* :func:`generate_compare_tables` / :func:`generate_deopt_tables` —
  re-derive the runtime tables *from the CSVs*, so the data path
  matches the artifact's.
"""

from __future__ import annotations

import csv
import io
import os
from pathlib import Path

from ..baselines.registry import TABLE_CODES, get_runner
from ..core.config import DEOPT_STAGE_NAMES, deopt_stages
from ..core.eclmst import ecl_mst
from ..baselines.errors import NotConnectedError
from ..graph.io import save_ecl
from ..generators import suite as suite_mod
from .harness import SYSTEM2, SystemSpec, geomean

__all__ = [
    "set_up",
    "run_all_compare",
    "run_all_deoptimize",
    "generate_compare_tables",
    "generate_deopt_tables",
]


def _code_slug(code: str) -> str:
    return code.lower().replace(" ", "_").replace("-", "_").replace(".", "")


def set_up(
    directory: str | os.PathLike, *, scale: float = 1.0, seed: int = 0
) -> dict[str, Path]:
    """Materialize the 17 inputs as ECL binary files (like ``set_up.sh``)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: dict[str, Path] = {}
    for name, spec in suite_mod.SUITE.items():
        g = spec.build(scale, seed)
        path = directory / f"{name}.ecl"
        save_ecl(g, path)
        paths[name] = path
    return paths


def run_all_compare(
    directory: str | os.PathLike,
    *,
    system: SystemSpec = SYSTEM2,
    scale: float = 1.0,
    codes: tuple[str, ...] = TABLE_CODES,
    repetitions: int = 1,
) -> dict[str, Path]:
    """Run every code on every input; one ``[code]_out.csv`` per code.

    CSV columns: input, seconds (median of ``repetitions``, or "NC"),
    throughput_meps, mst_edges, total_weight.
    """
    import statistics

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    graphs = suite_mod.build_all(scale=scale)
    out: dict[str, Path] = {}
    for code in codes:
        runner = get_runner(code)
        path = directory / f"{_code_slug(code)}_out.csv"
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(
                ["input", "seconds", "throughput_meps", "mst_edges", "total_weight"]
            )
            for name, g in graphs.items():
                try:
                    times = []
                    result = None
                    for _ in range(max(1, repetitions)):
                        result = runner.run(g, gpu=system.gpu, cpu=system.cpu)
                        times.append(result.modeled_seconds)
                    t = statistics.median(times)
                    writer.writerow(
                        [
                            name,
                            f"{t:.9f}",
                            f"{g.num_directed_edges / t / 1e6:.3f}",
                            result.num_mst_edges,
                            result.total_weight,
                        ]
                    )
                except NotConnectedError:
                    writer.writerow([name, "NC", "NC", "NC", "NC"])
        out[code] = path
    return out


def run_all_deoptimize(
    directory: str | os.PathLike,
    *,
    system: SystemSpec = SYSTEM2,
    scale: float = 1.0,
) -> Path:
    """The de-optimization sweep CSV (``ecl_mst_deopts_out.csv``)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    graphs = suite_mod.build_all(scale=scale)
    inputs = [n for n in graphs if suite_mod.SUITE[n].single_component]
    path = directory / "ecl_mst_deopts_out.csv"
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["input", *DEOPT_STAGE_NAMES])
        for name in inputs:
            row = [name]
            for _, cfg in deopt_stages():
                r = ecl_mst(graphs[name], cfg, gpu=system.gpu)
                row.append(f"{r.modeled_seconds:.9f}")
            writer.writerow(row)
    return path


def _read_csv(path: Path) -> list[dict]:
    with open(path, newline="") as f:
        return list(csv.DictReader(f))


def generate_compare_tables(directory: str | os.PathLike) -> str:
    """Rebuild the runtime table from the ``*_out.csv`` files."""
    directory = Path(directory)
    files = sorted(directory.glob("*_out.csv"))
    files = [p for p in files if p.name != "ecl_mst_deopts_out.csv"]
    if not files:
        raise FileNotFoundError(f"no *_out.csv files in {directory}")
    columns: dict[str, dict[str, str]] = {}
    inputs: list[str] = []
    for path in files:
        code = path.stem[: -len("_out")]
        rows = _read_csv(path)
        columns[code] = {r["input"]: r["seconds"] for r in rows}
        if not inputs:
            inputs = [r["input"] for r in rows]

    buf = io.StringIO()
    codes = list(columns)
    header = ["input", *codes]
    buf.write(",".join(header) + "\n")
    for name in inputs:
        buf.write(
            ",".join([name, *(columns[c].get(name, "?") for c in codes)]) + "\n"
        )
    # Geomean rows like the paper's tables.
    for label, predicate in (
        ("MSF GeoMean", lambda n: True),
        (
            "MST GeoMean",
            lambda n: suite_mod.SUITE[n].single_component
            if n in suite_mod.SUITE
            else True,
        ),
    ):
        cells = [label]
        for c in codes:
            vals = [
                columns[c][n] for n in inputs if predicate(n) and n in columns[c]
            ]
            if any(v == "NC" for v in vals) or not vals:
                cells.append("NC")
            else:
                cells.append(f"{geomean([float(v) for v in vals]):.9f}")
        buf.write(",".join(cells) + "\n")
    return buf.getvalue()


def generate_deopt_tables(directory: str | os.PathLike) -> str:
    """Rebuild Table 5 (plus the geomean row) from the deopt CSV."""
    path = Path(directory) / "ecl_mst_deopts_out.csv"
    rows = _read_csv(path)
    if not rows:
        raise FileNotFoundError(f"empty or missing {path}")
    stages = [k for k in rows[0] if k != "input"]
    buf = io.StringIO()
    buf.write(",".join(["input", *stages]) + "\n")
    for r in rows:
        buf.write(",".join([r["input"], *(r[s] for s in stages)]) + "\n")
    gm = ["MST GeoMean"]
    for s in stages:
        gm.append(f"{geomean([float(r[s]) for r in rows]):.9f}")
    buf.write(",".join(gm) + "\n")
    return buf.getvalue()
