"""Text renderers for the paper's tables.

Each function returns the table as a string (and the underlying rows
for programmatic use), formatted like the paper: runtimes in seconds
with four decimals, "NC" cells, and the two geometric-mean rows.
"""

from __future__ import annotations

from ..generators import suite as suite_mod
from ..graph.properties import graph_info
from .harness import GridResult, geomean

__all__ = [
    "render_table2",
    "render_runtime_table",
    "render_deopt_table",
    "format_seconds",
]


def format_seconds(value: float | None) -> str:
    if value is None:
        return "NC"
    return f"{value:.4f}"


def _render_grid(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt(cells: list[str]) -> str:
        return "  ".join(c.rjust(w) if i else c.ljust(w) for i, (c, w) in enumerate(zip(cells, widths)))

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def render_table2(graphs: dict) -> str:
    """Table 2: input inventory (edges, vertices, type, CCs, degrees)."""
    headers = ["Graph Name", "Edges", "Vertices", "Type", "CCs", "d-avg", "d-max"]
    rows = []
    for name, g in graphs.items():
        kind = (
            suite_mod.SUITE[name].kind if name in suite_mod.SUITE else "custom"
        )
        info = graph_info(g, kind)
        rows.append(
            [
                info.name,
                f"{info.num_edges:,}",
                f"{info.num_vertices:,}",
                info.kind,
                f"{info.num_components:,}",
                f"{info.avg_degree:.1f}",
                f"{info.max_degree:,}",
            ]
        )
    return _render_grid(headers, rows)


def render_runtime_table(
    grid: GridResult,
    codes: tuple[str, ...],
    *,
    include_memcpy_column: bool = True,
) -> str:
    """Tables 3/4: computation times in seconds per code per input.

    The "ECL-MST memcpy" column (computation + host↔device transfers)
    is derived from the ECL-MST cells, exactly as in the paper.
    """
    mst_names = {
        n for n in grid.graphs if suite_mod.SUITE.get(n) and suite_mod.SUITE[n].single_component
    }
    headers = ["Input"]
    for code in codes:
        headers.append(code)
        if code == "ECL-MST" and include_memcpy_column:
            headers.append("ECL-MST memcpy")

    rows = []
    for name in grid.graphs:
        row = [name]
        for code in codes:
            cell = grid.cell(code, name)
            row.append(format_seconds(cell.seconds))
            if code == "ECL-MST" and include_memcpy_column:
                mem = (
                    None
                    if cell.seconds is None
                    else cell.seconds + cell.memcpy_seconds
                )
                row.append(format_seconds(mem))
        rows.append(row)

    for label, subset in (("MSF GeoMean", None), ("MST GeoMean", mst_names)):
        row = [label]
        for code in codes:
            gm = grid.geomean_seconds(code, mst_only_names=subset)
            row.append(format_seconds(gm))
            if code == "ECL-MST" and include_memcpy_column:
                cells = grid.column(code)
                if subset is not None:
                    cells = [c for c in cells if c.graph_name in subset]
                vals = [
                    c.seconds + c.memcpy_seconds
                    for c in cells
                    if c.seconds is not None
                ]
                row.append(
                    format_seconds(geomean(vals))
                    if len(vals) == len(cells)
                    else "NC"
                )
        rows.append(row)
    return _render_grid(headers, rows)


def render_deopt_table(
    stage_names: tuple[str, ...],
    times: dict[tuple[str, str], float],
    input_names: tuple[str, ...],
) -> str:
    """Table 5: per-stage runtimes on the MST inputs + geomean row.

    ``times[(stage, input)]`` holds modeled seconds.
    """
    headers = ["Input", *stage_names]
    rows = []
    for name in input_names:
        rows.append(
            [name, *(format_seconds(times[(s, name)]) for s in stage_names)]
        )
    gm_row = ["MST GeoMean"]
    for s in stage_names:
        gm_row.append(
            format_seconds(geomean([times[(s, n)] for n in input_names]))
        )
    rows.append(gm_row)
    return _render_grid(headers, rows)
