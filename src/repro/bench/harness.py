"""Experiment harness: run code × input grids and aggregate like the paper.

The paper's protocol (Section 4): median of 9 repetitions, computation
time only (transfers excluded, with a separate "memcpy" row for
ECL-MST), "NC" for MST-only codes on multi-component inputs, and two
geometric means — over all inputs (MSF) and over the single-component
inputs (MST) so the MST-only codes can be compared fairly.

Modeled times are deterministic, so the default repetition count is 1;
pass ``repetitions=9`` to reproduce the exact protocol (the median of
identical values is that value — the knob matters only when callers
time real wall-clock execution via ``measure="wall"``).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

from ..baselines.errors import NotConnectedError
from ..baselines.registry import Runner, get_runner
from ..core.result import MstResult
from ..graph.csr import CSRGraph
from ..obs.trace import NULL_TRACER
from ..gpusim.spec import (
    CPUSpec,
    GPUSpec,
    RTX_3080_TI,
    THREADRIPPER_2950X,
    TITAN_V,
    XEON_GOLD_6226R_X2,
)

__all__ = ["SystemSpec", "SYSTEM1", "SYSTEM2", "Cell", "GridResult", "run_grid", "geomean"]


@dataclass(frozen=True)
class SystemSpec:
    """One of the paper's two test systems."""

    name: str
    gpu: GPUSpec
    cpu: CPUSpec


SYSTEM1 = SystemSpec("System 1 (Titan V + TR 2950X)", TITAN_V, THREADRIPPER_2950X)
SYSTEM2 = SystemSpec("System 2 (RTX 3080 Ti + 2x Xeon)", RTX_3080_TI, XEON_GOLD_6226R_X2)


@dataclass
class Cell:
    """One (code, input) measurement."""

    code: str
    graph_name: str
    seconds: float | None  # None -> NC
    memcpy_seconds: float = 0.0
    wall_seconds: float = 0.0
    result: MstResult | None = None

    @property
    def is_nc(self) -> bool:
        return self.seconds is None

    def throughput_meps(self, directed_edges: int) -> float | None:
        """Millions of edges per second (Figures 3/4 units)."""
        if self.seconds is None or self.seconds <= 0:
            return None
        return directed_edges / self.seconds / 1e6


@dataclass
class GridResult:
    """All cells of one experiment grid, plus the input graphs."""

    system: SystemSpec
    graphs: dict[str, CSRGraph]
    cells: dict[tuple[str, str], Cell] = field(default_factory=dict)

    def cell(self, code: str, graph_name: str) -> Cell:
        return self.cells[(code, graph_name)]

    def column(self, code: str) -> list[Cell]:
        return [self.cells[(code, g)] for g in self.graphs]

    def geomean_seconds(self, code: str, *, mst_only_names: set[str] | None = None) -> float | None:
        """Geometric mean runtime of a code over (a subset of) inputs.

        ``mst_only_names``: restrict to the single-component inputs
        (the "MST GeoMean" rows); ``None`` uses every input the code
        could run (the "MSF GeoMean" rows — NC anywhere means no MSF
        geomean for that code, as in the paper).
        """
        cells = self.column(code)
        if mst_only_names is not None:
            cells = [c for c in cells if c.graph_name in mst_only_names]
        vals = [c.seconds for c in cells]
        if any(v is None for v in vals):
            return None
        return geomean([v for v in vals if v is not None])


def geomean(values: list[float]) -> float:
    """Geometric mean (values must be positive)."""
    if not values:
        raise ValueError("geomean of empty sequence")
    return statistics.geometric_mean(values)


def run_cell(
    runner: Runner,
    graph: CSRGraph,
    system: SystemSpec,
    *,
    repetitions: int = 1,
    verify: bool = False,
    tracer=None,
) -> Cell:
    """Run one code on one input; returns an NC cell when unsupported.

    ``tracer``: optional :class:`~repro.obs.trace.Tracer`.  The cell is
    wrapped in a ``cell`` span (code, input, system, outcome) and the
    tracer is forwarded to instrumented runners, which nest their own
    ``run > phase > round > kernel`` spans beneath it.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    times: list[float] = []
    walls: list[float] = []
    result: MstResult | None = None
    with tracer.span(
        f"{runner.name} on {graph.name}",
        kind="cell",
        code=runner.name,
        graph=graph.name,
        system=system.name,
    ):
        try:
            for _ in range(max(1, repetitions)):
                t0 = time.perf_counter()
                result = runner.run(
                    graph,
                    gpu=system.gpu,
                    cpu=system.cpu,
                    tracer=tracer if tracer.enabled else None,
                )
                walls.append(time.perf_counter() - t0)
                times.append(result.modeled_seconds)
        except NotConnectedError:
            tracer.annotate(outcome="NC")
            return Cell(runner.name, graph.name, seconds=None)
        tracer.annotate(
            outcome="ok", modeled_seconds=statistics.median(times)
        )
    if verify and result is not None:
        from ..core.verify import verify_mst

        verify_mst(result)
    assert result is not None
    return Cell(
        code=runner.name,
        graph_name=graph.name,
        seconds=statistics.median(times),
        memcpy_seconds=result.memcpy_seconds,
        wall_seconds=statistics.median(walls),
        result=result,
    )


def run_grid(
    codes: tuple[str, ...],
    graphs: dict[str, CSRGraph],
    system: SystemSpec,
    *,
    repetitions: int = 1,
    verify: bool = False,
    tracer=None,
) -> GridResult:
    """Run every code on every input on the given system."""
    grid = GridResult(system=system, graphs=graphs)
    for code in codes:
        runner = get_runner(code)
        for name, graph in graphs.items():
            grid.cells[(code, name)] = run_cell(
                runner,
                graph,
                system,
                repetitions=repetitions,
                verify=verify,
                tracer=tracer,
            )
    return grid
