"""ECL-MST-CPU — the paper's algorithm ported to the CPU model.

The conclusion hopes the work will "inspire other researchers to
devise faster and more parallel GPU *and CPU* implementations"; this
module is that future-work variant: the exact ECL-MST round structure
(worklist of surviving edges, guarded min-reservations, deterministic
commits, implicit path compression, one-shot filtering) executed as
OpenMP-style parallel loops and priced on the CPU model.

It shares no code path with :mod:`repro.core.eclmst` on purpose — it
serves as an independent second implementation of the algorithm, which
the test suite cross-checks edge-for-edge against the GPU version.
"""

from __future__ import annotations

import numpy as np

from ..core.config import EclMstConfig
from ..core.filtering import plan_filtering
from ..core.result import MstResult
from ..dsu.vectorized import find_many
from ..graph.csr import CSRGraph
from ..gpusim.atomics import KEY_INFINITY, pack_keys
from ..gpusim.costmodel import CpuMachine
from ..gpusim.spec import CPUSpec, XEON_GOLD_6226R_X2

__all__ = ["ecl_mst_cpu"]

_EDGE_OPS = 18.0  # per worklist entry per round
_FIND_LOAD_OPS = 14.0
_COMMIT_OPS = 40.0
_POPULATE_OPS = 8.0


def _phase(
    machine: CpuMachine,
    parent: np.ndarray,
    min_edge: np.ndarray,
    in_mst: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    eid: np.ndarray,
) -> int:
    """One ECL phase: iterate reservation rounds until the worklist
    drains.  Returns the number of rounds."""
    rounds = 0
    while u.size:
        rounds += 1
        p, loads_p = find_many(parent, u)
        q, loads_q = find_many(parent, v)
        cross = p != q
        p, q = p[cross], q[cross]
        u, v, w, eid = u[cross], v[cross], w[cross], eid[cross]
        keys = pack_keys(w, eid)
        np.minimum.at(min_edge, p, keys)
        np.minimum.at(min_edge, q, keys)
        win = (keys == min_edge[p]) | (keys == min_edge[q])
        commits = 0
        for i in np.flatnonzero(win):
            a, b = int(p[i]), int(q[i])
            while parent[a] != a:
                a = int(parent[a])
            while parent[b] != b:
                b = int(parent[b])
            if a != b:
                parent[max(a, b)] = min(a, b)
                in_mst[eid[i]] = True
                commits += 1
        min_edge[p] = KEY_INFINITY
        min_edge[q] = KEY_INFINITY
        # Implicit path compression: carry representatives forward.
        u, v = p, q
        machine.phase(
            "round",
            ops=_EDGE_OPS * u.size
            + _FIND_LOAD_OPS * (loads_p + loads_q)
            + _COMMIT_OPS * commits,
            bytes_=28.0 * u.size,
            items=int(u.size),
            syncs=3,  # reserve / commit / reset barriers
        )
    return rounds


def ecl_mst_cpu(
    graph: CSRGraph,
    config: EclMstConfig | None = None,
    *,
    cpu: CPUSpec = XEON_GOLD_6226R_X2,
    threads: int = 0,
) -> MstResult:
    """Compute the MSF with the ECL-MST algorithm on the CPU model."""
    config = config or EclMstConfig()
    machine = CpuMachine(cpu, threads)
    n = graph.num_vertices
    parent = np.arange(n, dtype=np.int64)
    min_edge = np.full(n, KEY_INFINITY, dtype=np.uint64)
    in_mst = np.zeros(graph.num_edges, dtype=bool)

    u, v, w, eid = graph.undirected_edges()
    plan = plan_filtering(graph, config)
    machine.phase(
        "populate",
        ops=_POPULATE_OPS * graph.num_directed_edges,
        bytes_=9.0 * graph.num_directed_edges,
        items=graph.num_directed_edges,
        syncs=1,
    )

    rounds = 0
    if plan.active:
        light = w < plan.threshold
        rounds += _phase(
            machine, parent, min_edge, in_mst,
            u[light].astype(np.int64), v[light].astype(np.int64),
            w[light].astype(np.int64), eid[light].astype(np.int64),
        )
        heavy = ~light
        hu, hv = u[heavy].astype(np.int64), v[heavy].astype(np.int64)
        # Filter: rewrite to representatives, drop internal edges.
        p, lp = find_many(parent, hu)
        q, lq = find_many(parent, hv)
        keep = p != q
        machine.phase(
            "filter",
            ops=_FIND_LOAD_OPS * (lp + lq) + 6.0 * hu.size,
            bytes_=16.0 * hu.size,
            items=int(hu.size),
            syncs=1,
        )
        rounds += _phase(
            machine, parent, min_edge, in_mst,
            p[keep], q[keep],
            w[heavy][keep].astype(np.int64), eid[heavy][keep].astype(np.int64),
        )
    else:
        rounds += _phase(
            machine, parent, min_edge, in_mst,
            u.astype(np.int64), v.astype(np.int64),
            w.astype(np.int64), eid.astype(np.int64),
        )

    table = np.zeros(graph.num_edges, dtype=np.int64)
    table[graph.edge_ids] = graph.weights
    total = int(table[in_mst].sum()) if in_mst.any() else 0
    return MstResult(
        graph=graph,
        in_mst=in_mst,
        total_weight=total,
        num_mst_edges=int(np.count_nonzero(in_mst)),
        rounds=rounds,
        modeled_seconds=machine.elapsed_seconds,
        counters=machine.counters,
        algorithm="ecl-mst-cpu",
        extra={"filter_plan": plan},
    )
