"""PBBS parallel MST (Blelloch et al., "Internally deterministic
parallel algorithms can be fast", PPoPP'12).

The strategy ECL-MST's parallelization converged to (Section 3.1), on
the CPU: sample ``|E| / sqrt(|E|)`` edge weights to approximate the
``k``-th smallest with ``k = min(|V|, 5|E|/4)``, sort only that light
chunk, and execute Kruskal's iterations out of order with
**deterministic reservations** — within a block of the sorted prefix,
an edge commits only when it holds the minimum reservation (here: the
lowest index, which in a sorted block equals the lightest key) of both
endpoint components.  If the forest is incomplete, the heavy remainder
is filtered (cycle edges dropped) and processed the same way.
"""

from __future__ import annotations

import numpy as np

from ..core.result import MstResult
from ..dsu.vectorized import find_many
from ..graph.csr import CSRGraph
from ..gpusim.atomics import KEY_INFINITY, pack_keys
from ..gpusim.costmodel import CpuMachine
from ..gpusim.spec import CPUSpec, XEON_GOLD_6226R_X2

__all__ = ["pbbs_parallel_mst"]

_SORT_CMP_OPS = 45.0
_RESERVE_EDGE_OPS = 45.0  # per edge per reservation round
_FIND_LOAD_OPS = 30.0  # parallel finds hit cache better than serial scan
_COMMIT_OPS = 75.0
_FILTER_EDGE_OPS = 30.0
_SAMPLE_OPS = 12.0


def _reserve_and_commit(
    machine: CpuMachine,
    parent: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    eid: np.ndarray,
    keys: np.ndarray,
    in_mst: np.ndarray,
    block_size: int,
) -> int:
    """Process a sorted chunk block-by-block with deterministic
    reservations; returns the number of rounds (parallel steps)."""
    n = parent.size
    reservation = np.full(n, KEY_INFINITY, dtype=np.uint64)
    rounds = 0
    start = 0
    while start < u.size:
        stop = min(start + block_size, u.size)
        live = np.arange(start, stop, dtype=np.int64)
        while live.size:
            rounds += 1
            p, loads_p = find_many(parent, u[live])
            q, loads_q = find_many(parent, v[live])
            cross = p != q
            live, p, q = live[cross], p[cross], q[cross]
            k = keys[live]
            # Reserve: lowest key wins each endpoint component.
            touched = np.unique(np.concatenate([p, q]))
            np.minimum.at(reservation, p, k)
            np.minimum.at(reservation, q, k)
            win = (k == reservation[p]) | (k == reservation[q])
            # Commit winners sequentially (they are acyclic).
            for i in np.flatnonzero(win):
                a, b = int(p[i]), int(q[i])
                while parent[a] != a:
                    a = int(parent[a])
                while parent[b] != b:
                    b = int(parent[b])
                if a != b:
                    parent[max(a, b)] = min(a, b)
                    in_mst[eid[live[i]]] = True
            reservation[touched] = KEY_INFINITY
            machine.phase(
                "reserve_commit",
                ops=_RESERVE_EDGE_OPS * live.size
                + _FIND_LOAD_OPS * (loads_p + loads_q)
                + _COMMIT_OPS * int(np.count_nonzero(win)),
                bytes_=24.0 * live.size,
                items=int(live.size),
                syncs=1,
            )
            live = live[~win]
        start = stop
    return rounds


def pbbs_parallel_mst(
    graph: CSRGraph,
    *,
    cpu: CPUSpec = XEON_GOLD_6226R_X2,
    threads: int = 0,
    block_size: int | None = None,
) -> MstResult:
    """Compute the MSF with the PBBS strategy on the CPU model."""
    machine = CpuMachine(cpu, threads)
    u, v, w, eid = graph.undirected_edges()
    m = u.size
    n = graph.num_vertices
    in_mst = np.zeros(graph.num_edges, dtype=bool)
    parent = np.arange(n, dtype=np.int64)
    if m == 0:
        return _finish(graph, in_mst, machine, 0)
    keys = pack_keys(w, eid)
    if block_size is None:
        block_size = max(256, n // 8)

    # Sample-estimate the k-th smallest key, k = min(|V|, 5|E|/4).
    k_target = min(n, (5 * m) // 4)
    rng = np.random.default_rng(0)
    n_samples = max(1, int(np.sqrt(m)))
    sample = np.sort(keys[rng.integers(0, m, size=n_samples)])
    q_idx = min(n_samples - 1, int(np.ceil(k_target / m * n_samples)))
    threshold = sample[q_idx]
    machine.phase(
        "sample", ops=_SAMPLE_OPS * n_samples, bytes_=8.0 * n_samples, items=n_samples, syncs=1
    )

    light = np.flatnonzero(keys <= threshold)
    heavy = np.flatnonzero(keys > threshold)
    machine.phase(
        "partition", ops=4.0 * m, bytes_=8.0 * m, items=m, syncs=1
    )

    rounds = 0
    order = light[np.argsort(keys[light], kind="stable")]
    machine.phase(
        "sort_light",
        ops=_SORT_CMP_OPS * order.size * max(1.0, np.log2(max(order.size, 2))),
        bytes_=24.0 * order.size,
        items=int(order.size),
        syncs=1,
    )
    rounds += _reserve_and_commit(
        machine, parent, u[order], v[order], eid[order], keys[order], in_mst, block_size
    )

    if heavy.size:
        # Filter the heavy remainder (parallel cycle checks), then sort
        # and process what survives.
        p, lp = find_many(parent, u[heavy])
        q, lq = find_many(parent, v[heavy])
        keep = heavy[p != q]
        machine.phase(
            "filter",
            ops=_FILTER_EDGE_OPS * heavy.size + _FIND_LOAD_OPS * (lp + lq),
            bytes_=16.0 * heavy.size,
            items=int(heavy.size),
            syncs=1,
        )
        if keep.size:
            order = keep[np.argsort(keys[keep], kind="stable")]
            machine.phase(
                "sort_heavy",
                ops=_SORT_CMP_OPS * order.size * max(1.0, np.log2(max(order.size, 2))),
                bytes_=24.0 * order.size,
                items=int(order.size),
                syncs=1,
            )
            rounds += _reserve_and_commit(
                machine,
                parent,
                u[order],
                v[order],
                eid[order],
                keys[order],
                in_mst,
                block_size,
            )

    return _finish(graph, in_mst, machine, rounds)


def _finish(graph: CSRGraph, in_mst, machine, rounds) -> MstResult:
    table = np.zeros(graph.num_edges, dtype=np.int64)
    table[graph.edge_ids] = graph.weights
    total = int(table[in_mst].sum()) if in_mst.any() else 0
    return MstResult(
        graph=graph,
        in_mst=in_mst,
        total_weight=total,
        num_mst_edges=int(np.count_nonzero(in_mst)),
        rounds=rounds,
        modeled_seconds=machine.elapsed_seconds,
        counters=machine.counters,
        algorithm="pbbs-parallel",
    )
