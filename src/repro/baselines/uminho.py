"""UMinho baselines (Sousa, Mariano & Proença, PDP'15) — GPU and CPU.

A *true* implementation of Borůvka's algorithm: every round finds the
minimum edge of each vertex, removes the mirrored picks, merges
vertices into supervertices via color propagation, and **builds a new
edge array for the contracted graph**.  Contraction pays off on
uniform, low-degree inputs — the live edge set shrinks geometrically,
which is why UMinho GPU is the best baseline on the road maps in
Tables 3/4 — but the rebuild traffic and hub-dominated color
propagation make it the slowest GPU code on scale-free graphs
(11.6 s on soc-LiveJournal1 vs. ECL-MST's 0.035 s).

The CPU variant runs the identical algorithm priced on the CPU model
with OpenMP-style parallel loops.
"""

from __future__ import annotations

import numpy as np

from ..core.result import MstResult
from ..graph.csr import CSRGraph
from ..gpusim.costmodel import CpuMachine, Device
from ..gpusim.spec import CPUSpec, GPUSpec, RTX_3080_TI, XEON_GOLD_6226R_X2
from ..gpusim.warp import thread_mode_cycles
from ._boruvka_common import boruvka_round

__all__ = ["uminho_gpu_mst", "uminho_cpu_mst"]

_NEIGHBOR_CYCLES = 7.0
_VERTEX_CYCLES = 8.0
_REBUILD_CYCLES = 6.0  # relabel + compact per surviving slot
_PROP_VERTEX_CYCLES = 3.0

# CPU pricing (ops are cycles on the CpuMachine model).
_CPU_EDGE_OPS = 70.0  # scan + compare per directed slot (cache misses)
_CPU_REBUILD_OPS = 60.0
_CPU_PROP_OPS = 25.0


def _contract_boruvka(graph: CSRGraph, charge) -> tuple[np.ndarray, int]:
    """Shared semantics: contraction Borůvka.

    ``charge(round_data)`` receives per-round counts and prices them on
    the caller's machine model.  Returns ``(in_mst mask, rounds)``.
    """
    n = graph.num_vertices
    src = graph.edge_sources().astype(np.int64)
    dst = graph.col_idx.astype(np.int64)
    w = graph.weights.astype(np.int64)
    eid = graph.edge_ids.astype(np.int64)

    comp = np.arange(n, dtype=np.int64)
    in_mst = np.zeros(graph.num_edges, dtype=bool)
    # Live (contracted) edge array; endpoints are supervertex labels.
    live_src, live_dst, live_w, live_eid = src, dst, w, eid
    # Per-supervertex degree of the live graph drives the vertex-centric
    # min-edge kernel's imbalance.
    rounds = 0

    while live_src.size:
        rounds += 1
        rnd = boruvka_round(live_src, live_dst, live_w, live_eid, comp)
        in_mst[rnd.winner_eids] = True
        scanned = int(live_src.size)

        # Contraction: relabel endpoints to new supervertices and drop
        # internal edges (the mirrored-pick removal falls out of the
        # winner dedup in boruvka_round).
        new_s = rnd.new_comp[live_src]
        new_d = rnd.new_comp[live_dst]
        cross = new_s != new_d
        survivors = int(np.count_nonzero(cross))
        sv_degrees = np.bincount(live_src, minlength=n)
        max_sv_degree = int(sv_degrees.max()) if scanned else 0

        charge(
            scanned=scanned,
            survivors=survivors,
            prop_iterations=rnd.prop_iterations,
            sv_degrees=sv_degrees,
            n=n,
            winners=int(rnd.winner_eids.size),
            contention=rnd.atomic_contention,
            max_sv_degree=max_sv_degree,
        )

        live_src, live_dst = new_s[cross], new_d[cross]
        live_w, live_eid = live_w[cross], live_eid[cross]
        comp = rnd.new_comp
        if rnd.cross_edges == 0:
            break
    return in_mst, rounds


def _result(graph: CSRGraph, in_mst: np.ndarray, rounds: int, seconds, counters, algo):
    table = np.zeros(graph.num_edges, dtype=np.int64)
    table[graph.edge_ids] = graph.weights
    total = int(table[in_mst].sum()) if in_mst.any() else 0
    return MstResult(
        graph=graph,
        in_mst=in_mst,
        total_weight=total,
        num_mst_edges=int(np.count_nonzero(in_mst)),
        rounds=rounds,
        modeled_seconds=seconds,
        counters=counters,
        algorithm=algo,
    )


def uminho_gpu_mst(graph: CSRGraph, *, gpu: GPUSpec = RTX_3080_TI) -> MstResult:
    """Contraction Borůvka on the GPU model (supports MSF)."""
    device = Device(gpu)

    def charge(*, scanned, survivors, prop_iterations, sv_degrees, n, winners, contention, max_sv_degree):
        # One thread owns one supervertex.  After contraction a hub
        # supervertex inherits *all* of its members' multi-edges, so
        # the owning thread's serial scan — and the atomicMin traffic
        # into that supervertex's slot — become the critical path on
        # dense/random inputs: the Table-3/4 signature of UMinho GPU
        # (great on road maps, worst-in-class on r4 / coPapersDBLP /
        # soc-LiveJournal1).
        device.launch(
            "find_min",
            items=scanned,
            cycles=thread_mode_cycles(sv_degrees, _NEIGHBOR_CYCLES)
            + n * _VERTEX_CYCLES,
            bytes_=26.0 * scanned + 8.0 * n,
            atomics=2 * scanned,
            atomic_max_contention=min(contention, max_sv_degree),
            critical_items=max_sv_degree,
        )
        device.launch(
            "remove_mirrors_mark",
            items=n,
            cycles=n * 4.0,
            bytes_=16.0 * n,
            atomics=winners,
        )
        for _ in range(prop_iterations):
            device.launch(
                "propagate_colors",
                items=n,
                cycles=n * _PROP_VERTEX_CYCLES,
                bytes_=8.0 * n,
            )
            device.host_sync()
        # The rebuild is a multi-pass pipeline (relabel, flag, prefix
        # sum, scatter) that reads the old arrays and writes fresh
        # vertex/edge arrays every round.
        device.launch(
            "contract_relabel_flag",
            items=scanned,
            cycles=scanned * _REBUILD_CYCLES,
            bytes_=24.0 * scanned,
        )
        device.launch(
            "contract_scan_scatter",
            items=scanned,
            cycles=scanned * _REBUILD_CYCLES,
            bytes_=16.0 * scanned + 24.0 * survivors,
            atomics=survivors,  # compaction slot allocation
        )
        device.host_sync()  # new edge count back to the host

    in_mst, rounds = _contract_boruvka(graph, charge)
    return _result(
        graph, in_mst, rounds, device.elapsed_seconds, device.counters, "uminho-gpu"
    )


def uminho_cpu_mst(
    graph: CSRGraph, *, cpu: CPUSpec = XEON_GOLD_6226R_X2, threads: int = 0
) -> MstResult:
    """The same contraction Borůvka priced on the parallel CPU model."""
    machine = CpuMachine(cpu, threads)

    def charge(*, scanned, survivors, prop_iterations, sv_degrees, n, winners, contention, max_sv_degree):
        machine.phase(
            "find_min",
            ops=scanned * _CPU_EDGE_OPS + n * 6.0,
            bytes_=12.0 * scanned,
            items=scanned,
            syncs=1,
        )
        machine.phase(
            "merge_propagate",
            ops=n * (4.0 + prop_iterations * _CPU_PROP_OPS),
            bytes_=8.0 * n * max(1, prop_iterations),
            items=n,
            syncs=1,
        )
        machine.phase(
            "contract_rebuild",
            ops=scanned * _CPU_REBUILD_OPS,
            bytes_=16.0 * (scanned + survivors),
            items=scanned,
            syncs=1,
        )

    in_mst, rounds = _contract_boruvka(graph, charge)
    return _result(
        graph, in_mst, rounds, machine.elapsed_seconds, machine.counters, "uminho-cpu"
    )
