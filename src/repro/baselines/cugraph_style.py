"""RAPIDS cuGraph-style baseline.

cuGraph's MST (built on RAFT) implements Borůvka with **color
propagation and supervertices** in a **vertex-centric,
topology-driven** fashion: every round rescans the full original edge
set — no worklist, no contraction — and then iterates color
propagation until the labels settle.  It supports MSF and ships two
weight precisions; most of the paper's inputs need the ``double``
variant (used in Table 4), with the ``float`` variant about 1.2×
faster thanks to halved weight traffic.
"""

from __future__ import annotations

import numpy as np

from ..core.result import MstResult
from ..graph.csr import CSRGraph
from ..gpusim.costmodel import Device
from ..gpusim.spec import GPUSpec, RTX_3080_TI
from ..gpusim.warp import thread_mode_cycles
from ..obs.trace import NULL_TRACER
from ._boruvka_common import boruvka_round, graph_flood_iterations

__all__ = ["cugraph_mst"]

_NEIGHBOR_CYCLES = 8.0  # color loads, weight compare, key build
_VERTEX_CYCLES = 8.0
_PROP_VERTEX_CYCLES = 3.0
_FRAMEWORK_LAUNCH_FACTOR = 3  # RAFT primitives decompose each logical
# step into multiple kernel launches (scan/reduce/transform pipelines)


def cugraph_mst(
    graph: CSRGraph,
    *,
    gpu: GPUSpec = RTX_3080_TI,
    precision: str = "double",
    tracer=None,
) -> MstResult:
    """Compute the MSF with the cuGraph-style strategy.

    ``precision`` selects the modeled weight width: ``"double"``
    (8-byte, the Table-4 configuration) or ``"float"`` (4-byte).
    """
    if precision not in ("double", "float"):
        raise ValueError("precision must be 'double' or 'float'")
    weight_bytes = 8.0 if precision == "double" else 4.0

    tracer = tracer if tracer is not None else NULL_TRACER
    device = Device(gpu, tracer=tracer)
    n = graph.num_vertices
    src = graph.edge_sources().astype(np.int64)
    dst = graph.col_idx.astype(np.int64)
    w = graph.weights.astype(np.int64)
    eid = graph.edge_ids.astype(np.int64)
    degrees = graph.degrees()
    dmax = int(degrees.max()) if degrees.size else 0
    m_slots = graph.num_directed_edges

    comp = np.arange(n, dtype=np.int64)
    in_mst = np.zeros(graph.num_edges, dtype=bool)
    rounds = 0

    with tracer.span(
        f"cugraph on {graph.name}",
        kind="run",
        algorithm=f"cugraph-{precision}",
        graph=graph.name,
        vertices=n,
        edges=graph.num_edges,
    ):
        while True:
            rounds += 1
            with tracer.span(f"round {rounds}", kind="round"):
                # Topology-driven: the full edge set is scanned every
                # round.
                rnd = boruvka_round(src, dst, w, eid, comp, tracer=tracer)
                in_mst[rnd.winner_eids] = True

                for i in range(_FRAMEWORK_LAUNCH_FACTOR):
                    device.launch(
                        f"min_edge_pass{i}",
                        items=m_slots,
                        cycles=thread_mode_cycles(
                            degrees, _NEIGHBOR_CYCLES / _FRAMEWORK_LAUNCH_FACTOR
                        )
                        + n * _VERTEX_CYCLES / _FRAMEWORK_LAUNCH_FACTOR,
                        bytes_=(20.0 + 2.0 * weight_bytes)
                        * m_slots
                        / _FRAMEWORK_LAUNCH_FACTOR,
                        atomics=(2 * rnd.cross_edges)
                        // _FRAMEWORK_LAUNCH_FACTOR,
                        atomic_max_contention=min(rnd.atomic_contention, dmax),
                        critical_items=dmax // _FRAMEWORK_LAUNCH_FACTOR,
                    )
                device.launch(
                    "supervertex_merge",
                    items=n,
                    cycles=n * 5.0,
                    bytes_=16.0 * n,
                    atomics=int(rnd.winner_eids.size),
                )
                # Color propagation floods labels one hop per kernel
                # over the graph edges until no color changes (a
                # device->host flag check per step).  The measured
                # iteration count is the merged components'
                # hop-diameter: deep on road networks, which is exactly
                # cuGraph's Table-4 signature (3.7 s on europe_osm).
                flood = graph_flood_iterations(src, dst, comp, rnd.new_comp)
                for _ in range(max(1, flood)):
                    device.launch(
                        "color_propagation",
                        items=m_slots,
                        cycles=n * _PROP_VERTEX_CYCLES,
                        bytes_=(6.0 + weight_bytes) * m_slots,
                    )
                    device.host_sync()
                device.host_sync()

            comp = rnd.new_comp
            if rnd.cross_edges == 0:
                break

    table = np.zeros(graph.num_edges, dtype=np.int64)
    table[eid] = w
    total = int(table[in_mst].sum()) if in_mst.any() else 0
    return MstResult(
        graph=graph,
        in_mst=in_mst,
        total_weight=total,
        num_mst_edges=int(np.count_nonzero(in_mst)),
        rounds=rounds,
        modeled_seconds=device.elapsed_seconds,
        counters=device.counters,
        algorithm=f"cugraph-{precision}",
        extra={"precision": precision},
    )
