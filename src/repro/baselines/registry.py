"""Runner registry: paper code name → runner, for the bench harness.

Mirrors Table 1 plus our own code.  Each entry knows which hardware
class it runs on (so the harness hands it the right spec per system)
and whether it supports multi-component inputs (MSF) — the harness
reports "NC" otherwise, as the paper does.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable

from ..core.config import EclMstConfig
from ..core.eclmst import ecl_mst
from ..core.result import MstResult
from ..graph.csr import CSRGraph
from ..gpusim.spec import CPUSpec, GPUSpec
from .cugraph_style import cugraph_mst
from .ecl_cpu import ecl_mst_cpu
from .gunrock_style import gunrock_mst
from .jucele import jucele_mst
from .kruskal import filter_kruskal_mst, kruskal_serial_mst, qkruskal_mst
from .lonestar import lonestar_cpu_mst
from .pbbs import pbbs_parallel_mst
from .prim import prim_mst
from .setia_prim import setia_prim_mst
from .uminho import uminho_cpu_mst, uminho_gpu_mst

__all__ = ["Runner", "RUNNERS", "TABLE_CODES", "get_runner"]


@dataclass(frozen=True)
class Runner:
    """One MST code: display name, hardware class, MSF capability."""

    name: str
    kind: str  # "gpu" | "cpu-parallel" | "cpu-serial"
    supports_msf: bool
    fn: Callable[..., MstResult]

    def accepts_tracer(self) -> bool:
        """Whether the underlying code takes a ``tracer`` kwarg."""
        try:
            return "tracer" in inspect.signature(self.fn).parameters
        except (TypeError, ValueError):  # pragma: no cover - builtins
            return False

    def run(
        self, graph: CSRGraph, *, gpu: GPUSpec, cpu: CPUSpec, tracer=None
    ) -> MstResult:
        # Tracing is best-effort: codes that were never instrumented
        # simply run untraced (the harness still wraps them in a span).
        kwargs = {}
        if tracer is not None and self.accepts_tracer():
            kwargs["tracer"] = tracer
        if self.kind == "gpu":
            return self.fn(graph, gpu=gpu, **kwargs)
        return self.fn(graph, cpu=cpu, **kwargs)


def _ecl(graph: CSRGraph, *, gpu: GPUSpec, tracer=None) -> MstResult:
    return ecl_mst(graph, EclMstConfig(), gpu=gpu, tracer=tracer)


def _cugraph_double(graph: CSRGraph, *, gpu: GPUSpec, tracer=None) -> MstResult:
    return cugraph_mst(graph, gpu=gpu, precision="double", tracer=tracer)


def _cugraph_float(graph: CSRGraph, *, gpu: GPUSpec, tracer=None) -> MstResult:
    return cugraph_mst(graph, gpu=gpu, precision="float", tracer=tracer)


RUNNERS: dict[str, Runner] = {
    "ECL-MST": Runner("ECL-MST", "gpu", True, _ecl),
    "Jucele GPU": Runner("Jucele GPU", "gpu", False, jucele_mst),
    "Gunrock GPU": Runner("Gunrock GPU", "gpu", False, gunrock_mst),
    "cuGraph GPU": Runner("cuGraph GPU", "gpu", True, _cugraph_double),
    "cuGraph GPU (float)": Runner("cuGraph GPU (float)", "gpu", True, _cugraph_float),
    "UMinho GPU": Runner("UMinho GPU", "gpu", True, uminho_gpu_mst),
    "Lonestar CPU": Runner("Lonestar CPU", "cpu-parallel", True, lonestar_cpu_mst),
    "PBBS CPU": Runner("PBBS CPU", "cpu-parallel", True, pbbs_parallel_mst),
    "UMinho CPU": Runner("UMinho CPU", "cpu-parallel", True, uminho_cpu_mst),
    "PBBS Ser.": Runner("PBBS Ser.", "cpu-serial", True, kruskal_serial_mst),
    # Related-work algorithms (library extensions, not table rows).
    "qKruskal": Runner("qKruskal", "cpu-serial", True, qkruskal_mst),
    "Filter-Kruskal": Runner("Filter-Kruskal", "cpu-serial", True, filter_kruskal_mst),
    "Prim": Runner("Prim", "cpu-serial", True, prim_mst),
    "Setia Prim": Runner("Setia Prim", "cpu-parallel", True, setia_prim_mst),
    "ECL-MST CPU": Runner("ECL-MST CPU", "cpu-parallel", True, ecl_mst_cpu),
}

# Column order of Tables 3/4 (System 1 omits cuGraph, which is
# incompatible with it — handled by the table definition).
TABLE_CODES: tuple[str, ...] = (
    "ECL-MST",
    "Jucele GPU",
    "Gunrock GPU",
    "cuGraph GPU",
    "UMinho GPU",
    "Lonestar CPU",
    "PBBS CPU",
    "UMinho CPU",
    "PBBS Ser.",
)


def get_runner(name: str) -> Runner:
    try:
        return RUNNERS[name]
    except KeyError:
        raise KeyError(
            f"unknown MST code {name!r}; choose from {', '.join(RUNNERS)}"
        ) from None
