"""Shared vectorized Borůvka machinery for the baseline codes.

All the Borůvka-family comparators (Jucele, UMinho, cuGraph, Gunrock,
Lonestar) share the same round skeleton — per-component minimum edge,
winner selection, component merge — but differ in *how* the hardware
executes it (vertex- vs edge-centric, topology- vs data-driven, true
contraction vs disjoint sets).  Because the packed ``weight:edge-ID``
keys are unique, every variant selects the identical, unique MSF, which
lets the tests verify all baselines against the same reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpusim.atomics import KEY_INFINITY, pack_keys, unpack_edge_id
from ..obs.trace import NULL_TRACER

__all__ = ["BoruvkaRound", "boruvka_round", "propagate_colors"]


@dataclass
class BoruvkaRound:
    """Outcome of one Borůvka step over the (possibly contracted) graph.

    Attributes
    ----------
    winner_eids:
        Unique undirected edge IDs entering the MSF this round.
    new_comp:
        Updated per-vertex component labels after merging.
    cross_edges:
        Number of directed slots that still crossed components (the
        live work this round).
    prop_iterations:
        Pointer-jumping iterations needed to flatten the merged labels
        (codes with doubling-based label resolution pay O(log depth)).
    flood_iterations:
        The *depth* of the hook forest — the number of one-hop
        color-flood steps a propagate-until-stable implementation needs
        (codes that flood labels neighbor-to-neighbor pay this; on road
        networks the hooks chain and the depth grows).
    atomic_contention:
        Maximum number of cross edges funnelling their ``atomicMin``
        into a single component's slot this round — the same-address
        serialization critical path for unguarded min-reductions.
    """

    winner_eids: np.ndarray
    new_comp: np.ndarray
    cross_edges: int
    prop_iterations: int
    flood_iterations: int
    atomic_contention: int
    num_components: int


def boruvka_round(
    src: np.ndarray,
    dst: np.ndarray,
    w: np.ndarray,
    eid: np.ndarray,
    comp: np.ndarray,
    *,
    tracer=NULL_TRACER,
) -> BoruvkaRound:
    """One Borůvka step: every component hooks its minimum incident edge.

    ``src/dst/w/eid`` describe directed slots of the *current* working
    graph; ``comp`` maps each original vertex to its component label.
    The merge is the classic "hook to the other endpoint's component,
    then pointer-jump until flat" — exactly what color-propagation GPU
    codes do.

    ``tracer`` (optional): the round's measured quantities are attached
    to the tracer's current (``round``) span, so every Borůvka-family
    baseline gets per-round observability for free.
    """
    c_src = comp[src]
    c_dst = comp[dst]
    cross = c_src != c_dst
    n_cross = int(np.count_nonzero(cross))
    if n_cross == 0:
        roots = np.unique(comp)
        return _annotated(
            tracer,
            BoruvkaRound(
                winner_eids=np.empty(0, dtype=np.int64),
                new_comp=comp,
                cross_edges=0,
                prop_iterations=0,
                flood_iterations=0,
                atomic_contention=0,
                num_components=int(roots.size),
            ),
        )

    cs, cd = c_src[cross], c_dst[cross]
    keys = pack_keys(w[cross], eid[cross])

    n = comp.size
    min_key = np.full(n, KEY_INFINITY, dtype=np.uint64)
    np.minimum.at(min_key, cs, keys)
    np.minimum.at(min_key, cd, keys)
    # Hottest reduction slot: how many cross edges target one component.
    slot_counts = np.bincount(cs, minlength=n) + np.bincount(cd, minlength=n)
    atomic_contention = int(slot_counts.max())

    # Winners: the edge recorded as minimum of either endpoint component.
    win = (keys == min_key[cs]) | (keys == min_key[cd])
    winner_eids = np.unique(eid[cross][win])

    # Hook: each component points at the other endpoint of its minimum
    # edge (both endpoints hook, which is safe: the union graph of
    # minimum edges is acyclic for unique keys).
    parent = np.arange(n, dtype=np.int64)
    w_cs, w_cd = cs[win], cd[win]
    # Deterministic hook direction: larger label under smaller label.
    lo = np.minimum(w_cs, w_cd)
    hi = np.maximum(w_cs, w_cd)
    parent[hi] = lo

    # Flood depth: single-hop label propagation needs as many steps as
    # the deepest hook chain.  Measured exactly before any jumping.
    flood_iterations = 0
    probe = parent
    while True:
        nxt = parent[probe]
        flood_iterations += 1
        if np.array_equal(nxt, probe):
            break
        probe = nxt

    # Color propagation (pointer jumping) until flat: O(log depth).
    iters = 0
    while True:
        nxt = parent[parent]
        iters += 1
        if np.array_equal(nxt, parent):
            break
        parent = nxt

    new_comp = parent[comp]
    roots = np.unique(new_comp)
    return _annotated(
        tracer,
        BoruvkaRound(
            winner_eids=winner_eids,
            new_comp=new_comp,
            cross_edges=n_cross,
            prop_iterations=iters,
            flood_iterations=flood_iterations,
            atomic_contention=atomic_contention,
            num_components=int(roots.size),
        ),
    )


def _annotated(tracer, rnd: BoruvkaRound) -> BoruvkaRound:
    """Attach a round's measured quantities to the current span."""
    if tracer.enabled:
        tracer.annotate(
            cross_edges=rnd.cross_edges,
            winners=int(rnd.winner_eids.size),
            components=rnd.num_components,
            prop_iterations=rnd.prop_iterations,
            flood_iterations=rnd.flood_iterations,
            atomic_contention=rnd.atomic_contention,
        )
    return rnd


def graph_flood_iterations(
    src: np.ndarray,
    dst: np.ndarray,
    old_comp: np.ndarray,
    new_comp: np.ndarray,
) -> int:
    """One-hop label flooding over the *graph topology* until every
    vertex of each newly merged component agrees on its minimum label.

    This is how simple supervertex codes propagate colors: each
    iteration is one kernel (``L[v] = min(L[v], L[neighbors])``) plus a
    changed-flag check on the host.  The iteration count equals the
    merged components' internal hop-diameter from their minimum-label
    member — large on road networks, small on scale-free graphs, which
    is exactly cuGraph's Table-4 input signature.
    """
    # Only edges internal to a merged component can carry the color.
    intra = new_comp[src] == new_comp[dst]
    s, d = src[intra], dst[intra]
    labels = old_comp.copy()
    # Target: the minimum old label inside each new component.
    target = np.full(labels.size, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(target, new_comp, labels)
    final = target[new_comp]
    iters = 0
    while not np.array_equal(labels, final):
        iters += 1
        nxt = labels.copy()
        np.minimum.at(nxt, s, labels[d])
        np.minimum.at(nxt, d, labels[s])
        if np.array_equal(nxt, labels):
            break  # disconnected-from-minimum corner; flood is done
        labels = nxt
    return iters


def propagate_colors(labels: np.ndarray) -> tuple[np.ndarray, int]:
    """Flatten a pointer forest by repeated jumping; returns iterations."""
    iters = 0
    while True:
        nxt = labels[labels]
        iters += 1
        if np.array_equal(nxt, labels):
            return labels, iters
        labels = nxt
