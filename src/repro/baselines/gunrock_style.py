"""Gunrock-style baseline (Wang et al., Essentials MST).

Gunrock's MST is **vertex-centric and topology-driven**: it "checks all
vertices and evaluates an edge if its source and destination do not
belong to the same connected component", rescanning the whole graph
every round.  It "relies on the input having only a single connected
component and, therefore, cannot generate an MSF" — multi-component
inputs are the NC cells of Tables 3/4.
"""

from __future__ import annotations

import numpy as np

from ..core.result import MstResult
from ..graph.csr import CSRGraph
from ..graph.properties import connected_components
from ..gpusim.costmodel import Device
from ..gpusim.spec import GPUSpec, RTX_3080_TI
from ..gpusim.warp import thread_mode_cycles
from ..obs.trace import NULL_TRACER
from ._boruvka_common import boruvka_round
from .errors import NotConnectedError

__all__ = ["gunrock_mst"]

_NEIGHBOR_CYCLES = 7.0
_VERTEX_CYCLES = 10.0  # frontier bookkeeping per vertex
_PROP_VERTEX_CYCLES = 3.0


def gunrock_mst(
    graph: CSRGraph, *, gpu: GPUSpec = RTX_3080_TI, tracer=None
) -> MstResult:
    """Compute the MST of a single-component ``graph``.

    Raises
    ------
    NotConnectedError
        If the graph has more than one connected component.
    """
    n_cc, _ = connected_components(graph)
    if n_cc != 1:
        raise NotConnectedError(
            f"{graph.name} has {n_cc} components; Gunrock computes MSTs only"
        )

    tracer = tracer if tracer is not None else NULL_TRACER
    device = Device(gpu, tracer=tracer)
    n = graph.num_vertices
    src = graph.edge_sources().astype(np.int64)
    dst = graph.col_idx.astype(np.int64)
    w = graph.weights.astype(np.int64)
    eid = graph.edge_ids.astype(np.int64)
    degrees = graph.degrees()
    dmax = int(degrees.max()) if degrees.size else 0
    m_slots = graph.num_directed_edges

    comp = np.arange(n, dtype=np.int64)
    in_mst = np.zeros(graph.num_edges, dtype=bool)
    rounds = 0

    with tracer.span(
        f"gunrock on {graph.name}",
        kind="run",
        algorithm="gunrock-gpu",
        graph=graph.name,
        vertices=n,
        edges=graph.num_edges,
    ):
        while True:
            rounds += 1
            with tracer.span(f"round {rounds}", kind="round"):
                rnd = boruvka_round(src, dst, w, eid, comp, tracer=tracer)
                in_mst[rnd.winner_eids] = True

                device.launch(
                    "advance_min_edge",
                    items=m_slots,
                    cycles=thread_mode_cycles(degrees, _NEIGHBOR_CYCLES)
                    + n * _VERTEX_CYCLES,
                    bytes_=26.0 * m_slots + 8.0 * n,
                    atomics=2 * rnd.cross_edges,
                    atomic_max_contention=min(rnd.atomic_contention, dmax),
                    critical_items=dmax,
                )
                device.launch(
                    "filter_mark",
                    items=n,
                    cycles=n * 5.0,
                    bytes_=16.0 * n,
                    atomics=int(rnd.winner_eids.size),
                )
                # Generic advance/filter pipeline: the framework
                # materializes an explicit frontier between operators
                # each round.
                device.launch(
                    "frontier_compact",
                    items=m_slots,
                    cycles=4.0 * m_slots,
                    bytes_=8.0 * m_slots + 8.0 * n,
                )
                # Label resolution runs a CC subroutine from scratch
                # over the accumulated tree (hook + jump until flat),
                # one operator launch per step, each with the
                # framework's host round trip.
                import math

                merged = n - rnd.num_components
                cc_iters = 2 + max(1, int(math.log2(max(2, merged + 1))))
                for _ in range(cc_iters):
                    device.launch(
                        "label_propagation",
                        items=n,
                        cycles=n * _PROP_VERTEX_CYCLES,
                        bytes_=12.0 * n,
                    )
                    device.host_sync()
                device.host_sync()  # advance/filter frontier bookkeeping
                device.host_sync()  # outer-loop stopping condition

            comp = rnd.new_comp
            if rnd.num_components == 1 or rnd.cross_edges == 0:
                break

    table = np.zeros(graph.num_edges, dtype=np.int64)
    table[eid] = w
    total = int(table[in_mst].sum()) if in_mst.any() else 0
    return MstResult(
        graph=graph,
        in_mst=in_mst,
        total_weight=total,
        num_mst_edges=int(np.count_nonzero(in_mst)),
        rounds=rounds,
        modeled_seconds=device.elapsed_seconds,
        counters=device.counters,
        algorithm="gunrock-gpu",
    )
