"""Lonestar CPU baseline (Galois Borůvka).

The Lonestar CPU code "runs over the set of disconnected components and
loops over their edges": each round, a read-only pass determines the
lightest outgoing edge of every live component, then a lock-free pass
merges components through the disjoint-set structure — no graph
contraction, so the *same* adjacency lists are rescanned every round
even as most of their edges become internal.  Combined with runtime
scheduling overhead and imbalance from giant components, this is the
slowest parallel CPU code in Tables 3/4 (slower than serial PBBS on
several inputs), which the model reproduces by capping the effective
parallelism at ``total work / largest component's work``.
"""

from __future__ import annotations

import numpy as np

from ..core.result import MstResult
from ..graph.csr import CSRGraph
from ..gpusim.costmodel import CpuMachine
from ..gpusim.spec import CPUSpec, XEON_GOLD_6226R_X2
from ._boruvka_common import boruvka_round

__all__ = ["lonestar_cpu_mst"]

_EDGE_OPS = 380.0  # per scanned slot: runtime task overhead + DSU reads
_MERGE_OPS = 120.0
_ROUND_SYNCS = 4  # scheduler epochs per round


def lonestar_cpu_mst(
    graph: CSRGraph, *, cpu: CPUSpec = XEON_GOLD_6226R_X2, threads: int = 0
) -> MstResult:
    """Compute the MSF with the Lonestar strategy on the CPU model."""
    machine = CpuMachine(cpu, threads)
    n = graph.num_vertices
    src = graph.edge_sources().astype(np.int64)
    dst = graph.col_idx.astype(np.int64)
    w = graph.weights.astype(np.int64)
    eid = graph.edge_ids.astype(np.int64)
    degrees = graph.degrees()

    comp = np.arange(n, dtype=np.int64)
    in_mst = np.zeros(graph.num_edges, dtype=bool)
    live = np.ones(n, dtype=bool)  # vertices in components still merging
    rounds = 0

    while True:
        rounds += 1
        slot_live = live[src]
        s, d = src[slot_live], dst[slot_live]
        ws, es = w[slot_live], eid[slot_live]
        scanned = int(s.size)
        if scanned == 0:
            break

        rnd = boruvka_round(s, d, ws, es, comp)
        in_mst[rnd.winner_eids] = True

        # Imbalance: one Galois task per component; the heaviest
        # component bounds the round's parallel speedup.
        comp_work = np.bincount(comp[src[slot_live]], minlength=n)
        max_comp = float(comp_work.max()) if scanned else 1.0
        balance = max(1.0, scanned / max(max_comp, 1.0))
        eff_threads = min(machine.threads, balance)
        machine.phase(
            "find_lightest",
            ops=_EDGE_OPS * scanned * (machine.threads / max(eff_threads, 1.0)),
            bytes_=16.0 * scanned,
            items=scanned,
            syncs=_ROUND_SYNCS,
        )
        machine.phase(
            "merge",
            ops=_MERGE_OPS * int(rnd.winner_eids.size) + 6.0 * n,
            bytes_=8.0 * n,
            items=int(rnd.winner_eids.size),
            syncs=1,
        )

        comp = rnd.new_comp
        if rnd.cross_edges == 0:
            break
        cross_slot = comp[src] != comp[dst]
        live = np.zeros(n, dtype=bool)
        live[src[cross_slot]] = True
        live[dst[cross_slot]] = True

    table = np.zeros(graph.num_edges, dtype=np.int64)
    table[eid] = w
    total = int(table[in_mst].sum()) if in_mst.any() else 0
    return MstResult(
        graph=graph,
        in_mst=in_mst,
        total_weight=total,
        num_mst_edges=int(np.count_nonzero(in_mst)),
        rounds=rounds,
        modeled_seconds=machine.elapsed_seconds,
        counters=machine.counters,
        algorithm="lonestar-cpu",
    )
