"""Serial Kruskal baselines: plain ("PBBS Serial" analog), Brennan's
qKruskal, and Osipov et al.'s Filter-Kruskal.

These are the classic CPU comparators of Section 2.  All three share
the DSU scan; they differ in how much of the edge list they sort:

* **kruskal** — full sort, then one scan (what the paper's "PBBS Ser."
  column measures, and what ECL-MST's built-in verification uses).
* **qkruskal** — partition around a pivot, sort and process the light
  half, and only sort the heavy half if the forest is not complete.
* **filter_kruskal** — recursive partitioning; before descending into
  a heavy half, *filter* out the edges whose endpoints are already
  connected (cycle checks are cheaper than sorting).  ECL-MST's
  one-shot filtering is this idea reduced to a single sampled split.
"""

from __future__ import annotations

import numpy as np

from ..core.result import MstResult
from ..graph.csr import CSRGraph
from ..gpusim.atomics import pack_keys
from ..gpusim.costmodel import CpuMachine
from ..gpusim.spec import CPUSpec, XEON_GOLD_6226R_X2

__all__ = ["kruskal_serial_mst", "qkruskal_mst", "filter_kruskal_mst"]

# Serial per-operation prices (cycles): sorting 12-byte records and
# chasing union-find parents are both cache-unfriendly at MST scales.
_SORT_CMP_OPS = 45.0
_SCAN_EDGE_OPS = 25.0
_FIND_LOAD_OPS = 70.0
_UNION_OPS = 60.0
_PARTITION_OPS = 14.0
_FILTER_EDGE_OPS = 20.0


class _ScanDsu:
    """Union-find with full path compression and operation counting."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.loads = 0
        self.unions = 0

    def find(self, x: int) -> int:
        parent = self.parent
        root = x
        self.loads += 1
        while parent[root] != root:
            root = int(parent[root])
            self.loads += 1
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[max(ra, rb)] = min(ra, rb)
        self.unions += 1
        return True


def _scan_sorted(
    dsu: _ScanDsu,
    u: np.ndarray,
    v: np.ndarray,
    eid: np.ndarray,
    in_mst: np.ndarray,
    needed: int,
) -> int:
    """Process edges in the given order; returns edges added."""
    added = 0
    for i in range(u.size):
        if dsu.unions >= needed:
            break
        if dsu.union(int(u[i]), int(v[i])):
            in_mst[eid[i]] = True
            added += 1
    return added


def _finish(graph: CSRGraph, in_mst, machine, algo, rounds=1) -> MstResult:
    table = np.zeros(graph.num_edges, dtype=np.int64)
    table[graph.edge_ids] = graph.weights
    total = int(table[in_mst].sum()) if in_mst.any() else 0
    return MstResult(
        graph=graph,
        in_mst=in_mst,
        total_weight=total,
        num_mst_edges=int(np.count_nonzero(in_mst)),
        rounds=rounds,
        modeled_seconds=machine.elapsed_seconds,
        counters=machine.counters,
        algorithm=algo,
    )


def _max_tree_edges(graph: CSRGraph) -> int:
    """|V| - (#components) — the scan can stop once the forest is full."""
    from ..graph.properties import connected_components

    n_cc, _ = connected_components(graph)
    return graph.num_vertices - n_cc


def kruskal_serial_mst(
    graph: CSRGraph, *, cpu: CPUSpec = XEON_GOLD_6226R_X2
) -> MstResult:
    """Plain serial Kruskal with a full edge sort (the "PBBS Ser." row)."""
    machine = CpuMachine(cpu)
    u, v, w, eid = graph.undirected_edges()
    m = u.size
    order = np.argsort(pack_keys(w, eid), kind="stable")
    machine.phase(
        "sort",
        ops=_SORT_CMP_OPS * m * max(1.0, np.log2(max(m, 2))),
        bytes_=24.0 * m,
        items=m,
        serial=True,
    )
    dsu = _ScanDsu(graph.num_vertices)
    in_mst = np.zeros(graph.num_edges, dtype=bool)
    needed = _max_tree_edges(graph)
    _scan_sorted(dsu, u[order], v[order], eid[order], in_mst, needed)
    machine.phase(
        "scan",
        ops=_SCAN_EDGE_OPS * m + _FIND_LOAD_OPS * dsu.loads + _UNION_OPS * dsu.unions,
        bytes_=12.0 * m + 8.0 * dsu.loads,
        items=m,
        serial=True,
    )
    return _finish(graph, in_mst, machine, "kruskal-serial")


def qkruskal_mst(graph: CSRGraph, *, cpu: CPUSpec = XEON_GOLD_6226R_X2) -> MstResult:
    """Brennan's qKruskal: sort the light partition first, the heavy
    partition only if the forest is still incomplete."""
    machine = CpuMachine(cpu)
    u, v, w, eid = graph.undirected_edges()
    m = u.size
    in_mst = np.zeros(graph.num_edges, dtype=bool)
    dsu = _ScanDsu(graph.num_vertices)
    needed = _max_tree_edges(graph)
    if m == 0:
        return _finish(graph, in_mst, machine, "qkruskal")

    keys = pack_keys(w, eid)
    pivot = np.partition(keys, m // 2)[m // 2]
    machine.phase(
        "partition", ops=_PARTITION_OPS * m, bytes_=12.0 * m, items=m, serial=True
    )
    light = keys <= pivot
    rounds = 0
    for half in (light, ~light):
        idx = np.flatnonzero(half)
        if idx.size == 0 or dsu.unions >= needed:
            break
        rounds += 1
        k = idx.size
        order = idx[np.argsort(keys[idx], kind="stable")]
        machine.phase(
            "sort_half",
            ops=_SORT_CMP_OPS * k * max(1.0, np.log2(max(k, 2))),
            bytes_=24.0 * k,
            items=k,
            serial=True,
        )
        loads0, unions0 = dsu.loads, dsu.unions
        _scan_sorted(dsu, u[order], v[order], eid[order], in_mst, needed)
        machine.phase(
            "scan_half",
            ops=_SCAN_EDGE_OPS * k
            + _FIND_LOAD_OPS * (dsu.loads - loads0)
            + _UNION_OPS * (dsu.unions - unions0),
            bytes_=12.0 * k,
            items=k,
            serial=True,
        )
    return _finish(graph, in_mst, machine, "qkruskal", rounds=rounds)


def filter_kruskal_mst(
    graph: CSRGraph,
    *,
    cpu: CPUSpec = XEON_GOLD_6226R_X2,
    base_size: int | None = None,
) -> MstResult:
    """Osipov et al.'s Filter-Kruskal (recursive partition + filter)."""
    machine = CpuMachine(cpu)
    u, v, w, eid = graph.undirected_edges()
    in_mst = np.zeros(graph.num_edges, dtype=bool)
    dsu = _ScanDsu(graph.num_vertices)
    needed = _max_tree_edges(graph)
    if base_size is None:
        base_size = max(64, graph.num_vertices // 4)
    keys = pack_keys(w, eid)

    def kruskal_base(idx: np.ndarray) -> None:
        order = idx[np.argsort(keys[idx], kind="stable")]
        k = idx.size
        machine.phase(
            "sort_base",
            ops=_SORT_CMP_OPS * k * max(1.0, np.log2(max(k, 2))),
            bytes_=24.0 * k,
            items=k,
            serial=True,
        )
        loads0, unions0 = dsu.loads, dsu.unions
        _scan_sorted(dsu, u[order], v[order], eid[order], in_mst, needed)
        machine.phase(
            "scan_base",
            ops=_SCAN_EDGE_OPS * k
            + _FIND_LOAD_OPS * (dsu.loads - loads0)
            + _UNION_OPS * (dsu.unions - unions0),
            bytes_=12.0 * k,
            items=k,
            serial=True,
        )

    def recurse(idx: np.ndarray) -> None:
        if dsu.unions >= needed or idx.size == 0:
            return
        if idx.size <= base_size:
            kruskal_base(idx)
            return
        pivot = np.partition(keys[idx], idx.size // 2)[idx.size // 2]
        machine.phase(
            "partition",
            ops=_PARTITION_OPS * idx.size,
            bytes_=12.0 * idx.size,
            items=idx.size,
            serial=True,
        )
        light = idx[keys[idx] <= pivot]
        heavy = idx[keys[idx] > pivot]
        recurse(light)
        if dsu.unions >= needed:
            return
        # Filter: drop heavy edges already inside one component.
        loads0 = dsu.loads
        keep_mask = np.fromiter(
            (dsu.find(int(u[i])) != dsu.find(int(v[i])) for i in heavy),
            dtype=bool,
            count=heavy.size,
        )
        machine.phase(
            "filter",
            ops=_FILTER_EDGE_OPS * heavy.size + _FIND_LOAD_OPS * (dsu.loads - loads0),
            bytes_=12.0 * heavy.size,
            items=heavy.size,
            serial=True,
        )
        recurse(heavy[keep_mask])

    recurse(np.arange(u.size, dtype=np.int64))
    return _finish(graph, in_mst, machine, "filter-kruskal")
