"""Jucele GPU baseline (Vasconcellos et al., SBAC-PAD'18).

A "pure MST" code: it targets graphs with a single connected component
(multi-component inputs are rejected — the NC cells of Tables 3/4).
Borůvka-based, **vertex-centric** and **data-driven**: one kernel finds
the lightest cross-component edge of each vertex, another marks the
chosen edges, then the components are recomputed (connected-components
style label propagation) instead of contracting the graph.  The
authors deliberately avoid CUDA-specific tricks beyond atomics, so the
simulation charges plain thread-per-vertex execution — whose warp
imbalance on skewed degree distributions is exactly why ECL-MST beats
it by ~19× on scale-free inputs while only ~2-4× on meshes.
"""

from __future__ import annotations

import numpy as np

from ..core.result import MstResult
from ..graph.csr import CSRGraph
from ..graph.properties import connected_components
from ..gpusim.costmodel import Device
from ..gpusim.spec import GPUSpec, RTX_3080_TI
from ..gpusim.warp import thread_mode_cycles
from ..obs.trace import NULL_TRACER
from ._boruvka_common import boruvka_round
from .errors import NotConnectedError

__all__ = ["jucele_mst"]

_VERTEX_CYCLES = 8.0  # per-vertex setup in the min-edge kernel
_NEIGHBOR_CYCLES = 7.0  # label load + compare + key build per edge slot
_MARK_CYCLES = 5.0  # winner check + hook per vertex
_PROP_VERTEX_CYCLES = 3.0  # one pointer-jump step per vertex


def jucele_mst(
    graph: CSRGraph, *, gpu: GPUSpec = RTX_3080_TI, tracer=None
) -> MstResult:
    """Compute the MST of a single-component ``graph``.

    Raises
    ------
    NotConnectedError
        If the graph has more than one connected component.
    """
    n_cc, _ = connected_components(graph)
    if n_cc != 1:
        raise NotConnectedError(
            f"{graph.name} has {n_cc} components; Jucele computes MSTs only"
        )

    tracer = tracer if tracer is not None else NULL_TRACER
    device = Device(gpu, tracer=tracer)
    n = graph.num_vertices
    src = graph.edge_sources().astype(np.int64)
    dst = graph.col_idx.astype(np.int64)
    w = graph.weights.astype(np.int64)
    eid = graph.edge_ids.astype(np.int64)
    degrees = graph.degrees()
    dmax = int(degrees.max()) if degrees.size else 0

    comp = np.arange(n, dtype=np.int64)
    in_mst = np.zeros(graph.num_edges, dtype=bool)
    active = np.ones(n, dtype=bool)  # data-driven: vertices still merging
    rounds = 0

    with tracer.span(
        f"jucele on {graph.name}",
        kind="run",
        algorithm="jucele-gpu",
        graph=graph.name,
        vertices=n,
        edges=graph.num_edges,
    ):
        while True:
            rounds += 1
            with tracer.span(f"round {rounds}", kind="round"):
                # Data-driven restriction: only slots whose source
                # vertex is still active are scanned this round.
                slot_active = active[src]
                s, d = src[slot_active], dst[slot_active]
                ws, es = w[slot_active], eid[slot_active]
                scanned = int(s.size)

                rnd = boruvka_round(s, d, ws, es, comp, tracer=tracer)
                in_mst[rnd.winner_eids] = True

                # Kernel 1: per-vertex lightest-edge search (thread per
                # vertex, unguarded atomicMin reductions -> same-address
                # serialization on the hottest component).
                work = np.where(active, degrees, 0)
                device.launch(
                    "find_min",
                    items=scanned,
                    cycles=thread_mode_cycles(work, _NEIGHBOR_CYCLES)
                    + n * _VERTEX_CYCLES,
                    bytes_=26.0 * scanned + 8.0 * n,
                    atomics=2 * rnd.cross_edges,  # atomicMin per endpoint
                    # Per-vertex reductions: contention bounded by degree.
                    atomic_max_contention=min(rnd.atomic_contention, dmax),
                    critical_items=dmax,  # one thread, heaviest vertex
                )
                # Kernel 2: mark chosen edges + hook components.
                device.launch(
                    "mark",
                    items=n,
                    cycles=n * _MARK_CYCLES,
                    bytes_=16.0 * n,
                    atomics=int(rnd.winner_eids.size),
                )
                # Connected components are *recomputed from scratch*
                # over the accumulated tree each round (hook +
                # pointer-jump until flat), a kernel per step with a
                # converged-flag copy back to the host — the
                # memcpy-while-loop pattern Pai & Pingali flag.
                import math

                merged = n - rnd.num_components
                cc_iters = 2 + max(1, int(math.log2(max(2, merged + 1))))
                for _ in range(cc_iters):
                    device.launch(
                        "recompute_cc",
                        items=n,
                        cycles=n * _PROP_VERTEX_CYCLES,
                        bytes_=12.0 * n,
                    )
                    device.host_sync()
                device.host_sync()  # outer-loop stopping condition

            if rnd.cross_edges == 0 or rnd.num_components == 1:
                comp = rnd.new_comp
                break
            comp = rnd.new_comp
            # A vertex stays active while any incident slot crosses
            # components.
            cross_slot = comp[src] != comp[dst]
            active = np.zeros(n, dtype=bool)
            active[src[cross_slot]] = True
            if not active.any():
                break

    sel_w = np.zeros(graph.num_edges, dtype=np.int64)
    sel_w[eid] = w
    total = int(sel_w[in_mst].sum()) if in_mst.any() else 0
    return MstResult(
        graph=graph,
        in_mst=in_mst,
        total_weight=total,
        num_mst_edges=int(np.count_nonzero(in_mst)),
        rounds=rounds,
        modeled_seconds=device.elapsed_seconds,
        counters=device.counters,
        algorithm="jucele-gpu",
    )
