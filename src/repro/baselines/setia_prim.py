"""Setia et al.'s parallel Prim (HiPC'09) — related-work CPU baseline.

"Worker threads start at a different random vertex and build a tree
from that vertex outward.  When the threads collide, the thread with
the higher ID is killed and its tree is merged with that of the thread
with the lower ID.  The algorithm takes advantage of the cut property
to merge the trees correctly.  Their code makes use of critical
sections to perform the tree merging" — which is the contrast the
paper draws with ECL-MST's lock-free atomics.

Correctness here rests on the cut property with unique keys: the
minimum-key edge leaving *any* vertex set belongs to the unique MSF, so
each surviving thread may safely commit its tree's minimum outgoing
edge, whether it reaches unclaimed territory or another thread's tree
(a collision, triggering a merge).

The simulation executes the threads round-robin (one tree-growth step
per live thread per round) and prices the rounds on the CPU model,
charging a critical-section serialization cost per merge.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.result import MstResult
from ..graph.csr import CSRGraph
from ..gpusim.costmodel import CpuMachine
from ..gpusim.spec import CPUSpec, XEON_GOLD_6226R_X2

__all__ = ["setia_prim_mst"]

_HEAP_OPS = 35.0  # pop/push on a shared-memory heap, cache-hostile
_EDGE_OPS = 12.0
_MERGE_LOCK_OPS = 900.0  # critical-section acquire + tree handover
_ROUND_SYNC = 1


def setia_prim_mst(
    graph: CSRGraph,
    *,
    cpu: CPUSpec = XEON_GOLD_6226R_X2,
    threads: int = 0,
    seed: int = 0,
) -> MstResult:
    """Compute the MSF with multi-start parallel Prim.

    ``threads`` worker trees start at random vertices (default: the
    CPU's core count).  Supports MSF: exhausted regions simply leave
    their trees in place and idle threads restart on unclaimed
    vertices.
    """
    machine = CpuMachine(cpu, threads)
    n_threads = machine.threads
    n = graph.num_vertices
    rng = np.random.default_rng(seed)

    row_ptr, col = graph.row_ptr, graph.col_idx
    w, eids = graph.weights, graph.edge_ids

    owner = np.full(n, -1, dtype=np.int64)  # vertex -> tree id
    tree_parent = np.arange(n_threads + n, dtype=np.int64)  # tree DSU

    def tree_find(t: int) -> int:
        while tree_parent[t] != t:
            tree_parent[t] = tree_parent[tree_parent[t]]
            t = int(tree_parent[t])
        return t

    in_mst = np.zeros(graph.num_edges, dtype=bool)
    heaps: dict[int, list] = {}
    alive: list[int] = []
    next_tree_id = 0
    unvisited_cursor = 0

    heap_ops = 0
    edge_scans = 0
    merges = 0
    rounds = 0

    def spawn(start: int) -> None:
        nonlocal next_tree_id, heap_ops, edge_scans
        tid = next_tree_id
        next_tree_id += 1
        owner[start] = tid
        h: list = []
        for j in range(row_ptr[start], row_ptr[start + 1]):
            heapq.heappush(h, (int(w[j]), int(eids[j]), int(col[j])))
            heap_ops += 1
        edge_scans += int(row_ptr[start + 1] - row_ptr[start])
        heaps[tid] = h
        alive.append(tid)

    # Random distinct starting vertices, one per worker.
    starts = rng.choice(n, size=min(n_threads, n), replace=False)
    for s in starts:
        spawn(int(s))

    while True:
        rounds += 1
        progressed = False
        for tid in list(alive):
            root = tree_find(tid)
            if root != tid:
                if tid in alive:
                    alive.remove(tid)  # killed by a merge this round
                continue
            h = heaps.get(tid)
            if not h:
                if tid in alive:
                    alive.remove(tid)
                continue
            # One growth step: the tree's minimum outgoing edge.
            while h:
                wt, eid, v = heapq.heappop(h)
                heap_ops += 1
                v_owner = owner[v]
                if v_owner != -1 and tree_find(int(v_owner)) == tid:
                    continue  # internal edge, discard
                progressed = True
                in_mst[eid] = True
                if v_owner == -1:
                    # Expansion into unclaimed territory.
                    owner[v] = tid
                    for j in range(row_ptr[v], row_ptr[v + 1]):
                        heapq.heappush(
                            h, (int(w[j]), int(eids[j]), int(col[j]))
                        )
                        heap_ops += 1
                    edge_scans += int(row_ptr[v + 1] - row_ptr[v])
                else:
                    # Collision: merge into the lower-ID tree (critical
                    # section in the original code).
                    other = tree_find(int(v_owner))
                    lo, hi = min(tid, other), max(tid, other)
                    tree_parent[hi] = lo
                    survivor, victim = lo, hi
                    merged = heaps.pop(victim, [])
                    if len(merged) > len(heaps[survivor]):
                        merged, heaps[survivor] = heaps[survivor], merged
                    for item in merged:
                        heapq.heappush(heaps[survivor], item)
                        heap_ops += 1
                    merges += 1
                    if victim in alive:
                        alive.remove(victim)
                    if survivor not in alive:
                        alive.append(survivor)
                break
        if not progressed:
            # All live trees exhausted; restart on unclaimed vertices
            # (MSF support) or finish.
            while unvisited_cursor < n and owner[unvisited_cursor] != -1:
                unvisited_cursor += 1
            if unvisited_cursor >= n:
                break
            spawn(unvisited_cursor)

    log_v = max(1.0, np.log2(max(n, 2)))
    machine.phase(
        "parallel_prim",
        ops=_HEAP_OPS * heap_ops * log_v / 8.0 + _EDGE_OPS * edge_scans,
        bytes_=16.0 * heap_ops + 8.0 * edge_scans,
        items=edge_scans,
        syncs=rounds * _ROUND_SYNC,
    )
    machine.phase(
        "tree_merges",
        ops=_MERGE_LOCK_OPS * merges,
        bytes_=8.0 * merges,
        items=merges,
        serial=True,  # critical sections serialize
    )

    table = np.zeros(graph.num_edges, dtype=np.int64)
    table[graph.edge_ids] = graph.weights
    total = int(table[in_mst].sum()) if in_mst.any() else 0
    return MstResult(
        graph=graph,
        in_mst=in_mst,
        total_weight=total,
        num_mst_edges=int(np.count_nonzero(in_mst)),
        rounds=rounds,
        modeled_seconds=machine.elapsed_seconds,
        counters=machine.counters,
        algorithm="setia-prim",
        extra={"merges": merges, "threads": n_threads},
    )
