"""Baseline-specific error types."""

from __future__ import annotations

__all__ = ["NotConnectedError"]


class NotConnectedError(ValueError):
    """Input has multiple connected components but the code is MST-only.

    The paper reports these cells as "NC": the Jucele and Gunrock codes
    can compute MSTs but not MSFs (Section 4).
    """
