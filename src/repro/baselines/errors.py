"""Baseline-specific error types.

Deprecated location: the exception now lives in the shared
:mod:`repro.errors` taxonomy; this module re-exports it so existing
imports keep working.
"""

from __future__ import annotations

from ..errors import NotConnectedError

__all__ = ["NotConnectedError"]
