"""Reimplementations of the paper's comparator codes (Table 1) plus the
classic serial MST algorithms from the related work."""

from .cugraph_style import cugraph_mst
from .ecl_cpu import ecl_mst_cpu
from .errors import NotConnectedError
from .gunrock_style import gunrock_mst
from .jucele import jucele_mst
from .kruskal import filter_kruskal_mst, kruskal_serial_mst, qkruskal_mst
from .lonestar import lonestar_cpu_mst
from .pbbs import pbbs_parallel_mst
from .prim import prim_mst
from .registry import RUNNERS, Runner, TABLE_CODES, get_runner
from .setia_prim import setia_prim_mst
from .uminho import uminho_cpu_mst, uminho_gpu_mst

__all__ = [
    "NotConnectedError",
    "RUNNERS",
    "Runner",
    "TABLE_CODES",
    "cugraph_mst",
    "ecl_mst_cpu",
    "filter_kruskal_mst",
    "get_runner",
    "gunrock_mst",
    "jucele_mst",
    "kruskal_serial_mst",
    "lonestar_cpu_mst",
    "pbbs_parallel_mst",
    "prim_mst",
    "qkruskal_mst",
    "setia_prim_mst",
    "uminho_cpu_mst",
    "uminho_gpu_mst",
]
