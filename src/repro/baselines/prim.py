"""Prim's algorithm (binary heap) — the third classic, for completeness.

Prim relies on the cut property and grows a single tree, which makes it
inherently serial (Section 1); the paper cites Setia et al.'s
multi-start parallelization but does not benchmark a Prim code, so this
module serves the library API, the tests and the examples rather than
a paper table.  MSF support comes from restarting on every unvisited
vertex.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.result import MstResult
from ..graph.csr import CSRGraph
from ..gpusim.costmodel import CpuMachine
from ..gpusim.spec import CPUSpec, XEON_GOLD_6226R_X2

__all__ = ["prim_mst"]

_HEAP_OPS = 30.0  # per push/pop: log-factor folded into the count below
_EDGE_OPS = 10.0


def prim_mst(graph: CSRGraph, *, cpu: CPUSpec = XEON_GOLD_6226R_X2) -> MstResult:
    """Compute the MSF with lazy-deletion heap Prim.

    Deterministic tie-break: the heap orders by ``(weight, edge ID)``,
    matching the packed-key order of the rest of the library, so the
    selected edge set equals the unique reference MSF.
    """
    machine = CpuMachine(cpu)
    n = graph.num_vertices
    in_mst = np.zeros(graph.num_edges, dtype=bool)
    visited = np.zeros(n, dtype=bool)
    row_ptr, col, w, eids = graph.row_ptr, graph.col_idx, graph.weights, graph.edge_ids

    heap_ops = 0
    edge_scans = 0

    for start in range(n):
        if visited[start]:
            continue
        visited[start] = True
        heap: list[tuple[int, int, int, int]] = []
        for j in range(row_ptr[start], row_ptr[start + 1]):
            heapq.heappush(heap, (int(w[j]), int(eids[j]), int(col[j]), start))
            heap_ops += 1
        edge_scans += int(row_ptr[start + 1] - row_ptr[start])
        while heap:
            wt, eid, v, _u = heapq.heappop(heap)
            heap_ops += 1
            if visited[v]:
                continue
            visited[v] = True
            in_mst[eid] = True
            for j in range(row_ptr[v], row_ptr[v + 1]):
                t = int(col[j])
                if not visited[t]:
                    heapq.heappush(heap, (int(w[j]), int(eids[j]), t, v))
                    heap_ops += 1
            edge_scans += int(row_ptr[v + 1] - row_ptr[v])

    log_v = max(1.0, np.log2(max(n, 2)))
    machine.phase(
        "prim",
        ops=_HEAP_OPS * heap_ops * log_v / 8.0 + _EDGE_OPS * edge_scans,
        bytes_=16.0 * heap_ops + 8.0 * edge_scans,
        items=edge_scans,
        serial=True,
    )

    table = np.zeros(graph.num_edges, dtype=np.int64)
    table[graph.edge_ids] = graph.weights
    total = int(table[in_mst].sum()) if in_mst.any() else 0
    return MstResult(
        graph=graph,
        in_mst=in_mst,
        total_weight=total,
        num_mst_edges=int(np.count_nonzero(in_mst)),
        rounds=1,
        modeled_seconds=machine.elapsed_seconds,
        counters=machine.counters,
        algorithm="prim",
    )
