"""Per-run scratch-array arena.

The kernels allocate the same short-lived arrays every round — cross
masks, packed atomicMin keys, conflict-resolution tables — and at
service rates (many solver executions per request, PR 4/8) the
allocator churn shows up as real host wall-clock.  A
:class:`ScratchArena` hands out named, capacity-doubling buffers that
live for one run (one :class:`~repro.core.kernels.MstState`), so each
round reuses the previous round's memory.

Buffers are identified by name: requesting the same name twice returns
(a view of) the same backing storage, so two live uses of one name
would alias.  The kernels therefore use one name per distinct role,
and nothing handed out survives past the next request for that name.
Contents are uninitialized unless ``fill`` is given — exactly like
``np.empty`` — which is what makes reuse free.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ScratchArena"]


class ScratchArena:
    """Named reusable scratch buffers with capacity doubling."""

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self.requests = 0
        self.reuses = 0

    def take(
        self,
        name: str,
        size: int,
        dtype: np.dtype | type = np.int64,
        *,
        fill=None,
        fill_new=None,
    ) -> np.ndarray:
        """A length-``size`` scratch view named ``name``.

        Grows (never shrinks) the backing buffer; a grown buffer at
        least doubles so repeated near-miss sizes don't reallocate
        every round.  ``fill`` initializes the view on every call;
        ``fill_new`` initializes the whole backing buffer only when it
        was (re)allocated — for sentinel tables whose users restore
        the fill invariant themselves after each use.  Otherwise
        contents are whatever the last user left behind.
        """
        size = int(size)
        dt = np.dtype(dtype)
        self.requests += 1
        buf = self._buffers.get(name)
        fresh = buf is None or buf.dtype != dt or buf.size < size
        if fresh:
            cap = size if buf is None else max(size, 2 * buf.size)
            buf = np.empty(cap, dtype=dt)
            if fill_new is not None:
                buf.fill(fill_new)
            self._buffers[name] = buf
        else:
            self.reuses += 1
        view = buf[:size]
        if fill is not None:
            view.fill(fill)
        return view

    @property
    def nbytes(self) -> int:
        """Total backing storage held (for metrics/debugging)."""
        return sum(b.nbytes for b in self._buffers.values())
