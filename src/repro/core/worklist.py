"""Double-buffered edge worklists.

ECL-MST keeps two worklists and swaps them each round: one is drained
while the other fills (Section 3.2, "small optimizations").  An entry
is the 4-tuple ``⟨source, destination, weight, edge ID⟩``; the layout
(one array of packed tuples vs four parallel arrays) is an ablation
axis, but since NumPy holds the four fields as columns either way, the
layout only changes the *cost accounting* (see
:mod:`repro.core.costs`), never the semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EdgeList", "Worklist"]


@dataclass
class EdgeList:
    """A batch of worklist entries (column arrays of equal length)."""

    v: np.ndarray
    n: np.ndarray
    w: np.ndarray
    eid: np.ndarray

    def __len__(self) -> int:
        return int(self.v.size)

    @classmethod
    def empty(cls) -> "EdgeList":
        z = np.empty(0, dtype=np.int64)
        return cls(z, z.copy(), z.copy(), z.copy())

    def select(self, mask: np.ndarray) -> "EdgeList":
        return EdgeList(self.v[mask], self.n[mask], self.w[mask], self.eid[mask])


class Worklist:
    """The WL1/WL2 pair with the swap protocol of Alg. 2.

    ``appends`` counts the atomicAdd slot reservations performed while
    filling the back buffer; the driver reads it for cost accounting.
    """

    def __init__(self) -> None:
        self.front = EdgeList.empty()
        self._back_parts: list[EdgeList] = []
        self.appends = 0

    def __len__(self) -> int:
        return len(self.front)

    def fill_front(self, entries: EdgeList) -> None:
        """Bulk-populate the active worklist (initialization kernel)."""
        self.front = entries
        self.appends += len(entries)

    def append_back(self, entries: EdgeList) -> None:
        """Reserve slots in the filling buffer (atomicAdd per entry)."""
        if len(entries):
            self._back_parts.append(entries)
            self.appends += len(entries)

    def swap(self) -> None:
        """``WL1 ← ∅; swap WL1 and WL2`` from Alg. 2."""
        if len(self._back_parts) == 1:
            # The common case (one producing kernel per round): adopt
            # the columns directly.  Keeping the arrays' identity also
            # lets k2 recognize and reuse k1's packed keys.
            self.front = self._back_parts[0]
        elif self._back_parts:
            self.front = EdgeList(
                np.concatenate([p.v for p in self._back_parts]),
                np.concatenate([p.n for p in self._back_parts]),
                np.concatenate([p.w for p in self._back_parts]),
                np.concatenate([p.eid for p in self._back_parts]),
            )
        else:
            self.front = EdgeList.empty()
        self._back_parts = []
