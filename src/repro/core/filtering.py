"""Sampling-based edge filtering (Section 3.2, bullet 4; Section 5.4).

An MST has ``|V| - 1`` edges, so processing the ~``c·|V|`` lightest
edges first usually completes most of the tree; the heavier remainder
is *filtered* (cycle-checked, which is cheap) before the second phase.
ECL-MST estimates the weight bound of the ``c·|V|`` lightest edges from
just **20 randomly sampled edge weights**: the bound is the ``k``-th
smallest sample where ``k / 20`` approximates the target quantile
``c·|V| / (2·|E|)`` (counted over directed slots, i.e. no filtering at
all for average degree below ``c = 4``).

Section 5.4 evaluates both the throughput variability across 99 seeds
(Figure 6) and how far the realized cut lands from the target of about
3× the tree size (Figure 7); :func:`threshold_accuracy` computes that
metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from .config import EclMstConfig

__all__ = ["FilterPlan", "plan_filtering", "threshold_accuracy"]


@dataclass(frozen=True)
class FilterPlan:
    """Outcome of the sampling step.

    ``threshold`` is the exclusive weight bound for phase 1 (``None``
    disables filtering); ``samples`` are the weights drawn, kept for
    diagnostics.
    """

    threshold: int | None
    samples: tuple[int, ...] = ()

    @property
    def active(self) -> bool:
        return self.threshold is not None


def plan_filtering(graph: CSRGraph, config: EclMstConfig) -> FilterPlan:
    """Sample edge weights and derive the phase-1 threshold.

    Mirrors the paper: filtering only engages when the average degree
    is at least ``filter_c`` (otherwise ``c·|V|`` covers every edge and
    phase 1 would be the whole run anyway).
    """
    if not config.filtering:
        return FilterPlan(threshold=None)
    n = graph.num_vertices
    slots = graph.num_directed_edges
    if n == 0 or slots == 0 or slots < config.filter_c * n:
        # Average degree below c: every weight "meets the threshold".
        return FilterPlan(threshold=None)
    rng = np.random.default_rng(config.seed)
    k_samples = min(config.filter_samples, slots)
    picks = rng.integers(0, slots, size=k_samples)
    samples = np.sort(graph.weights[picks].astype(np.int64))
    # Target quantile: the c|V| lightest directed slots.
    q = (config.filter_c * n) / slots
    k = int(np.clip(round(q * k_samples), 1, k_samples))
    threshold = int(samples[k - 1])
    return FilterPlan(threshold=threshold, samples=tuple(int(s) for s in samples))


def threshold_accuracy(
    graph: CSRGraph, plan: FilterPlan, *, target_factor: float = 3.0
) -> float | None:
    """Figure-7 metric: relative distance from the target edge budget.

    Returns ``(edges under threshold) / (target_factor · |V|) - 1`` —
    0.0 means the sampled threshold admitted exactly the intended
    number of phase-1 edges, +1.0 means twice as many, -0.5 half.
    ``None`` when filtering is inactive.
    """
    if not plan.active:
        return None
    u, v, w, eid = graph.undirected_edges()
    # Count directed slots under the bound, like the sampling quantile.
    under = 2 * int(np.count_nonzero(w < plan.threshold))
    target = target_factor * graph.num_vertices
    if target <= 0:
        return None
    return under / target - 1.0
