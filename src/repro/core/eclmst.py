"""ECL-MST host-side driver (Section 3.3).

Orchestrates the kernels per the paper: without filtering, one
populate + the Alg.-2 while loop; with filtering, phase 1 under the
sampled weight bound, then a second populate with the condition
inverted and endpoints rewritten to representatives (the filter), then
phase 2.  Also provides the topology-driven loop used by the ablation.

Resilience (optional, zero-overhead when off): passing a
:class:`~repro.resilience.recovery.ResilienceConfig` wraps every round
in checkpoint/invariant-check/rollback protection, and passing a
:class:`~repro.resilience.faults.FaultPlan` arms the simulated device
with deterministic transient faults — see :mod:`repro.resilience`.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import DeadlineExceeded
from ..graph.csr import CSRGraph
from ..gpusim.atomics import KEY_INFINITY, atomic_min_u64, pack_keys
from ..gpusim.costmodel import Device
from ..gpusim.spec import GPUSpec, RTX_3080_TI
from ..obs.events import NULL_EVENTS, get_event_log, new_run_id
from ..obs.trace import NULL_TRACER
from . import costs
from .config import EclMstConfig
from .filtering import FilterPlan, plan_filtering
from .kernels import (
    MstState,
    kernel1_reserve,
    kernel2_union,
    kernel3_reset,
    kernel_init_populate,
)
from .result import MstResult, RoundStats

__all__ = ["ecl_mst"]


def _check_deadline(deadline: float | None, rounds: int) -> None:
    """Round-boundary deadline check (the invariant-sweep cadence).

    ``deadline`` is a ``time.perf_counter`` timestamp; crossing it
    aborts the run with :class:`DeadlineExceeded` instead of burning
    worker time on an answer nobody is waiting for.
    """
    if deadline is not None and time.perf_counter() > deadline:
        raise DeadlineExceeded(
            f"query deadline expired entering round {rounds}"
        )


def _edge_weight_table(graph: CSRGraph) -> np.ndarray:
    """weight per undirected edge ID (for the final tally)."""
    table = np.zeros(graph.num_edges, dtype=np.int64)
    table[graph.edge_ids] = graph.weights
    return table


def _run_data_driven_loop(
    state: MstState,
    weight_of_edge: np.ndarray,
    round_log: list[RoundStats] | None = None,
    guard=None,
    events=NULL_EVENTS,
    deadline: float | None = None,
) -> int:
    """The Alg.-2 while loop; returns the number of rounds executed."""
    tracer = state.device.tracer
    rounds = 0
    while len(state.wl.front):
        rounds += 1
        _check_deadline(deadline, rounds)
        entries = len(state.wl.front)

        def body(rounds=rounds, entries=entries):
            with tracer.span(f"round {rounds}", kind="round", entries=entries) as sp:
                survivors = kernel1_reserve(state)
                state.wl.swap()
                # The while condition is a worklist-size flag copied back
                # to the host — one round trip per round (bounded by
                # O(log |V|)).
                state.device.host_sync()
                added = 0
                if len(state.wl.front):
                    added = kernel2_union(state)
                    kernel3_reset(state)
                tracer.annotate(survivors=survivors, added=added)
            if events.enabled:
                events.emit(
                    "solver.round",
                    level="debug",
                    round=rounds,
                    entries=entries,
                    survivors=survivors,
                    added=added,
                    span=getattr(sp, "id", 0),
                )
            return RoundStats(entries=entries, survivors=survivors, added=added)

        stats = body() if guard is None else guard.run_round(state, body, rounds)
        if round_log is not None:
            round_log.append(stats)
    return rounds


def _run_topology_driven_loop(
    state: MstState,
    threshold: int | None,
    phase: int,
    weight_of_edge: np.ndarray,
    guard=None,
    events=NULL_EVENTS,
    deadline: float | None = None,
) -> int:
    """De-optimized loop: every round rescans all candidate edges.

    The candidate set (direction/threshold masks) is fixed per phase;
    no worklist exists, so the same entries — including long-dead
    cycle edges — are found and discarded again each round.
    """
    g, cfg = state.graph, state.config
    src = g.edge_sources().astype(np.int64)
    dst = g.col_idx.astype(np.int64)
    w = g.weights.astype(np.int64)
    eid = g.edge_ids.astype(np.int64)
    mask = src < dst if cfg.single_direction else np.ones(src.size, dtype=bool)
    if threshold is not None:
        mask &= (w < threshold) if phase == 1 else (w >= threshold)
    from .worklist import EdgeList

    all_entries = EdgeList(src[mask], dst[mask], w[mask], eid[mask])

    tracer = state.device.tracer
    rounds = 0
    while True:
        rounds += 1
        _check_deadline(deadline, rounds)

        def body(rounds=rounds):
            with tracer.span(
                f"round {rounds}", kind="round", entries=len(all_entries)
            ) as sp:
                state.wl.fill_front(all_entries)
                survivors = kernel1_reserve(state)
                # Topology-driven k1 does not build a worklist; the swap
                # is a no-op structurally, but the reservations are in
                # minEdge.
                state.wl.swap()
                state.wl.front = all_entries  # k2/k3 rescan everything
                state.device.host_sync()  # did-anything-change flag
                tracer.annotate(survivors=survivors)
                if survivors:
                    kernel2_union(state)
                    kernel3_reset(state)
            if events.enabled:
                events.emit(
                    "solver.round",
                    level="debug",
                    round=rounds,
                    entries=len(all_entries),
                    survivors=survivors,
                    span=getattr(sp, "id", 0),
                )
            return survivors

        survivors = (
            body() if guard is None else guard.run_round(state, body, rounds)
        )
        if survivors == 0:
            # Matches the data-driven launch count: the loop only
            # learns it is done from an empty reservation round.
            break
    state.wl.front = type(all_entries).empty()
    return rounds


def ecl_mst(
    graph: CSRGraph,
    config: EclMstConfig | None = None,
    *,
    gpu: GPUSpec = RTX_3080_TI,
    verify: bool = False,
    tracer=None,
    resilience=None,
    fault_plan=None,
    events=None,
    deadline: float | None = None,
    shards: int = 1,
    shard_strategy: str = "contiguous",
) -> MstResult:
    """Compute the MSF of ``graph`` with ECL-MST on the simulated GPU.

    Parameters
    ----------
    graph:
        Undirected weighted :class:`CSRGraph`.  Multiple connected
        components are fine (an MSF is produced), unlike the Jucele and
        Gunrock baselines.
    config:
        Optimization toggles; defaults to the fully-optimized code.
    gpu:
        Hardware spec for the cost model (Titan V for System 1 rows,
        RTX 3080 Ti for System 2 rows).
    verify:
        Re-check the result against serial Kruskal, as the paper's
        artifact does after every run (not charged to the runtime).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` recording nested
        ``run > phase > round > kernel`` spans.  ``None`` (the default)
        traces nothing and adds no overhead; tracing never changes the
        computed MSF or the modeled counters.
    resilience:
        Optional :class:`~repro.resilience.recovery.ResilienceConfig`
        enabling per-round checkpointing, online invariant checks, and
        the rollback → phase-restart → serial-fallback recovery ladder.
        ``None`` (the default) — and any config with checking off on a
        fault-free run — leaves results and counters bit-identical.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan` of seeded
        deterministic transient faults for the device to inject
        (chaos/robustness testing).
    events:
        Optional :class:`~repro.obs.events.EventLog` receiving
        phase/round transition events (and resilience events when the
        run is guarded), all bound to a fresh run correlation ID.
        ``None`` (the default) falls back to the process-global log
        configured by the ``--log-level/--log-json`` CLI flags, which
        is the zero-overhead :data:`~repro.obs.events.NULL_EVENTS`
        unless telemetry was turned on.  Emitting events never changes
        the computed MSF or the modeled counters.
    deadline:
        Optional ``time.perf_counter`` timestamp.  Checked at every
        round boundary (the same cadence as the invariant sweeps);
        once crossed the run aborts with
        :class:`~repro.errors.DeadlineExceeded` — the serving layer
        propagates per-query deadlines here so a query that already
        missed its timeout stops consuming the worker.  ``None`` (the
        default) never checks and adds no overhead.
    shards:
        Number of simulated devices.  ``1`` (the default) is the
        paper's single-GPU algorithm, untouched.  ``> 1`` delegates to
        :func:`~repro.shard.engine.sharded_mst`: partitioned local
        solves on independent devices, a link-priced boundary
        exchange, and a merge round — same MSF, with
        ``extra["shard"]`` carrying the per-device breakdown.
    shard_strategy:
        Partitioner for ``shards > 1``: ``"contiguous"`` (default) or
        ``"hash"`` — see :mod:`repro.shard.partition`.

    Returns
    -------
    MstResult
        With per-kernel counters and modeled computation time.  After a
        recovery fallback, ``algorithm`` is tagged
        ``"ecl-mst+serial-fallback"`` and ``extra["resilience"]``
        records the ladder's actions.
    """
    if shards > 1:
        from ..shard.engine import sharded_mst

        return sharded_mst(
            graph,
            config,
            shards=shards,
            shard_strategy=shard_strategy,
            gpu=gpu,
            verify=verify,
            tracer=tracer,
            resilience=resilience,
            fault_plan=fault_plan,
            events=events,
            deadline=deadline,
        )
    config = config or EclMstConfig()
    tracer = tracer if tracer is not None else NULL_TRACER
    events = events if events is not None else get_event_log()
    if events.enabled:
        events = events.bind(run=new_run_id())
    injector = None
    if fault_plan is not None:
        from ..resilience.faults import FaultInjector

        injector = FaultInjector(fault_plan)
        injector.events = events
        injector.tracer = tracer
    device = Device(gpu, tracer=tracer, fault_injector=injector)
    plan = plan_filtering(graph, config)
    round_log: list[RoundStats] = []
    rounds_total = 0

    def _run_phase(threshold: int | None, phase_no: int) -> int:
        kernel_init_populate(state, threshold, phase=phase_no)
        if config.data_driven:
            return _run_data_driven_loop(
                state, weight_of_edge, round_log, guard=guard, events=events,
                deadline=deadline,
            )
        return _run_topology_driven_loop(
            state, threshold, phase_no, weight_of_edge, guard=guard,
            events=events, deadline=deadline,
        )

    def _guarded_phase(label: str, threshold: int | None, phase_no: int) -> int:
        """One phase under the recovery ladder's rung 2 (restart with
        invariants forced on) and rung 3 (serial fallback)."""
        if guard is None:
            return _run_phase(threshold, phase_no)
        from ..resilience.checkpoint import Checkpoint
        from ..resilience.recovery import (
            PhaseRestartRequired,
            SerialFallbackRequired,
        )

        def _escalation(exc) -> bool:
            # Faults surfacing here escaped the per-round guard (e.g. a
            # fault during the populate launch) — treat them as an
            # immediate phase-restart trigger.
            if isinstance(exc, PhaseRestartRequired):
                return True
            if guard.handles(exc):
                guard.note_phase_fault(exc)
                return True
            return False

        cp = Checkpoint.capture(state)
        log_mark = len(round_log)
        try:
            return _run_phase(threshold, phase_no)
        except Exception as exc:
            if not _escalation(exc):
                raise
            guard.note_phase_restart(label)
            cp.restore(state)
            del round_log[log_mark:]
            try:
                return _run_phase(threshold, phase_no)
            except Exception as exc2:
                if not _escalation(exc2):
                    raise
                raise SerialFallbackRequired from exc2

    def _phase_events(label: str, span, threshold) -> None:
        if events.enabled:
            events.emit(
                "solver.phase",
                phase=label,
                threshold=threshold,
                span=getattr(span, "id", 0),
            )

    fell_through = False
    if events.enabled:
        events.emit(
            "solver.run.start",
            graph=graph.name,
            vertices=graph.num_vertices,
            edges=graph.num_edges,
            filtering=plan.active,
        )
    with tracer.span(
        f"ecl-mst on {graph.name}",
        kind="run",
        algorithm="ecl-mst",
        graph=graph.name,
        vertices=graph.num_vertices,
        edges=graph.num_edges,
        filtering=plan.active,
    ):
        # Host-side setup under its own span so the simulator's own
        # Python cost (state arrays, weight table) shows up in
        # host_hotspots alongside the modeled time.
        with tracer.span("build state", kind="host"):
            state = MstState.create(graph, config, device)
            if injector is not None:
                injector.bind_state(state)
            weight_of_edge = _edge_weight_table(graph)

        guard = None
        if resilience is not None:
            from ..resilience.recovery import RoundGuard

            guard = RoundGuard(
                resilience,
                tracer=tracer,
                events=events,
                reference_mask=getattr(resilience, "_reference_mask", None),
            )
            guard.bind(state, weight_of_edge)
            device.probe = guard

        try:
            if plan.active:
                with tracer.span(
                    "phase 1", kind="phase", threshold=plan.threshold
                ) as sp1:
                    _phase_events("phase 1", sp1, plan.threshold)
                    rounds_total += _guarded_phase(
                        "phase 1", plan.threshold, 1
                    )
                with tracer.span(
                    "phase 2", kind="phase", threshold=plan.threshold
                ) as sp2:
                    _phase_events("phase 2", sp2, plan.threshold)
                    rounds_total += _guarded_phase(
                        "phase 2", plan.threshold, 2
                    )
            else:
                with tracer.span("main phase", kind="phase") as sp0:
                    _phase_events("main phase", sp0, None)
                    rounds_total += _guarded_phase("main phase", None, 0)
        except Exception as exc:
            from ..resilience.recovery import SerialFallbackRequired

            if guard is not None and isinstance(exc, SerialFallbackRequired):
                fell_through = True
            else:
                raise
        tracer.annotate(rounds=rounds_total)

    sel = state.in_mst
    algorithm = "ecl-mst"
    degraded = False
    if guard is not None:
        sel, degraded = guard.finalize(graph, sel, fell_through)
        if degraded:
            algorithm = "ecl-mst+serial-fallback"
        if tracer.enabled:
            tracer.roots[-1].annotate(
                resilience_detected=guard.stats.detected,
                resilience_fallback=degraded,
            )

    total_weight = int(weight_of_edge[sel].sum()) if sel.any() else 0
    # Host<->device traffic for the "memcpy" rows: CSR down, edge mask up.
    graph_bytes = (
        4.0 * (graph.num_vertices + 1) + 8.0 * graph.num_directed_edges
    )
    result_bytes = float(graph.num_edges)
    memcpy = device.memcpy_seconds(graph_bytes) + device.memcpy_seconds(result_bytes)

    extra: dict = {
        "filter_plan": plan,
        "config": config,
        "round_log": round_log,
        # The spec the run was priced with, so RunProfile can attribute
        # kernel time against the right roofline without re-plumbing it.
        "gpu_spec": gpu,
    }
    if guard is not None:
        extra["resilience"] = guard.stats.to_dict()
    if injector is not None:
        extra["fault_injection"] = injector.summary()

    result = MstResult(
        graph=graph,
        in_mst=sel.copy(),
        total_weight=total_weight,
        num_mst_edges=int(np.count_nonzero(sel)),
        rounds=rounds_total,
        modeled_seconds=device.elapsed_seconds,
        counters=device.counters,
        memcpy_seconds=memcpy,
        algorithm=algorithm,
        # ``round_log`` is the deprecated alias of ``round_stats``:
        # same RoundStats records (dict-style access still works).
        extra=extra,
        round_stats=round_log,
    )
    if events.enabled:
        events.emit(
            "solver.run.done",
            graph=graph.name,
            rounds=rounds_total,
            mst_edges=result.num_mst_edges,
            total_weight=result.total_weight,
            modeled_seconds=result.modeled_seconds,
            degraded=degraded,
        )
    if verify:
        from .verify import verify_mst

        with tracer.span("verify", kind="host"):
            verify_mst(result)
    return result
