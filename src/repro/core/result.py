"""Result object returned by every MST runner (ECL-MST and baselines)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph
from ..gpusim.counters import RunCounters

__all__ = ["MstResult", "RoundStats"]


@dataclass
class RoundStats:
    """Per-round diagnostics of the Alg.-2 while loop.

    One record per data-driven round: worklist entries at round start,
    entries surviving the cycle discard (round i+1's input), and edges
    committed to the MST.  Emitted through the tracer's ``round`` spans
    and collected on :attr:`MstResult.round_stats`.

    Supports ``stats["entries"]``-style access for compatibility with
    the deprecated ``MstResult.extra["round_log"]`` dict format.
    """

    entries: int
    survivors: int
    added: int

    _KEYS = ("entries", "survivors", "added")

    def __getitem__(self, key: str) -> int:
        if key not in self._KEYS:
            raise KeyError(key)
        return getattr(self, key)

    def keys(self):  # dict-like, so ``dict(stats)`` works
        return iter(self._KEYS)

    def to_dict(self) -> dict[str, int]:
        return {k: getattr(self, k) for k in self._KEYS}

    @property
    def shrink_rate(self) -> float:
        """Survivor fraction (the geometric-decay observable)."""
        return self.survivors / self.entries if self.entries else 0.0


@dataclass
class MstResult:
    """Outcome of one MST/MSF computation.

    ``in_mst[eid]`` flags the undirected edges selected; modeled times
    follow the paper's measurement protocol (computation only;
    ``memcpy_seconds`` adds the host↔device transfers for the
    "ECL-MST memcpy" rows).
    """

    graph: CSRGraph
    in_mst: np.ndarray
    total_weight: int
    num_mst_edges: int
    rounds: int
    modeled_seconds: float
    counters: RunCounters = field(default_factory=RunCounters)
    memcpy_seconds: float = 0.0
    algorithm: str = "ecl-mst"
    extra: dict = field(default_factory=dict)
    # Typed per-round diagnostics; ``extra["round_log"]`` aliases the
    # same records for backwards compatibility (deprecated).
    round_stats: list[RoundStats] = field(default_factory=list)

    @property
    def modeled_seconds_with_memcpy(self) -> float:
        return self.modeled_seconds + self.memcpy_seconds

    def throughput_meps(self, *, include_memcpy: bool = False) -> float:
        """Millions of (directed) edges per second, as in Figures 3/4."""
        t = self.modeled_seconds_with_memcpy if include_memcpy else self.modeled_seconds
        if t <= 0:
            return float("inf")
        return self.graph.num_directed_edges / t / 1e6

    def edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(u, v, w)`` arrays of the selected MST edges."""
        u, v, w, eid = self.graph.undirected_edges()
        sel = self.in_mst[eid]
        return u[sel], v[sel], w[sel]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MstResult({self.algorithm} on {self.graph.name}: "
            f"{self.num_mst_edges} edges, weight {self.total_weight}, "
            f"{self.modeled_seconds * 1e3:.3f} ms modeled)"
        )
