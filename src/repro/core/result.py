"""Result object returned by every MST runner (ECL-MST and baselines)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph
from ..gpusim.counters import RunCounters

__all__ = ["MstResult"]


@dataclass
class MstResult:
    """Outcome of one MST/MSF computation.

    ``in_mst[eid]`` flags the undirected edges selected; modeled times
    follow the paper's measurement protocol (computation only;
    ``memcpy_seconds`` adds the host↔device transfers for the
    "ECL-MST memcpy" rows).
    """

    graph: CSRGraph
    in_mst: np.ndarray
    total_weight: int
    num_mst_edges: int
    rounds: int
    modeled_seconds: float
    counters: RunCounters = field(default_factory=RunCounters)
    memcpy_seconds: float = 0.0
    algorithm: str = "ecl-mst"
    extra: dict = field(default_factory=dict)

    @property
    def modeled_seconds_with_memcpy(self) -> float:
        return self.modeled_seconds + self.memcpy_seconds

    def throughput_meps(self, *, include_memcpy: bool = False) -> float:
        """Millions of (directed) edges per second, as in Figures 3/4."""
        t = self.modeled_seconds_with_memcpy if include_memcpy else self.modeled_seconds
        if t <= 0:
            return float("inf")
        return self.graph.num_directed_edges / t / 1e6

    def edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(u, v, w)`` arrays of the selected MST edges."""
        u, v, w, eid = self.graph.undirected_edges()
        sel = self.in_mst[eid]
        return u[sel], v[sel], w[sel]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MstResult({self.algorithm} on {self.graph.name}: "
            f"{self.num_mst_edges} edges, weight {self.total_weight}, "
            f"{self.modeled_seconds * 1e3:.3f} ms modeled)"
        )
