"""Independent MSF validation — no reference recomputation needed.

:mod:`repro.core.verify` checks a result against serial Kruskal; this
module validates a claimed MSF *from first principles*, the way an
artifact-evaluation checker would:

1. **forest** — the selected edges contain no cycle;
2. **spanning** — |MSF| = |V| − #components, i.e. every component is
   fully connected by the selection;
3. **cut property** — for every non-selected edge (u, v), the path
   between u and v inside the forest contains no edge with a larger
   ``weight:id`` key (equivalently: each non-tree edge is the maximum
   on its induced cycle).  This is the full certificate of minimality
   for unique keys.

The cut check runs in O(|E| · α) using offline LCA-free verification by
Kruskal replay: process all edges in key order; a non-tree edge whose
endpoints are already connected *using only lighter tree edges* is
certified.  If any non-tree edge connects two yet-unconnected
components, a lighter spanning choice existed and the MSF is invalid.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..gpusim.atomics import pack_keys
from .result import MstResult

__all__ = ["validate_msf", "MsfValidationError"]


class MsfValidationError(AssertionError):
    """Raised when a claimed MSF fails a first-principles check."""


def _components(graph: CSRGraph) -> int:
    from ..graph.properties import connected_components

    count, _ = connected_components(graph)
    return count


def validate_msf(result: MstResult) -> None:
    """Validate ``result`` from first principles; raise on violation."""
    graph = result.graph
    u, v, w, eid = graph.undirected_edges()
    sel = result.in_mst[eid]
    n = graph.num_vertices

    # --- forest + spanning via union-find over selected edges -------
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = int(parent[root])
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    for i in np.flatnonzero(sel):
        a, b = find(int(u[i])), find(int(v[i]))
        if a == b:
            raise MsfValidationError(
                f"cycle: selected edge ({u[i]}, {v[i]}) closes a loop"
            )
        parent[max(a, b)] = min(a, b)

    n_cc = _components(graph)
    count = int(np.count_nonzero(sel))
    if count != n - n_cc:
        raise MsfValidationError(
            f"not spanning: {count} edges selected, expected {n - n_cc} "
            f"(|V|={n}, components={n_cc})"
        )

    # --- minimality: Kruskal replay in key order ---------------------
    keys = pack_keys(w, eid)
    order = np.argsort(keys, kind="stable")
    parent = np.arange(n, dtype=np.int64)
    for i in order:
        a, b = find(int(u[i])), find(int(v[i]))
        if sel[i]:
            if a == b:
                raise MsfValidationError(
                    f"non-minimal: selected edge ({u[i]}, {v[i]}, w={w[i]}) "
                    "is dominated by lighter edges"
                )
            parent[max(a, b)] = min(a, b)
        else:
            if a != b:
                raise MsfValidationError(
                    f"non-minimal: skipped edge ({u[i]}, {v[i]}, w={w[i]}) "
                    "crosses a cut with no lighter selected edge"
                )

    # --- reported totals ---------------------------------------------
    true_weight = int(w[sel].sum()) if count else 0
    if result.total_weight != true_weight:
        raise MsfValidationError(
            f"weight mismatch: reported {result.total_weight}, "
            f"edges sum to {true_weight}"
        )
    if result.num_mst_edges != count:
        raise MsfValidationError(
            f"count mismatch: reported {result.num_mst_edges}, mask has {count}"
        )
