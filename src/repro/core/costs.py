"""Per-operation cost constants for the simulated ECL-MST kernels.

Centralizing the constants keeps the calibration story honest: the
*amount* of work (edges touched, pointer jumps, atomics executed,
per-warp imbalance) is counted from the actual execution; only these
per-operation prices are modeled.  They were calibrated once against
the paper's Table 5 deltas (see EXPERIMENTS.md) and are never tuned
per input.
"""

from __future__ import annotations

from .config import EclMstConfig

__all__ = [
    "INIT_VERTEX_CYCLES",
    "INIT_NEIGHBOR_CYCLES",
    "K1_ENTRY_CYCLES",
    "K2_ENTRY_CYCLES",
    "K3_ENTRY_CYCLES",
    "FIND_JUMP_CYCLES",
    "GUARD_CHECK_CYCLES",
    "AOS_ENTRY_BYTES",
    "SOA_ENTRY_BYTES",
    "AOS_ENTRY_CYCLES",
    "SOA_ENTRY_CYCLES",
    "entry_bytes",
    "entry_access_cycles",
]

# --- compute prices (cycles per item) ---------------------------------
INIT_VERTEX_CYCLES = 6.0  # row_ptr loads, degree test, loop setup
INIT_NEIGHBOR_CYCLES = 5.0  # col/weight load, direction + threshold test
K1_ENTRY_CYCLES = 8.0  # unpack entry, compare reps, predicate, append
K2_ENTRY_CYCLES = 7.0  # two minEdge loads, compare, branch
K3_ENTRY_CYCLES = 3.0  # two scatter stores
FIND_JUMP_CYCLES = 6.0  # dependent (serializing) global load per jump
GUARD_CHECK_CYCLES = 2.0  # the plain load + compare of an atomic guard

# A pointer jump is a data-dependent random access: the hardware
# fetches a whole 32-byte sector for one 8-byte parent entry.
FIND_JUMP_BYTES = 24.0
# Scattered single-value accesses (minEdge guards/stores) likewise.
SCATTER_ACCESS_BYTES = 16.0

# --- memory prices (bytes per worklist entry access) ------------------
# AoS: one 16-byte vectorized transaction per 4-tuple.
AOS_ENTRY_BYTES = 16.0
# SoA ("No Tuples"): four separate 4-byte accesses; even coalesced they
# quadruple the transaction count and pull four distinct cache lines
# per entry, so the effective traffic is well above the 16 payload
# bytes.
SOA_ENTRY_BYTES = 44.0
# Instruction-side cost of the same access: 1 vs 4 memory instructions.
AOS_ENTRY_CYCLES = 2.0
SOA_ENTRY_CYCLES = 14.0


# Adjacency-scan traffic per directed slot in the init kernel: the
# hybrid scheme lets whole warps stream a vertex's neighbor list
# (coalesced); one-thread-per-vertex walks are strided and pull extra
# sectors.
INIT_SLOT_BYTES_HYBRID = 9.0
INIT_SLOT_BYTES_THREAD = 18.0
# Vertex-centric worklist walks are likewise per-thread strided streams.
VERTEX_CENTRIC_READ_FACTOR = 2.0


def entry_bytes(config: EclMstConfig) -> float:
    """DRAM bytes per worklist-entry read or write under ``config``."""
    return AOS_ENTRY_BYTES if config.tuple_worklist else SOA_ENTRY_BYTES


def entry_access_cycles(config: EclMstConfig) -> float:
    """Instruction cycles per worklist-entry access under ``config``."""
    return AOS_ENTRY_CYCLES if config.tuple_worklist else SOA_ENTRY_CYCLES
