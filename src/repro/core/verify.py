"""Serial-Kruskal verification (Section 4).

The paper: *"The ECL-MST implementation verifies the solution at the
end of each run by comparing it to the solution of a serial
implementation of Kruskal's algorithm."*  Because the ``weight:edge-ID``
keys are unique, the MSF is *unique*, so verification can require the
exact same edge set, not merely the same total weight.
"""

from __future__ import annotations

import numpy as np

from ..errors import VerificationError
from ..graph.csr import CSRGraph
from ..gpusim.atomics import pack_keys
from .result import MstResult

__all__ = ["reference_mst_mask", "verify_mst", "VerificationError"]


def reference_mst_mask(graph: CSRGraph) -> np.ndarray:
    """Boolean per-edge-ID mask of the unique MSF, by serial Kruskal.

    Edges are processed in increasing packed-key order (weight, then
    edge ID — the same deterministic tie-break ECL-MST's atomicMin
    uses) with a path-compressed union-find.
    """
    u, v, w, eid = graph.undirected_edges()
    order = np.argsort(pack_keys(w, eid), kind="stable")
    parent = np.arange(graph.num_vertices, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = int(parent[root])
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    mask = np.zeros(graph.num_edges, dtype=bool)
    for i in order:
        ra, rb = find(int(u[i])), find(int(v[i]))
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)
            mask[eid[i]] = True
    return mask


def verify_mst(result: MstResult) -> None:
    """Check ``result`` against the serial reference; raise on mismatch."""
    graph = result.graph
    ref = reference_mst_mask(graph)
    if result.in_mst.shape != ref.shape:
        raise VerificationError(
            f"edge mask has shape {result.in_mst.shape}, expected {ref.shape}"
        )
    if not np.array_equal(result.in_mst, ref):
        extra = int(np.count_nonzero(result.in_mst & ~ref))
        missing = int(np.count_nonzero(ref & ~result.in_mst))
        raise VerificationError(
            f"{result.algorithm} on {graph.name}: edge set differs from the "
            f"serial Kruskal reference ({extra} extra, {missing} missing)"
        )
    u, v, w, eid = graph.undirected_edges()
    ref_weight = int(w[ref[eid]].sum())
    if result.total_weight != ref_weight:
        raise VerificationError(
            f"total weight {result.total_weight} != reference {ref_weight}"
        )
    ref_count = int(np.count_nonzero(ref))
    if result.num_mst_edges != ref_count:
        raise VerificationError(
            f"edge count {result.num_mst_edges} != reference {ref_count}"
        )
