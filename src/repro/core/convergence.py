"""Executable demonstration of Section 3.1: the convergence of
Kruskal's and Borůvka's parallelizations.

The paper's fourth contribution is the observation that fully
parallelizing Kruskal's algorithm *converges* to the natural
parallelization of Borůvka's.  This module re-enacts the derivation as
three runnable algorithms plus the equivalence checks:

1. :func:`kruskal_chunked_sorted` — the mid-point of the derivation:
   edges sorted by key, processed in chunks, with **edge-index**
   deterministic reservations ("the relative position of the edge
   within the chunk ... but only if it is smaller than the smallest
   index already recorded").

2. :func:`kruskal_unsorted` — the paper's two optimizations applied:
   since sorted order makes a lower index equivalent to a lower weight,
   reserve by **weight key** instead — and then sorting becomes
   unnecessary and the chunk can cover all edges.  This *is* ECL-MST's
   parallelization (edge-centric viewpoint).

3. :func:`boruvka_parallel` — the Section-3.1 Borůvka parallelization
   (vertex-centric viewpoint): every vertex records its lightest
   cross-set neighbor at its representative, then representatives
   merge.

The equivalence is checkable per round, not just at the end:
:func:`trace_equivalence` verifies that (2) and (3) select the *same
winner edges in the same rounds*, and that (1) selects the same total
edge set — which is exactly the paper's claim that "there is no actual
difference in the codes", merely a difference in viewpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpusim.atomics import KEY_INFINITY, pack_keys
from ..graph.csr import CSRGraph

__all__ = [
    "RoundTrace",
    "kruskal_chunked_sorted",
    "kruskal_unsorted",
    "boruvka_parallel",
    "trace_equivalence",
]


@dataclass
class RoundTrace:
    """Per-round record of one parallelization run."""

    algorithm: str
    winners_per_round: list[frozenset[int]] = field(default_factory=list)
    in_mst: np.ndarray | None = None

    @property
    def rounds(self) -> int:
        return len(self.winners_per_round)

    def edge_set(self) -> frozenset[int]:
        out: set[int] = set()
        for w in self.winners_per_round:
            out |= w
        return frozenset(out)


def _find_many(parent: np.ndarray, xs: np.ndarray) -> np.ndarray:
    cur = xs.copy()
    while True:
        nxt = parent[cur]
        if np.array_equal(nxt, cur):
            return cur
        cur = nxt


def _commit(parent: np.ndarray, p: np.ndarray, q: np.ndarray, win_idx):
    """Sequentially apply the winning unions (CAS-equivalent)."""
    committed = []
    for i in win_idx:
        a, b = int(p[i]), int(q[i])
        while parent[a] != a:
            a = int(parent[a])
        while parent[b] != b:
            b = int(parent[b])
        if a != b:
            parent[max(a, b)] = min(a, b)
            committed.append(i)
    return committed


def kruskal_chunked_sorted(graph: CSRGraph, chunk_size: int | None = None) -> RoundTrace:
    """Parallel Kruskal, derivation mid-point: sorted edges, chunked
    processing, reservations by *relative edge index within the chunk*.
    """
    u, v, w, eid = graph.undirected_edges()
    keys = pack_keys(w, eid)
    order = np.argsort(keys, kind="stable")
    u, v, w, eid = u[order], v[order], w[order], eid[order]
    n = graph.num_vertices
    if chunk_size is None:
        chunk_size = max(1, n // 2)

    parent = np.arange(n, dtype=np.int64)
    reservation = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    trace = RoundTrace("kruskal-chunked-sorted")
    in_mst = np.zeros(graph.num_edges, dtype=bool)

    for start in range(0, u.size, chunk_size):
        stop = min(start + chunk_size, u.size)
        live = np.arange(start, stop, dtype=np.int64)
        while live.size:
            p = _find_many(parent, u[live].astype(np.int64))
            q = _find_many(parent, v[live].astype(np.int64))
            cross = p != q
            live, p, q = live[cross], p[cross], q[cross]
            if live.size == 0:
                break
            # Reserve by index-within-chunk (position in sorted order).
            idx = live - start
            np.minimum.at(reservation, p, idx)
            np.minimum.at(reservation, q, idx)
            win = (idx == reservation[p]) | (idx == reservation[q])
            committed = _commit(parent, p, q, np.flatnonzero(win))
            winners = frozenset(int(eid[live[i]]) for i in committed)
            if winners:
                in_mst[list(winners)] = True
                trace.winners_per_round.append(winners)
            touched = np.unique(np.concatenate([p, q]))
            reservation[touched] = np.iinfo(np.int64).max
            live = live[~win]
    trace.in_mst = in_mst
    return trace


def kruskal_unsorted(graph: CSRGraph) -> RoundTrace:
    """The end-point of the derivation: one all-edges chunk, unsorted,
    reservations by packed weight key — ECL-MST's parallelization,
    edge-centric viewpoint."""
    u, v, w, eid = graph.undirected_edges()
    keys = pack_keys(w, eid)
    n = graph.num_vertices
    parent = np.arange(n, dtype=np.int64)
    reservation = np.full(n, KEY_INFINITY, dtype=np.uint64)
    trace = RoundTrace("kruskal-unsorted")
    in_mst = np.zeros(graph.num_edges, dtype=bool)

    live = np.arange(u.size, dtype=np.int64)
    while live.size:
        p = _find_many(parent, u[live].astype(np.int64))
        q = _find_many(parent, v[live].astype(np.int64))
        cross = p != q
        live, p, q = live[cross], p[cross], q[cross]
        if live.size == 0:
            break
        k = keys[live]
        np.minimum.at(reservation, p, k)
        np.minimum.at(reservation, q, k)
        win = (k == reservation[p]) | (k == reservation[q])
        committed = _commit(parent, p, q, np.flatnonzero(win))
        winners = frozenset(int(eid[live[i]]) for i in committed)
        if winners:
            in_mst[list(winners)] = True
            trace.winners_per_round.append(winners)
        touched = np.unique(np.concatenate([p, q]))
        reservation[touched] = KEY_INFINITY
        live = live[~win]
    trace.in_mst = in_mst
    return trace


def boruvka_parallel(graph: CSRGraph) -> RoundTrace:
    """The Section-3.1 Borůvka parallelization, vertex-centric
    viewpoint: every vertex records its lightest cross-set neighbor in
    its set's representative; representatives then merge."""
    n = graph.num_vertices
    src = graph.edge_sources().astype(np.int64)
    dst = graph.col_idx.astype(np.int64)
    w = graph.weights.astype(np.int64)
    eid = graph.edge_ids.astype(np.int64)
    keys_all = pack_keys(w, eid)

    parent = np.arange(n, dtype=np.int64)
    min_edge = np.full(n, KEY_INFINITY, dtype=np.uint64)
    trace = RoundTrace("boruvka-parallel")
    in_mst = np.zeros(graph.num_edges, dtype=bool)

    while True:
        # Step 1: every vertex determines its set.
        rep = _find_many(parent, np.arange(n, dtype=np.int64))
        p, q = rep[src], rep[dst]
        cross = p != q
        if not cross.any():
            break
        # Step 2: record the lightest cross neighbor at the rep (each
        # vertex pushes its candidates; the atomicMin keeps the min).
        np.minimum.at(min_edge, p[cross], keys_all[cross])
        # Step 3: each representative merges along its recorded edge.
        # An edge is "recorded" if its key sits in either endpoint rep
        # (the mirrored slot recorded it for the other side).
        win = cross & (
            (keys_all == min_edge[p]) | (keys_all == min_edge[q])
        )
        win_slots = np.flatnonzero(win)
        committed = _commit(parent, p, q, win_slots)
        winners = frozenset(int(eid[i]) for i in committed)
        # Mirrored duplicates commit only once; collect all marked IDs.
        marked = frozenset(int(e) for e in np.unique(eid[win_slots]))
        new = frozenset(e for e in marked if not in_mst[e])
        if new:
            in_mst[list(new)] = True
            trace.winners_per_round.append(new)
        touched = np.unique(np.concatenate([p[cross], q[cross]]))
        min_edge[touched] = KEY_INFINITY
        if not winners and not new:
            break
    trace.in_mst = in_mst
    return trace


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of the convergence demonstration."""

    same_edge_set: bool
    same_round_structure: bool
    rounds: tuple[int, int, int]  # chunked, unsorted, boruvka

    @property
    def converged(self) -> bool:
        return self.same_edge_set and self.same_round_structure


def trace_equivalence(graph: CSRGraph, chunk_size: int | None = None) -> EquivalenceReport:
    """Run all three parallelizations and compare.

    * All three must select the identical MSF edge set.
    * The unsorted-Kruskal and Borůvka runs must select the *same
      winners in the same rounds* — the paper's "no actual difference
      in the codes".
    """
    chunked = kruskal_chunked_sorted(graph, chunk_size)
    unsorted = kruskal_unsorted(graph)
    boruvka = boruvka_parallel(graph)

    same_set = (
        chunked.edge_set() == unsorted.edge_set() == boruvka.edge_set()
    )
    same_rounds = unsorted.winners_per_round == boruvka.winners_per_round
    return EquivalenceReport(
        same_edge_set=same_set,
        same_round_structure=same_rounds,
        rounds=(chunked.rounds, unsorted.rounds, boruvka.rounds),
    )
