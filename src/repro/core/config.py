"""ECL-MST configuration: the eight optimizations of Section 3.2/5.3.

Every toggle corresponds to one row of the de-optimization study
(Table 5 / Figure 5).  The stages there are *cumulative* — each version
removes one more optimization than the previous — which
:func:`deopt_stages` reproduces in the paper's order.

All configurations compute the identical MSF (the paper verifies every
de-optimized version too); the toggles change only how much work the
simulated hardware performs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ENGINES", "EclMstConfig", "deopt_stages", "DEOPT_STAGE_NAMES"]

# Host execution engines for the solver hot paths (not an ablation
# axis: both engines model the identical GPU and price identically).
ENGINES: tuple[str, ...] = ("vectorized", "scalar")


@dataclass(frozen=True)
class EclMstConfig:
    """Feature switches for :func:`repro.core.eclmst.ecl_mst`.

    Attributes
    ----------
    atomic_guards:
        Pre-check ``minEdge`` with a plain load and skip the
        ``atomicMin`` when it cannot lower the value.
    hybrid_parallelization:
        Warp-per-vertex for degree ≥ 4 in the (vertex-centric) init
        kernel, thread-per-vertex below.
    filtering:
        One-shot Filter-Kruskal-style split: sample ``filter_samples``
        edge weights, estimate the weight bound of the ``filter_c·|V|``
        lightest edges, run phase 1 under the bound, filter, then phase
        2.  Skipped when the average degree is below ``filter_c``.
    implicit_path_compression:
        Store representatives instead of original endpoints when
        re-appending worklist entries (Line 18 of Alg. 2).  When off,
        entries keep their endpoint IDs and finds use explicit GPU
        path halving.
    single_direction:
        Process each undirected edge once (skip the mirrored CSR slot).
    tuple_worklist:
        AoS 16-byte 4-tuples (one vectorized access) instead of four
        separate arrays.
    data_driven:
        Worklist-driven rounds; when off, every round scans all edges
        (topology-driven).
    edge_centric:
        Assign one worklist *edge* per thread; when off, a thread owns
        a vertex and serially processes all of that vertex's edges.
    hybrid_threshold:
        Degree at which the init kernel hands a vertex to a whole warp
        (the paper uses ``d(v) >= 4``); only meaningful while
        ``hybrid_parallelization`` is on.
    filter_c:
        Target multiple of ``|V|`` for the phase-1 edge budget (the
        paper uses 4; values 2-4 work well).
    filter_samples:
        Number of sampled edge weights (the paper uses 20).
    seed:
        RNG seed for the filter sampling (the §5.4 seed study).
    engine:
        Host execution engine for the union hot path of Kernel 2:
        ``"vectorized"`` (the default) resolves winner roots with
        batched pointer jumping and applies links through an iterative
        conflict-free pass that reproduces the worklist-order
        serialization; ``"scalar"`` is the original per-winner Python
        loop, kept as the differential-testing oracle.  The two are
        bit-identical — same MSF, same kernel counters, same modeled
        seconds — and differ only in host wall-clock.
    """

    atomic_guards: bool = True
    hybrid_parallelization: bool = True
    filtering: bool = True
    implicit_path_compression: bool = True
    single_direction: bool = True
    tuple_worklist: bool = True
    data_driven: bool = True
    edge_centric: bool = True
    hybrid_threshold: int = 4
    filter_c: float = 4.0
    filter_samples: int = 20
    seed: int = 0
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose from "
                f"{', '.join(ENGINES)}"
            )

    def with_(self, **kw) -> "EclMstConfig":
        """Functional update (``dataclasses.replace`` shorthand)."""
        return replace(self, **kw)


DEOPT_STAGE_NAMES: tuple[str, ...] = (
    "ECL-MST",
    "No Atomic Guards",
    "Thread-Based",
    "No Filter",
    "No Impl. Path Compr.",
    "Both Edge Dir.",
    "No Tuples",
    "Topology-Driven",
    "Vertex-Centric",
)


def deopt_stages(base: EclMstConfig | None = None) -> list[tuple[str, EclMstConfig]]:
    """The cumulative de-optimization ladder of Table 5.

    Stage *i* removes the first *i* optimizations, in the order the
    paper lists them (Section 5.3).
    """
    cfg = base or EclMstConfig()
    removals = (
        {},
        {"atomic_guards": False},
        {"hybrid_parallelization": False},
        {"filtering": False},
        {"implicit_path_compression": False},
        {"single_direction": False},
        {"tuple_worklist": False},
        {"data_driven": False},
        {"edge_centric": False},
    )
    stages: list[tuple[str, EclMstConfig]] = []
    acc: dict = {}
    for name, removal in zip(DEOPT_STAGE_NAMES, removals):
        acc.update(removal)
        stages.append((name, cfg.with_(**acc)))
    return stages
