"""The paper's contribution: ECL-MST on the simulated GPU substrate."""

from .config import DEOPT_STAGE_NAMES, EclMstConfig, deopt_stages
from .convergence import (
    boruvka_parallel,
    kruskal_chunked_sorted,
    kruskal_unsorted,
    trace_equivalence,
)
from .eclmst import ecl_mst
from .filtering import FilterPlan, plan_filtering, threshold_accuracy
from .result import MstResult, RoundStats
from .validate import MsfValidationError, validate_msf
from .verify import VerificationError, reference_mst_mask, verify_mst

__all__ = [
    "DEOPT_STAGE_NAMES",
    "EclMstConfig",
    "FilterPlan",
    "MsfValidationError",
    "MstResult",
    "RoundStats",
    "VerificationError",
    "boruvka_parallel",
    "deopt_stages",
    "ecl_mst",
    "kruskal_chunked_sorted",
    "kruskal_unsorted",
    "plan_filtering",
    "reference_mst_mask",
    "threshold_accuracy",
    "trace_equivalence",
    "validate_msf",
    "verify_mst",
]
