"""The four ECL-MST kernels (Algs. 1 and 2) on the simulated GPU.

Semantics are exact: the kernels perform the real work with vectorized
NumPy and order-independent atomic equivalents, so every configuration
produces the true MSF.  Alongside the work, each kernel *counts* what
the CUDA threads would have done — CSR bytes touched, worklist entries
read/written, pointer jumps, atomics executed vs. guard-skipped,
per-warp imbalance cycles — and reports the counts to the
:class:`~repro.gpusim.costmodel.Device`, which prices the launch.

Kernel map (paper Alg. 2):

* ``init``       — Alg. 1 + worklist population (Lines 1-11)
* ``k1_reserve`` — find + cycle discard + atomicMin reservations
  (Lines 14-23)
* ``k2_union``   — winner check + union + MST marking (Lines 27-33)
* ``k3_reset``   — minEdge reset (Lines 34-37)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dsu.vectorized import compress_halving_many, find_many, resolve_roots
from ..errors import InvariantViolation
from ..graph.csr import CSRGraph
from ..gpusim.atomics import KEY_INFINITY, atomic_min_u64, pack_keys
from ..gpusim.costmodel import Device
from ..gpusim.warp import (
    edge_centric_cycles,
    hybrid_cycles,
    thread_mode_cycles,
)
from . import costs
from .arena import ScratchArena
from .config import EclMstConfig
from .worklist import EdgeList, Worklist

__all__ = ["MstState", "kernel_init_populate", "kernel1_reserve", "kernel2_union", "kernel3_reset"]


@dataclass
class MstState:
    """Mutable algorithm state shared by the kernels."""

    graph: CSRGraph
    config: EclMstConfig
    device: Device
    parent: np.ndarray
    min_edge: np.ndarray
    in_mst: np.ndarray
    wl: Worklist = field(default_factory=Worklist)
    # Per-run scratch buffer pool: round-local arrays (cross masks,
    # packed keys, conflict tables) reuse the previous round's storage
    # instead of churning the allocator.
    arena: ScratchArena = field(default_factory=ScratchArena)
    # Representatives computed by the most recent k1/k2, reused by the
    # next kernel in the same round (the real code re-derives them from
    # the worklist entries themselves under implicit path compression).
    _round_p: np.ndarray | None = None
    _round_q: np.ndarray | None = None
    # Packed (weight << 32 | edge-ID) keys of the entries k2 will see,
    # computed by this round's k1 so k2 skips a full re-pack.  Keyed by
    # the identity of the front's eid column, so a refilled or restored
    # front can never match stale keys.
    _round_val: np.ndarray | None = None
    _round_val_key: np.ndarray | None = None
    # Cached per-vertex entry counts keyed by worklist-column identity:
    # k1/k2/k3 price vertex-centric loops over the same column, and the
    # topology-driven loop re-presents the identical arrays each round.
    _vcount_key: np.ndarray | None = None
    _vcount: np.ndarray | None = None
    # int64 views of the CSR edge columns plus the expanded source
    # column, materialized once per run: the init kernel runs twice
    # under filtering and these conversions are full-edge-list copies.
    _init_cols: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None

    @classmethod
    def create(cls, graph: CSRGraph, config: EclMstConfig, device: Device) -> "MstState":
        n = graph.num_vertices
        return cls(
            graph=graph,
            config=config,
            device=device,
            parent=np.arange(n, dtype=np.int64),
            min_edge=np.full(n, KEY_INFINITY, dtype=np.uint64),
            in_mst=np.zeros(graph.num_edges, dtype=bool),
        )

    # ------------------------------------------------------------------
    def init_columns(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(src, dst, w, eid)`` int64 edge columns, cached per run."""
        if self._init_cols is None:
            g = self.graph
            self._init_cols = (
                g.edge_sources().astype(np.int64),
                g.col_idx.astype(np.int64),
                g.weights.astype(np.int64),
                g.edge_ids.astype(np.int64),
            )
        return self._init_cols

    # ------------------------------------------------------------------
    def vertex_counts(self, v: np.ndarray) -> np.ndarray:
        """Per-vertex occurrence counts of worklist column ``v``.

        Cached by array identity: k1's critical-path accounting and the
        vertex-centric loop pricing in k1/k2/k3 all count the same
        column, and the topology-driven loop re-presents the identical
        arrays every round — one bincount serves them all.  The cache
        holds a reference to the keyed array, so an ``is`` hit can
        never alias a recycled id.
        """
        if self._vcount_key is not v:
            self._vcount = np.bincount(
                v, minlength=self.graph.num_vertices
            )
            self._vcount_key = v
        assert self._vcount is not None
        return self._vcount

    # ------------------------------------------------------------------
    def find_entries(self, xs: np.ndarray) -> tuple[np.ndarray, int, int]:
        """Resolve representatives for worklist endpoints.

        Returns ``(roots, loads, writes)``.  Under implicit path
        compression the entries already sit at (or one hop from) their
        roots, so a plain read-only find is cheapest; the de-optimized
        variant uses explicit GPU path halving, which costs extra loads
        and compression writes.
        """
        if self.config.implicit_path_compression:
            roots, loads = find_many(self.parent, xs)
            return roots, loads, 0
        roots, loads, writes = compress_halving_many(self.parent, xs)
        return roots, loads, writes


# ----------------------------------------------------------------------
# Cost helpers
# ----------------------------------------------------------------------
def _outer_loop_cycles(state: MstState, per_vertex_work: np.ndarray, per_item: float) -> float:
    """Cycles of a vertex-parallel loop under the configured scheme."""
    cfg = state.config
    if cfg.hybrid_parallelization:
        return hybrid_cycles(
            per_vertex_work, per_item, threshold=cfg.hybrid_threshold
        )
    return thread_mode_cycles(per_vertex_work, per_item)


def _entry_prices(cfg: EclMstConfig) -> tuple[float, float]:
    """(bytes, cycles) per worklist-entry access.

    Topology-driven variants have no worklists: they re-read the static
    per-edge arrays, which stream sequentially and coalesce perfectly,
    so they always pay the AoS price regardless of the tuple toggle.
    """
    if not cfg.data_driven:
        eb, ec = costs.AOS_ENTRY_BYTES, costs.AOS_ENTRY_CYCLES
    else:
        eb, ec = costs.entry_bytes(cfg), costs.entry_access_cycles(cfg)
    if not cfg.edge_centric:
        # One thread walking all of a vertex's entries is a strided,
        # uncoalesced stream.
        eb *= costs.VERTEX_CENTRIC_READ_FACTOR
    return eb, ec


def _entry_loop_cycles(state: MstState, v_entries: np.ndarray, per_item: float) -> float:
    """Cycles of a worklist-parallel loop.

    Edge-centric: one entry per thread, uniform.  Vertex-centric (the
    final ablation stage): each thread owns a vertex and serially walks
    that vertex's entries, so imbalance is the per-vertex entry count.
    """
    cfg = state.config
    if cfg.edge_centric:
        return edge_centric_cycles(int(v_entries.size), per_item)
    if v_entries.size == 0:
        return 0.0
    counts = state.vertex_counts(v_entries)
    if cfg.hybrid_parallelization:
        return hybrid_cycles(counts, per_item)
    return thread_mode_cycles(counts, per_item)


# ----------------------------------------------------------------------
# Kernel: initialization + worklist population
# ----------------------------------------------------------------------
def kernel_init_populate(
    state: MstState, threshold: int | None, phase: int
) -> int:
    """Alg. 1 + Lines 1-11 of Alg. 2: fill WL1 from the CSR graph.

    ``phase`` selects the threshold condition: 1 keeps weights strictly
    under the bound, 2 inverts it and rewrites endpoints to their
    current representatives (``set(v)``/``set(n)``), which *is* the
    filtering step — same-set edges are dropped here instead of living
    through another round.  ``phase == 0`` means no filtering.

    Returns the number of entries appended.
    """
    g, cfg, dev = state.graph, state.config, state.device
    src, dst, w, eid = state.init_columns()

    if cfg.single_direction:
        mask = src < dst
    else:
        mask = np.ones(src.size, dtype=bool)
    if threshold is not None:
        if phase == 1:
            mask &= w < threshold
        else:
            mask &= w >= threshold

    sel = np.flatnonzero(mask)
    v_sel, n_sel, w_sel, e_sel = src[sel], dst[sel], w[sel], eid[sel]
    find_loads = 0
    if phase == 2:
        # Filtering: replace endpoints by representatives and drop the
        # edges that have become internal to a component (cycles).
        p, lp, _ = state.find_entries(v_sel)
        q, lq, _ = state.find_entries(n_sel)
        find_loads = lp + lq
        keep = np.flatnonzero(p != q)
        if cfg.implicit_path_compression:
            v_sel, n_sel = p[keep], q[keep]
        else:
            v_sel, n_sel = v_sel[keep], n_sel[keep]
        w_sel, e_sel = w_sel[keep], e_sel[keep]

    entries = EdgeList(v_sel, n_sel, w_sel, e_sel)
    state.wl.fill_front(entries)
    appended = len(entries)

    # --- accounting: this kernel walks the CSR structure ------------
    degrees = g.degrees()
    cycles = _outer_loop_cycles(state, degrees, costs.INIT_NEIGHBOR_CYCLES)
    cycles += g.num_vertices * costs.INIT_VERTEX_CYCLES
    cycles += appended * costs.entry_access_cycles(cfg)
    cycles += find_loads * costs.FIND_JUMP_CYCLES
    slot_bytes = (
        costs.INIT_SLOT_BYTES_HYBRID
        if cfg.hybrid_parallelization
        else costs.INIT_SLOT_BYTES_THREAD
    )
    bytes_ = (
        8.0 * g.num_vertices  # row_ptr reads
        + slot_bytes * g.num_directed_edges  # adjacency scan
        + costs.entry_bytes(cfg) * appended  # worklist writes
        + costs.FIND_JUMP_BYTES * find_loads  # parent loads in phase 2
    )
    # Longest single-thread chain: hybrid splits a heavy vertex's
    # adjacency across a warp (its lanes stride the list), while
    # vertices below the threshold — and every vertex in thread mode —
    # serialize on one thread.
    dmax = int(degrees.max()) if degrees.size else 0
    if cfg.hybrid_parallelization:
        critical = max(
            -(-dmax // 32), min(dmax, max(0, cfg.hybrid_threshold - 1))
        )
    else:
        critical = dmax
    dev.launch(
        "init",
        items=g.num_directed_edges,
        cycles=cycles,
        bytes_=bytes_,
        atomics=appended,  # atomicAdd slot reservations
        critical_items=critical,
        find_jumps=find_loads,
    )
    if dev.tracer.enabled:
        dev.tracer.annotate(populate_phase=phase, populated=appended)
    return appended


# ----------------------------------------------------------------------
# Kernel 1: find + discard cycles + reserve minima (Lines 14-23)
# ----------------------------------------------------------------------
def kernel1_reserve(state: MstState) -> int:
    """Process WL1: discard same-set edges, re-append survivors to WL2
    (with implicit path compression), and reserve each set's minimum
    edge via guarded ``atomicMin``.

    Returns the number of surviving entries.
    """
    cfg, dev = state.config, state.device
    wl = state.wl.front

    p, loads_v, writes_v = state.find_entries(wl.v)
    q, loads_n, writes_n = state.find_entries(wl.n)
    loads = loads_v + loads_n

    cross = np.not_equal(
        p, q, out=state.arena.take("k1.cross", p.size, np.bool_)
    )
    # One index vector, then integer takes: every boolean gather would
    # re-scan the mask, and this mask is applied up to six times.
    sel = np.flatnonzero(cross)
    survivors = int(sel.size)
    pc, qc = p[sel], q[sel]
    wc, ec = wl.w[sel], wl.eid[sel]

    if cfg.implicit_path_compression:
        # Line 18: store representatives in lieu of the endpoints.
        new_entries = EdgeList(pc, qc, wc, ec)
    else:
        new_entries = EdgeList(wl.v[sel], wl.n[sel], wc, ec)
    if cfg.data_driven:
        state.wl.append_back(new_entries)

    if cfg.data_driven:
        val = pack_keys(
            wc, ec, out=state.arena.take("k1.val", survivors, np.uint64)
        )
        # After the swap the surviving (w, eid) columns *are* the front
        # k2 sees this round, so k2 can reuse the packed keys verbatim.
        state._round_val, state._round_val_key = val, ec
    else:
        # Topology-driven: the front is the identical full edge list
        # every round, so its packed keys are loop-invariant.
        if state._round_val_key is not wl.eid:
            state._round_val = pack_keys(wl.w, wl.eid)
            state._round_val_key = wl.eid
        val = state._round_val[sel]
    inj = dev.fault_injector
    ex_p, sk_p = atomic_min_u64(
        state.min_edge, pc, val, guarded=cfg.atomic_guards, injector=inj
    )
    ex_q, sk_q = atomic_min_u64(
        state.min_edge, qc, val, guarded=cfg.atomic_guards, injector=inj
    )
    executed, skipped = ex_p + ex_q, sk_p + sk_q

    # Same-address serialization: the hottest minEdge slot.  With
    # guards only the running-minima execute (harmonic expectation);
    # without, every lane targeting the slot issues its atomic.
    if survivors:
        # One pass over the survivor subset instead of two full-width
        # bincounts: tagging the two endpoint columns into disjoint key
        # spaces makes a single unique() yield both per-side counts,
        # whose overall max is exactly max(bincount(pc), bincount(qc)).
        tagged = state.arena.take("k1.tagged", 2 * survivors)
        np.multiply(pc, 2, out=tagged[:survivors])
        np.multiply(qc, 2, out=tagged[survivors:])
        tagged[survivors:] += 1
        if survivors * 16 >= state.graph.num_vertices:
            hot = int(np.bincount(tagged).max())
        else:
            hot = int(np.unique(tagged, return_counts=True)[1].max())
        contention = (
            int(np.ceil(np.log(hot) + 0.5772)) if cfg.atomic_guards else hot
        )
    else:
        contention = 0

    state._round_p, state._round_q = p, q

    # --- accounting --------------------------------------------------
    n_items = len(wl)
    eb, ecyc = _entry_prices(cfg)
    web = costs.entry_bytes(cfg)  # appends always go to a real worklist
    cycles = _entry_loop_cycles(state, wl.v, costs.K1_ENTRY_CYCLES + ecyc)
    cycles += loads * costs.FIND_JUMP_CYCLES
    cycles += 2 * survivors * costs.GUARD_CHECK_CYCLES  # guard loads
    appends = survivors if cfg.data_driven else 0
    cycles += appends * costs.entry_access_cycles(cfg)
    bytes_ = (
        eb * n_items  # worklist reads
        + costs.FIND_JUMP_BYTES * loads  # parent chasing
        + costs.FIND_JUMP_BYTES * (writes_v + writes_n)  # halving writes
        + 2 * costs.SCATTER_ACCESS_BYTES * survivors  # minEdge guard loads
        + costs.SCATTER_ACCESS_BYTES * executed  # atomicMin stores
        + web * appends  # worklist writes
    )
    critical = 0
    if not cfg.edge_centric and n_items:
        # Shares the identity-cached bincount with the loop pricing.
        critical = int(state.vertex_counts(wl.v).max())
    dev.launch(
        "k1_reserve",
        items=n_items,
        cycles=cycles,
        bytes_=bytes_,
        atomics=executed + appends,
        atomics_skipped=skipped,
        atomic_max_contention=contention,
        critical_items=critical,
        find_jumps=loads,
    )
    if dev.tracer.enabled:
        dev.tracer.annotate(
            k1_survivors=survivors,
            k1_atomics_executed=executed,
            k1_atomics_skipped=skipped,
        )
    return survivors


# ----------------------------------------------------------------------
# Kernel 2: winner check + union + MST marking (Lines 27-33)
# ----------------------------------------------------------------------
def _find_root(parent: np.ndarray, x: int) -> tuple[int, int]:
    loads = 1
    while parent[x] != x:
        x = int(parent[x])
        loads += 1
        if loads > parent.size + 1:
            # Only corrupted parent pointers can cycle; surface a typed
            # violation the recovery ladder understands.
            raise InvariantViolation(
                "parent-pointer cycle detected during union find",
                invariant="parent-acyclic",
                kernel="k2_union",
            )
    return x, loads


def _union_scalar(
    state: MstState,
    p: np.ndarray,
    q: np.ndarray,
    eids: np.ndarray,
    win_idx: np.ndarray,
) -> tuple[int, int, int, int]:
    """Per-winner union loop in worklist order (the reference oracle).

    Returns ``(cas_attempts, union_loads, added, mirror_dups)``.
    """
    parent = state.parent
    cas_attempts = 0
    union_loads = 0
    added = 0
    mirror_dups = 0
    for i in win_idx:
        a, la = _find_root(parent, int(p[i]))
        b, lb = _find_root(parent, int(q[i]))
        union_loads += la + lb
        cas_attempts += 1
        if a == b:
            # Only possible for a mirrored duplicate of an edge already
            # committed this round (the "Both Edge Directions" variant).
            mirror_dups += 1
            continue
        lo, hi = (a, b) if a < b else (b, a)
        parent[hi] = lo
        eid = int(eids[i])
        if not state.in_mst[eid]:
            state.in_mst[eid] = True
            added += 1
    return cas_attempts, union_loads, added, mirror_dups


_NO_WRITER = np.iinfo(np.int64).max


def _winner_components(
    state: "MstState", ra: np.ndarray, rb: np.ndarray
) -> tuple[np.ndarray, int]:
    """Label each pending winner with its root-pair-graph component.

    Blocking can only propagate along chains of winners that share
    roots (transitively): a winner's eventual link always targets a
    root inside its connected component of the pending root-pair
    graph.  The labels are computed *once* per union call — links
    never leave their component, so a winner's label stays valid for
    every later wave even as its resolved roots move.

    The label graph is compacted to the pending roots through a dirty
    arena mark/map table pair (no sort, no ``unique``) so scipy's
    component run scales with the winner count, not ``|V|``.  The
    mark table's all-``False`` invariant is restored before returning,
    which is what makes it reusable without a per-call memset.
    """
    # Deferred import: keeps scipy off the package-import path.
    from scipy.sparse import coo_matrix
    from scipy.sparse.csgraph import connected_components

    mark = state.arena.take(
        "k2.mark", state.graph.num_vertices, np.bool_, fill_new=False
    )
    mark[ra] = True
    mark[rb] = True
    nodes = np.flatnonzero(mark)
    mark[nodes] = False
    cmap = state.arena.take("k2.cmap", state.graph.num_vertices)
    cmap[nodes] = np.arange(nodes.size, dtype=np.int64)
    ia = cmap[ra]
    ib = cmap[rb]
    g = coo_matrix(
        (np.ones(ra.size, dtype=np.int8), (ia, ib)),
        shape=(nodes.size, nodes.size),
    )
    ncomp, labels = connected_components(g, directed=False)
    return labels[ia], int(ncomp)


def _union_batched(
    state: MstState,
    p: np.ndarray,
    q: np.ndarray,
    eids: np.ndarray,
    win_idx: np.ndarray,
) -> tuple[int, int, int, int]:
    """Vectorized union engine, bit-identical to :func:`_union_scalar`.

    The scalar loop serializes winners in worklist order: winner ``i``
    resolves both roots *after* winners ``< i`` have applied their
    links, and the cost model charges its actual pointer walks.  The
    batched engine reproduces that serialization exactly with
    per-component prefix-commit waves:

    * resolve all pending winners' roots at once (batched pointer
      jumping with per-lane hop counts);
    * a winner is *blocked* when an earlier pending winner's tentative
      link rewrites one of its resolved roots (``first`` maps each
      would-be-overwritten root to the earliest such writer);
    * every link — tentative or eventual — stays inside the connected
      component of the pending winner-root graph that spawned it, so
      blocking cannot cross components.  Each component therefore
      commits its winners up to its own first blocked one, all in one
      conflict-free scatter (a duplicate target root would have
      blocked), and defers the rest to the next wave, resuming each
      deferred walk from its already-resolved root so hop counts stay
      additive and exact.  Component labels are computed lazily, at
      most once per call (:func:`_winner_components`) — links never
      leave their component, so the labels survive every wave.

    Why a committed winner matches the sequential loop bit for bit:
    mid-path nodes are never roots and links only ever target
    wave-start roots, so its resolved parent chain is untouched by
    earlier commits (same component ⇒ it would have been blocked;
    different component ⇒ disjoint roots).  A deferred winner's
    *eventual* link can differ from its tentative one, which is
    exactly why everything after a component's first blocked winner
    waits.  Each component's earliest pending winner is never blocked,
    so every wave drains every component by at least one winner and
    the loop terminates.  Loads follow the scalar convention (path
    length + 1 per endpoint): ``total hops + 2 per winner``.
    """
    m = int(win_idx.size)
    if m <= 64:
        # Batch overheads beat the loop only past a few dozen winners;
        # the reference loop is exact by definition.
        return _union_scalar(state, p, q, eids, win_idx)
    parent = state.parent
    in_mst = state.in_mst
    # first[x]: earliest pending winner whose tentative link would
    # overwrite root x this wave.  The table persists dirty between
    # waves and calls; each wave sentinel-cleans just the slots it
    # reads (its own roots) before tagging writers.
    first = state.arena.take("k2.first", state.graph.num_vertices)
    written = state.arena.take(
        "k2.written", state.graph.num_vertices, np.bool_
    )
    grp = None
    min_blocked = None
    pend_eid = eids[win_idx]
    ra, hops = resolve_roots(parent, p[win_idx], kernel="k2_union")
    total_hops = int(hops.sum())
    rb, hops = resolve_roots(parent, q[win_idx], kernel="k2_union")
    total_hops += int(hops.sum())
    added = 0
    mirror_dups = 0
    while True:
        link = ra != rb
        hi = np.maximum(ra, rb)
        lo = np.minimum(ra, rb)
        first[ra] = _NO_WRITER
        first[rb] = _NO_WRITER
        # Reverse-order assignment keeps the *first* writer per root.
        rev = np.flatnonzero(link)[::-1]
        first[hi[rev]] = rev
        seq = np.arange(ra.size, dtype=np.int64)
        blocked = (first[ra] < seq) | (first[rb] < seq)
        if blocked.any():
            if grp is None:
                cut = int(np.argmax(blocked))
                if 2 * cut >= blocked.size or blocked.size < 256:
                    # Deferring everything past the first blocked
                    # winner is always a legal (stricter) quarantine;
                    # when the cut is already deep — or the tail is
                    # tiny — it beats paying for component labels.
                    deferred = seq >= cut
                else:
                    grp, ncomp = _winner_components(state, ra, rb)
                    min_blocked = state.arena.take("k2.minblk", ncomp)
            if grp is not None:
                # Per-component first blocked position; the table is
                # spot-cleaned over this wave's groups, like `first`.
                # Once labels exist they beat the prefix cut every
                # wave: each component stalls only on itself.
                min_blocked[grp] = _NO_WRITER
                bsel = np.flatnonzero(blocked)[::-1]
                min_blocked[grp[bsel]] = seq[bsel]
                deferred = blocked | (min_blocked[grp] < seq)
            commit = ~deferred
            cl = commit & link
        else:
            deferred = None
            cl = link
        # Commit in one scatter (targets are provably distinct).
        chi = hi[cl]
        parent[chi] = lo[cl]
        ce = pend_eid[cl]
        added += int(np.count_nonzero(~in_mst[ce]))
        in_mst[ce] = True
        if deferred is None:
            mirror_dups += int(np.count_nonzero(~link))
            break
        mirror_dups += int(np.count_nonzero(commit & ~link))
        retired = int(np.count_nonzero(commit))
        ra = ra[deferred]
        rb = rb[deferred]
        pend_eid = pend_eid[deferred]
        if grp is not None:
            grp = grp[deferred]
        if ra.size > 256 and retired * 16 < retired + ra.size:
            # Straggler tail: per-wave progress has collapsed (one
            # giant conflict component is serializing the wave loop),
            # so each further wave pays O(pending) for few commits.
            # Finish the tail sequentially from the already-resolved
            # roots; ``loads - 1`` per endpoint because the batched
            # accounting already charges the final +1 via ``2 * m``.
            for i in range(ra.size):
                a, la = _find_root(parent, int(ra[i]))
                b, lb = _find_root(parent, int(rb[i]))
                total_hops += la + lb - 2
                if a == b:
                    mirror_dups += 1
                    continue
                sa, sb = (a, b) if a < b else (b, a)
                parent[sb] = sa
                e = int(pend_eid[i])
                if not in_mst[e]:
                    in_mst[e] = True
                    added += 1
            break
        # Only walks whose resolved root was just overwritten move;
        # re-resolve exactly those, keeping hop sums additive (total
        # resolve work stays proportional to the loads the cost model
        # charges).  Both tables are spot-cleaned, never bulk-filled.
        written[ra] = False
        written[rb] = False
        written[chi] = True
        ta = np.flatnonzero(written[ra])
        tb = np.flatnonzero(written[rb])
        if ta.size or tb.size:
            r2, hops = resolve_roots(
                parent,
                np.concatenate((ra[ta], rb[tb])),
                kernel="k2_union",
            )
            ra[ta] = r2[: ta.size]
            rb[tb] = r2[ta.size :]
            total_hops += int(hops.sum())
    return m, total_hops + 2 * m, added, mirror_dups


def kernel2_union(state: MstState) -> int:
    """Check each WL1 entry against the recorded minima; include
    winners in the MST and join their sets (ECL CAS-style link-by-ID).

    Returns the number of edges added to the MST.
    """
    cfg, dev = state.config, state.device
    wl = state.wl.front
    n_items = len(wl)
    if n_items == 0:
        return 0

    if not cfg.data_driven and state._round_p is not None:
        # Topology-driven: the front still holds original endpoints but
        # k1 just resolved their representatives over the same entries.
        p, q = state._round_p, state._round_q
        loads = 0
        writes = 0
    elif cfg.implicit_path_compression:
        # Data-driven: the swapped-in worklist entries *are* the reps.
        p, q = wl.v, wl.n
        loads = 0
        writes = 0
    else:
        p, lv, wv = state.find_entries(wl.v)
        q, ln_, wn = state.find_entries(wl.n)
        loads, writes = lv + ln_, wv + wn
    state._round_p, state._round_q = p, q

    if state._round_val is not None and state._round_val_key is wl.eid:
        # k1 already packed the keys for exactly these entries.
        val = state._round_val
    else:
        val = pack_keys(wl.w, wl.eid)
    win = (val == state.min_edge[p]) | (val == state.min_edge[q])
    win_idx = np.flatnonzero(win)

    # Winner edges are guaranteed acyclic (each is the unique minimum
    # of at least one of its sets), so the unions commute; we apply
    # them in worklist order, simulating the CAS retry loop.
    union = _union_batched if cfg.engine == "vectorized" else _union_scalar
    cas_attempts, union_loads, added, mirror_dups = union(
        state, p, q, wl.eid, win_idx
    )

    # --- accounting --------------------------------------------------
    eb, ecyc = _entry_prices(cfg)
    cycles = _entry_loop_cycles(state, wl.v, costs.K2_ENTRY_CYCLES + ecyc)
    cycles += (loads + union_loads) * costs.FIND_JUMP_CYCLES
    bytes_ = (
        eb * n_items
        + 2 * costs.SCATTER_ACCESS_BYTES * n_items  # two minEdge loads
        + costs.FIND_JUMP_BYTES * (loads + union_loads)
        + costs.FIND_JUMP_BYTES * writes
        + costs.SCATTER_ACCESS_BYTES * cas_attempts  # parent CAS
        + 1.0 * added  # MST flag store
    )
    dev.launch(
        "k2_union",
        items=n_items,
        cycles=cycles,
        bytes_=bytes_,
        atomics=cas_attempts,
        find_jumps=loads + union_loads,
    )
    if dev.tracer.enabled:
        dev.tracer.annotate(k2_added=added, k2_mirror_dups=mirror_dups)
    return added


# ----------------------------------------------------------------------
# Kernel 3: reset minEdge (Lines 34-37)
# ----------------------------------------------------------------------
def kernel3_reset(state: MstState) -> None:
    """Clear the reservations of every set touched this round."""
    cfg, dev = state.config, state.device
    wl = state.wl.front
    n_items = len(wl)
    if n_items == 0:
        return
    p = state._round_p if state._round_p is not None else wl.v
    q = state._round_q if state._round_q is not None else wl.n
    state.min_edge[p] = KEY_INFINITY
    state.min_edge[q] = KEY_INFINITY

    eb, ecyc = _entry_prices(cfg)
    cycles = _entry_loop_cycles(state, wl.v, costs.K3_ENTRY_CYCLES + ecyc)
    bytes_ = (
        eb * n_items + 2 * costs.SCATTER_ACCESS_BYTES * n_items
    )  # entry read + two scattered stores
    dev.launch("k3_reset", items=n_items, cycles=cycles, bytes_=bytes_)
