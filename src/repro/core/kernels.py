"""The four ECL-MST kernels (Algs. 1 and 2) on the simulated GPU.

Semantics are exact: the kernels perform the real work with vectorized
NumPy and order-independent atomic equivalents, so every configuration
produces the true MSF.  Alongside the work, each kernel *counts* what
the CUDA threads would have done — CSR bytes touched, worklist entries
read/written, pointer jumps, atomics executed vs. guard-skipped,
per-warp imbalance cycles — and reports the counts to the
:class:`~repro.gpusim.costmodel.Device`, which prices the launch.

Kernel map (paper Alg. 2):

* ``init``       — Alg. 1 + worklist population (Lines 1-11)
* ``k1_reserve`` — find + cycle discard + atomicMin reservations
  (Lines 14-23)
* ``k2_union``   — winner check + union + MST marking (Lines 27-33)
* ``k3_reset``   — minEdge reset (Lines 34-37)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dsu.vectorized import compress_halving_many, find_many
from ..graph.csr import CSRGraph
from ..gpusim.atomics import KEY_INFINITY, atomic_min_u64, pack_keys
from ..gpusim.costmodel import Device
from ..gpusim.warp import (
    edge_centric_cycles,
    hybrid_cycles,
    thread_mode_cycles,
)
from . import costs
from .config import EclMstConfig
from .worklist import EdgeList, Worklist

__all__ = ["MstState", "kernel_init_populate", "kernel1_reserve", "kernel2_union", "kernel3_reset"]


@dataclass
class MstState:
    """Mutable algorithm state shared by the kernels."""

    graph: CSRGraph
    config: EclMstConfig
    device: Device
    parent: np.ndarray
    min_edge: np.ndarray
    in_mst: np.ndarray
    wl: Worklist = field(default_factory=Worklist)
    # Representatives computed by the most recent k1/k2, reused by the
    # next kernel in the same round (the real code re-derives them from
    # the worklist entries themselves under implicit path compression).
    _round_p: np.ndarray | None = None
    _round_q: np.ndarray | None = None

    @classmethod
    def create(cls, graph: CSRGraph, config: EclMstConfig, device: Device) -> "MstState":
        n = graph.num_vertices
        return cls(
            graph=graph,
            config=config,
            device=device,
            parent=np.arange(n, dtype=np.int64),
            min_edge=np.full(n, KEY_INFINITY, dtype=np.uint64),
            in_mst=np.zeros(graph.num_edges, dtype=bool),
        )

    # ------------------------------------------------------------------
    def find_entries(self, xs: np.ndarray) -> tuple[np.ndarray, int, int]:
        """Resolve representatives for worklist endpoints.

        Returns ``(roots, loads, writes)``.  Under implicit path
        compression the entries already sit at (or one hop from) their
        roots, so a plain read-only find is cheapest; the de-optimized
        variant uses explicit GPU path halving, which costs extra loads
        and compression writes.
        """
        if self.config.implicit_path_compression:
            roots, loads = find_many(self.parent, xs)
            return roots, loads, 0
        roots, loads, writes = compress_halving_many(self.parent, xs)
        return roots, loads, writes


# ----------------------------------------------------------------------
# Cost helpers
# ----------------------------------------------------------------------
def _outer_loop_cycles(state: MstState, per_vertex_work: np.ndarray, per_item: float) -> float:
    """Cycles of a vertex-parallel loop under the configured scheme."""
    cfg = state.config
    if cfg.hybrid_parallelization:
        return hybrid_cycles(
            per_vertex_work, per_item, threshold=cfg.hybrid_threshold
        )
    return thread_mode_cycles(per_vertex_work, per_item)


def _entry_prices(cfg: EclMstConfig) -> tuple[float, float]:
    """(bytes, cycles) per worklist-entry access.

    Topology-driven variants have no worklists: they re-read the static
    per-edge arrays, which stream sequentially and coalesce perfectly,
    so they always pay the AoS price regardless of the tuple toggle.
    """
    if not cfg.data_driven:
        eb, ec = costs.AOS_ENTRY_BYTES, costs.AOS_ENTRY_CYCLES
    else:
        eb, ec = costs.entry_bytes(cfg), costs.entry_access_cycles(cfg)
    if not cfg.edge_centric:
        # One thread walking all of a vertex's entries is a strided,
        # uncoalesced stream.
        eb *= costs.VERTEX_CENTRIC_READ_FACTOR
    return eb, ec


def _entry_loop_cycles(state: MstState, v_entries: np.ndarray, per_item: float) -> float:
    """Cycles of a worklist-parallel loop.

    Edge-centric: one entry per thread, uniform.  Vertex-centric (the
    final ablation stage): each thread owns a vertex and serially walks
    that vertex's entries, so imbalance is the per-vertex entry count.
    """
    cfg = state.config
    if cfg.edge_centric:
        return edge_centric_cycles(int(v_entries.size), per_item)
    if v_entries.size == 0:
        return 0.0
    counts = np.bincount(v_entries, minlength=state.graph.num_vertices)
    if cfg.hybrid_parallelization:
        return hybrid_cycles(counts, per_item)
    return thread_mode_cycles(counts, per_item)


# ----------------------------------------------------------------------
# Kernel: initialization + worklist population
# ----------------------------------------------------------------------
def kernel_init_populate(
    state: MstState, threshold: int | None, phase: int
) -> int:
    """Alg. 1 + Lines 1-11 of Alg. 2: fill WL1 from the CSR graph.

    ``phase`` selects the threshold condition: 1 keeps weights strictly
    under the bound, 2 inverts it and rewrites endpoints to their
    current representatives (``set(v)``/``set(n)``), which *is* the
    filtering step — same-set edges are dropped here instead of living
    through another round.  ``phase == 0`` means no filtering.

    Returns the number of entries appended.
    """
    g, cfg, dev = state.graph, state.config, state.device
    src = g.edge_sources().astype(np.int64)
    dst = g.col_idx.astype(np.int64)
    w = g.weights.astype(np.int64)
    eid = g.edge_ids.astype(np.int64)

    if cfg.single_direction:
        mask = src < dst
    else:
        mask = np.ones(src.size, dtype=bool)
    if threshold is not None:
        if phase == 1:
            mask &= w < threshold
        else:
            mask &= w >= threshold

    v_sel, n_sel, w_sel, e_sel = src[mask], dst[mask], w[mask], eid[mask]
    find_loads = 0
    if phase == 2:
        # Filtering: replace endpoints by representatives and drop the
        # edges that have become internal to a component (cycles).
        p, lp, _ = state.find_entries(v_sel)
        q, lq, _ = state.find_entries(n_sel)
        find_loads = lp + lq
        cross = p != q
        if cfg.implicit_path_compression:
            v_sel, n_sel = p[cross], q[cross]
        else:
            v_sel, n_sel = v_sel[cross], n_sel[cross]
        w_sel, e_sel = w_sel[cross], e_sel[cross]

    entries = EdgeList(v_sel, n_sel, w_sel, e_sel)
    state.wl.fill_front(entries)
    appended = len(entries)

    # --- accounting: this kernel walks the CSR structure ------------
    degrees = g.degrees()
    cycles = _outer_loop_cycles(state, degrees, costs.INIT_NEIGHBOR_CYCLES)
    cycles += g.num_vertices * costs.INIT_VERTEX_CYCLES
    cycles += appended * costs.entry_access_cycles(cfg)
    cycles += find_loads * costs.FIND_JUMP_CYCLES
    slot_bytes = (
        costs.INIT_SLOT_BYTES_HYBRID
        if cfg.hybrid_parallelization
        else costs.INIT_SLOT_BYTES_THREAD
    )
    bytes_ = (
        8.0 * g.num_vertices  # row_ptr reads
        + slot_bytes * g.num_directed_edges  # adjacency scan
        + costs.entry_bytes(cfg) * appended  # worklist writes
        + costs.FIND_JUMP_BYTES * find_loads  # parent loads in phase 2
    )
    # Longest single-thread chain: hybrid splits a heavy vertex's
    # adjacency across a warp (its lanes stride the list), while
    # vertices below the threshold — and every vertex in thread mode —
    # serialize on one thread.
    dmax = int(degrees.max()) if degrees.size else 0
    if cfg.hybrid_parallelization:
        critical = max(
            -(-dmax // 32), min(dmax, max(0, cfg.hybrid_threshold - 1))
        )
    else:
        critical = dmax
    dev.launch(
        "init",
        items=g.num_directed_edges,
        cycles=cycles,
        bytes_=bytes_,
        atomics=appended,  # atomicAdd slot reservations
        critical_items=critical,
        find_jumps=find_loads,
    )
    if dev.tracer.enabled:
        dev.tracer.annotate(populate_phase=phase, populated=appended)
    return appended


# ----------------------------------------------------------------------
# Kernel 1: find + discard cycles + reserve minima (Lines 14-23)
# ----------------------------------------------------------------------
def kernel1_reserve(state: MstState) -> int:
    """Process WL1: discard same-set edges, re-append survivors to WL2
    (with implicit path compression), and reserve each set's minimum
    edge via guarded ``atomicMin``.

    Returns the number of surviving entries.
    """
    cfg, dev = state.config, state.device
    wl = state.wl.front

    p, loads_v, writes_v = state.find_entries(wl.v)
    q, loads_n, writes_n = state.find_entries(wl.n)
    loads = loads_v + loads_n

    cross = p != q
    survivors = int(np.count_nonzero(cross))
    pc, qc = p[cross], q[cross]
    wc, ec = wl.w[cross], wl.eid[cross]

    if cfg.implicit_path_compression:
        # Line 18: store representatives in lieu of the endpoints.
        new_entries = EdgeList(pc, qc, wc, ec)
    else:
        new_entries = EdgeList(wl.v[cross], wl.n[cross], wc, ec)
    if cfg.data_driven:
        state.wl.append_back(new_entries)

    val = pack_keys(wc, ec)
    inj = dev.fault_injector
    ex_p, sk_p = atomic_min_u64(
        state.min_edge, pc, val, guarded=cfg.atomic_guards, injector=inj
    )
    ex_q, sk_q = atomic_min_u64(
        state.min_edge, qc, val, guarded=cfg.atomic_guards, injector=inj
    )
    executed, skipped = ex_p + ex_q, sk_p + sk_q

    # Same-address serialization: the hottest minEdge slot.  With
    # guards only the running-minima execute (harmonic expectation);
    # without, every lane targeting the slot issues its atomic.
    if survivors:
        hot = int(
            max(
                np.bincount(pc, minlength=state.graph.num_vertices).max(),
                np.bincount(qc, minlength=state.graph.num_vertices).max(),
            )
        )
        contention = (
            int(np.ceil(np.log(hot) + 0.5772)) if cfg.atomic_guards else hot
        )
    else:
        contention = 0

    state._round_p, state._round_q = p, q

    # --- accounting --------------------------------------------------
    n_items = len(wl)
    eb, ecyc = _entry_prices(cfg)
    web = costs.entry_bytes(cfg)  # appends always go to a real worklist
    cycles = _entry_loop_cycles(state, wl.v, costs.K1_ENTRY_CYCLES + ecyc)
    cycles += loads * costs.FIND_JUMP_CYCLES
    cycles += 2 * survivors * costs.GUARD_CHECK_CYCLES  # guard loads
    appends = survivors if cfg.data_driven else 0
    cycles += appends * costs.entry_access_cycles(cfg)
    bytes_ = (
        eb * n_items  # worklist reads
        + costs.FIND_JUMP_BYTES * loads  # parent chasing
        + costs.FIND_JUMP_BYTES * (writes_v + writes_n)  # halving writes
        + 2 * costs.SCATTER_ACCESS_BYTES * survivors  # minEdge guard loads
        + costs.SCATTER_ACCESS_BYTES * executed  # atomicMin stores
        + web * appends  # worklist writes
    )
    critical = 0
    if not cfg.edge_centric and n_items:
        counts = np.bincount(wl.v, minlength=state.graph.num_vertices)
        critical = int(counts.max())
    dev.launch(
        "k1_reserve",
        items=n_items,
        cycles=cycles,
        bytes_=bytes_,
        atomics=executed + appends,
        atomics_skipped=skipped,
        atomic_max_contention=contention,
        critical_items=critical,
        find_jumps=loads,
    )
    if dev.tracer.enabled:
        dev.tracer.annotate(
            k1_survivors=survivors,
            k1_atomics_executed=executed,
            k1_atomics_skipped=skipped,
        )
    return survivors


# ----------------------------------------------------------------------
# Kernel 2: winner check + union + MST marking (Lines 27-33)
# ----------------------------------------------------------------------
def _find_root(parent: np.ndarray, x: int) -> tuple[int, int]:
    loads = 1
    while parent[x] != x:
        x = int(parent[x])
        loads += 1
        if loads > parent.size + 1:
            # Only corrupted parent pointers can cycle; surface a typed
            # violation the recovery ladder understands.
            from ..errors import InvariantViolation

            raise InvariantViolation(
                "parent-pointer cycle detected during union find",
                invariant="parent-acyclic",
                kernel="k2_union",
            )
    return x, loads


def kernel2_union(state: MstState) -> int:
    """Check each WL1 entry against the recorded minima; include
    winners in the MST and join their sets (ECL CAS-style link-by-ID).

    Returns the number of edges added to the MST.
    """
    cfg, dev = state.config, state.device
    wl = state.wl.front
    n_items = len(wl)
    if n_items == 0:
        return 0

    if not cfg.data_driven and state._round_p is not None:
        # Topology-driven: the front still holds original endpoints but
        # k1 just resolved their representatives over the same entries.
        p, q = state._round_p, state._round_q
        loads = 0
        writes = 0
    elif cfg.implicit_path_compression:
        # Data-driven: the swapped-in worklist entries *are* the reps.
        p, q = wl.v, wl.n
        loads = 0
        writes = 0
    else:
        p, lv, wv = state.find_entries(wl.v)
        q, ln_, wn = state.find_entries(wl.n)
        loads, writes = lv + ln_, wv + wn
    state._round_p, state._round_q = p, q

    val = pack_keys(wl.w, wl.eid)
    win = (val == state.min_edge[p]) | (val == state.min_edge[q])
    win_idx = np.flatnonzero(win)

    # Winner edges are guaranteed acyclic (each is the unique minimum
    # of at least one of its sets), so the unions commute; we apply
    # them in worklist order, simulating the CAS retry loop.
    parent = state.parent
    cas_attempts = 0
    union_loads = 0
    added = 0
    mirror_dups = 0
    for i in win_idx:
        a, la = _find_root(parent, int(p[i]))
        b, lb = _find_root(parent, int(q[i]))
        union_loads += la + lb
        cas_attempts += 1
        if a == b:
            # Only possible for a mirrored duplicate of an edge already
            # committed this round (the "Both Edge Directions" variant).
            mirror_dups += 1
            continue
        lo, hi = (a, b) if a < b else (b, a)
        parent[hi] = lo
        eid = int(wl.eid[i])
        if not state.in_mst[eid]:
            state.in_mst[eid] = True
            added += 1

    # --- accounting --------------------------------------------------
    eb, ecyc = _entry_prices(cfg)
    cycles = _entry_loop_cycles(state, wl.v, costs.K2_ENTRY_CYCLES + ecyc)
    cycles += (loads + union_loads) * costs.FIND_JUMP_CYCLES
    bytes_ = (
        eb * n_items
        + 2 * costs.SCATTER_ACCESS_BYTES * n_items  # two minEdge loads
        + costs.FIND_JUMP_BYTES * (loads + union_loads)
        + costs.FIND_JUMP_BYTES * writes
        + costs.SCATTER_ACCESS_BYTES * cas_attempts  # parent CAS
        + 1.0 * added  # MST flag store
    )
    dev.launch(
        "k2_union",
        items=n_items,
        cycles=cycles,
        bytes_=bytes_,
        atomics=cas_attempts,
        find_jumps=loads + union_loads,
    )
    if dev.tracer.enabled:
        dev.tracer.annotate(k2_added=added, k2_mirror_dups=mirror_dups)
    return added


# ----------------------------------------------------------------------
# Kernel 3: reset minEdge (Lines 34-37)
# ----------------------------------------------------------------------
def kernel3_reset(state: MstState) -> None:
    """Clear the reservations of every set touched this round."""
    cfg, dev = state.config, state.device
    wl = state.wl.front
    n_items = len(wl)
    if n_items == 0:
        return
    p = state._round_p if state._round_p is not None else wl.v
    q = state._round_q if state._round_q is not None else wl.n
    state.min_edge[p] = KEY_INFINITY
    state.min_edge[q] = KEY_INFINITY

    eb, ecyc = _entry_prices(cfg)
    cycles = _entry_loop_cycles(state, wl.v, costs.K3_ENTRY_CYCLES + ecyc)
    bytes_ = (
        eb * n_items + 2 * costs.SCATTER_ACCESS_BYTES * n_items
    )  # entry read + two scattered stores
    dev.launch("k3_reset", items=n_items, cycles=cycles, bytes_=bytes_)
