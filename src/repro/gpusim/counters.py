"""Hardware-style counters recorded by every simulated kernel launch.

The counters are *measured from the algorithm's actual execution* —
real numbers of worklist entries, real pointer-jump counts from the
disjoint-set finds, real atomic executions after guard checks, real
per-warp load imbalance computed from the degree arrays.  The cost
model then turns them into modeled seconds.  This split keeps the
simulation honest: the only modeled quantities are hardware rates, not
the amount of work.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["KernelCounters", "RunCounters"]


@dataclass
class KernelCounters:
    """Work performed by one kernel launch.

    Attributes
    ----------
    name:
        Kernel identity (``init``, ``k1_reserve``, ``k2_union``,
        ``k3_reset``, or a baseline's kernel name).
    items:
        Work items (edges or vertices) processed.
    cycles:
        Thread-cycles consumed, *including* idle SIMT lanes — for
        vertex-centric kernels this is the sum over warps of
        ``warp_size * max(per-thread work)``, so load imbalance shows
        up as real counted cycles.
    bytes:
        Effective DRAM traffic in bytes (worklist reads/writes, CSR
        accesses, minEdge updates), including transaction-granularity
        penalties for scattered layouts.
    atomics:
        Atomic operations actually executed.
    atomics_skipped:
        Atomics elided by the guard optimization (a cheap load+compare
        is still charged through ``cycles``/``bytes``).
    find_jumps:
        Parent pointer dereferences performed by disjoint-set finds.
    """

    name: str
    items: int = 0
    cycles: float = 0.0
    bytes: float = 0.0
    atomics: int = 0
    atomics_skipped: int = 0
    atomic_max_contention: int = 0
    critical_items: int = 0
    find_jumps: int = 0
    modeled_seconds: float = 0.0

    def to_dict(self) -> dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: dict) -> "KernelCounters":
        """Rebuild from :meth:`to_dict` output; unknown keys (from a
        newer schema) are ignored so old readers stay compatible."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})


@dataclass
class RunCounters:
    """All launches of one algorithm run, in order."""

    kernels: list[KernelCounters] = field(default_factory=list)

    def add(self, k: KernelCounters) -> None:
        self.kernels.append(k)

    # ------------------------------------------------------------------
    # Aggregations used by the reports
    # ------------------------------------------------------------------
    @property
    def num_launches(self) -> int:
        return len(self.kernels)

    def launches_of(self, name: str) -> int:
        return sum(1 for k in self.kernels if k.name == name)

    def total(self, attr: str) -> float:
        return sum(getattr(k, attr) for k in self.kernels)

    @property
    def total_seconds(self) -> float:
        return self.total("modeled_seconds")

    def seconds_by_kernel(self) -> dict[str, float]:
        """Per-kernel-name modeled time, for the §5.1 profile claim."""
        out: dict[str, float] = {}
        for k in self.kernels:
            out[k.name] = out.get(k.name, 0.0) + k.modeled_seconds
        return out

    def render_timeline(self, *, width: int = 40) -> str:
        """Text timeline of the launches, one row per kernel launch.

        Columns: index, kernel name, items, modeled microseconds, and a
        proportional bar — the quickest way to see where a run's time
        goes (e.g. the init/k1/k2/k3 split of Section 5.1).
        """
        if not self.kernels:
            return "(no launches)"
        peak = max(k.modeled_seconds for k in self.kernels)
        name_w = max(len(k.name) for k in self.kernels)
        # Column widths adapt to the data: items beyond 10 digits must
        # not shift the time/bar columns.
        items_w = max(10, max(len(str(k.items)) for k in self.kernels))
        lines = []
        for i, k in enumerate(self.kernels):
            if peak > 0:
                # Clamp into [1, width]: every nonzero launch shows at
                # least one tick, and rounding can never overrun.
                bar = "#" * min(
                    width, max(1, int(round(k.modeled_seconds / peak * width)))
                )
                if k.modeled_seconds == 0:
                    bar = ""
            else:
                # All-zero run (e.g. counters rebuilt without pricing):
                # an empty bar column instead of a degenerate full one.
                bar = ""
            lines.append(
                f"{i:4d} {k.name.ljust(name_w)} {k.items:>{items_w}d} "
                f"{k.modeled_seconds * 1e6:9.2f}us {bar}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialization (profiles and bench artifacts persist counters as
    # plain JSON — no pickling).
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"kernels": [k.to_dict() for k in self.kernels]}

    @classmethod
    def from_dict(cls, d: dict) -> "RunCounters":
        return cls(
            kernels=[KernelCounters.from_dict(k) for k in d.get("kernels", [])]
        )

    def summary(self) -> dict[str, float]:
        return {
            "launches": self.num_launches,
            "items": self.total("items"),
            "cycles": self.total("cycles"),
            "bytes": self.total("bytes"),
            "atomics": self.total("atomics"),
            "atomics_skipped": self.total("atomics_skipped"),
            "find_jumps": self.total("find_jumps"),
            "seconds": self.total_seconds,
        }
