"""Counters → modeled seconds.

A kernel launch is charged

``t = launch_overhead + max(compute, memory) + atomic``

with

* ``compute = cycles / (cores * clock * ipc)`` — thread-cycles counted
  by the kernel (including idle SIMT lanes from divergence/imbalance),
* ``memory = bytes / bandwidth`` — the DRAM traffic counted by the
  kernel, and
* ``atomic = atomics / atomic_throughput`` — global atomics serialize
  at the memory controllers, so they are charged separately.

``max(compute, memory)`` models the overlap of computation and memory
on a throughput device; atomics overlap poorly with either on the
contended structures MST uses (minEdge array, worklist tail pointer).

CPU codes use an analogous model with per-round synchronization
overheads instead of kernel launches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.trace import NULL_TRACER
from .counters import KernelCounters, RunCounters
from .spec import CPUSpec, GPUSpec

__all__ = [
    "gpu_kernel_seconds",
    "kernel_time_terms",
    "cpu_phase_seconds",
    "Device",
    "CpuMachine",
    "LinkSpec",
    "DEFAULT_LINK",
]


@dataclass(frozen=True)
class LinkSpec:
    """An inter-device interconnect for sharded execution.

    One transfer of ``b`` bytes between two devices is charged

    ``t = latency_us * 1e-6 + b / (bandwidth_gbs * 1e9)``

    — a fixed per-message setup cost plus a bandwidth term, the usual
    alpha-beta model.  The default numbers approximate an NVLink-class
    peer link (~25 GB/s effective per direction, ~5 us one-way
    latency); a PCIe-only topology would use ~6 GB/s and ~20 us.
    """

    name: str = "nvlink"
    latency_us: float = 5.0
    bandwidth_gbs: float = 25.0

    def transfer_seconds(self, bytes_: float) -> float:
        """Modeled seconds to move ``bytes_`` over this link."""
        if bytes_ <= 0:
            return 0.0
        return self.latency_us * 1e-6 + bytes_ / (self.bandwidth_gbs * 1e9)


DEFAULT_LINK = LinkSpec()


def kernel_time_terms(spec: GPUSpec, k: KernelCounters) -> dict[str, float]:
    """The raw per-launch time terms the pricing rule combines, in seconds.

    Keys: ``launch`` (fixed overhead), ``compute``, ``memory``,
    ``serial`` (the dependent-access critical path), the two atomic
    charges ``atomic_throughput`` and ``atomic_serial`` (same-address
    serialization), and ``atomic`` — their max, which is what the
    kernel is actually charged.  :func:`gpu_kernel_seconds` and the
    roofline attribution in :mod:`repro.obs.roofline` both derive from
    this single decomposition, so bound reports always sum back to the
    modeled time.
    """
    atomic_throughput = k.atomics / (spec.atomic_gops * 1e9)
    atomic_serial = k.atomic_max_contention * spec.atomic_same_address_ns * 1e-9
    return {
        "launch": spec.kernel_launch_us * 1e-6,
        "compute": k.cycles / (spec.compute_gcycles_per_s * 1e9),
        "memory": k.bytes / (spec.effective_bandwidth_gbs * 1e9),
        "serial": k.critical_items * spec.dependent_access_ns * 1e-9,
        "atomic_throughput": atomic_throughput,
        "atomic_serial": atomic_serial,
        "atomic": max(atomic_throughput, atomic_serial),
    }


def gpu_kernel_seconds(spec: GPUSpec, k: KernelCounters) -> float:
    """Modeled wall time of one kernel launch on ``spec``.

    The atomic term is the max of the throughput charge and the
    same-address serialization critical path (atomics on one hot
    address execute one at a time at the L2).
    """
    t = kernel_time_terms(spec, k)
    return t["launch"] + max(t["compute"], t["memory"], t["serial"]) + t["atomic"]


def cpu_phase_seconds(
    spec: CPUSpec,
    *,
    ops: float,
    bytes_: float = 0.0,
    threads: int = 0,
    syncs: int = 0,
) -> float:
    """Modeled wall time of one CPU parallel phase.

    ``ops`` is an abstract operation count (comparisons, unions, array
    writes) charged at one cycle each; ``syncs`` counts barriers/task
    joins charged at ``spec.sync_us`` each.
    """
    compute = ops / (spec.compute_gcycles_per_s(threads) * 1e9)
    memory = bytes_ / (spec.mem_bandwidth_gbs * 1e9)
    return max(compute, memory) + syncs * spec.sync_us * 1e-6


class Device:
    """A simulated GPU accumulating kernel launches.

    Algorithms perform their real (NumPy) work, then report the counted
    quantities through :meth:`launch`; the device prices the launch and
    accumulates modeled elapsed time.
    """

    def __init__(self, spec: GPUSpec, tracer=None, fault_injector=None) -> None:
        self.spec = spec
        self.counters = RunCounters()
        self.tracer = NULL_TRACER
        # Resilience hooks: an optional FaultInjector consulted at every
        # launch (may corrupt bound state or raise DeviceFault), and an
        # optional probe running per-kernel invariant checks.  Both are
        # None by default so the fault-free hot path is unchanged.
        self.fault_injector = fault_injector
        self.probe = None
        # Incremental modeled clock for the tracer only (avoids the
        # O(launches) re-summation of ``counters.total_seconds`` per
        # launch); reporting still uses the counters as ground truth.
        self._modeled_elapsed = 0.0
        if tracer is not None:
            self.attach_tracer(tracer)

    def attach_tracer(self, tracer) -> None:
        """Record every launch/sync as a kernel span on ``tracer`` and
        bind this device's modeled clock for container spans."""
        self.tracer = tracer
        tracer.set_modeled_clock(lambda: self._modeled_elapsed)

    def launch(
        self,
        name: str,
        *,
        items: int = 0,
        cycles: float = 0.0,
        bytes_: float = 0.0,
        atomics: int = 0,
        atomics_skipped: int = 0,
        atomic_max_contention: int = 0,
        critical_items: int = 0,
        find_jumps: int = 0,
    ) -> KernelCounters:
        if self.fault_injector is not None:
            # May flip bits in bound solver state or raise DeviceFault
            # (a failed launch) — the recovery layer handles both.
            self.fault_injector.on_launch(name)
        if self.probe is not None:
            # Per-kernel invariant checks (forced-checking degraded
            # mode); raises InvariantViolation on corrupted state.
            self.probe.on_kernel(name)
        k = KernelCounters(
            name=name,
            items=int(items),
            cycles=float(cycles),
            bytes=float(bytes_),
            atomics=int(atomics),
            atomics_skipped=int(atomics_skipped),
            atomic_max_contention=int(atomic_max_contention),
            critical_items=int(critical_items),
            find_jumps=int(find_jumps),
        )
        k.modeled_seconds = gpu_kernel_seconds(self.spec, k)
        self.counters.add(k)
        if self.tracer.enabled:
            self.tracer.kernel(k, self._modeled_elapsed)
            self._modeled_elapsed += k.modeled_seconds
        return k

    def host_sync(self) -> KernelCounters:
        """Charge one device->host convergence-flag round trip (the
        memcpy-in-a-while-loop pattern of Section 2)."""
        k = KernelCounters(name="host_sync")
        k.modeled_seconds = self.spec.host_sync_us * 1e-6
        self.counters.add(k)
        if self.tracer.enabled:
            self.tracer.kernel(k, self._modeled_elapsed)
            self._modeled_elapsed += k.modeled_seconds
        return k

    @property
    def elapsed_seconds(self) -> float:
        return self.counters.total_seconds

    def memcpy_seconds(self, bytes_: float) -> float:
        """Host<->device transfer time over PCIe (for memcpy rows)."""
        from .spec import PCIE_BANDWIDTH_GBS

        return bytes_ / (PCIE_BANDWIDTH_GBS * 1e9) + 20e-6


class CpuMachine:
    """A simulated CPU accumulating parallel/serial phases.

    Reuses :class:`RunCounters` with ``cycles`` holding the op count so
    the reporting layer can treat GPU and CPU runs uniformly.
    """

    def __init__(self, spec: CPUSpec, threads: int = 0, tracer=None) -> None:
        self.spec = spec
        self.threads = threads if threads > 0 else spec.cores
        self.counters = RunCounters()
        self.tracer = NULL_TRACER
        self._modeled_elapsed = 0.0
        if tracer is not None:
            self.attach_tracer(tracer)

    def attach_tracer(self, tracer) -> None:
        """Record every phase as a kernel span on ``tracer``."""
        self.tracer = tracer
        tracer.set_modeled_clock(lambda: self._modeled_elapsed)

    def phase(
        self,
        name: str,
        *,
        ops: float,
        bytes_: float = 0.0,
        items: int = 0,
        syncs: int = 0,
        serial: bool = False,
    ) -> KernelCounters:
        threads = 1 if serial else self.threads
        k = KernelCounters(
            name=name, items=int(items), cycles=float(ops), bytes=float(bytes_)
        )
        k.modeled_seconds = cpu_phase_seconds(
            self.spec, ops=ops, bytes_=bytes_, threads=threads, syncs=syncs
        )
        self.counters.add(k)
        if self.tracer.enabled:
            self.tracer.kernel(k, self._modeled_elapsed)
            self._modeled_elapsed += k.modeled_seconds
        return k

    @property
    def elapsed_seconds(self) -> float:
        return self.counters.total_seconds
