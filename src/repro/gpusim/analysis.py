"""Roofline-style kernel classification from recorded counters.

Given a :class:`~repro.gpusim.counters.RunCounters` and the spec it ran
on, classify each launch by its binding resource — the diagnostic the
paper's optimization story is about (e.g. "No Tuples" turns k1 from
memory-bound to *more* memory-bound; "Vertex-Centric" makes compute
imbalance bind; unguarded atomics push kernels into the atomic regime).
"""

from __future__ import annotations

from dataclasses import dataclass

from .counters import KernelCounters, RunCounters
from .spec import GPUSpec

__all__ = ["KernelClassification", "classify_kernel", "classify_run", "bound_summary"]

BOUNDS = ("launch", "compute", "memory", "critical-path", "atomic")


@dataclass(frozen=True)
class KernelClassification:
    """Binding-resource breakdown of one launch."""

    name: str
    bound: str  # one of BOUNDS
    launch_s: float
    compute_s: float
    memory_s: float
    critical_s: float
    atomic_s: float
    total_s: float


def classify_kernel(spec: GPUSpec, k: KernelCounters) -> KernelClassification:
    """Decompose a launch's modeled time into its cost-model terms and
    name the largest."""
    launch = spec.kernel_launch_us * 1e-6
    compute = k.cycles / (spec.compute_gcycles_per_s * 1e9)
    memory = k.bytes / (spec.effective_bandwidth_gbs * 1e9)
    critical = k.critical_items * spec.dependent_access_ns * 1e-9
    atomic = max(
        k.atomics / (spec.atomic_gops * 1e9),
        k.atomic_max_contention * spec.atomic_same_address_ns * 1e-9,
    )
    terms = {
        "launch": launch,
        "compute": compute,
        "memory": memory,
        "critical-path": critical,
        "atomic": atomic,
    }
    bound = max(terms, key=terms.get)
    return KernelClassification(
        name=k.name,
        bound=bound,
        launch_s=launch,
        compute_s=compute,
        memory_s=memory,
        critical_s=critical,
        atomic_s=atomic,
        total_s=k.modeled_seconds,
    )


def classify_run(spec: GPUSpec, counters: RunCounters) -> list[KernelClassification]:
    """Classify every launch of a run (host syncs excluded)."""
    return [
        classify_kernel(spec, k)
        for k in counters.kernels
        if k.name != "host_sync"
    ]


def bound_summary(spec: GPUSpec, counters: RunCounters) -> dict[str, float]:
    """Fraction of total kernel time spent under each binding resource.

    Returns ``{bound: share}`` with shares summing to 1 (or an empty
    dict for a run without launches).
    """
    classes = classify_run(spec, counters)
    total = sum(c.total_s for c in classes)
    if total <= 0:
        return {}
    shares: dict[str, float] = {}
    for c in classes:
        shares[c.bound] = shares.get(c.bound, 0.0) + c.total_s / total
    return shares
