"""Exact-semantics vectorized GPU atomics.

The three atomics ECL-MST relies on (Section 3.2):

* ``atomicMin`` on 64-bit ``weight:edge-ID`` keys — order-independent,
  so ``np.minimum.at`` reproduces the concurrent outcome *exactly*;
* ``atomicCAS`` for the disjoint-set union — handled in
  :mod:`repro.dsu` where link order matters;
* ``atomicAdd`` for worklist slot allocation — order affects only slot
  positions, never membership, so a bulk append is faithful up to a
  permutation (ECL-MST's result is independent of worklist order).

The packed-key layout gives the deterministic tie-break the paper
describes: the weight occupies the most significant 32 bits and the
edge ID the least significant 32 bits, so equal-weight edges compare by
ID.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "KEY_INFINITY",
    "pack_keys",
    "unpack_weight",
    "unpack_edge_id",
    "atomic_min_u64",
]

# All-ones sentinel: compares greater than every real weight:id key.
KEY_INFINITY = np.uint64(0xFFFFFFFFFFFFFFFF)


def _as_u64(a: np.ndarray) -> np.ndarray:
    a = np.asarray(a)
    if a.dtype == np.uint64:
        return a
    if a.dtype == np.int64:
        # Same bit width: a reinterpreting view skips the copy the
        # astype conversion would make (values are non-negative).
        return a.view(np.uint64)
    return a.astype(np.uint64)


def pack_keys(
    weights: np.ndarray, edge_ids: np.ndarray, *, out: np.ndarray | None = None
) -> np.ndarray:
    """Pack ``weight`` (high 32 bits) and ``edge ID`` (low 32) into u64.

    ``out``, when given, receives the packed keys in place (it must be
    a ``uint64`` array of matching length), so hot callers can reuse a
    scratch buffer instead of allocating per round.
    """
    w = _as_u64(weights)
    e = _as_u64(edge_ids)
    if w.size and int(w.max()) >= (1 << 31):
        raise ValueError("weights must fit in 31 bits below the sentinel")
    if out is None:
        return (w << np.uint64(32)) | e
    np.left_shift(w, np.uint64(32), out=out)
    np.bitwise_or(out, e, out=out)
    return out


def unpack_weight(keys: np.ndarray) -> np.ndarray:
    """Recover the weight from packed keys."""
    return (np.asarray(keys, dtype=np.uint64) >> np.uint64(32)).astype(np.int64)


def unpack_edge_id(keys: np.ndarray) -> np.ndarray:
    """Recover the edge ID from packed keys."""
    return (np.asarray(keys, dtype=np.uint64) & np.uint64(0xFFFFFFFF)).astype(
        np.int64
    )


def atomic_min_u64(
    target: np.ndarray,
    idx: np.ndarray,
    keys: np.ndarray,
    *,
    guarded: bool = True,
    injector=None,
) -> tuple[int, int]:
    """Concurrent ``atomicMin(target[idx], keys)`` over all lanes.

    Returns ``(executed, skipped)`` atomic counts.  With ``guarded``
    (the paper's atomic-guard optimization) each lane first *loads*
    ``target[idx]`` and only issues the atomic when its key is lower.
    On real hardware the guard reads values already lowered by earlier
    warps of the *same* launch, so for a slot contended by ``k`` lanes
    arriving in random order the expected number of executed atomics is
    the harmonic number ``H(k) ≈ ln k + γ`` (each lane executes only if
    it holds a new running minimum).  We update the array exactly
    (``np.minimum.at``) and report that expected executed count — the
    quantity the "No Atomic Guards" ablation changes.

    ``injector`` is an optional
    :class:`~repro.resilience.faults.FaultInjector`; when present it may
    drop, duplicate, or permute the lanes of this atomic batch to model
    lost/double-applied updates and adversarial warp schedules.
    """
    idx = np.asarray(idx)
    keys = np.asarray(keys, dtype=np.uint64)
    if injector is not None:
        idx, keys = injector.perturb_atomics(idx, keys)
    if keys.size == 0:
        return 0, 0
    if guarded:
        # Lanes whose key is not below the slot's pre-pass value are
        # certainly skipped; among the rest, expected executions per
        # slot follow the harmonic law of running minima.
        would_lower = keys < target[idx]
        lanes = np.flatnonzero(would_lower)
        cand_idx = idx[lanes]
        if cand_idx.size:
            # Per-slot candidate counts: a sort-free bincount wins once
            # the batch is a decent fraction of the table.  Both paths
            # yield the counts in ascending slot order, so the float
            # summation below is bitwise-stable either way.
            if cand_idx.size * 16 >= target.size:
                counts = np.bincount(cand_idx, minlength=target.size)
                counts = counts[counts > 0]
            else:
                _, counts = np.unique(cand_idx, return_counts=True)
            expected = np.log(counts) + 0.5772156649
            executed = int(np.ceil(expected.sum()))
            np.minimum.at(target, cand_idx, keys[lanes])
        else:
            executed = 0
        skipped = int(keys.size - executed)
    else:
        executed = int(keys.size)
        skipped = 0
        np.minimum.at(target, idx, keys)
    return executed, skipped
