"""Simulated GPU/CPU execution substrate with exact atomic semantics,
hardware counters and an analytic cost model."""

from .analysis import (
    KernelClassification,
    bound_summary,
    classify_kernel,
    classify_run,
)
from .atomics import (
    KEY_INFINITY,
    atomic_min_u64,
    pack_keys,
    unpack_edge_id,
    unpack_weight,
)
from .costmodel import CpuMachine, Device, cpu_phase_seconds, gpu_kernel_seconds
from .counters import KernelCounters, RunCounters
from .spec import (
    CPUSpec,
    GPUSpec,
    PCIE_BANDWIDTH_GBS,
    RTX_3080_TI,
    THREADRIPPER_2950X,
    TITAN_V,
    XEON_GOLD_6226R_X2,
)
from .warp import (
    HYBRID_DEGREE_THRESHOLD,
    edge_centric_cycles,
    hybrid_cycles,
    thread_mode_cycles,
)

__all__ = [
    "CPUSpec",
    "CpuMachine",
    "Device",
    "GPUSpec",
    "HYBRID_DEGREE_THRESHOLD",
    "KEY_INFINITY",
    "KernelClassification",
    "KernelCounters",
    "PCIE_BANDWIDTH_GBS",
    "RTX_3080_TI",
    "RunCounters",
    "THREADRIPPER_2950X",
    "TITAN_V",
    "XEON_GOLD_6226R_X2",
    "atomic_min_u64",
    "bound_summary",
    "classify_kernel",
    "classify_run",
    "cpu_phase_seconds",
    "edge_centric_cycles",
    "gpu_kernel_seconds",
    "hybrid_cycles",
    "pack_keys",
    "thread_mode_cycles",
    "unpack_edge_id",
    "unpack_weight",
]
