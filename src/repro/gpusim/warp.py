"""Warp-level execution accounting.

SIMT hardware executes 32 threads in lock step, so a warp is busy for
``max`` (not ``mean``) of its threads' work — the root cause of the
load-balancing problems the paper attributes to vertex-centric codes on
scale-free inputs.  These helpers compute *counted* cycle totals from
the actual per-thread work arrays:

* :func:`thread_mode_cycles` — one vertex per thread ("Thread-Based"
  ablation): each warp costs ``32 * max(work in warp)``.
* :func:`hybrid_cycles` — the paper's scheme: vertices with degree < 4
  keep a single thread, heavier vertices get a whole warp whose lanes
  split the adjacency list (Merrill-style), plus a small constant for
  the ballot/shuffle coordination.
* :func:`edge_centric_cycles` — one edge per thread: work is uniform,
  so the only waste is the partial last warp.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "thread_mode_cycles",
    "hybrid_cycles",
    "edge_centric_cycles",
    "HYBRID_DEGREE_THRESHOLD",
]

# The paper: "processes each low-degree vertex (d(v) < 4) with a single
# thread and each remaining vertex with an entire warp".
HYBRID_DEGREE_THRESHOLD = 4

# Cycles to coordinate a warp-wide vertex (ballot + shuffle exchange).
_WARP_COORD_CYCLES = 6.0


def thread_mode_cycles(
    work: np.ndarray, per_item_cycles: float, warp_size: int = 32
) -> float:
    """Cycles when each vertex is handled by a single thread.

    ``work[i]`` is the number of inner-loop iterations (neighbors) of
    thread ``i``.  Threads are packed into consecutive warps; each warp
    occupies ``warp_size * max(work)`` lane-cycles because idle lanes
    still consume issue slots.
    """
    work = np.asarray(work, dtype=np.float64)
    if work.size == 0:
        return 0.0
    pad = (-work.size) % warp_size
    if pad:
        work = np.concatenate([work, np.zeros(pad)])
    per_warp_max = work.reshape(-1, warp_size).max(axis=1)
    return float(per_warp_max.sum() * warp_size * per_item_cycles)


def hybrid_cycles(
    work: np.ndarray,
    per_item_cycles: float,
    warp_size: int = 32,
    threshold: int = HYBRID_DEGREE_THRESHOLD,
) -> float:
    """Cycles under the hybrid thread/warp parallelization.

    Low-degree vertices run thread-per-vertex (bounded imbalance: the
    warp max is < ``threshold``); each high-degree vertex runs on a
    full warp that strides its adjacency list, costing
    ``ceil(work / warp_size) * warp_size`` lane-cycles plus the
    coordination constant.
    """
    work = np.asarray(work, dtype=np.float64)
    if work.size == 0:
        return 0.0
    low = work[work < threshold]
    high = work[work >= threshold]
    cycles = thread_mode_cycles(low, per_item_cycles, warp_size)
    if high.size:
        lane_cycles = np.ceil(high / warp_size) * warp_size * per_item_cycles
        cycles += float(lane_cycles.sum() + high.size * _WARP_COORD_CYCLES)
    return cycles


def edge_centric_cycles(
    num_items: int, per_item_cycles: float, warp_size: int = 32
) -> float:
    """Cycles when every work item costs the same (edge-centric kernels)."""
    if num_items <= 0:
        return 0.0
    padded = -(-num_items // warp_size) * warp_size
    return float(padded * per_item_cycles)
