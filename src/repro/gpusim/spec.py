"""Hardware specifications for the modeled execution substrates.

The paper evaluates on two systems:

* **System 1** — AMD Threadripper 2950X (16 cores / 32 threads) +
  NVIDIA Titan V (Volta, 80 SMs, 5120 cores, 12 GB HBM2).
* **System 2** — 2× Intel Xeon Gold 6226R (32 cores / 64 threads) +
  NVIDIA RTX 3080 Ti (Ampere, 80 SMs, 10240 cores, 12 GB GDDR6X).

A :class:`GPUSpec`/:class:`CPUSpec` feeds the cost model
(:mod:`repro.gpusim.costmodel`) that converts *counted* work — the
kernels count their actual loads, stores, atomics and pointer jumps —
into modeled seconds.  The constants are calibrated so the suite-wide
performance relationships of the paper (Tables 3-5) hold in shape; the
derivation is documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "GPUSpec",
    "CPUSpec",
    "TITAN_V",
    "RTX_3080_TI",
    "THREADRIPPER_2950X",
    "XEON_GOLD_6226R_X2",
    "PCIE_BANDWIDTH_GBS",
]

# Host<->device transfer rate used for the "ECL-MST memcpy" rows.
PCIE_BANDWIDTH_GBS = 6.0


@dataclass(frozen=True)
class GPUSpec:
    """Modeled GPU.

    Attributes
    ----------
    num_sms / cores_per_sm / clock_ghz:
        Raw compute organization; total throughput is
        ``num_sms * cores_per_sm * clock_ghz`` cycles/ns.
    mem_bandwidth_gbs:
        Peak DRAM bandwidth; memory-bound kernels are charged
        ``bytes / bandwidth``.
    warp_size:
        SIMT width (32 on all NVIDIA parts).
    kernel_launch_us:
        Fixed overhead per kernel launch — the bottleneck Pai & Pingali
        flag for memcpy-condition while loops; ECL-MST bounds launches
        at O(log |V|) rounds.
    atomic_gops:
        Sustained global-atomic throughput in 10^9 atomics/s.
    ipc:
        Issue efficiency per core for this irregular, latency-bound
        workload (well below 1.0).
    mem_efficiency:
        Fraction of peak DRAM bandwidth that data-dependent
        gather/scatter traffic actually achieves — graph workloads
        touch scattered 4-16-byte values, so whole 32-byte sectors are
        fetched for a fraction of their payload.
    """

    name: str
    num_sms: int
    cores_per_sm: int
    clock_ghz: float
    mem_bandwidth_gbs: float
    warp_size: int = 32
    kernel_launch_us: float = 0.25
    atomic_gops: float = 2.0
    ipc: float = 0.10
    mem_efficiency: float = 0.12
    # cudaMemcpy of a convergence flag back to the host inside a while
    # loop — the bottleneck Pai & Pingali identify; charged per host
    # round-trip.
    host_sync_us: float = 3.0
    # Atomics to the SAME address serialize at the L2 slice; charged as
    # a critical-path term: (max ops on one address) * this latency.
    atomic_same_address_ns: float = 15.0
    # A single thread's serial loop of data-dependent accesses cannot
    # be hidden by parallelism: (longest per-thread iteration chain) *
    # this latency bounds the kernel from below.
    dependent_access_ns: float = 12.0

    def slowed(self, factor: float) -> "GPUSpec":
        """A uniformly ``factor``× slower copy of this spec.

        Every rate is divided and every fixed latency multiplied by
        ``factor``, so all modeled kernel times scale by exactly
        ``factor`` — the synthetic regression the perf gate's CI job
        injects to prove `repro-mst perf check` actually fails.
        """
        import dataclasses

        if factor <= 0:
            raise ValueError("slowdown factor must be positive")
        return dataclasses.replace(
            self,
            name=f"{self.name} (x{factor:g} slowdown)",
            clock_ghz=self.clock_ghz / factor,
            mem_bandwidth_gbs=self.mem_bandwidth_gbs / factor,
            atomic_gops=self.atomic_gops / factor,
            kernel_launch_us=self.kernel_launch_us * factor,
            host_sync_us=self.host_sync_us * factor,
            atomic_same_address_ns=self.atomic_same_address_ns * factor,
            dependent_access_ns=self.dependent_access_ns * factor,
        )

    @property
    def effective_bandwidth_gbs(self) -> float:
        return self.mem_bandwidth_gbs * self.mem_efficiency

    @property
    def total_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    @property
    def compute_gcycles_per_s(self) -> float:
        """Aggregate useful cycles per second across the chip."""
        return self.total_cores * self.clock_ghz * self.ipc


@dataclass(frozen=True)
class CPUSpec:
    """Modeled CPU.

    ``parallel_efficiency`` captures the memory-bus saturation and
    NUMA effects that keep parallel CPU MST codes far from linear
    scaling; ``sync_us`` is charged once per parallel round (barrier +
    task spawn).
    """

    name: str
    cores: int
    clock_ghz: float
    ipc: float = 1.1
    mem_bandwidth_gbs: float = 60.0
    parallel_efficiency: float = 0.26
    sync_us: float = 1.0

    def compute_gcycles_per_s(self, threads: int = 0) -> float:
        used = threads if threads > 0 else self.cores
        used = min(used, self.cores)
        eff = 1.0 if used == 1 else self.parallel_efficiency
        return used * self.clock_ghz * self.ipc * eff

    def slowed(self, factor: float) -> "CPUSpec":
        """A uniformly ``factor``× slower copy (see ``GPUSpec.slowed``)."""
        import dataclasses

        if factor <= 0:
            raise ValueError("slowdown factor must be positive")
        return dataclasses.replace(
            self,
            name=f"{self.name} (x{factor:g} slowdown)",
            clock_ghz=self.clock_ghz / factor,
            mem_bandwidth_gbs=self.mem_bandwidth_gbs / factor,
            sync_us=self.sync_us * factor,
        )


TITAN_V = GPUSpec(
    name="NVIDIA Titan V",
    num_sms=80,
    cores_per_sm=64,
    clock_ghz=1.2,
    mem_bandwidth_gbs=651.0,
)

RTX_3080_TI = GPUSpec(
    name="NVIDIA RTX 3080 Ti",
    num_sms=80,
    cores_per_sm=128,
    clock_ghz=1.665,
    mem_bandwidth_gbs=912.0,
    kernel_launch_us=0.18,
    atomic_gops=3.0,
)

THREADRIPPER_2950X = CPUSpec(
    name="AMD Ryzen Threadripper 2950X",
    cores=16,
    clock_ghz=3.5,
    parallel_efficiency=0.30,
)

XEON_GOLD_6226R_X2 = CPUSpec(
    name="2x Intel Xeon Gold 6226R",
    cores=32,
    clock_ghz=2.9,
    mem_bandwidth_gbs=110.0,
    parallel_efficiency=0.22,
)
