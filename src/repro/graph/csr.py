"""Compressed sparse row (CSR) graph representation.

This mirrors the 32-bit binary CSR format used by the ECL graph codes
(https://cs.txstate.edu/~burtscher/research/ECLgraph/): an undirected
graph is stored as a directed graph in which every undirected edge
``{u, v}`` appears as the two directed edges ``(u, v)`` and ``(v, u)``.

Every *directed* edge slot carries the weight of the undirected edge
and an *undirected edge ID* shared by the two mirrored slots, so that
algorithms can refer to "the edge" independently of direction.  This is
exactly the identifier the 64-bit ``weight:id`` atomicMin keys in
ECL-MST are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["CSRGraph"]

# Dtypes follow the ECL binary format: 32-bit indices and weights.
INDEX_DTYPE = np.int64  # row pointers may exceed 2^31 for large graphs
VERTEX_DTYPE = np.int32
WEIGHT_DTYPE = np.int32
EDGE_ID_DTYPE = np.int32


@dataclass
class CSRGraph:
    """An undirected weighted graph in CSR form.

    Attributes
    ----------
    row_ptr:
        ``(num_vertices + 1,)`` int64 array; neighbors of vertex ``v``
        occupy slots ``row_ptr[v]:row_ptr[v + 1]``.
    col_idx:
        ``(num_directed_edges,)`` int32 array of neighbor vertex IDs.
    weights:
        ``(num_directed_edges,)`` int32 array; both directions of an
        undirected edge carry the same weight.
    edge_ids:
        ``(num_directed_edges,)`` int32 array mapping each directed
        slot to its undirected edge ID in ``[0, num_edges)``.  Mirrored
        slots share one ID.
    name:
        optional human-readable name used in reports.
    """

    row_ptr: np.ndarray
    col_idx: np.ndarray
    weights: np.ndarray
    edge_ids: np.ndarray
    name: str = "graph"
    _degree_cache: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.row_ptr = np.ascontiguousarray(self.row_ptr, dtype=INDEX_DTYPE)
        self.col_idx = np.ascontiguousarray(self.col_idx, dtype=VERTEX_DTYPE)
        self.weights = np.ascontiguousarray(self.weights, dtype=WEIGHT_DTYPE)
        self.edge_ids = np.ascontiguousarray(self.edge_ids, dtype=EDGE_ID_DTYPE)
        if self.row_ptr.ndim != 1 or self.row_ptr.size == 0:
            raise ValueError("row_ptr must be a 1-D array of length num_vertices + 1")
        m = self.row_ptr[-1]
        if not (self.col_idx.size == self.weights.size == self.edge_ids.size == m):
            raise ValueError(
                "col_idx, weights and edge_ids must all have row_ptr[-1] "
                f"= {m} entries; got {self.col_idx.size}, {self.weights.size}, "
                f"{self.edge_ids.size}"
            )

    # ------------------------------------------------------------------
    # Size queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return int(self.row_ptr.size - 1)

    @property
    def num_directed_edges(self) -> int:
        """Number of directed edge slots (``2 |E|`` for undirected graphs)."""
        return int(self.col_idx.size)

    @property
    def num_edges(self) -> int:
        """Number of *undirected* edges ``|E|``."""
        if self.edge_ids.size == 0:
            return 0
        return int(self.edge_ids.max()) + 1

    # ------------------------------------------------------------------
    # Neighborhood access
    # ------------------------------------------------------------------
    def degrees(self) -> np.ndarray:
        """Per-vertex degree array (counts directed slots)."""
        if self._degree_cache is None:
            self._degree_cache = np.diff(self.row_ptr)
        return self._degree_cache

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor vertex IDs of ``v`` (a view, do not mutate)."""
        return self.col_idx[self.row_ptr[v] : self.row_ptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights of the edges incident to ``v`` (a view)."""
        return self.weights[self.row_ptr[v] : self.row_ptr[v + 1]]

    def neighbor_edge_ids(self, v: int) -> np.ndarray:
        """Undirected edge IDs of the edges incident to ``v`` (a view)."""
        return self.edge_ids[self.row_ptr[v] : self.row_ptr[v + 1]]

    def edge_sources(self) -> np.ndarray:
        """Source vertex of every directed slot (expanded from row_ptr)."""
        return np.repeat(
            np.arange(self.num_vertices, dtype=VERTEX_DTYPE), self.degrees()
        )

    # ------------------------------------------------------------------
    # Undirected edge list
    # ------------------------------------------------------------------
    def undirected_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(u, v, w, eid)`` arrays with one entry per undirected edge.

        Only the ``u < v`` direction of each mirrored pair is returned,
        ordered by edge ID, which matches the "process edges in only one
        direction" convention of ECL-MST.
        """
        src = self.edge_sources()
        mask = src < self.col_idx
        u, v = src[mask], self.col_idx[mask]
        w, eid = self.weights[mask], self.edge_ids[mask]
        order = np.argsort(eid, kind="stable")
        return u[order], v[order], w[order], eid[order]

    def iter_edges(self) -> Iterator[tuple[int, int, int, int]]:
        """Iterate ``(u, v, w, eid)`` tuples over undirected edges."""
        u, v, w, eid = self.undirected_edges()
        for i in range(u.size):
            yield int(u[i]), int(v[i]), int(w[i]), int(eid[i])

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise ``ValueError`` on violation.

        Verified invariants: monotone row pointers, in-range neighbor
        IDs, no self-loops, symmetric adjacency, mirrored slots agreeing
        on weight and edge ID, and edge IDs forming ``[0, |E|)`` with
        exactly two slots each.
        """
        n = self.num_vertices
        if np.any(np.diff(self.row_ptr) < 0):
            raise ValueError("row_ptr must be non-decreasing")
        if self.col_idx.size and (
            self.col_idx.min() < 0 or self.col_idx.max() >= n
        ):
            raise ValueError("col_idx entries out of range")
        src = self.edge_sources()
        if np.any(src == self.col_idx):
            raise ValueError("graph contains self-loops")
        # Mirrored-slot agreement: sort directed edges by (min, max, eid)
        # and check they pair up exactly.
        lo = np.minimum(src, self.col_idx)
        hi = np.maximum(src, self.col_idx)
        order = np.lexsort((self.edge_ids, hi, lo))
        lo, hi = lo[order], hi[order]
        w, eid = self.weights[order], self.edge_ids[order]
        if lo.size % 2 != 0:
            raise ValueError("odd number of directed slots; graph not symmetric")
        a, b = slice(0, None, 2), slice(1, None, 2)
        if (
            np.any(lo[a] != lo[b])
            or np.any(hi[a] != hi[b])
            or np.any(w[a] != w[b])
            or np.any(eid[a] != eid[b])
        ):
            raise ValueError("directed slots do not mirror (asymmetric graph)")
        ids = np.sort(eid[a])
        if ids.size and not np.array_equal(ids, np.arange(ids.size)):
            raise ValueError("edge IDs must be exactly 0..|E|-1, one per edge")
        # Duplicate undirected edges would show as equal (lo, hi) pairs
        # across different edge IDs.
        pairs = lo[a].astype(np.int64) * n + hi[a]
        if np.unique(pairs).size != pairs.size:
            raise ValueError("graph contains duplicate undirected edges")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges})"
        )
