"""Deterministic random edge weights for unweighted inputs.

The paper's methodology says: *"For unweighted graphs, we inserted
random weights so the MST can be computed."*  The ECL codes do this
with a hash of the edge endpoints so that the weights are reproducible
across machines and independent of edge order.  We use the same idea:
a 32-bit avalanche hash of the canonical ``(lo, hi)`` endpoint pair,
folded into ``[1, max_weight]``.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphFormatError
from .csr import CSRGraph, WEIGHT_DTYPE

__all__ = [
    "hash_weight",
    "quantize_weights",
    "randomize_weights",
    "check_weight_bound",
    "MAX_WEIGHT",
    "WEIGHT_BOUND",
]

# Weights must fit the upper 32 bits of the packed ``weight:id`` atomic
# key with room for the +infinity sentinel, so keep them well below 2^31.
MAX_WEIGHT = 1 << 20

# Hard limit of the packed key: ``pack_keys`` rejects weights >= 2^31,
# so graph construction rejects them up front with context.
WEIGHT_BOUND = 1 << 31


def check_weight_bound(
    w: np.ndarray,
    lo: np.ndarray | None = None,
    hi: np.ndarray | None = None,
    *,
    name: str = "graph",
) -> None:
    """Reject weights the 64-bit ``weight:edge-ID`` atomic key cannot hold.

    Called at CSR construction time so oversized (or negative) weights
    fail at load with the offending edge named, instead of surfacing as
    a ``pack_keys`` ValueError mid-kernel.
    """
    if w.size == 0:
        return
    bad = int(w.argmax()) if int(w.max()) >= WEIGHT_BOUND else (
        int(w.argmin()) if int(w.min()) < 0 else -1
    )
    if bad < 0:
        return
    edge = (
        f"edge ({int(lo[bad])}, {int(hi[bad])})"
        if lo is not None and hi is not None
        else f"edge #{bad}"
    )
    value = int(w[bad])
    if value < 0:
        raise GraphFormatError(
            f"{name}: {edge} has negative weight {value}; MST weights "
            "must be non-negative integers"
        )
    raise GraphFormatError(
        f"{name}: {edge} has weight {value}, which does not fit the "
        f"31-bit field of the packed weight:edge-ID atomic key (max "
        f"{WEIGHT_BOUND - 1}); rescale or use quantize_weights()"
    )


def hash_weight(
    lo: np.ndarray, hi: np.ndarray, *, seed: int = 0, max_weight: int = MAX_WEIGHT
) -> np.ndarray:
    """Hash endpoint pairs into weights in ``[1, max_weight]``.

    Uses a Murmur3-style 32-bit finalizer over ``lo * PRIME ^ hi ^ seed``
    — a stateless, order-independent mapping, so the same undirected
    edge always gets the same weight.
    """
    x = (
        np.asarray(lo, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        ^ np.asarray(hi, dtype=np.uint64)
        ^ np.uint64((seed * 0x2545F4914F6CDD1D + 0xDEADBEEF) & 0xFFFFFFFFFFFFFFFF)
    )
    x ^= x >> np.uint64(33)
    x *= np.uint64(0xFF51AFD7ED558CCD)
    x ^= x >> np.uint64(33)
    x *= np.uint64(0xC4CEB9FE1A85EC53)
    x ^= x >> np.uint64(33)
    return (x % np.uint64(max_weight)).astype(np.int64) + 1


def randomize_weights(
    graph: CSRGraph, *, seed: int = 0, max_weight: int = MAX_WEIGHT
) -> CSRGraph:
    """Return a copy of ``graph`` with hash-derived random weights.

    Both directed slots of an undirected edge receive the same weight
    because the hash is computed on the canonical (sorted) endpoint
    pair.
    """
    src = graph.edge_sources()
    lo = np.minimum(src, graph.col_idx)
    hi = np.maximum(src, graph.col_idx)
    w = hash_weight(lo, hi, seed=seed, max_weight=max_weight)
    return CSRGraph(
        row_ptr=graph.row_ptr.copy(),
        col_idx=graph.col_idx.copy(),
        weights=w.astype(WEIGHT_DTYPE),
        edge_ids=graph.edge_ids.copy(),
        name=graph.name,
    )


def quantize_weights(
    values, *, bits: int = 20, lo: float | None = None, hi: float | None = None
):
    """Quantize real-valued edge weights into the integer range the
    packed ``weight:id`` keys require.

    Real-world inputs often carry float weights (cuGraph ships float
    and double variants for exactly this reason); the 64-bit atomicMin
    key leaves 31 bits for the weight, so floats must be mapped onto
    integers.  Linear quantization preserves the *order* of weights up
    to ties within a quantization bucket — and any surviving ties are
    broken deterministically by edge ID, so the computed tree is a
    valid MSF of the quantized graph.

    Parameters
    ----------
    values:
        Array-like of finite floats.
    bits:
        Output precision; results lie in ``[1, 2**bits]``.
    lo, hi:
        Optional clamp range; defaults to the data's min/max.

    Returns
    -------
    numpy.int64 array of quantized weights.
    """
    import numpy as _np

    if not 1 <= bits <= 30:
        raise ValueError("bits must be in [1, 30]")
    arr = _np.asarray(values, dtype=_np.float64)
    if arr.size == 0:
        return _np.empty(0, dtype=_np.int64)
    if not _np.isfinite(arr).all():
        raise ValueError("weights must be finite")
    lo = float(arr.min()) if lo is None else float(lo)
    hi = float(arr.max()) if hi is None else float(hi)
    if hi <= lo:
        return _np.ones(arr.size, dtype=_np.int64)
    span = (1 << bits) - 1
    scaled = _np.clip((arr - lo) / (hi - lo), 0.0, 1.0)
    return (scaled * span).astype(_np.int64) + 1
