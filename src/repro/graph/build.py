"""Edge-list to CSR construction with the paper's input cleanup rules.

The evaluation methodology (Section 4) states: *"Where needed, we
modified the graphs to eliminate self-loops and multiple edges between
the same two vertices. We added any missing back edges to make the
graphs undirected."*  :func:`build_csr` implements exactly that
pipeline, entirely with vectorized NumPy (sort + unique), so building
multi-million-edge graphs stays fast.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph, EDGE_ID_DTYPE, INDEX_DTYPE, VERTEX_DTYPE, WEIGHT_DTYPE
from .weights import check_weight_bound

__all__ = ["build_csr", "from_edge_arrays", "empty_graph"]


def empty_graph(num_vertices: int, name: str = "empty") -> CSRGraph:
    """An edgeless graph on ``num_vertices`` vertices."""
    return CSRGraph(
        row_ptr=np.zeros(num_vertices + 1, dtype=INDEX_DTYPE),
        col_idx=np.empty(0, dtype=VERTEX_DTYPE),
        weights=np.empty(0, dtype=WEIGHT_DTYPE),
        edge_ids=np.empty(0, dtype=EDGE_ID_DTYPE),
        name=name,
    )


def build_csr(
    num_vertices: int,
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray | None = None,
    *,
    name: str = "graph",
    dedup: str = "min",
) -> CSRGraph:
    """Build a clean undirected :class:`CSRGraph` from a raw edge list.

    Parameters
    ----------
    num_vertices:
        Vertex count; all endpoints must lie in ``[0, num_vertices)``.
    u, v:
        Endpoint arrays.  Direction and duplicates are irrelevant: the
        input is canonicalized, self-loops dropped, parallel edges
        merged, and back edges added.
    w:
        Optional weights (one per input edge).  When parallel edges are
        merged the ``dedup`` policy picks the surviving weight.  When
        omitted, all weights are 1 (use
        :func:`repro.graph.weights.randomize_weights` afterwards to
        assign the paper's deterministic random weights).
    dedup:
        ``"min"`` (keep lightest parallel edge, the natural choice for
        MST), ``"max"``, or ``"first"``.

    Returns
    -------
    CSRGraph
        With neighbors sorted by ID within each adjacency list and edge
        IDs assigned in lexicographic ``(min(u,v), max(u,v))`` order.
    """
    u = np.asarray(u, dtype=np.int64).ravel()
    v = np.asarray(v, dtype=np.int64).ravel()
    if u.size != v.size:
        raise ValueError("u and v must have equal length")
    if u.size and (min(u.min(), v.min()) < 0 or max(u.max(), v.max()) >= num_vertices):
        raise ValueError("edge endpoint out of range")
    if w is None:
        w = np.ones(u.size, dtype=np.int64)
    else:
        w = np.asarray(w, dtype=np.int64).ravel()
        if w.size != u.size:
            raise ValueError("w must have one entry per edge")

    # Canonicalize to (lo, hi) and drop self-loops.
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    keep = lo != hi
    lo, hi, w = lo[keep], hi[keep], w[keep]

    # Deduplicate parallel edges.
    key = lo * num_vertices + hi
    if dedup == "first":
        _, first_idx = np.unique(key, return_index=True)
        lo, hi, w = lo[first_idx], hi[first_idx], w[first_idx]
    elif dedup in ("min", "max"):
        order = np.lexsort((w if dedup == "min" else -w, key))
        key_sorted = key[order]
        firsts = np.ones(key_sorted.size, dtype=bool)
        firsts[1:] = key_sorted[1:] != key_sorted[:-1]
        sel = order[firsts]
        sel.sort()
        lo, hi, w = lo[sel], hi[sel], w[sel]
    else:
        raise ValueError(f"unknown dedup policy {dedup!r}")

    return from_edge_arrays(num_vertices, lo, hi, w, name=name)


def from_edge_arrays(
    num_vertices: int,
    lo: np.ndarray,
    hi: np.ndarray,
    w: np.ndarray,
    *,
    name: str = "graph",
) -> CSRGraph:
    """Assemble a CSR graph from already-clean canonical edges.

    ``(lo, hi, w)`` must be self-loop-free and duplicate-free with
    ``lo < hi``; this is the fast path used by the generators, which
    produce clean edges directly.
    """
    lo = np.asarray(lo, dtype=np.int64)
    hi = np.asarray(hi, dtype=np.int64)
    w = np.asarray(w, dtype=np.int64)
    m = lo.size
    check_weight_bound(w, lo, hi, name=name)

    # Assign edge IDs in (lo, hi) lexicographic order for determinism.
    order = np.lexsort((hi, lo))
    lo, hi, w = lo[order], hi[order], w[order]
    eid = np.arange(m, dtype=np.int64)

    # Mirror into directed slots.
    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    dw = np.concatenate([w, w])
    de = np.concatenate([eid, eid])

    # Counting sort by (src, dst) builds sorted adjacency lists.
    slot_order = np.lexsort((dst, src))
    src, dst, dw, de = src[slot_order], dst[slot_order], dw[slot_order], de[slot_order]

    row_ptr = np.zeros(num_vertices + 1, dtype=INDEX_DTYPE)
    counts = np.bincount(src, minlength=num_vertices)
    np.cumsum(counts, out=row_ptr[1:])

    return CSRGraph(
        row_ptr=row_ptr,
        col_idx=dst.astype(VERTEX_DTYPE),
        weights=dw.astype(WEIGHT_DTYPE),
        edge_ids=de.astype(EDGE_ID_DTYPE),
        name=name,
    )
