"""Graph property computations backing Table 2 of the paper.

Table 2 lists, for every input: edge count, vertex count, type, number
of connected components, and average/maximum degree.  This module
computes those quantities plus the helpers the rest of the system needs
(component labeling for MSF verification, degree statistics for the
hybrid-parallelization and filtering decisions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = ["GraphInfo", "connected_components", "graph_info", "average_degree"]


@dataclass(frozen=True)
class GraphInfo:
    """One Table-2 row."""

    name: str
    num_edges: int
    num_vertices: int
    kind: str
    num_components: int
    avg_degree: float
    max_degree: int

    def row(self) -> tuple:
        """Values in the paper's column order."""
        return (
            self.name,
            self.num_edges,
            self.num_vertices,
            self.kind,
            self.num_components,
            round(self.avg_degree, 1),
            self.max_degree,
        )


def connected_components(graph: CSRGraph) -> tuple[int, np.ndarray]:
    """Label connected components.

    Returns ``(count, labels)`` where ``labels[v]`` is a component ID in
    ``[0, count)``.  Uses vectorized label propagation (pointer jumping
    on the minimum-neighbor label), which converges in O(diameter)
    halving steps — the same style of iteration the GPU connected-
    components codes referenced by the paper use.
    """
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.int64)
    src = graph.edge_sources().astype(np.int64)
    dst = graph.col_idx.astype(np.int64)
    while True:
        # Propagate the smaller endpoint label across every edge.
        l_src, l_dst = labels[src], labels[dst]
        new = labels.copy()
        np.minimum.at(new, src, l_dst)
        np.minimum.at(new, dst, l_src)
        # Pointer-jump labels toward their roots to accelerate convergence.
        while True:
            jumped = new[new]
            if np.array_equal(jumped, new):
                break
            new = jumped
        if np.array_equal(new, labels):
            break
        labels = new
    roots, compact = np.unique(labels, return_inverse=True)
    return int(roots.size), compact


def average_degree(graph: CSRGraph) -> float:
    """Mean directed-slot degree (the paper's ``d-avg`` column)."""
    n = graph.num_vertices
    return graph.num_directed_edges / n if n else 0.0


def graph_info(graph: CSRGraph, kind: str = "unknown") -> GraphInfo:
    """Compute a full Table-2 row for ``graph``."""
    degs = graph.degrees()
    count, _ = connected_components(graph)
    # Table 2 counts directed CSR slots (each undirected edge twice),
    # e.g. 2d-2e20.sym lists 4,190,208 edges for 1,048,576 vertices.
    return GraphInfo(
        name=graph.name,
        num_edges=graph.num_directed_edges,
        num_vertices=graph.num_vertices,
        kind=kind,
        num_components=count,
        avg_degree=average_degree(graph),
        max_degree=int(degs.max()) if degs.size else 0,
    )
