"""Graph file IO.

Two formats are supported:

* **ECL binary CSR** — the format the paper's artifact uses for its 17
  inputs (``https://cs.txstate.edu/~burtscher/research/ECLgraph/``):
  a little-endian header ``(num_vertices: int64, num_directed_edges:
  int64, has_weights: int64)`` followed by ``row_ptr`` (int64,
  ``num_vertices + 1`` entries... the original stores 32-bit ``nindex``;
  we keep 64-bit row pointers for graphs whose slot count exceeds
  2^31), ``col_idx`` (int32) and optionally ``weights`` (int32).
  Edge IDs are reconstructed on load from the canonical ordering.

* **Text edge list** — whitespace-separated ``u v [w]`` lines with
  ``#`` comments, the common interchange format of SNAP/DIMACS dumps.
"""

from __future__ import annotations

import io
import os
from pathlib import Path

import numpy as np

from .build import build_csr
from .csr import CSRGraph

__all__ = ["save_ecl", "load_ecl", "save_edge_list", "load_edge_list"]

_MAGIC = b"ECLG\x01\x00"


def save_ecl(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write ``graph`` in the binary ECL CSR format."""
    path = Path(path)
    with open(path, "wb") as f:
        f.write(_MAGIC)
        header = np.array(
            [graph.num_vertices, graph.num_directed_edges, 1], dtype="<i8"
        )
        f.write(header.tobytes())
        f.write(graph.row_ptr.astype("<i8").tobytes())
        f.write(graph.col_idx.astype("<i4").tobytes())
        f.write(graph.weights.astype("<i4").tobytes())


def load_ecl(path: str | os.PathLike, name: str | None = None) -> CSRGraph:
    """Read a graph written by :func:`save_ecl`.

    The undirected edge IDs are rebuilt from the adjacency structure
    (they are not stored in the file), so a save/load round trip
    reproduces an identical graph.
    """
    path = Path(path)
    with open(path, "rb") as f:
        magic = f.read(len(_MAGIC))
        if magic != _MAGIC:
            raise ValueError(f"{path}: not an ECL graph file")
        header = np.frombuffer(f.read(24), dtype="<i8")
        n, m, has_weights = (int(x) for x in header)
        row_ptr = np.frombuffer(f.read(8 * (n + 1)), dtype="<i8")
        col_idx = np.frombuffer(f.read(4 * m), dtype="<i4")
        if has_weights:
            weights = np.frombuffer(f.read(4 * m), dtype="<i4")
        else:
            weights = np.ones(m, dtype="<i4")
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(row_ptr))
    mask = src < col_idx
    return build_csr(
        n,
        src[mask],
        col_idx[mask].astype(np.int64),
        weights[mask].astype(np.int64),
        name=name or path.stem,
    )


def save_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write an undirected ``u v w`` text edge list."""
    u, v, w, _ = graph.undirected_edges()
    with open(path, "w") as f:
        f.write(f"# {graph.name}: {graph.num_vertices} vertices, {u.size} edges\n")
        for i in range(u.size):
            f.write(f"{u[i]} {v[i]} {w[i]}\n")


def load_edge_list(
    path: str | os.PathLike | io.TextIOBase,
    *,
    num_vertices: int | None = None,
    name: str = "edge-list",
) -> CSRGraph:
    """Read a whitespace-separated ``u v [w]`` edge list.

    Lines starting with ``#`` are comments.  Missing weights default to
    1.  ``num_vertices`` defaults to ``max endpoint + 1``.
    """
    if isinstance(path, io.TextIOBase):
        lines = path.read().splitlines()
    else:
        lines = Path(path).read_text().splitlines()
    us: list[int] = []
    vs: list[int] = []
    ws: list[int] = []
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        us.append(int(parts[0]))
        vs.append(int(parts[1]))
        ws.append(int(parts[2]) if len(parts) > 2 else 1)
    u = np.asarray(us, dtype=np.int64)
    v = np.asarray(vs, dtype=np.int64)
    w = np.asarray(ws, dtype=np.int64)
    if num_vertices is None:
        num_vertices = int(max(u.max(initial=-1), v.max(initial=-1))) + 1
    return build_csr(num_vertices, u, v, w, name=name)
