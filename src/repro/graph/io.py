"""Graph file IO.

Two formats are supported:

* **ECL binary CSR** — the format the paper's artifact uses for its 17
  inputs (``https://cs.txstate.edu/~burtscher/research/ECLgraph/``):
  a little-endian header ``(num_vertices: int64, num_directed_edges:
  int64, has_weights: int64)`` followed by ``row_ptr`` (int64,
  ``num_vertices + 1`` entries... the original stores 32-bit ``nindex``;
  we keep 64-bit row pointers for graphs whose slot count exceeds
  2^31), ``col_idx`` (int32) and optionally ``weights`` (int32).
  Edge IDs are reconstructed on load from the canonical ordering.

* **Text edge list** — whitespace-separated ``u v [w]`` lines with
  ``#`` comments, the common interchange format of SNAP/DIMACS dumps.
"""

from __future__ import annotations

import io
import os
from pathlib import Path

import numpy as np

from ..errors import GraphFormatError
from .build import build_csr
from .csr import CSRGraph
from .weights import WEIGHT_BOUND

__all__ = [
    "save_ecl",
    "load_ecl",
    "save_edge_list",
    "load_edge_list",
    "file_signature",
]


def file_signature(path: str | os.PathLike) -> tuple[int, int]:
    """Cheap change-detection signature for a graph file.

    ``(size, mtime_ns)`` is the build-cache key component for file
    inputs: editing or replacing the file invalidates cached graphs
    without hashing gigabytes on every query.
    """
    st = os.stat(path)
    return (st.st_size, st.st_mtime_ns)

_MAGIC = b"ECLG\x01\x00"


def _read_exact(f, nbytes: int, path, what: str) -> bytes:
    """Read exactly ``nbytes`` or raise a typed truncation error."""
    data = f.read(nbytes)
    if len(data) != nbytes:
        raise GraphFormatError(
            f"{path}: truncated {what} (expected {nbytes} bytes, "
            f"got {len(data)})"
        )
    return data


def save_ecl(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write ``graph`` in the binary ECL CSR format."""
    path = Path(path)
    with open(path, "wb") as f:
        f.write(_MAGIC)
        header = np.array(
            [graph.num_vertices, graph.num_directed_edges, 1], dtype="<i8"
        )
        f.write(header.tobytes())
        f.write(graph.row_ptr.astype("<i8").tobytes())
        f.write(graph.col_idx.astype("<i4").tobytes())
        f.write(graph.weights.astype("<i4").tobytes())


def load_ecl(path: str | os.PathLike, name: str | None = None) -> CSRGraph:
    """Read a graph written by :func:`save_ecl`.

    The undirected edge IDs are rebuilt from the adjacency structure
    (they are not stored in the file), so a save/load round trip
    reproduces an identical graph.
    """
    path = Path(path)
    with open(path, "rb") as f:
        magic = f.read(len(_MAGIC))
        if magic != _MAGIC:
            raise GraphFormatError(f"{path}: not an ECL graph file (bad magic)")
        header = np.frombuffer(_read_exact(f, 24, path, "header"), dtype="<i8")
        n, m, has_weights = (int(x) for x in header)
        if n < 0 or m < 0:
            raise GraphFormatError(
                f"{path}: negative counts in header "
                f"(num_vertices={n}, num_directed_edges={m})"
            )
        if has_weights not in (0, 1):
            raise GraphFormatError(
                f"{path}: has_weights flag must be 0 or 1, got {has_weights}"
            )
        row_ptr = np.frombuffer(
            _read_exact(f, 8 * (n + 1), path, "row_ptr array"), dtype="<i8"
        )
        col_idx = np.frombuffer(
            _read_exact(f, 4 * m, path, "col_idx array"), dtype="<i4"
        )
        if has_weights:
            weights = np.frombuffer(
                _read_exact(f, 4 * m, path, "weights array"), dtype="<i4"
            )
        else:
            weights = np.ones(m, dtype="<i4")
    if n and (row_ptr[0] != 0 or int(row_ptr[-1]) != m):
        raise GraphFormatError(
            f"{path}: inconsistent row pointers (first={int(row_ptr[0])}, "
            f"last={int(row_ptr[-1])}, expected 0 and {m})"
        )
    if np.any(np.diff(row_ptr) < 0):
        raise GraphFormatError(f"{path}: row pointers are not non-decreasing")
    if m and (int(col_idx.min()) < 0 or int(col_idx.max()) >= n):
        raise GraphFormatError(
            f"{path}: adjacency index out of range [0, {n})"
        )
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(row_ptr))
    mask = src < col_idx
    return build_csr(
        n,
        src[mask],
        col_idx[mask].astype(np.int64),
        weights[mask].astype(np.int64),
        name=name or path.stem,
    )


def save_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write an undirected ``u v w`` text edge list."""
    u, v, w, _ = graph.undirected_edges()
    with open(path, "w") as f:
        f.write(f"# {graph.name}: {graph.num_vertices} vertices, {u.size} edges\n")
        for i in range(u.size):
            f.write(f"{u[i]} {v[i]} {w[i]}\n")


def load_edge_list(
    path: str | os.PathLike | io.TextIOBase,
    *,
    num_vertices: int | None = None,
    name: str = "edge-list",
) -> CSRGraph:
    """Read a whitespace-separated ``u v [w]`` edge list.

    Lines starting with ``#`` are comments.  Missing weights default to
    1.  ``num_vertices`` defaults to ``max endpoint + 1``.
    """
    if isinstance(path, io.TextIOBase):
        lines = path.read().splitlines()
        where = name
    else:
        lines = Path(path).read_text().splitlines()
        where = str(path)
    us: list[int] = []
    vs: list[int] = []
    ws: list[int] = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphFormatError(
                f"{where}:{lineno}: expected 'u v [w]', got {line!r}"
            )
        try:
            uu, vv = int(parts[0]), int(parts[1])
            ww = int(parts[2]) if len(parts) > 2 else 1
        except ValueError:
            raise GraphFormatError(
                f"{where}:{lineno}: non-integer token in {line!r}"
            ) from None
        if uu < 0 or vv < 0:
            raise GraphFormatError(
                f"{where}:{lineno}: negative vertex ID in {line!r}"
            )
        if ww < 0:
            raise GraphFormatError(
                f"{where}:{lineno}: negative edge weight {ww} "
                "(MST weights must be non-negative integers)"
            )
        if ww >= WEIGHT_BOUND:
            raise GraphFormatError(
                f"{where}:{lineno}: edge weight {ww} does not fit the "
                f"31-bit packed weight:edge-ID atomic key (max "
                f"{WEIGHT_BOUND - 1}); rescale or quantize the weights"
            )
        us.append(uu)
        vs.append(vv)
        ws.append(ww)
    u = np.asarray(us, dtype=np.int64)
    v = np.asarray(vs, dtype=np.int64)
    w = np.asarray(ws, dtype=np.int64)
    if num_vertices is None:
        num_vertices = int(max(u.max(initial=-1), v.max(initial=-1))) + 1
    return build_csr(num_vertices, u, v, w, name=name)
