"""Readers/writers for the public graph formats the paper's inputs use.

* **DIMACS shortest-path** (``.gr``) — the 9th DIMACS Implementation
  Challenge format of the USA road graphs: ``c`` comment lines, one
  ``p sp <n> <m>`` problem line, and ``a <u> <v> <w>`` arc lines with
  1-based vertex IDs.  Road inputs ship both directions of every arc;
  the cleanup pipeline (dedup + symmetrize) handles either convention.

* **METIS / Chaco** (``.graph``) — the format of the Galois and
  DIMACS-10 inputs (europe_osm, delaunay, kron, coPapersDBLP): a header
  ``<n> <m> [fmt]`` followed by one adjacency line per vertex (1-based
  neighbor IDs, optionally interleaved with edge weights when
  ``fmt`` ∈ {1, 11}).
"""

from __future__ import annotations

import io
import os
from pathlib import Path

import numpy as np

from .build import build_csr
from .csr import CSRGraph

__all__ = ["load_dimacs", "save_dimacs", "load_metis", "save_metis"]


def _read_lines(path) -> list[str]:
    if isinstance(path, io.TextIOBase):
        return path.read().splitlines()
    return Path(path).read_text().splitlines()


# ----------------------------------------------------------------------
# DIMACS .gr
# ----------------------------------------------------------------------
def load_dimacs(
    path: str | os.PathLike | io.TextIOBase, *, name: str = "dimacs"
) -> CSRGraph:
    """Read a DIMACS shortest-path ``.gr`` file."""
    n = None
    us: list[int] = []
    vs: list[int] = []
    ws: list[int] = []
    for line in _read_lines(path):
        line = line.strip()
        if not line or line.startswith("c"):
            continue
        parts = line.split()
        if parts[0] == "p":
            if len(parts) != 4 or parts[1] != "sp":
                raise ValueError(f"malformed problem line: {line!r}")
            n = int(parts[2])
        elif parts[0] == "a":
            if n is None:
                raise ValueError("arc line before problem line")
            us.append(int(parts[1]) - 1)
            vs.append(int(parts[2]) - 1)
            ws.append(int(parts[3]))
        else:
            raise ValueError(f"unknown DIMACS line type: {line!r}")
    if n is None:
        raise ValueError("missing 'p sp' problem line")
    return build_csr(
        n,
        np.asarray(us, dtype=np.int64),
        np.asarray(vs, dtype=np.int64),
        np.asarray(ws, dtype=np.int64),
        name=name,
    )


def save_dimacs(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write a DIMACS ``.gr`` file (both directions, as the road
    inputs do)."""
    src = graph.edge_sources()
    with open(path, "w") as f:
        f.write(f"c {graph.name}\n")
        f.write(f"p sp {graph.num_vertices} {graph.num_directed_edges}\n")
        for i in range(src.size):
            f.write(f"a {src[i] + 1} {graph.col_idx[i] + 1} {graph.weights[i]}\n")


# ----------------------------------------------------------------------
# METIS .graph
# ----------------------------------------------------------------------
def load_metis(
    path: str | os.PathLike | io.TextIOBase, *, name: str = "metis"
) -> CSRGraph:
    """Read a METIS/Chaco ``.graph`` file (fmt 0 or 1)."""
    raw = [l for l in _read_lines(path) if not l.lstrip().startswith("%")]
    # The header is the first non-blank line; adjacency lines may be
    # blank (isolated vertices), so only leading/trailing blanks drop.
    while raw and not raw[0].strip():
        raw.pop(0)
    while raw and not raw[-1].strip():
        raw.pop()
    lines = raw
    if not lines:
        raise ValueError("empty METIS file")
    header = lines[0].split()
    n, m = int(header[0]), int(header[1])
    fmt = header[2] if len(header) > 2 else "0"
    has_weights = fmt in ("1", "01", "11")
    if fmt not in ("0", "1", "01", "11", "00"):
        raise ValueError(f"unsupported METIS fmt {fmt!r}")
    if len(lines) - 1 > n:
        raise ValueError(
            f"expected {n} adjacency lines, found {len(lines) - 1}"
        )
    # Trailing isolated vertices may appear as trimmed blank lines.
    lines = lines + [""] * (n - (len(lines) - 1))
    us: list[int] = []
    vs: list[int] = []
    ws: list[int] = []
    for v, line in enumerate(lines[1:]):
        tokens = line.split()
        step = 2 if has_weights else 1
        for i in range(0, len(tokens), step):
            u = int(tokens[i]) - 1
            w = int(tokens[i + 1]) if has_weights else 1
            us.append(v)
            vs.append(u)
            ws.append(w)
    g = build_csr(
        n,
        np.asarray(us, dtype=np.int64),
        np.asarray(vs, dtype=np.int64),
        np.asarray(ws, dtype=np.int64),
        name=name,
    )
    if g.num_edges != m:
        # METIS headers count undirected edges; tolerate cleaned dupes
        # but reject wild mismatches.
        if not (0.5 * m <= g.num_edges <= m):
            raise ValueError(
                f"edge count mismatch: header says {m}, parsed {g.num_edges}"
            )
    return g


def save_metis(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write a METIS ``.graph`` file with edge weights (fmt 1)."""
    with open(path, "w") as f:
        f.write(f"% {graph.name}\n")
        f.write(f"{graph.num_vertices} {graph.num_edges} 1\n")
        for v in range(graph.num_vertices):
            nbrs = graph.neighbors(v)
            wts = graph.neighbor_weights(v)
            f.write(
                " ".join(f"{nbrs[i] + 1} {wts[i]}" for i in range(nbrs.size))
                + "\n"
            )
