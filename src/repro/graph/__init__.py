"""Graph substrate: CSR storage, construction, IO, weights, properties."""

from .build import build_csr, empty_graph, from_edge_arrays
from .csr import CSRGraph
from .formats import load_dimacs, load_metis, save_dimacs, save_metis
from .io import load_ecl, load_edge_list, save_ecl, save_edge_list
from .properties import GraphInfo, average_degree, connected_components, graph_info
from .weights import MAX_WEIGHT, hash_weight, quantize_weights, randomize_weights

__all__ = [
    "CSRGraph",
    "GraphInfo",
    "MAX_WEIGHT",
    "average_degree",
    "build_csr",
    "connected_components",
    "empty_graph",
    "from_edge_arrays",
    "graph_info",
    "hash_weight",
    "load_dimacs",
    "load_ecl",
    "load_edge_list",
    "load_metis",
    "quantize_weights",
    "randomize_weights",
    "save_dimacs",
    "save_ecl",
    "save_edge_list",
    "save_metis",
]
