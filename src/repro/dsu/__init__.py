"""Disjoint-set (union-find) substrate."""

from .arrays import Compression, DisjointSet
from .vectorized import compress_halving_many, find_many, resolve_roots

__all__ = [
    "Compression",
    "DisjointSet",
    "compress_halving_many",
    "find_many",
    "resolve_roots",
]
