"""Array-based disjoint-set (union-find) with pluggable path compression.

ECL-MST, Lonestar and PBBS all center on this structure (Section 2).
The paper studies several *find* compression schemes (Section 3.2,
bullet 3) — including "intermediate pointer jumping" from the ECL-CC
connected-components work — before settling on **no explicit
compression at all**, relying instead on the implicit compression that
happens when worklist entries are rewritten to representatives.

The union is the ECL-style lock-free link: roots are compared and the
*higher-ID root is attached beneath the lower-ID root* via what would
be an ``atomicCAS`` retry loop on a GPU.  Link-by-ID (rather than by
rank) is what makes the CAS loop simple and ABA-free.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

__all__ = ["Compression", "DisjointSet"]


class Compression(str, Enum):
    """Path-compression schemes selectable for the find operation."""

    NONE = "none"
    HALVING = "halving"
    SPLITTING = "splitting"
    FULL = "full"
    # "Intermediate pointer jumping" (Jaiganesh & Burtscher, HPDC'18):
    # every traversal step rewrites the visited node to its grandparent,
    # like halving, but the rewrite is also applied when the traversal
    # starts mid-path — the GPU-friendly variant.
    INTERMEDIATE = "intermediate"


class DisjointSet:
    """Union-find over vertices ``0..n-1``.

    Tracks ``finds``, ``find_loads`` (parent dereferences) and
    ``compress_writes`` so the cost model can charge the *actual* work
    of each scheme.
    """

    def __init__(self, n: int, compression: Compression | str = Compression.NONE):
        self.parent = np.arange(n, dtype=np.int64)
        self.compression = Compression(compression)
        self.finds = 0
        self.find_loads = 0
        self.compress_writes = 0
        self.unions = 0
        self.union_cas = 0

    @property
    def n(self) -> int:
        return int(self.parent.size)

    # ------------------------------------------------------------------
    # find
    # ------------------------------------------------------------------
    def find(self, x: int) -> int:
        """Representative of ``x``'s set, applying the configured scheme."""
        parent = self.parent
        self.finds += 1
        scheme = self.compression
        if scheme is Compression.FULL:
            root = x
            loads = 1
            while parent[root] != root:
                root = int(parent[root])
                loads += 1
            # Second pass: point the whole path at the root.
            while parent[x] != root:
                nxt = int(parent[x])
                parent[x] = root
                self.compress_writes += 1
                x = nxt
            self.find_loads += loads
            return root

        cur = x
        loads = 1
        while parent[cur] != cur:
            nxt = int(parent[cur])
            if scheme in (
                Compression.HALVING,
                Compression.SPLITTING,
                Compression.INTERMEDIATE,
            ):
                grand = int(parent[nxt])
                loads += 1
                if grand != nxt:
                    parent[cur] = grand
                    self.compress_writes += 1
                if scheme is Compression.HALVING:
                    cur = grand
                else:  # splitting / intermediate advance one step
                    cur = nxt
            else:
                cur = nxt
            loads += 1
        self.find_loads += loads
        return int(cur)

    # ------------------------------------------------------------------
    # union
    # ------------------------------------------------------------------
    def union(self, a: int, b: int) -> bool:
        """Join the sets of ``a`` and ``b``; return False if already one.

        Simulates the ECL CAS loop: re-find roots until the link lands
        (sequential execution means at most one iteration here, but the
        retry structure and the ``union_cas`` count are preserved).
        """
        while True:
            ra, rb = self.find(a), self.find(b)
            if ra == rb:
                return False
            lo, hi = (ra, rb) if ra < rb else (rb, ra)
            self.union_cas += 1
            # atomicCAS(&parent[hi], hi, lo) — cannot fail sequentially.
            if self.parent[hi] == hi:
                self.parent[hi] = lo
                self.unions += 1
                return True

    def same_set(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def num_sets(self) -> int:
        """Number of disjoint sets (roots)."""
        roots = self.parent == np.arange(self.parent.size)
        return int(np.count_nonzero(roots))

    def representatives(self) -> np.ndarray:
        """Root of every vertex (fully resolved, no mutation)."""
        labels = self.parent.copy()
        while True:
            nxt = labels[labels]
            if np.array_equal(nxt, labels):
                return labels
            labels = nxt
