"""Vectorized multi-find used by the simulated GPU kernels.

A GPU kernel issues one *find* per worklist entry, all concurrent.
Because finds only read the parent array (ECL-MST does no explicit
compression) the concurrent outcome equals the sequential one, so a
vectorized fixpoint iteration is exact — and it lets us *count* the
parent-pointer dereferences that the cost model charges, which is how
the implicit-path-compression ablation ("No Impl. Path Compr." adds
58% runtime) becomes measurable: without it, worklist entries sit far
from their roots and the jump counts grow.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvariantViolation

__all__ = ["find_many", "compress_halving_many", "resolve_roots"]


def _cycle(kernel: str) -> InvariantViolation:
    # A healthy union-find is acyclic by construction; only corrupted
    # parent pointers (fault injection) can spin a find loop past the
    # vertex count.  Typed so the recovery ladder can catch it.
    return InvariantViolation(
        "parent-pointer cycle detected during find (corrupted state)",
        invariant="parent-acyclic",
        kernel=kernel,
    )


def resolve_roots(
    parent: np.ndarray, xs: np.ndarray, *, kernel: str = "resolve_roots"
) -> tuple[np.ndarray, np.ndarray]:
    """Batched root resolution with exact per-element hop counts.

    The shared primitive behind :func:`find_many` and the vectorized
    union engine: every lane performs ``while parent[v] != v: v =
    parent[v]`` via pointer jumping, and ``hops[i]`` records how many
    pointer dereferences lane ``i``'s walk took *beyond* the final
    self-check — i.e. the path length.  A lane's GPU load count is
    therefore ``hops[i] + 1``.

    The working set shrinks as lanes reach their roots, so the cost is
    proportional to the total path length, not lanes × depth.  Never
    mutates ``parent``; raises the same typed ``parent-acyclic``
    :class:`InvariantViolation` as the scalar walk when a corrupted
    parent array cycles (``kernel`` names the reporting kernel).

    When every lane already sits at its root the returned array may be
    ``xs`` itself (no copy) — mutate the result only if you own ``xs``.
    """
    xs = np.asarray(xs, dtype=np.int64)
    hops = np.zeros(xs.size, dtype=np.int64)
    if xs.size == 0:
        return xs.copy(), hops
    # First pass inline: most lanes already sit at their root, so the
    # copy and the walker bookkeeping (position index) are built lazily
    # from the movers instead of materializing full-width arrays.
    nxt = parent[xs]
    moving = nxt != xs
    if not moving.any():
        return xs, hops
    roots = xs.copy()
    idx = np.flatnonzero(moving)
    cur = nxt[idx]
    roots[idx] = cur
    hops[idx] = 1
    passes = 1
    while True:
        nxt = parent[cur]
        moving = nxt != cur
        if not moving.any():
            return roots, hops
        passes += 1
        if passes > parent.size + 1:
            raise _cycle(kernel)
        idx = idx[moving]
        cur = nxt[moving]
        roots[idx] = cur
        hops[idx] += 1


def find_many(parent: np.ndarray, xs: np.ndarray) -> tuple[np.ndarray, int]:
    """Roots of all ``xs``, plus the total pointer-jump count.

    Each lane performs ``while parent[v] != v: v = parent[v]``; the
    returned count is the total number of ``parent[...]`` loads across
    lanes (path length + 1 final check each), exactly what the GPU
    threads would issue.
    """
    roots, hops = resolve_roots(parent, xs, kernel="find_many")
    if roots.size == 0:
        return roots, 0
    return roots, int(roots.size + int(hops.sum()))


def compress_halving_many(
    parent: np.ndarray, xs: np.ndarray
) -> tuple[np.ndarray, int, int]:
    """Roots of ``xs`` with GPU path-halving writes (explicit compression).

    Used by the "No Implicit Path Compression" de-optimized variant,
    which employs "the path-halving code for GPUs": every traversal
    step rewrites the visited node to its grandparent.  Returns
    ``(roots, loads, writes)``.

    Concurrent halving only ever moves pointers *up* the tree, so the
    sequential-equivalent vectorized form below is a legal concurrent
    outcome.
    """
    xs = np.asarray(xs, dtype=np.int64)
    if xs.size == 0:
        return xs.copy(), 0, 0
    cur = xs.copy()
    loads = cur.size
    writes = 0
    hops = 0
    while True:
        nxt = parent[cur]
        moving = nxt != cur
        n_moving = int(np.count_nonzero(moving))
        if n_moving == 0:
            return cur, loads, writes
        hops += 1
        if hops > parent.size + 1:
            raise _cycle("compress_halving_many")
        grand = parent[nxt[moving]]
        loads += 2 * n_moving  # parent[v] and parent[parent[v]]
        changed = grand != nxt[moving]
        writes += int(np.count_nonzero(changed))
        # parent[v] = grandparent (halving write), then jump there.
        mv = cur[moving]
        parent[mv] = grand
        cur[moving] = grand
