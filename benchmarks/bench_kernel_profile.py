"""Section 5.1 profiling claims.

The paper (Nsight profile): the initialization kernel takes ~40% of the
runtime, compute kernel 1 ~35%, kernels 2 and 3 ~12% each; the compute
kernels launch between 4 (kron_g500-logn21) and 15 (delaunay_n24)
times; with filtering the init kernel launches twice.
"""

import pytest

from repro.bench.experiments import exp_kernel_profile
from repro.bench.harness import SYSTEM2
from repro.core.eclmst import ecl_mst

from _artifacts import write_artifact


@pytest.mark.parametrize("name", ["kron_g500-logn21", "delaunay_n24"])
def test_profile_run(benchmark, name, suite_graphs):
    g = suite_graphs[name]
    r = benchmark(lambda: ecl_mst(g, gpu=SYSTEM2.gpu))
    by = r.counters.seconds_by_kernel()
    assert by["k1_reserve"] > by["k3_reset"]


def test_round_count_ordering(suite_graphs):
    """delaunay needs the most rounds, kron among the fewest."""
    rounds = {
        name: ecl_mst(g, gpu=SYSTEM2.gpu).rounds
        for name, g in suite_graphs.items()
    }
    assert rounds["delaunay_n24"] >= rounds["kron_g500-logn21"]
    assert 3 <= min(rounds.values())
    assert max(rounds.values()) <= 20


def test_profile_artifact(benchmark, bench_scale, out_dir):
    out = benchmark.pedantic(
        lambda: exp_kernel_profile(bench_scale), rounds=1, iterations=1
    )
    write_artifact(out_dir, "kernel_profile.csv", out)
