"""Extension study — throughput vs input size.

Not a paper artifact, but the natural follow-up question the paper's
Section 5.2 raises: ECL-MST's advantage grows with input size because
its fixed costs (kernel launches, one host sync per round) amortize
while the baselines' per-round rescans and propagation loops grow.
This bench sweeps the r4 generator across sizes and records the
throughput trend for ECL-MST and two baselines.
"""

import pytest

from repro.baselines import kruskal_serial_mst, uminho_gpu_mst
from repro.core.eclmst import ecl_mst
from repro.generators import random_k_out

from _artifacts import write_artifact

SIZES = (1024, 4096, 16384)


@pytest.mark.parametrize("n", SIZES)
def test_ecl_scaling(benchmark, n):
    g = random_k_out(n, 4, seed=2)
    r = benchmark(lambda: ecl_mst(g))
    assert r.num_mst_edges == n - 1


def test_scaling_artifact(benchmark, out_dir):
    def sweep():
        rows = ["n,ecl_meps,uminho_gpu_meps,serial_meps,ecl_over_serial"]
        for n in SIZES:
            g = random_k_out(n, 4, seed=2)
            ecl = ecl_mst(g)
            um = uminho_gpu_mst(g)
            ser = kruskal_serial_mst(g)
            rows.append(
                f"{n},{ecl.throughput_meps():.1f},{um.throughput_meps():.1f},"
                f"{ser.throughput_meps():.1f},"
                f"{ser.modeled_seconds / ecl.modeled_seconds:.1f}"
            )
        return "\n".join(rows)

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = out.splitlines()[1:]
    ratios = [float(l.split(",")[-1]) for l in lines]
    # The GPU advantage must grow with size (overhead amortization).
    assert ratios[-1] > ratios[0]
    write_artifact(out_dir, "scaling_study.csv", out)
