"""Table 3 — System 1 (Titan V + Threadripper 2950X) runtimes.

Benchmarks representative code/input cells (real wall time of the
simulated implementations) and regenerates the full modeled table.
"""

import pytest

from repro.baselines.registry import get_runner
from repro.bench.harness import SYSTEM1, run_grid
from repro.bench.tables import render_runtime_table

from _artifacts import write_artifact

CODES = (
    "ECL-MST",
    "Jucele GPU",
    "Gunrock GPU",
    "UMinho GPU",
    "Lonestar CPU",
    "PBBS CPU",
    "UMinho CPU",
    "PBBS Ser.",
)


@pytest.mark.parametrize("code", ["ECL-MST", "Jucele GPU", "PBBS Ser."])
def test_cell_runtime(benchmark, code, suite_graphs):
    g = suite_graphs["r4-2e23.sym"]
    runner = get_runner(code)
    r = benchmark(lambda: runner.run(g, gpu=SYSTEM1.gpu, cpu=SYSTEM1.cpu))
    assert r.num_mst_edges == g.num_vertices - 1


def test_full_table3(benchmark, suite_graphs, out_dir):
    def make():
        grid = run_grid(CODES, suite_graphs, SYSTEM1)
        return render_runtime_table(grid, CODES)

    out = benchmark.pedantic(make, rounds=1, iterations=1)
    assert "MSF GeoMean" in out
    write_artifact(out_dir, "table3_system1.txt", out)
