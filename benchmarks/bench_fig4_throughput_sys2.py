"""Figure 4 — System 2 throughput in millions of edges per second."""

import pytest

from repro.baselines.registry import TABLE_CODES
from repro.bench.figures import render_throughput_figure, throughput_series
from repro.bench.harness import SYSTEM2, run_grid
from repro.core.eclmst import ecl_mst

from _artifacts import write_artifact


@pytest.mark.parametrize("name", ["coPapersDBLP", "as-skitter", "europe_osm"])
def test_ecl_throughput_input(benchmark, name, suite_graphs):
    g = suite_graphs[name]
    r = benchmark(lambda: ecl_mst(g, gpu=SYSTEM2.gpu))
    assert r.throughput_meps() > 0


def test_fig4_artifact(benchmark, suite_graphs, out_dir):
    def make():
        grid = run_grid(TABLE_CODES, suite_graphs, SYSTEM2)
        return grid, render_throughput_figure(
            grid, TABLE_CODES, title="System 2 throughput (Medges/s)"
        )

    grid, out = benchmark.pedantic(make, rounds=1, iterations=1)
    series = throughput_series(grid, TABLE_CODES)
    ecl = {k: v for k, v in series["ECL-MST"].items() if v is not None}
    # The figure's call-out bars are the dense inputs (coPapersDBLP,
    # and on System 2 also soc-LiveJournal1): throughput correlates
    # with average degree (Section 5.2), so the peak must be a dense
    # input and coPapersDBLP must beat every sparse (d-avg < 8) input.
    dense = {"coPapersDBLP", "kron_g500-logn21", "soc-LiveJournal1", "in-2004"}
    assert max(ecl, key=ecl.get) in dense
    sparse = {"2d-2e20.sym", "europe_osm", "internet", "USA-road-d.NY",
              "USA-road-d.USA", "delaunay_n24"}
    for name in sparse & set(ecl):
        assert ecl["coPapersDBLP"] > ecl[name], name
    # ECL-MST beats every other code on every input (Section 5).
    for name in suite_graphs:
        for code in TABLE_CODES[1:]:
            other = series[code][name]
            if other is not None:
                assert ecl[name] > other, (name, code)
    write_artifact(out_dir, "fig4_throughput_system2.txt", out)
