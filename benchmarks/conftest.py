"""Shared benchmark fixtures.

Every ``bench_*`` module regenerates one of the paper's tables or
figures.  The benchmarked callables are the real computations (graph
builds, MST runs, experiment grids); alongside the timing, each module
writes its regenerated artifact to ``benchmarks/out/`` so a
``pytest benchmarks/ --benchmark-only`` run leaves the full set of
paper artifacts on disk.

``REPRO_BENCH_SCALE`` (default 0.25) trades artifact fidelity against
wall time; EXPERIMENTS.md records a scale-1.0 run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.experiments import build_suite

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))

OUT_DIR = Path(__file__).parent / "out"


def pytest_collection_modifyitems(config, items):
    # Keep benchmark output deterministic in order.
    items.sort(key=lambda it: it.nodeid)


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def suite_graphs(bench_scale):
    """The 17-input suite, shared across all benchmark modules."""
    return build_suite(bench_scale)


