"""Real wall-clock comparison of the Python implementations themselves.

The paper tables compare *modeled* device times; this module times the
actual NumPy implementations (useful for tracking regressions in this
repository, not for GPU-vs-CPU claims).  Two regimes:

* **codes** — every registered MST code on one representative graph.
* **engines** — the scalar-vs-vectorized union-executor head-to-head,
  which also writes a ``BENCH_WALL_<stamp>.json`` trajectory entry
  (schema ``repro.bench.wall/v1``, same format as ``repro-mst perf
  wall``) to ``benchmarks/out/`` so a benchmark run leaves the engine
  trajectory on disk alongside the paper artifacts.
"""

import pytest

from repro.baselines import (
    cugraph_mst,
    kruskal_serial_mst,
    lonestar_cpu_mst,
    pbbs_parallel_mst,
    prim_mst,
    uminho_gpu_mst,
)
from repro.bench.gate import WallCell, record_wall_trajectory
from repro.core.config import EclMstConfig
from repro.core.eclmst import ecl_mst

RUNNERS = {
    "ecl-mst": ecl_mst,
    "cugraph": cugraph_mst,
    "uminho-gpu": uminho_gpu_mst,
    "lonestar": lonestar_cpu_mst,
    "pbbs": pbbs_parallel_mst,
    "kruskal": kruskal_serial_mst,
    "prim": prim_mst,
}

ENGINES = ("vectorized", "scalar")

# Engine head-to-head rows: one union-heavy mesh (where batching wins
# big) and one skewed scale-free graph (the honest worst case).
ENGINE_GRAPHS = ("USA-road-d.NY", "rmat22.sym")


@pytest.mark.parametrize("name", RUNNERS, ids=list(RUNNERS))
def test_wallclock(benchmark, name, suite_graphs):
    g = suite_graphs["rmat22.sym"]
    runner = RUNNERS[name]
    r = benchmark.pedantic(lambda: runner(g), rounds=3, iterations=1)
    assert r.num_mst_edges > 0


@pytest.mark.parametrize("graph_name", ENGINE_GRAPHS)
@pytest.mark.parametrize("engine", ENGINES)
def test_wallclock_engines(benchmark, engine, graph_name, suite_graphs):
    g = suite_graphs[graph_name]
    cfg = EclMstConfig(engine=engine)
    r = benchmark.pedantic(lambda: ecl_mst(g, cfg), rounds=3, iterations=1)
    assert r.num_mst_edges > 0


def test_engine_trajectory_entry(bench_scale, out_dir):
    """Record the head-to-head as a BENCH_WALL trajectory entry.

    Gate-free here (``min_speedup=0, floor=0``): this run's job is the
    honest record; `repro-mst perf wall` / CI enforce the bars.
    """
    cells = tuple(
        WallCell(name, scale=bench_scale * 4) for name in ENGINE_GRAPHS
    )
    path, payload = record_wall_trajectory(
        cells,
        repeats=3,
        trajectory_dir=out_dir,
        min_speedup=0.0,
        floor=0.0,
    )
    assert path.exists()
    assert payload["gate"]["passed"]
