"""Real wall-clock comparison of the Python implementations themselves.

The paper tables compare *modeled* device times; this module times the
actual NumPy implementations (useful for tracking regressions in this
repository, not for GPU-vs-CPU claims).
"""

import pytest

from repro.baselines import (
    cugraph_mst,
    kruskal_serial_mst,
    lonestar_cpu_mst,
    pbbs_parallel_mst,
    prim_mst,
    uminho_gpu_mst,
)
from repro.core.eclmst import ecl_mst

RUNNERS = {
    "ecl-mst": ecl_mst,
    "cugraph": cugraph_mst,
    "uminho-gpu": uminho_gpu_mst,
    "lonestar": lonestar_cpu_mst,
    "pbbs": pbbs_parallel_mst,
    "kruskal": kruskal_serial_mst,
    "prim": prim_mst,
}


@pytest.mark.parametrize("name", RUNNERS, ids=list(RUNNERS))
def test_wallclock(benchmark, name, suite_graphs):
    g = suite_graphs["rmat22.sym"]
    runner = RUNNERS[name]
    r = benchmark.pedantic(lambda: runner(g), rounds=3, iterations=1)
    assert r.num_mst_edges > 0
