"""Artifact-writing helper shared by the benchmark modules."""

from __future__ import annotations

from pathlib import Path


def write_artifact(out_dir: Path, name: str, content: str) -> None:
    (out_dir / name).write_text(content + "\n")
