"""Figure 6 — throughput variability across random filter seeds.

The paper runs 99 seeds per input; the benchmark uses a smaller sweep
(scaled by REPRO_BENCH_SCALE) and checks the two qualitative claims:
low variance on the unfiltered (d-avg < 4) inputs and the largest
spread on coPapersDBLP.
"""

import pytest

from repro.bench.figures import render_seed_figure, seed_sweep
from repro.bench.harness import SYSTEM2
from repro.core.config import EclMstConfig
from repro.core.eclmst import ecl_mst

from _artifacts import write_artifact

N_SEEDS = 25


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_seeded_run(benchmark, seed, suite_graphs):
    g = suite_graphs["coPapersDBLP"]
    r = benchmark(
        lambda: ecl_mst(g, EclMstConfig(seed=seed), gpu=SYSTEM2.gpu)
    )
    assert r.num_mst_edges == g.num_vertices - 1


def test_fig6_artifact(benchmark, suite_graphs, out_dir):
    def sweep_all():
        return {
            name: seed_sweep(g, seeds=N_SEEDS, gpu=SYSTEM2.gpu)[0]
            for name, g in suite_graphs.items()
        }

    stats = benchmark.pedantic(sweep_all, rounds=1, iterations=1)
    # Unfiltered inputs (average degree < 4) show essentially no
    # seed-induced variation.
    for name in ("USA-road-d.NY", "USA-road-d.USA", "europe_osm", "internet"):
        assert stats[name].relative_spread < 0.02, name
    # Filtered dense inputs vary; coPapersDBLP has the largest range
    # among the single-component inputs ("by far the largest range").
    assert stats["coPapersDBLP"].relative_spread > stats[
        "USA-road-d.USA"
    ].relative_spread
    write_artifact(out_dir, "fig6_seed_variability.csv", render_seed_figure(stats))
