"""Figure 7 — distance of the sampled filter threshold from its target.

Checks the paper's claim that the 20-sample estimate "rarely chooses an
edge weight that yields more than double or less than half as many
edges being filtered than we intended."
"""

from repro.bench.figures import (
    filter_accuracy_series,
    render_filter_accuracy_figure,
)
from repro.core.config import EclMstConfig
from repro.core.filtering import plan_filtering

from _artifacts import write_artifact


def test_threshold_estimation(benchmark, suite_graphs):
    g = suite_graphs["coPapersDBLP"]
    plan = benchmark(lambda: plan_filtering(g, EclMstConfig()))
    assert plan.active


def test_fig7_artifact(benchmark, suite_graphs, out_dir):
    series = benchmark.pedantic(
        lambda: filter_accuracy_series(suite_graphs, target_factor=4.0),
        rounds=1,
        iterations=1,
    )
    # Only the d-avg >= 4 inputs filter; road maps must be absent.
    assert "USA-road-d.USA" not in series
    assert "coPapersDBLP" in series
    # Most inputs land within the half..double band.
    within = sum(1 for v in series.values() if -0.5 <= v <= 1.0)
    assert within >= 0.6 * len(series)
    write_artifact(
        out_dir, "fig7_filter_accuracy.txt", render_filter_accuracy_figure(series)
    )
