"""Flight-recorder overhead — recorder-on vs recorder-off serving.

The recorder is always-on by default, so its cost is part of every
serve path.  This module measures the same mixed batch (cache-cold
executions across several inputs plus one seeded-fault query) with the
recorder armed and disarmed, asserts the solver results are
bit-identical either way (the recorder only observes, never perturbs),
and records the relative wall overhead.  EXPERIMENTS.md cites the
``BENCH_OBS_<stamp>.json`` trajectory entry produced by running this
module directly (``python benchmarks/bench_recorder_overhead.py``).
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.obs.recorder import RecorderConfig
from repro.service import MSTService, Query, ServiceConfig

from _artifacts import write_artifact

OBS_TRAJECTORY_SCHEMA = "repro.bench.obs-trajectory/v1"

SERVICE_SCALE = 0.06
INPUTS = ("internet", "2d-2e20.sym", "r4-2e23.sym", "USA-road-d.NY")
WORKERS = 4
REPS = 4  # visits per input; visits after the first hit the result cache


def _batch(tag: str, *, with_fault: bool, reps: int = REPS) -> list[Query]:
    """Representative serve traffic: one cold execution per input,
    then repeat visits answered by the result cache; optionally one
    deterministic failure so the recorder's capture path is part of
    the measured loop."""
    queries = [
        Query(input=name, id=f"{name}#{tag}r{r}", scale=SERVICE_SCALE)
        for r in range(reps)
        for name in INPUTS
    ]
    if with_fault:
        queries.append(
            Query(
                input="internet",
                id=f"boom#{tag}",
                scale=SERVICE_SCALE,
                n_faults=1,
                check_cadence=0,
                fault_kinds=("kernel-fail",),
                fault_seed=7,
            )
        )
    return queries


def _config(recorder_on: bool, pm_dir: Path) -> ServiceConfig:
    # Production defaults (notably the 5 s snapshot interval): the
    # point is the cost of the recorder the way it actually ships.
    recorder = RecorderConfig(dir=str(pm_dir)) if recorder_on else None
    return ServiceConfig(workers=WORKERS, recorder=recorder)


def _serve(recorder_on: bool, pm_dir: Path, tag: str, *, with_fault: bool = True):
    with MSTService(_config(recorder_on, pm_dir)) as svc:
        t0 = time.perf_counter()
        outs = svc.run_batch(_batch(tag, with_fault=with_fault))
        wall = time.perf_counter() - t0
    return outs, wall


def test_recorder_off(benchmark, tmp_path):
    outs = benchmark.pedantic(
        lambda: _serve(False, tmp_path, "off")[0], rounds=3, iterations=1
    )
    assert sum(1 for o in outs if o.ok) == len(INPUTS) * REPS


def test_recorder_on(benchmark, tmp_path):
    outs = benchmark.pedantic(
        lambda: _serve(True, tmp_path / "pm", "on")[0], rounds=3, iterations=1
    )
    assert sum(1 for o in outs if o.ok) == len(INPUTS) * REPS
    # The seeded fault dropped a postmortem bundle while being timed.
    assert list((tmp_path / "pm").glob("PM_*.bundle"))


def test_recorder_does_not_perturb_results(benchmark, tmp_path):
    """Solver outputs must be bit-identical with the recorder on."""

    def both():
        off, _ = _serve(False, tmp_path, "x")
        on, _ = _serve(True, tmp_path / "pm", "x")
        return off, on

    off, on = benchmark.pedantic(both, rounds=1, iterations=1)
    assert [o.id for o in off] == [o.id for o in on]
    for a, b in zip(off, on):
        assert a.replay_identity() == b.replay_identity(), a.id
        assert a.error == b.error, a.id


def _best_walls(pm_dir: Path, *, rounds: int, with_fault: bool) -> dict:
    walls: dict[str, list[float]] = {"off": [], "on": []}
    # Interleave so drift hits both arms equally; skip round 0 (warmup).
    # Best-of-rounds, not median: batches run ~20 ms, where worker
    # scheduling jitter swamps the median but the minimum converges.
    tag = "f" if with_fault else "p"
    for r in range(rounds + 1):
        for arm in ("off", "on"):
            _, wall = _serve(
                arm == "on",
                pm_dir / f"{arm}{tag}{r}",
                f"{arm}{tag}{r}",
                with_fault=with_fault,
            )
            if r > 0:
                walls[arm].append(wall)
    best = {k: min(v) for k, v in walls.items()}
    return {
        "wall_seconds_off": best["off"],
        "wall_seconds_on": best["on"],
        "overhead_ratio": best["on"] / best["off"] - 1.0,
    }


def measure_overhead(pm_dir: Path, *, rounds: int = 9) -> dict:
    """Best-of-rounds serve wall with the recorder off vs on.

    The headline ``overhead_ratio`` is passive cost: an all-ok batch
    where the recorder only feeds its rings (the steady state the <5%
    target is about).  ``capture`` adds one seeded-fault query per
    batch, so each recorder-on round also pays a bundle write — the
    incident path, reported separately because it only runs when
    something is already broken.
    """
    passive = _best_walls(pm_dir, rounds=rounds, with_fault=False)
    capture = _best_walls(pm_dir, rounds=rounds, with_fault=True)
    return {
        "rounds": rounds,
        "queries_per_batch": len(INPUTS) * REPS,
        **passive,
        "capture": {"queries_per_batch": len(INPUTS) * REPS + 1, **capture},
    }


def test_overhead_artifact(benchmark, out_dir, tmp_path):
    result = benchmark.pedantic(
        lambda: measure_overhead(tmp_path, rounds=3), rounds=1, iterations=1
    )
    # Wall-clock bound kept loose for noisy CI runners; EXPERIMENTS.md
    # records the measured figure against the <5% target.
    assert result["overhead_ratio"] < 0.25, result
    write_artifact(
        out_dir,
        "recorder_overhead.json",
        json.dumps(result, indent=2, sort_keys=True),
    )


def record_obs_trajectory(trajectory_dir: str | Path) -> Path:
    """Append one recorder-overhead entry to the benchmark trajectory
    (sibling of ``BENCH_SERVICE_<stamp>.json``)."""
    trajectory = Path(trajectory_dir)
    trajectory.mkdir(parents=True, exist_ok=True)
    stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")
    path = trajectory / f"BENCH_OBS_{stamp}.json"
    payload = {
        "schema": OBS_TRAJECTORY_SCHEMA,
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": SERVICE_SCALE,
        "inputs": list(INPUTS),
        "workers": WORKERS,
        **measure_overhead(trajectory / ".scratch"),
    }
    import shutil

    shutil.rmtree(trajectory / ".scratch", ignore_errors=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


if __name__ == "__main__":
    print(record_obs_trajectory(Path(__file__).parent / "trajectory"))
