"""Table 2 — input inventory.

Benchmarks the generator suite (graph construction is part of the
artifact's ``set_up.sh`` step) and regenerates the inventory table.
"""

import pytest

from repro.bench.tables import render_table2
from repro.generators import suite

from _artifacts import write_artifact


@pytest.mark.parametrize(
    "name", ["r4-2e23.sym", "coPapersDBLP", "europe_osm", "kron_g500-logn21"]
)
def test_generate_input(benchmark, name, bench_scale):
    g = benchmark(lambda: suite.build(name, scale=bench_scale))
    assert g.num_edges > 0


def test_render_table2(benchmark, suite_graphs, out_dir):
    out = benchmark.pedantic(
        lambda: render_table2(suite_graphs), rounds=1, iterations=1
    )
    assert "kron_g500-logn21" in out
    write_artifact(out_dir, "table2.txt", out)
