"""Extension ablation — path-compression schemes for the find operation.

Section 3.2 (bullet 3): the authors "investigated different
path-compression schemes ... including intermediate pointer jumping"
and found *no explicit compression + implicit compression via the
worklist* fastest.  This bench compares the scalar DSU schemes head to
head and checks the implicit-vs-explicit claim on the full algorithm.
"""

import numpy as np
import pytest

from repro.core.config import EclMstConfig
from repro.core.eclmst import ecl_mst
from repro.bench.harness import SYSTEM2
from repro.dsu.arrays import Compression, DisjointSet


def _workload(d: DisjointSet, pairs) -> None:
    for a, b in pairs:
        d.union(a, b)
    for a, _ in pairs:
        d.find(a)


@pytest.mark.parametrize("scheme", list(Compression), ids=lambda s: s.value)
def test_dsu_scheme(benchmark, scheme):
    rng = np.random.default_rng(0)
    pairs = list(zip(rng.integers(0, 4000, 6000), rng.integers(0, 4000, 6000)))

    def run():
        _workload(DisjointSet(4000, scheme), pairs)

    benchmark(run)


def test_compression_reduces_loads():
    """All compressing schemes do fewer find loads than NONE on a
    deep-union workload."""
    rng = np.random.default_rng(1)
    pairs = list(zip(rng.integers(0, 3000, 5000), rng.integers(0, 3000, 5000)))
    loads = {}
    for scheme in Compression:
        d = DisjointSet(3000, scheme)
        _workload(d, pairs)
        loads[scheme] = d.find_loads
    for scheme in (
        Compression.HALVING,
        Compression.SPLITTING,
        Compression.FULL,
        Compression.INTERMEDIATE,
    ):
        assert loads[scheme] <= loads[Compression.NONE]


def test_implicit_beats_explicit_compression(suite_graphs):
    """The paper's headline for this study: implicit path compression
    (worklist rewriting) beats explicit GPU path halving."""
    g = suite_graphs["r4-2e23.sym"]
    implicit = ecl_mst(g, EclMstConfig(), gpu=SYSTEM2.gpu)
    explicit = ecl_mst(
        g, EclMstConfig(implicit_path_compression=False), gpu=SYSTEM2.gpu
    )
    assert implicit.modeled_seconds < explicit.modeled_seconds
    assert np.array_equal(implicit.in_mst, explicit.in_mst)
