"""Extension comparison — the related-work and future-work codes.

Benchmarks the codes outside Tables 3/4 against the table codes on one
system: qKruskal and Filter-Kruskal (Section 2's serial line of work),
Setia et al.'s parallel Prim (critical-section merging), and
ECL-MST-CPU (the paper's algorithm on the CPU, its future-work
direction).
"""

import pytest

from repro.baselines import (
    ecl_mst_cpu,
    filter_kruskal_mst,
    kruskal_serial_mst,
    pbbs_parallel_mst,
    qkruskal_mst,
    setia_prim_mst,
)
from repro.core.eclmst import ecl_mst

from _artifacts import write_artifact

EXTENSION_CODES = {
    "qkruskal": qkruskal_mst,
    "filter_kruskal": filter_kruskal_mst,
    "setia_prim": setia_prim_mst,
    "ecl_mst_cpu": ecl_mst_cpu,
}


@pytest.mark.parametrize("name", EXTENSION_CODES, ids=list(EXTENSION_CODES))
def test_extension_code(benchmark, name, suite_graphs):
    g = suite_graphs["r4-2e23.sym"]
    r = benchmark(lambda: EXTENSION_CODES[name](g))
    assert r.num_mst_edges == g.num_vertices - 1


def test_extension_artifact(benchmark, suite_graphs, out_dir):
    """Relative standing of the extension codes (modeled seconds)."""

    def sweep():
        rows = ["input,ecl_gpu,ecl_cpu,setia_prim,filter_kruskal,qkruskal,kruskal"]
        for name in ("r4-2e23.sym", "coPapersDBLP", "USA-road-d.USA"):
            g = suite_graphs[name]
            vals = [
                ecl_mst(g).modeled_seconds,
                ecl_mst_cpu(g).modeled_seconds,
                setia_prim_mst(g).modeled_seconds,
                filter_kruskal_mst(g).modeled_seconds,
                qkruskal_mst(g).modeled_seconds,
                kruskal_serial_mst(g).modeled_seconds,
            ]
            rows.append(name + "," + ",".join(f"{v:.9f}" for v in vals))
        return "\n".join(rows)

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_artifact(out_dir, "extension_codes.csv", out)
    # Structural expectations: the GPU model beats its own CPU port,
    # and the CPU port of the ECL algorithm beats plain serial Kruskal.
    for line in out.splitlines()[1:]:
        _, gpu, cpu, _setia, _fk, _qk, serial = line.split(",")
        assert float(gpu) < float(cpu)
        assert float(cpu) < float(serial)


def test_ecl_cpu_competitive_with_pbbs(suite_graphs):
    """The ECL algorithm on the CPU plays in PBBS's league (same
    deterministic-reservation family)."""
    g = suite_graphs["r4-2e23.sym"]
    ecl_cpu_t = ecl_mst_cpu(g).modeled_seconds
    pbbs_t = pbbs_parallel_mst(g).modeled_seconds
    assert ecl_cpu_t < 5 * pbbs_t
    assert pbbs_t < 20 * ecl_cpu_t
