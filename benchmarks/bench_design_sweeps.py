"""Design-parameter sweeps — the tuning choices Section 3.2 motivates.

Two of ECL-MST's constants are stated with justification but without a
published sweep; these benches supply it:

* ``filter_c`` — "Values between 2 and 4 seem to work well for c ...
  We use c = 4 in our code."
* the hybrid threshold — "processes each low-degree vertex (d(v) < 4)
  with a single thread and each remaining vertex with an entire warp."
"""

import numpy as np
import pytest

from repro.core.config import EclMstConfig
from repro.core.eclmst import ecl_mst
from repro.core.verify import reference_mst_mask

from _artifacts import write_artifact

FILTER_CS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)
THRESHOLDS = (2, 4, 8, 32, 1 << 20)


@pytest.mark.parametrize("c", FILTER_CS)
def test_filter_c(benchmark, c, suite_graphs):
    g = suite_graphs["coPapersDBLP"]
    r = benchmark(lambda: ecl_mst(g, EclMstConfig(filter_c=c)))
    assert r.num_mst_edges == g.num_vertices - 1


def test_filter_c_artifact(benchmark, suite_graphs, out_dir):
    g = suite_graphs["coPapersDBLP"]
    ref = reference_mst_mask(g)

    def sweep():
        rows = ["c,modeled_seconds,rounds"]
        for c in FILTER_CS:
            r = ecl_mst(g, EclMstConfig(filter_c=c))
            assert np.array_equal(r.in_mst, ref)
            rows.append(f"{c},{r.modeled_seconds:.9f},{r.rounds}")
        return "\n".join(rows)

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_artifact(out_dir, "sweep_filter_c.csv", out)
    times = [float(l.split(",")[1]) for l in out.splitlines()[1:]]
    # Over-filtering (c = 1: a phase-1 budget below the tree size) must
    # never beat the paper's band — the second phase then has to build
    # part of the tree from the heavy leftovers.  (At the bench's small
    # scale a *large* c can win because the two-phase fixed costs
    # dominate; at paper scale the band wins, see EXPERIMENTS.md.)
    band_best = min(times[1:4])
    assert band_best <= times[0] * 1.2


@pytest.mark.parametrize("t", THRESHOLDS)
def test_hybrid_threshold(benchmark, t, suite_graphs):
    g = suite_graphs["soc-LiveJournal1"]
    r = benchmark(lambda: ecl_mst(g, EclMstConfig(hybrid_threshold=t)))
    assert r.num_mst_edges > 0


def test_hybrid_threshold_artifact(benchmark, suite_graphs, out_dir):
    g = suite_graphs["soc-LiveJournal1"]  # hub-heavy: hybrid matters

    def sweep():
        rows = ["threshold,modeled_seconds"]
        for t in THRESHOLDS:
            r = ecl_mst(g, EclMstConfig(hybrid_threshold=t))
            rows.append(f"{t},{r.modeled_seconds:.9f}")
        return "\n".join(rows)

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_artifact(out_dir, "sweep_hybrid_threshold.csv", out)
    times = {
        int(l.split(",")[0]): float(l.split(",")[1])
        for l in out.splitlines()[1:]
    }
    # An effectively-infinite threshold disables warp handoff: on a
    # hub-heavy input it must not beat the paper's setting.
    assert times[4] <= times[1 << 20] * 1.001
