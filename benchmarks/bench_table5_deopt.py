"""Table 5 / Figure 5 — the cumulative de-optimization study.

Benchmarks every de-optimized configuration on one input, checks the
headline deltas' directions, and regenerates both artifacts (runtimes
table + throughput series) on the single-component inputs.
"""

import pytest

from repro.bench.experiments import exp_deopt
from repro.core.config import DEOPT_STAGE_NAMES, deopt_stages
from repro.core.eclmst import ecl_mst
from repro.bench.harness import SYSTEM2, geomean
from repro.generators import suite as suite_mod

from _artifacts import write_artifact

STAGES = dict(deopt_stages())


@pytest.mark.parametrize("stage", DEOPT_STAGE_NAMES)
def test_stage_runtime(benchmark, stage, suite_graphs):
    g = suite_graphs["r4-2e23.sym"]
    r = benchmark(lambda: ecl_mst(g, STAGES[stage], gpu=SYSTEM2.gpu))
    assert r.num_mst_edges == g.num_vertices - 1


def test_deopt_geomean_shape(suite_graphs):
    """Fully de-optimized must be several times slower than ECL-MST
    (the paper reports 8x; shape, not the exact factor)."""
    mst_inputs = [
        n for n in suite_graphs if suite_mod.SUITE[n].single_component
    ]
    gms = {}
    for name, cfg in deopt_stages():
        gms[name] = geomean(
            [
                ecl_mst(suite_graphs[g], cfg, gpu=SYSTEM2.gpu).modeled_seconds
                for g in mst_inputs
            ]
        )
    full = gms["ECL-MST"]
    assert gms["Vertex-Centric"] > 3 * full
    assert gms["No Atomic Guards"] >= full
    # The paper's one counter-intuitive step: going topology-driven
    # *reduces* runtime relative to the (by then heavily de-optimized)
    # data-driven version.
    assert gms["Topology-Driven"] < gms["No Tuples"] * 1.35


def test_table5_artifact(benchmark, bench_scale, out_dir):
    out = benchmark.pedantic(
        lambda: exp_deopt(bench_scale), rounds=1, iterations=1
    )
    assert "Vertex-Centric" in out
    write_artifact(out_dir, "table5_deopt.txt", out)


def test_fig5_artifact(benchmark, bench_scale, out_dir):
    out = benchmark.pedantic(
        lambda: exp_deopt(bench_scale, as_figure=True), rounds=1, iterations=1
    )
    assert out.startswith("input,")
    write_artifact(out_dir, "fig5_deopt_throughput.csv", out)
