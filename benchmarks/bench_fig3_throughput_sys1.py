"""Figure 3 — System 1 throughput in millions of edges per second."""

import pytest

from repro.bench.figures import render_throughput_figure, throughput_series
from repro.bench.harness import SYSTEM1, run_grid
from repro.core.eclmst import ecl_mst

from _artifacts import write_artifact

CODES = ("ECL-MST", "Jucele GPU", "UMinho GPU", "PBBS CPU", "PBBS Ser.")


@pytest.mark.parametrize("name", ["coPapersDBLP", "r4-2e23.sym", "as-skitter"])
def test_ecl_throughput_input(benchmark, name, suite_graphs):
    g = suite_graphs[name]
    r = benchmark(lambda: ecl_mst(g, gpu=SYSTEM1.gpu))
    assert r.throughput_meps() > 0


def test_fig3_artifact(benchmark, suite_graphs, out_dir):
    def make():
        grid = run_grid(CODES, suite_graphs, SYSTEM1)
        return grid, render_throughput_figure(
            grid, CODES, title="System 1 throughput (Medges/s)"
        )

    grid, out = benchmark.pedantic(make, rounds=1, iterations=1)
    series = throughput_series(grid, CODES)
    ecl = {k: v for k, v in series["ECL-MST"].items() if v is not None}
    # The figure's call-out bars are the dense inputs (coPapersDBLP,
    # and on System 2 also soc-LiveJournal1): throughput correlates
    # with average degree (Section 5.2), so the peak must be a dense
    # input and coPapersDBLP must beat every sparse (d-avg < 8) input.
    dense = {"coPapersDBLP", "kron_g500-logn21", "soc-LiveJournal1", "in-2004"}
    assert max(ecl, key=ecl.get) in dense
    sparse = {"2d-2e20.sym", "europe_osm", "internet", "USA-road-d.NY",
              "USA-road-d.USA", "delaunay_n24"}
    for name in sparse & set(ecl):
        assert ecl["coPapersDBLP"] > ecl[name], name

    write_artifact(out_dir, "fig3_throughput_system1.txt", out)
