"""Table 4 — System 2 (RTX 3080 Ti + 2x Xeon Gold 6226R) runtimes,
including the cuGraph column that only runs on this system."""

import pytest

from repro.baselines.registry import TABLE_CODES, get_runner
from repro.bench.harness import SYSTEM2, run_grid
from repro.bench.tables import render_runtime_table

from _artifacts import write_artifact


@pytest.mark.parametrize("code", ["ECL-MST", "cuGraph GPU", "UMinho GPU"])
def test_cell_runtime(benchmark, code, suite_graphs):
    g = suite_graphs["coPapersDBLP"]
    runner = get_runner(code)
    r = benchmark(lambda: runner.run(g, gpu=SYSTEM2.gpu, cpu=SYSTEM2.cpu))
    assert r.num_mst_edges == g.num_vertices - 1


def test_cugraph_float_vs_double(benchmark, suite_graphs):
    """The §5.1 float-vs-double discussion: float ~1.2x faster."""
    from repro.baselines import cugraph_mst

    g = suite_graphs["coPapersDBLP"]
    f = benchmark(lambda: cugraph_mst(g, precision="float"))
    d = cugraph_mst(g, precision="double")
    assert f.modeled_seconds < d.modeled_seconds


def test_full_table4(benchmark, suite_graphs, out_dir):
    def make():
        grid = run_grid(TABLE_CODES, suite_graphs, SYSTEM2)
        return render_runtime_table(grid, TABLE_CODES)

    out = benchmark.pedantic(make, rounds=1, iterations=1)
    assert "cuGraph GPU" in out
    write_artifact(out_dir, "table4_system2.txt", out)
