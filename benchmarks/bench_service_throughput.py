"""Service throughput — cold vs warm batched MST queries.

Measures the query engine's three pipeline levels end to end: a cold
batch pays graph build + MST execution per distinct spec, a warm batch
of the same specs is answered from the fingerprint-keyed result cache,
and a duplicate-heavy batch exercises in-flight dedup.  The artifact
records queries/second per regime; the cold-vs-warm ratio is the
cache's amortization factor reported in EXPERIMENTS.md.
"""

import dataclasses

from repro.generators.suite import MST_INPUT_NAMES
from repro.service import MSTService, Query, ServiceConfig

from _artifacts import write_artifact

# The service pins its own scale per query; the shared suite_graphs
# fixture is not used so cold runs really pay the build cost.
SERVICE_SCALE = 0.06
INPUTS = MST_INPUT_NAMES


def _queries(tag: str):
    return [
        Query(input=name, id=f"{name}#{tag}", scale=SERVICE_SCALE)
        for name in INPUTS
    ]


def test_cold_batch(benchmark):
    """Every query misses: graph build + MST execution per input."""

    def cold():
        with MSTService(ServiceConfig(workers=4)) as svc:
            return svc.run_batch(_queries("cold"))

    outs = benchmark.pedantic(cold, rounds=3, iterations=1)
    assert all(o.ok for o in outs)
    assert not any(o.cache_hit for o in outs)


def test_warm_batch(benchmark):
    """Every query hits the result cache of a pre-warmed service."""
    svc = MSTService(ServiceConfig(workers=4))
    cold = svc.run_batch(_queries("seed"))
    assert all(o.ok for o in cold)

    counter = iter(range(10**6))

    def warm():
        tag = f"w{next(counter)}"
        return svc.run_batch(
            [dataclasses.replace(q, id=f"{q.input}#{tag}") for q in _queries(tag)]
        )

    outs = benchmark(warm)
    svc.close()
    assert all(o.ok for o in outs)
    assert all(o.cache_hit for o in outs)
    # Warm answers are bit-identical to the cold ones.
    by_input = {o.input: o for o in cold}
    for o in outs:
        assert o.identity() == by_input[o.input].identity()


def test_dedup_batch(benchmark):
    """A duplicate-heavy batch coalesces to one execution per spec."""
    dupes = 8

    def fanout():
        with MSTService(ServiceConfig(workers=4)) as svc:
            outs = svc.run_batch(
                [
                    Query(input=name, id=f"{name}#d{i}", scale=SERVICE_SCALE)
                    for name in INPUTS[:4]
                    for i in range(dupes)
                ]
            )
            return outs, svc.metrics()

    (outs, metrics) = benchmark.pedantic(fanout, rounds=3, iterations=1)
    assert all(o.ok for o in outs)
    assert metrics["service.executed"] == 4.0


def test_service_artifact(benchmark, out_dir):
    """One measured cold/warm/dedup summary as a CSV artifact."""
    import time

    def measure():
        rows = ["regime,queries,wall_seconds,qps,cache_hit_ratio"]
        with MSTService(ServiceConfig(workers=4)) as svc:
            for regime, batch in (
                ("cold", _queries("a0")),
                ("warm", _queries("a1")),
                (
                    "dedup",
                    [
                        Query(input=name, id=f"{name}#x{i}", scale=SERVICE_SCALE)
                        for name in INPUTS
                        for i in range(4)
                    ],
                ),
            ):
                t0 = time.perf_counter()
                outs = svc.run_batch(batch)
                wall = time.perf_counter() - t0
                assert all(o.ok for o in outs)
                hits = sum(1 for o in outs if o.cache_hit)
                rows.append(
                    f"{regime},{len(outs)},{wall:.4f},"
                    f"{len(outs) / wall:.1f},{hits / len(outs):.2f}"
                )
        return "\n".join(rows)

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = out.splitlines()[1:]
    qps = {l.split(",")[0]: float(l.split(",")[3]) for l in lines}
    # The cache must amortize: warm throughput beats cold.
    assert qps["warm"] > qps["cold"]
    write_artifact(out_dir, "service_throughput.csv", out)
