"""Structured event log: levels, sinks, binding, zero overhead."""

import io
import json

import numpy as np
import pytest

from repro.core.eclmst import ecl_mst
from repro.generators.random_graphs import erdos_renyi
from repro.obs.events import (
    LEVELS,
    NULL_EVENTS,
    ConsoleSink,
    Event,
    EventLog,
    ListSink,
    NDJSONSink,
    configure_events,
    get_event_log,
    new_run_id,
    reset_events,
)
from repro.obs.metrics import collect_result_metrics


@pytest.fixture(autouse=True)
def _clean_global():
    yield
    reset_events()


# ---------------------------------------------------------------------------
# Event rendering
# ---------------------------------------------------------------------------
class TestEvent:
    def test_to_dict_flattens_fields(self):
        e = Event(name="x", level="info", ts=1.5, fields={"a": 1})
        assert e.to_dict() == {"ts": 1.5, "level": "info", "event": "x", "a": 1}

    def test_json_line_round_trips(self):
        e = Event(name="x", level="warning", ts=2.0, fields={"k": "v"})
        assert json.loads(e.to_json_line()) == e.to_dict()

    def test_json_line_stringifies_exotic_values(self):
        # default=str keeps the sink from crashing on numpy scalars.
        e = Event(name="x", ts=0.0, fields={"n": np.int64(3)})
        assert json.loads(e.to_json_line())["n"] in (3, "3")


# ---------------------------------------------------------------------------
# Leveling and sinks
# ---------------------------------------------------------------------------
class TestEventLog:
    def test_level_threshold_filters(self):
        sink = ListSink()
        log = EventLog(level="warning", sinks=[sink])
        log.emit("quiet", level="info")
        log.emit("loud", level="error")
        assert [e.name for e in sink.events] == ["loud"]

    def test_would_emit_matches_threshold(self):
        log = EventLog(level="info", sinks=[])
        assert log.would_emit("info") and log.would_emit("error")
        assert not log.would_emit("debug")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            EventLog(level="verbose")

    def test_levels_are_ordered(self):
        assert (
            LEVELS["debug"]
            < LEVELS["info"]
            < LEVELS["warning"]
            < LEVELS["error"]
            < LEVELS["off"]
        )

    def test_ndjson_sink_writes_parseable_lines(self):
        buf = io.StringIO()
        log = EventLog(level="debug", sinks=[NDJSONSink(buf)])
        log.emit("a", level="debug", n=1)
        log.emit("b", level="info", n=2)
        lines = [json.loads(ln) for ln in buf.getvalue().splitlines()]
        assert [ln["event"] for ln in lines] == ["a", "b"]
        assert lines[0]["n"] == 1 and "ts" in lines[0]

    def test_console_sink_is_human_readable(self):
        buf = io.StringIO()
        log = EventLog(
            level="info", sinks=[ConsoleSink(buf)], clock=lambda: 0.25
        )
        log.emit("service.enqueue", level="warning", query="q1")
        line = buf.getvalue()
        assert "WARNING" in line
        assert "service.enqueue" in line
        assert "query=q1" in line

    def test_list_sink_maxlen_keeps_newest(self):
        sink = ListSink(maxlen=2)
        log = EventLog(level="debug", sinks=[sink])
        for i in range(5):
            log.emit(f"e{i}", level="info")
        assert [e.name for e in sink.events] == ["e3", "e4"]

    def test_clock_injection(self):
        sink = ListSink()
        log = EventLog(level="info", sinks=[sink], clock=lambda: 42.0)
        log.emit("x")
        assert sink.events[0].ts == 42.0


class TestBinding:
    def test_bound_fields_ride_every_event(self):
        sink = ListSink()
        log = EventLog(level="debug", sinks=[sink]).bind(query="q7")
        log.emit("service.execute", level="info", input="internet")
        assert sink.events[0].fields == {"query": "q7", "input": "internet"}

    def test_nested_binds_merge(self):
        sink = ListSink()
        log = EventLog(level="debug", sinks=[sink])
        child = log.bind(query="q1").bind(run="run-000009")
        child.emit("solver.round", round=3)
        assert sink.events[0].fields == {
            "query": "q1",
            "run": "run-000009",
            "round": 3,
        }

    def test_emit_fields_override_bound(self):
        sink = ListSink()
        log = EventLog(level="debug", sinks=[sink]).bind(round=0)
        log.emit("x", round=5)
        assert sink.events[0].fields["round"] == 5


# ---------------------------------------------------------------------------
# The null log (zero-overhead contract)
# ---------------------------------------------------------------------------
class TestNullLog:
    def test_disabled_and_inert(self):
        assert NULL_EVENTS.enabled is False
        assert NULL_EVENTS.bind(query="q") is NULL_EVENTS
        assert NULL_EVENTS.would_emit("error") is False
        NULL_EVENTS.emit("anything", level="error", huge=object())  # no-op


# ---------------------------------------------------------------------------
# Process-global configuration (the CLI flags)
# ---------------------------------------------------------------------------
class TestConfigure:
    def test_default_is_null(self):
        reset_events()
        assert get_event_log() is NULL_EVENTS

    def test_configure_json_file(self, tmp_path):
        path = tmp_path / "events.ndjson"
        log = configure_events(level="debug", json_path=str(path))
        assert get_event_log() is log and log.enabled
        log.emit("hello", level="info", n=1)
        reset_events()
        rows = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert rows[0]["event"] == "hello"
        assert get_event_log() is NULL_EVENTS

    def test_off_level_stays_null(self):
        configure_events(level="off")
        assert get_event_log() is NULL_EVENTS

    def test_extra_sinks(self):
        sink = ListSink()
        configure_events(level="info", extra_sinks=[sink], console=False)
        get_event_log().emit("x")
        assert [e.name for e in sink.events] == ["x"]

    def test_run_ids_are_monotonic(self):
        a, b = new_run_id(), new_run_id()
        assert a != b
        assert int(b.split("-")[1]) == int(a.split("-")[1]) + 1


# ---------------------------------------------------------------------------
# Telemetry must only observe: bit-identical results with events on
# ---------------------------------------------------------------------------
class TestBitIdentity:
    def test_solver_results_identical_with_event_log_on(self):
        g = erdos_renyi(500, 2500, seed=3)
        plain = ecl_mst(g)
        sink = ListSink()
        configure_events(level="debug", extra_sinks=[sink], console=False)
        try:
            logged = ecl_mst(g)
        finally:
            reset_events()
        assert sink.events, "event log saw nothing"
        assert logged.total_weight == plain.total_weight
        assert logged.rounds == plain.rounds
        assert np.array_equal(logged.in_mst, plain.in_mst)
        assert collect_result_metrics(logged) == collect_result_metrics(plain)

    def test_solver_emits_run_lifecycle(self):
        g = erdos_renyi(200, 800, seed=5)
        sink = ListSink()
        configure_events(level="debug", extra_sinks=[sink], console=False)
        try:
            ecl_mst(g)
        finally:
            reset_events()
        names = [e.name for e in sink.events]
        assert names[0] == "solver.run.start"
        assert names[-1] == "solver.run.done"
        assert "solver.round" in names
        runs = {e.fields.get("run") for e in sink.events}
        assert len(runs) == 1 and next(iter(runs)).startswith("run-")
