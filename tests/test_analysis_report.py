"""Tests for the kernel classifier and the one-command report."""

import pytest

from repro.core.config import EclMstConfig
from repro.core.eclmst import ecl_mst
from repro.gpusim.analysis import bound_summary, classify_kernel, classify_run
from repro.gpusim.counters import KernelCounters, RunCounters
from repro.gpusim.spec import RTX_3080_TI


class TestClassifier:
    def test_memory_bound_kernel(self):
        k = KernelCounters("k", bytes=1e9)
        c = classify_kernel(RTX_3080_TI, k)
        assert c.bound == "memory"

    def test_compute_bound_kernel(self):
        k = KernelCounters("k", cycles=1e12)
        assert classify_kernel(RTX_3080_TI, k).bound == "compute"

    def test_atomic_bound_kernel(self):
        k = KernelCounters("k", atomics=10**9)
        assert classify_kernel(RTX_3080_TI, k).bound == "atomic"

    def test_critical_path_bound(self):
        k = KernelCounters("k", critical_items=10**8)
        assert classify_kernel(RTX_3080_TI, k).bound == "critical-path"

    def test_launch_bound_when_empty(self):
        assert classify_kernel(RTX_3080_TI, KernelCounters("k")).bound == "launch"

    def test_run_classification_excludes_syncs(self, medium_graph):
        r = ecl_mst(medium_graph)
        classes = classify_run(RTX_3080_TI, r.counters)
        assert all(c.name != "host_sync" for c in classes)
        assert len(classes) < r.counters.num_launches  # syncs dropped

    def test_shares_sum_to_one(self, medium_graph):
        r = ecl_mst(medium_graph)
        shares = bound_summary(RTX_3080_TI, r.counters)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_ecl_is_mostly_memory_bound(self):
        # The full-size paper code is bandwidth-limited; so is ours at
        # a non-trivial scale.
        from repro.generators import suite

        g = suite.build("r4-2e23.sym", scale=0.5)
        r = ecl_mst(g)
        shares = bound_summary(RTX_3080_TI, r.counters)
        assert shares.get("memory", 0.0) > 0.5

    def test_empty_run(self):
        assert bound_summary(RTX_3080_TI, RunCounters()) == {}

    def test_unguarded_atomics_shift_the_bound(self):
        from repro.generators import suite

        g = suite.build("coPapersDBLP", scale=0.3)
        guarded = bound_summary(
            RTX_3080_TI, ecl_mst(g).counters
        ).get("atomic", 0.0)
        unguarded = bound_summary(
            RTX_3080_TI,
            ecl_mst(g, EclMstConfig(atomic_guards=False)).counters,
        ).get("atomic", 0.0)
        assert unguarded >= guarded


@pytest.mark.slow
class TestReport:
    def test_generate_report_structure(self, tmp_path):
        from repro.bench.report import generate_report

        out_file = tmp_path / "report.md"
        text = generate_report(out_file, scale=0.06)
        assert out_file.exists()
        assert "# Reproduction report" in text
        assert "System 1" in text and "System 2" in text
        assert "De-optimization ladder" in text
        assert "Pearson correlation" in text
        # The dominance flag is present; at this test's tiny scale a
        # baseline can win a micro-input, so only the full-scale run
        # (EXPERIMENTS.md, bench_fig4) asserts "yes".
        assert "fastest on every input:" in text

    def test_cli_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        assert main(["report", "--out", str(out), "--scale", "0.06"]) == 0
        assert out.exists()
        assert "report written" in capsys.readouterr().out
