"""Differential tests: the batched union engine is bit-identical to
the scalar reference walk.

The vectorized engine's contract is not "same MSF" but *same
everything*: parent forest evolution, MST bitmap, and every modeled
counter (``cas_attempts``, ``union_loads``, ``mirror_dups``, ...) —
hence the comparison below walks the full :class:`MstResult` as a
dict, arrays included, and tolerates exactly one difference: the
``engine`` field of the config echoed in ``extra``.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.config import EclMstConfig
from repro.core.eclmst import ecl_mst
from repro.generators import rmat, suite
from repro.generators.suite import INPUT_NAMES
from repro.graph.build import build_csr


def _eq(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a), np.asarray(b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(_eq(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_eq(x, y) for x, y in zip(a, b))
    return a == b


def assert_bit_identical(graph, config=None, **kw):
    """Run both engines on ``graph`` and diff the complete results."""
    base = config or EclMstConfig()
    outs = {}
    for engine in ("scalar", "vectorized"):
        r = ecl_mst(graph, base.with_(engine=engine), **kw)
        d = dataclasses.asdict(r)
        # The config echo is the one legitimate difference.
        cfg = d["extra"].pop("config")
        assert cfg["engine"] == engine
        outs[engine] = d
    a, b = outs["scalar"], outs["vectorized"]
    for key in a:
        assert _eq(a[key], b[key]), f"engines diverge on {key!r}"


@pytest.mark.parametrize("name", INPUT_NAMES)
def test_suite_graphs_bit_identical(name):
    assert_bit_identical(suite.build(name, scale=1.0, seed=7))


# Union-heavy inputs at a larger scale exercise the wave machinery
# (component labeling, prefix deferral, straggler fallback) that tiny
# graphs skip via the m <= 64 scalar shortcut.
@pytest.mark.parametrize(
    "name", ["internet", "USA-road-d.NY", "rmat16.sym", "kron_g500-logn21"]
)
@pytest.mark.parametrize(
    "dd,ipc,sd",
    [
        (True, True, False),
        (False, True, False),
        (True, False, False),
        (False, False, True),
    ],
)
def test_config_matrix_bit_identical(name, dd, ipc, sd):
    g = suite.build(name, scale=4.0, seed=7)
    assert_bit_identical(
        g,
        EclMstConfig(
            data_driven=dd,
            implicit_path_compression=ipc,
            single_direction=sd,
        ),
    )


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_runs_bit_identical(shards):
    g = suite.build("USA-road-d.NY", scale=2.0, seed=7)
    assert_bit_identical(g, shards=shards)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_multigraphs_bit_identical(seed):
    # Self-loops, parallel edges, duplicate weights, isolated vertices.
    rng = np.random.default_rng(seed)
    n, m = 400, 1600
    u = rng.integers(0, n, m)
    v = rng.integers(0, n, m)
    w = rng.integers(1, 8, size=m)  # heavy ties -> contested unions
    assert_bit_identical(build_csr(n, u, v, w, name=f"rand-{seed}"))


def test_rmat_straggler_path_bit_identical():
    # Skewed RMAT at this size drives the giant-component serialization
    # that triggers the batched engine's scalar-finish fallback.
    assert_bit_identical(rmat(scale=13, edge_factor=8, seed=11))


def test_engine_is_config_semantics_neutral():
    # Same spec hash inputs aside from engine: results already compared
    # above; here just pin that the default is the fast engine.
    assert EclMstConfig().engine == "vectorized"
