"""ECL-MST configuration and de-optimization-ladder tests."""

import dataclasses

import pytest

from repro.core.config import DEOPT_STAGE_NAMES, EclMstConfig, deopt_stages


class TestConfig:
    def test_default_is_fully_optimized(self):
        cfg = EclMstConfig()
        assert cfg.atomic_guards
        assert cfg.hybrid_parallelization
        assert cfg.filtering
        assert cfg.implicit_path_compression
        assert cfg.single_direction
        assert cfg.tuple_worklist
        assert cfg.data_driven
        assert cfg.edge_centric

    def test_paper_constants(self):
        cfg = EclMstConfig()
        assert cfg.filter_c == 4.0  # "We use c = 4 in our code"
        assert cfg.filter_samples == 20  # "randomly sample 20 edge weights"

    def test_with_functional_update(self):
        cfg = EclMstConfig()
        other = cfg.with_(filtering=False, seed=7)
        assert not other.filtering and other.seed == 7
        assert cfg.filtering  # original unchanged

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            EclMstConfig().filtering = False


class TestDeoptLadder:
    def test_nine_stages_in_paper_order(self):
        stages = deopt_stages()
        assert [name for name, _ in stages] == list(DEOPT_STAGE_NAMES)
        assert DEOPT_STAGE_NAMES[0] == "ECL-MST"
        assert DEOPT_STAGE_NAMES[-1] == "Vertex-Centric"

    def test_cumulative_removal(self):
        stages = dict(deopt_stages())
        assert stages["ECL-MST"] == EclMstConfig()
        assert not stages["No Atomic Guards"].atomic_guards
        # Each later stage keeps all earlier removals.
        tb = stages["Thread-Based"]
        assert not tb.atomic_guards and not tb.hybrid_parallelization
        vc = stages["Vertex-Centric"]
        assert not any(
            [
                vc.atomic_guards,
                vc.hybrid_parallelization,
                vc.filtering,
                vc.implicit_path_compression,
                vc.single_direction,
                vc.tuple_worklist,
                vc.data_driven,
                vc.edge_centric,
            ]
        )

    def test_each_stage_removes_exactly_one_more(self):
        stages = deopt_stages()
        flags = [
            "atomic_guards",
            "hybrid_parallelization",
            "filtering",
            "implicit_path_compression",
            "single_direction",
            "tuple_worklist",
            "data_driven",
            "edge_centric",
        ]
        for i in range(1, len(stages)):
            prev = stages[i - 1][1]
            cur = stages[i][1]
            diffs = [f for f in flags if getattr(prev, f) != getattr(cur, f)]
            assert len(diffs) == 1

    def test_custom_base_preserved(self):
        base = EclMstConfig(seed=42, filter_c=2.0)
        for _, cfg in deopt_stages(base):
            assert cfg.seed == 42
            assert cfg.filter_c == 2.0
