"""Unit tests for the serving-policy primitives (repro.resilience.policy).

Everything here runs on fake clocks and injected seeds: the point is
that admission, backoff, breaker transitions, and quarantine decisions
are *deterministic* — same seed and same failure sequence means the
same decisions, regardless of wall-clock or thread interleaving.
"""

from __future__ import annotations

import pytest

from repro.obs.events import EventLog, ListSink
from repro.obs.metrics import MetricsRegistry
from repro.resilience.policy import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    AdmissionController,
    CircuitBreaker,
    PolicyConfig,
    Quarantine,
    ResiliencePolicy,
    RetryPolicy,
    TokenBucket,
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# ----------------------------------------------------------------------
# PolicyConfig
# ----------------------------------------------------------------------
class TestPolicyConfig:
    def test_defaults_are_fully_off(self):
        cfg = PolicyConfig()
        assert not cfg.enabled
        assert not (cfg.admission_on or cfg.retries_on or cfg.breaker_on)
        assert not (cfg.quarantine_on or cfg.degradation_on)

    @pytest.mark.parametrize(
        "kw",
        [
            {"admission_rate": 10.0},
            {"max_retries": 1},
            {"breaker_threshold": 2},
            {"quarantine_after": 3},
            {"serve_stale": True},
            {"degrade_serial": True},
        ],
    )
    def test_any_knob_enables(self, kw):
        assert PolicyConfig(**kw).enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            PolicyConfig(admission_rate=-1)
        with pytest.raises(ValueError):
            PolicyConfig(admission_burst=0)
        with pytest.raises(ValueError):
            PolicyConfig(shed_depth_frac=(0.5, 0.9))
        with pytest.raises(ValueError):
            PolicyConfig(shed_depth_frac=(0.0, 0.9, 1.0))
        with pytest.raises(ValueError):
            PolicyConfig(max_retries=-1)
        with pytest.raises(ValueError):
            PolicyConfig(quarantine_after=-1)


# ----------------------------------------------------------------------
# Token bucket
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refills_at_rate_up_to_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4, clock=clock)
        for _ in range(4):
            assert bucket.try_take()
        clock.advance(1.0)  # +2 tokens
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()
        clock.advance(100.0)  # clamps at burst
        assert bucket.level() == pytest.approx(4.0)

    def test_reserve_blocks_low_priority_first(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert not bucket.try_take(reserve=2.0)  # would dip below reserve
        assert bucket.try_take(reserve=1.0)  # 2 -> 1, stays at reserve
        assert not bucket.try_take(reserve=1.0)
        assert bucket.try_take(reserve=0.0)  # high priority drains fully


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def cfg(self, **kw):
        kw.setdefault("admission_rate", 0.001)  # effectively no refill
        kw.setdefault("admission_burst", 4)
        return PolicyConfig(**kw)

    def test_depth_gate_sheds_lowest_priority_first(self):
        ctl = AdmissionController(self.cfg(), 10, clock=FakeClock())
        # depth 5 = 0.5 * max: LOW sheds, NORMAL and HIGH pass.
        assert not ctl.decide(priority=0, queue_depth=5).admitted
        assert ctl.decide(priority=0, queue_depth=5).reason == "queue-depth"
        assert ctl.decide(priority=1, queue_depth=5).admitted
        assert ctl.decide(priority=2, queue_depth=5).admitted
        # depth 9 = 0.9 * max: NORMAL sheds too, HIGH still passes.
        assert not ctl.decide(priority=1, queue_depth=9).admitted
        assert ctl.decide(priority=2, queue_depth=9).admitted
        # depth 10 = max: everyone sheds.
        assert not ctl.decide(priority=2, queue_depth=10).admitted

    def test_bucket_reserve_orders_priorities(self):
        # burst 4, no refill: LOW must leave 2 tokens, NORMAL 1, HIGH 0.
        ctl = AdmissionController(self.cfg(), 100, clock=FakeClock())
        assert ctl.decide(priority=0, queue_depth=0).admitted  # 4 -> 3
        assert ctl.decide(priority=0, queue_depth=0).admitted  # 3 -> 2
        low = ctl.decide(priority=0, queue_depth=0)
        assert not low.admitted and low.reason == "token-bucket"
        assert ctl.decide(priority=1, queue_depth=0).admitted  # 2 -> 1
        assert not ctl.decide(priority=1, queue_depth=0).admitted
        assert ctl.decide(priority=2, queue_depth=0).admitted  # 1 -> 0
        assert not ctl.decide(priority=2, queue_depth=0).admitted

    def test_priorities_clamp(self):
        ctl = AdmissionController(self.cfg(), 10, clock=FakeClock())
        assert not ctl.decide(priority=-5, queue_depth=5).admitted  # LOW
        assert ctl.decide(priority=99, queue_depth=9).admitted  # HIGH


# ----------------------------------------------------------------------
# Retry backoff
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def cfg(self, **kw):
        kw.setdefault("max_retries", 3)
        kw.setdefault("backoff_base_s", 0.01)
        kw.setdefault("backoff_cap_s", 0.25)
        return PolicyConfig(**kw)

    def test_delays_replay_for_same_seed_and_key(self):
        a = [RetryPolicy(self.cfg(seed=7), "k1").next_delay() for _ in range(1)]
        seq1 = RetryPolicy(self.cfg(seed=7), "k1")
        seq2 = RetryPolicy(self.cfg(seed=7), "k1")
        assert [seq1.next_delay() for _ in range(5)] == [
            seq2.next_delay() for _ in range(5)
        ]
        other_key = RetryPolicy(self.cfg(seed=7), "k2")
        other_seed = RetryPolicy(self.cfg(seed=8), "k1")
        assert other_key.next_delay() != a[0] or other_seed.next_delay() != a[0]

    def test_delays_bounded_by_base_and_cap(self):
        retry = RetryPolicy(self.cfg(), "k")
        for _ in range(50):
            d = retry.next_delay()
            assert 0.01 <= d <= 0.25

    def test_budget_exhausts(self):
        retry = RetryPolicy(self.cfg(max_retries=2), "k")
        for _ in range(2):
            assert retry.should_retry(
                error_kind="fault", delay=0.01, now=0.0, deadline=None
            )
            retry.note_attempt(0.01)
        assert not retry.should_retry(
            error_kind="fault", delay=0.01, now=0.0, deadline=None
        )
        assert retry.attempts_used == 2

    def test_only_transient_kinds_retry(self):
        retry = RetryPolicy(self.cfg(), "k")
        for kind in ("fault", "timeout"):
            assert retry.should_retry(
                error_kind=kind, delay=0.01, now=0.0, deadline=None
            )
        for kind in ("input", "verify", "error", "internal", ""):
            assert not retry.should_retry(
                error_kind=kind, delay=0.01, now=0.0, deadline=None
            )

    def test_never_retries_past_deadline(self):
        retry = RetryPolicy(self.cfg(), "k")
        assert retry.should_retry(
            error_kind="fault", delay=0.05, now=10.0, deadline=10.1
        )
        assert not retry.should_retry(
            error_kind="fault", delay=0.05, now=10.0, deadline=10.04
        )


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def cfg(self, **kw):
        kw.setdefault("breaker_threshold", 3)
        kw.setdefault("breaker_cooldown_s", 1.0)
        return PolicyConfig(**kw)

    def make(self, clock, **kw):
        sink = ListSink()
        log = EventLog(level="debug", sinks=[sink])
        b = CircuitBreaker(self.cfg(**kw), "g1", clock=clock, events=log)
        return b, sink

    def test_full_cycle_and_transition_log(self):
        clock = FakeClock()
        b, sink = self.make(clock)
        for _ in range(2):
            b.record(ok=False)
        assert b.state == BREAKER_CLOSED
        b.record(ok=False)  # third consecutive failure
        assert b.state == BREAKER_OPEN
        assert not b.allow()  # cooling
        clock.advance(2.0)  # past cooldown (1.0 * jitter<=1.1)
        assert b.allow()  # the half-open probe
        assert not b.allow()  # only one probe at a time
        b.record(ok=True)
        assert b.state == BREAKER_CLOSED
        assert [(f, t, w) for f, t, w in b.transitions] == [
            (BREAKER_CLOSED, BREAKER_OPEN, "threshold"),
            (BREAKER_OPEN, BREAKER_HALF_OPEN, "cooldown-elapsed"),
            (BREAKER_HALF_OPEN, BREAKER_CLOSED, "probe-succeeded"),
        ]
        names = [e.name for e in sink.events]
        assert names == ["breaker.open", "breaker.half_open", "breaker.closed"]

    def test_probe_failure_reopens_with_doubled_cooldown(self):
        clock = FakeClock()
        b, _ = self.make(clock)
        for _ in range(3):
            b.record(ok=False)
        first_open = b.snapshot()["open_for_s"]
        clock.advance(2.0)
        assert b.allow()
        b.record(ok=False)  # probe fails
        assert b.state == BREAKER_OPEN
        assert b.opens == 2
        # Second cooldown is 2x the base (plus <=10% jitter).
        assert b.snapshot()["open_for_s"] > first_open

    def test_success_resets_consecutive_failures(self):
        b, _ = self.make(FakeClock())
        b.record(ok=False)
        b.record(ok=False)
        b.record(ok=True)
        b.record(ok=False)
        assert b.state == BREAKER_CLOSED

    def test_rejecting_peek_consumes_nothing(self):
        clock = FakeClock()
        b, _ = self.make(clock)
        assert not b.rejecting()  # closed
        for _ in range(3):
            b.record(ok=False)
        assert b.rejecting()
        clock.advance(2.0)
        # Cooldown elapsed: the peek stops rejecting but must NOT move
        # the automaton or claim the probe slot.
        assert not b.rejecting()
        assert b.state == BREAKER_OPEN
        assert b.allow()  # the probe slot is still available

    def test_transitions_replay_for_same_seed(self):
        def drive(seed):
            clock = FakeClock()
            b = CircuitBreaker(self.cfg(seed=seed), "g1", clock=clock)
            for _ in range(3):
                b.record(ok=False)
            until = b._open_until
            clock.advance(5.0)
            b.allow()
            b.record(ok=True)
            return until, list(b.transitions)

        assert drive(3) == drive(3)
        assert drive(3)[0] != drive(4)[0]  # jitter is seed-dependent


# ----------------------------------------------------------------------
# Quarantine
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_edge_triggered_after_threshold(self):
        quar = Quarantine(PolicyConfig(quarantine_after=2))
        assert not quar.record("spec", ok=False, error_kind="fault")
        assert quar.check("spec") is None
        assert quar.record("spec", ok=False, error_kind="fault")  # the edge
        assert not quar.record("spec", ok=False, error_kind="fault")  # held
        entry = quar.check("spec")
        assert entry is not None and entry["failures"] == 2
        assert entry["last_error_kind"] == "fault"

    def test_success_and_release_clear(self):
        quar = Quarantine(PolicyConfig(quarantine_after=1))
        quar.record("a", ok=False, error_kind="timeout")
        quar.record("b", ok=False, error_kind="fault")
        quar.record("a", ok=True)
        assert quar.check("a") is None
        quar.release("b")
        assert quar.check("b") is None
        assert quar.snapshot() == {}


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------
class TestResiliencePolicy:
    def make(self, **kw):
        clock = FakeClock()
        reg = MetricsRegistry()
        pol = ResiliencePolicy(
            PolicyConfig(**kw),
            max_queue_depth=10,
            registry=reg,
            clock=clock,
            sleeper=lambda s: None,
        )
        return pol, reg, clock

    def test_admit_counts_and_shed_rate(self):
        pol, reg, _ = self.make(admission_rate=0.001, admission_burst=2)
        assert pol.admit(priority=2, queue_depth=0).admitted
        assert pol.admit(priority=2, queue_depth=0).admitted
        assert not pol.admit(priority=2, queue_depth=0).admitted
        m = pol.windowed_metrics()
        assert m["resilience.policy.shed_rate"] == pytest.approx(1 / 3)
        assert reg.counter("resilience.policy.admitted").value == 2
        assert reg.counter("resilience.policy.shed").value == 1

    def test_breaker_fast_path_never_creates_breakers(self):
        pol, _, _ = self.make(breaker_threshold=2)
        assert not pol.breaker_rejects_fast("unseen-graph")
        assert pol.breaker_snapshots() == []
        pol.breaker_record("g", ok=False)
        pol.breaker_record("g", ok=False)
        assert not pol.breaker_allows("g")
        assert pol.breaker_rejects_fast("g")
        assert pol.windowed_metrics()["resilience.policy.breakers_open"] == 1.0

    def test_allow_fallback_uses_lowest_priority_reserve(self):
        pol, _, _ = self.make(admission_rate=0.001, admission_burst=4)
        assert pol.allow_fallback()  # 4 -> 3 (reserve 2)
        assert pol.allow_fallback()  # 3 -> 2
        assert not pol.allow_fallback()  # would dip below the reserve
        off, _, _ = self.make(max_retries=1)  # admission off
        assert off.allow_fallback()

    def test_status_shape(self):
        pol, _, _ = self.make(admission_rate=5.0, breaker_threshold=1)
        pol.admit(priority=1, queue_depth=0)
        status = pol.status()
        assert set(status) == {
            "config",
            "window",
            "shed_rate",
            "breakers",
            "quarantined",
        }
        assert status["window"]["admitted"] == 1
