"""CLI tests for ``serve`` and ``sweep`` (NDJSON batch interface)."""

import json

from repro.cli import main

SCALE = 0.06


def read_ndjson(path):
    return [json.loads(line) for line in path.read_text().splitlines() if line]


class TestServe:
    def test_good_batch(self, tmp_path, capsys):
        batch = tmp_path / "batch.ndjson"
        batch.write_text(
            "\n".join(
                [
                    json.dumps({"id": "a", "input": "internet", "scale": SCALE}),
                    json.dumps({"id": "b", "input": "internet", "scale": SCALE}),
                    "# a comment line",
                    json.dumps({"id": "c", "input": "2d-2e20.sym", "scale": SCALE}),
                ]
            )
        )
        out = tmp_path / "out.ndjson"
        rc = main(["serve", "--batch", str(batch), "--out", str(out)])
        assert rc == 0
        rows = read_ndjson(out)
        assert [r["id"] for r in rows] == ["a", "b", "c"]
        assert all(r["status"] == "ok" for r in rows)
        # Identical a/b queries: one executes, the other is served from
        # cache (or coalesced), bit-identical.
        assert rows[0]["mst_digest"] == rows[1]["mst_digest"]
        assert rows[0]["total_weight"] == rows[1]["total_weight"]
        assert any(r["cache_hit"] for r in rows[:2])
        err = capsys.readouterr().err
        assert "served 3 queries" in err and "ok 3" in err

    def test_malformed_line_fails_line_not_batch(self, tmp_path, capsys):
        batch = tmp_path / "batch.ndjson"
        batch.write_text(
            "\n".join(
                [
                    json.dumps({"id": "good", "input": "internet", "scale": SCALE}),
                    "this is not json",
                    json.dumps({"id": "bad-field", "input": "internet", "nope": 1}),
                ]
            )
        )
        out = tmp_path / "out.ndjson"
        rc = main(["serve", "--batch", str(batch), "--out", str(out)])
        assert rc == 3  # input error, the most severe in this batch
        rows = read_ndjson(out)
        assert len(rows) == 3  # one output line per input line
        assert rows[0]["status"] == "ok"
        assert rows[1]["status"] == "error"
        assert rows[1]["error_kind"] == "input"
        assert "line 2" in rows[1]["error"]
        assert rows[2]["status"] == "error"
        assert "unknown field" in rows[2]["error"]

    def test_fault_exit_code_wins(self, tmp_path):
        batch = tmp_path / "batch.ndjson"
        batch.write_text(
            "\n".join(
                [
                    "not json either",
                    json.dumps(
                        {
                            "id": "chaos",
                            "input": "internet",
                            "scale": SCALE,
                            "n_faults": 2,
                            "fault_seed": 3,
                            "fault_kinds": ["kernel-fail"],
                        }
                    ),
                ]
            )
        )
        out = tmp_path / "out.ndjson"
        rc = main(["serve", "--batch", str(batch), "--out", str(out)])
        assert rc == 5  # unrecovered fault outranks input error
        rows = read_ndjson(out)
        assert {r["exit_code"] for r in rows} == {3, 5}

    def test_missing_batch_file(self, tmp_path, capsys):
        rc = main(["serve", "--batch", str(tmp_path / "nope.ndjson")])
        assert rc == 3
        assert "cannot read batch" in capsys.readouterr().err

    def test_stdin_batch(self, tmp_path, capsys, monkeypatch):
        import io

        line = json.dumps({"id": "s", "input": "internet", "scale": SCALE})
        monkeypatch.setattr("sys.stdin", io.StringIO(line + "\n"))
        rc = main(["serve", "--batch", "-", "--out", str(tmp_path / "o.ndjson")])
        assert rc == 0

    def test_stdout_ndjson(self, capsys, tmp_path):
        batch = tmp_path / "b.ndjson"
        batch.write_text(json.dumps({"id": "x", "input": "internet", "scale": SCALE}))
        assert main(["serve", "--batch", str(batch)]) == 0
        out = capsys.readouterr().out
        row = json.loads(out.splitlines()[0])
        assert row["id"] == "x" and row["status"] == "ok"


class TestSweep:
    def test_sweep_two_inputs_warm_hits(self, tmp_path, capsys):
        rc = main(
            [
                "sweep",
                "internet,2d-2e20.sym",
                "--scale",
                str(SCALE),
                "--repeat",
                "2",
                "--out",
                str(tmp_path / "sweep.ndjson"),
            ]
        )
        assert rc == 0
        rows = read_ndjson(tmp_path / "sweep.ndjson")
        # --repeat 2 = one cold pass + one warm pass over both inputs
        assert len(rows) == 4
        assert all(r["status"] == "ok" for r in rows)
        warm = rows[2:]
        assert all(r["cache_hit"] for r in warm)
        out = capsys.readouterr().out
        assert "== cold pass ==" in out
        assert "warm passes" in out
        assert "warm/cold throughput" in out

    def test_sweep_records_trajectory(self, tmp_path, capsys):
        rc = main(
            [
                "sweep",
                "internet",
                "--scale",
                str(SCALE),
                "--repeat",
                "2",
                "--record",
                str(tmp_path),
            ]
        )
        assert rc == 0
        files = list(tmp_path.glob("BENCH_SERVICE_*.json"))
        assert len(files) == 1
        doc = json.loads(files[0].read_text())
        assert doc["schema"] == "repro.bench.service-trajectory/v1"
        assert doc["cold"]["queries_per_second"] > 0
        assert doc["warm"]["queries_per_second"] > 0
        assert doc["warm"]["cache_hit_ratio"] == 1.0
        assert doc["speedup_warm_over_cold"] > 0

    def test_sweep_unknown_input(self, capsys):
        rc = main(["sweep", "atlantis", "--scale", str(SCALE)])
        assert rc == 3
        assert "unknown suite input" in capsys.readouterr().err
