"""Unit tests for edge-list cleanup and CSR assembly."""

import numpy as np
import pytest

from repro.graph.build import build_csr, empty_graph


class TestCleanup:
    def test_self_loops_removed(self):
        g = build_csr(3, [0, 1, 2], [0, 2, 2], [5, 1, 9])
        assert g.num_edges == 1  # (1,2) survives, (0,0) and (2,2) dropped
        g.validate()

    def test_duplicate_edges_merged_min(self):
        g = build_csr(2, [0, 1, 0], [1, 0, 1], [5, 3, 9])
        assert g.num_edges == 1
        assert g.weights[0] == 3  # lightest parallel edge kept

    def test_duplicate_edges_merged_max(self):
        g = build_csr(2, [0, 0], [1, 1], [5, 9], dedup="max")
        assert g.weights[0] == 9

    def test_duplicate_edges_first(self):
        g = build_csr(2, [0, 0], [1, 1], [5, 9], dedup="first")
        assert g.weights[0] == 5

    def test_unknown_dedup_rejected(self):
        with pytest.raises(ValueError, match="dedup"):
            build_csr(2, [0], [1], [1], dedup="median")

    def test_direction_canonicalized(self):
        a = build_csr(3, [2, 1], [0, 0], [4, 7])
        b = build_csr(3, [0, 0], [2, 1], [4, 7])
        assert np.array_equal(a.col_idx, b.col_idx)
        assert np.array_equal(a.weights, b.weights)

    def test_default_weights_are_one(self):
        g = build_csr(3, [0, 1], [1, 2], None)
        assert set(g.weights.tolist()) == {1}


class TestErrors:
    def test_out_of_range_endpoint(self):
        with pytest.raises(ValueError, match="range"):
            build_csr(2, [0], [5], [1])

    def test_negative_endpoint(self):
        with pytest.raises(ValueError, match="range"):
            build_csr(2, [-1], [1], [1])

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            build_csr(3, [0, 1], [1], [1, 1])

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError, match="one entry"):
            build_csr(3, [0, 1], [1, 2], [1])


class TestAssembly:
    def test_empty_edge_list(self):
        g = build_csr(4, [], [], [])
        assert g.num_edges == 0
        assert g.num_vertices == 4
        g.validate()

    def test_empty_graph_helper(self):
        g = empty_graph(0)
        assert g.num_vertices == 0

    def test_deterministic_edge_ids(self):
        # IDs follow (lo, hi) lexicographic order regardless of input order.
        g1 = build_csr(4, [2, 0, 1], [3, 1, 2], [7, 8, 9])
        g2 = build_csr(4, [0, 1, 2], [1, 2, 3], [8, 9, 7])
        u1, v1, w1, e1 = g1.undirected_edges()
        u2, v2, w2, e2 = g2.undirected_edges()
        assert np.array_equal(u1, u2) and np.array_equal(v1, v2)
        assert np.array_equal(w1, w2) and np.array_equal(e1, e2)

    def test_isolated_vertices_allowed(self):
        g = build_csr(10, [0], [1], [3])
        assert g.num_vertices == 10
        assert g.degrees()[2:].sum() == 0
        g.validate()

    def test_large_random_roundtrip_valid(self):
        rng = np.random.default_rng(0)
        u = rng.integers(0, 200, 3000)
        v = rng.integers(0, 200, 3000)
        w = rng.integers(1, 1000, 3000)
        g = build_csr(200, u, v, w)
        g.validate()
