"""Roofline attribution tests: hand-built counters with known bounds."""

import json

import numpy as np
import pytest

from repro.core.eclmst import ecl_mst
from repro.gpusim.costmodel import gpu_kernel_seconds, kernel_time_terms
from repro.gpusim.counters import KernelCounters, RunCounters
from repro.gpusim.spec import RTX_3080_TI, TITAN_V
from repro.obs import RunProfile, launch_shares, roofline_report
from repro.obs.roofline import BOUND_KINDS

SPEC = RTX_3080_TI


def priced(**kw) -> KernelCounters:
    """A KernelCounters priced exactly like Device.launch would."""
    k = KernelCounters(**kw)
    k.modeled_seconds = gpu_kernel_seconds(SPEC, k)
    return k


# Hand-constructed extremes: each makes one term dominate by orders of
# magnitude so the expected label is unambiguous.
MEMORY_BOUND = dict(name="mem", items=10, bytes=1e9, cycles=100.0)
COMPUTE_BOUND = dict(name="cmp", items=10, cycles=1e12, bytes=64.0)
SERIAL_BOUND = dict(name="ser", items=10, critical_items=10**7, cycles=10.0)
ATOMIC_BOUND = dict(name="atm", items=10, atomics=10**9, cycles=10.0)


class TestLaunchShares:
    @pytest.mark.parametrize(
        "kw, expected",
        [
            (MEMORY_BOUND, "memory"),
            (COMPUTE_BOUND, "compute"),
            (SERIAL_BOUND, "serial"),
            (ATOMIC_BOUND, "atomic"),
        ],
    )
    def test_extreme_kernels_classified(self, kw, expected):
        k = priced(**kw)
        shares = launch_shares(SPEC, k)
        assert max(shares, key=shares.get) == expected

    @pytest.mark.parametrize(
        "kw", [MEMORY_BOUND, COMPUTE_BOUND, SERIAL_BOUND, ATOMIC_BOUND]
    )
    def test_shares_sum_to_modeled_seconds(self, kw):
        k = priced(**kw)
        shares = launch_shares(SPEC, k)
        assert set(shares) == set(BOUND_KINDS)
        assert np.isclose(
            sum(shares.values()), k.modeled_seconds, rtol=1e-12, atol=0.0
        )

    def test_attribution_is_exclusive(self):
        """Only the binding roof term is charged; the overlapped
        resources get zero share even when their work is nonzero."""
        k = priced(**MEMORY_BOUND)  # also has nonzero cycles
        shares = launch_shares(SPEC, k)
        assert shares["compute"] == 0.0
        assert shares["memory"] > 0.0

    def test_launch_share_is_the_overhead(self):
        """For a cost-model-priced kernel the residual is exactly the
        fixed launch overhead."""
        k = priced(**MEMORY_BOUND)
        shares = launch_shares(SPEC, k)
        assert np.isclose(
            shares["launch"], SPEC.kernel_launch_us * 1e-6, rtol=1e-12
        )

    def test_host_sync_is_pure_launch(self):
        """host_sync rows are priced outside the kernel formula (zero
        counters, externally set time) — the whole time lands in the
        launch bucket."""
        k = KernelCounters(name="host_sync")
        k.modeled_seconds = SPEC.host_sync_us * 1e-6
        shares = launch_shares(SPEC, k)
        assert shares["launch"] == k.modeled_seconds
        assert sum(shares.values()) == k.modeled_seconds


class TestKernelRoofline:
    def _report_of(self, *kernels):
        rc = RunCounters()
        for k in kernels:
            rc.add(k)
        return roofline_report(rc, SPEC)

    def test_bound_labels(self):
        rep = self._report_of(
            priced(**MEMORY_BOUND),
            priced(**COMPUTE_BOUND),
            priced(**ATOMIC_BOUND),
        )
        assert rep.bounds() == {
            "mem": "memory", "cmp": "compute", "atm": "atomic"
        }

    def test_aggregation_over_launches(self):
        a, b = priced(**MEMORY_BOUND), priced(**MEMORY_BOUND)
        rep = self._report_of(a, b)
        kr = rep.kernel("mem")
        assert kr.launches == 2
        assert np.isclose(kr.seconds, a.modeled_seconds + b.modeled_seconds)
        assert np.isclose(sum(kr.shares.values()), kr.seconds, rtol=1e-12)
        assert kr.bytes == 2e9

    def test_hottest_first_ordering(self):
        rep = self._report_of(priced(**COMPUTE_BOUND), priced(**MEMORY_BOUND))
        assert rep.kernels[0].seconds >= rep.kernels[1].seconds

    def test_arithmetic_intensity(self):
        kr = self._report_of(priced(**COMPUTE_BOUND)).kernel("cmp")
        assert np.isclose(kr.arithmetic_intensity, 1e12 / 64.0)
        no_traffic = self._report_of(priced(**ATOMIC_BOUND)).kernel("atm")
        assert no_traffic.arithmetic_intensity is None

    def test_utilizations(self):
        """The binding resource's utilization approaches 1; the
        overlapped one stays proportionally small."""
        kr = self._report_of(priced(**MEMORY_BOUND)).kernel("mem")
        assert 0.9 < kr.memory_utilization <= 1.0
        assert kr.compute_utilization < 0.01

    def test_contention_score(self):
        # All 10^6 atomics hammer one address: serialization dominates.
        hot = priced(
            name="hot", atomics=10**6, atomic_max_contention=10**6
        )
        # Same op count spread wide: throughput-limited.
        scattered = priced(name="cold", atomics=10**6, atomic_max_contention=1)
        rep = self._report_of(hot, scattered)
        assert rep.kernel("hot").contention == 1.0
        assert rep.kernel("cold").contention < 0.01
        no_atomics = self._report_of(priced(**MEMORY_BOUND)).kernel("mem")
        assert no_atomics.contention == 0.0

    def test_missing_kernel_raises(self):
        with pytest.raises(KeyError):
            self._report_of(priced(**MEMORY_BOUND)).kernel("nope")

    def test_to_dict_json_serializable(self):
        rep = self._report_of(priced(**MEMORY_BOUND), priced(**ATOMIC_BOUND))
        d = json.loads(json.dumps(rep.to_dict()))
        assert d["schema"].startswith("repro.obs.roofline/")
        assert {k["name"] for k in d["kernels"]} == {"mem", "atm"}
        for k in d["kernels"]:
            assert k["bound"] in BOUND_KINDS

    def test_render(self):
        rep = self._report_of(priced(**MEMORY_BOUND), priced(**COMPUTE_BOUND))
        text = rep.render()
        assert "mem" in text and "cmp" in text and "bound" in text
        assert roofline_report(RunCounters(), SPEC).render() == "(no launches)"

    def test_render_top_n_truncates(self):
        kernels = [
            priced(name=f"k{i}", bytes=1e6 * (i + 1)) for i in range(5)
        ]
        text = self._report_of(*kernels).render(top_n=2)
        assert "3 more kernels" in text


class TestRealRunReport:
    def test_shares_tile_the_run(self, medium_graph):
        r = ecl_mst(medium_graph)
        rep = roofline_report(r.counters, RTX_3080_TI)
        assert np.isclose(rep.total_seconds, r.counters.total_seconds)
        share_sum = sum(
            sum(k.shares.values()) for k in rep.kernels
        )
        assert np.isclose(share_sum, rep.total_seconds, rtol=1e-9)

    def test_wrong_spec_does_not_tile(self, medium_graph):
        """Pricing was done on the 3080 Ti; attributing against the
        Titan V roofline cannot tile the recorded times."""
        r = ecl_mst(medium_graph, gpu=RTX_3080_TI)
        rep = roofline_report(r.counters, TITAN_V)
        share_sum = sum(sum(k.shares.values()) for k in rep.kernels)
        # Sums still match by construction (launch is the residual) —
        # but residuals go negative, which the right spec never does.
        right = roofline_report(r.counters, RTX_3080_TI)
        assert all(
            k.shares["launch"] >= -1e-18 for k in right.kernels
        )
        assert np.isclose(share_sum, rep.total_seconds, rtol=1e-9)

    def test_report_is_a_pure_observer(self, medium_graph):
        r = ecl_mst(medium_graph)
        before = [k.to_dict() for k in r.counters.kernels]
        roofline_report(r.counters, RTX_3080_TI).render()
        assert [k.to_dict() for k in r.counters.kernels] == before


class TestProfileIntegration:
    def test_profile_carries_roofline(self, medium_graph):
        """ecl_mst stashes its GPUSpec in extra, so from_result can
        attribute without the caller re-plumbing the spec."""
        p = RunProfile.from_result(ecl_mst(medium_graph))
        assert p.roofline
        names = {k["name"] for k in p.roofline["kernels"]}
        assert "k1_reserve" in names
        assert "bound" in p.render()

    def test_profile_roofline_round_trips(self, medium_graph, tmp_path):
        p = RunProfile.from_result(ecl_mst(medium_graph))
        path = tmp_path / "p.json"
        p.save(str(path))
        q = RunProfile.load(str(path))
        assert q.roofline == p.roofline

    def test_explicit_spec_overrides_extra(self, medium_graph):
        r = ecl_mst(medium_graph)
        p = RunProfile.from_result(r, gpu=TITAN_V)
        assert p.roofline["spec"] == TITAN_V.name


class TestSlowedSpec:
    @pytest.mark.parametrize(
        "kw", [MEMORY_BOUND, COMPUTE_BOUND, SERIAL_BOUND, ATOMIC_BOUND]
    )
    def test_all_terms_scale_exactly(self, kw):
        """The synthetic slowdown must scale every modeled time by
        exactly the factor — that is what makes the CI gate's injected
        regression deterministic."""
        k = KernelCounters(**kw)
        base = gpu_kernel_seconds(SPEC, k)
        slow = gpu_kernel_seconds(SPEC.slowed(2.0), k)
        assert np.isclose(slow, 2.0 * base, rtol=1e-12)

    def test_terms_decomposition_matches_price(self):
        k = KernelCounters(
            name="x", cycles=1e6, bytes=1e6, atomics=1000,
            atomic_max_contention=10, critical_items=50,
        )
        t = kernel_time_terms(SPEC, k)
        assert np.isclose(
            gpu_kernel_seconds(SPEC, k),
            t["launch"] + max(t["compute"], t["memory"], t["serial"])
            + t["atomic"],
            rtol=1e-15,
        )

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            SPEC.slowed(0.0)
        with pytest.raises(ValueError):
            SPEC.slowed(-1.0)
