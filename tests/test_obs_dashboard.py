"""The static HTML run dashboard and its trajectory loader."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.eclmst import ecl_mst
from repro.errors import EXIT_INPUT_ERROR
from repro.generators.random_graphs import erdos_renyi
from repro.obs.dashboard import load_trajectory, render_dashboard
from repro.obs.profile import RunProfile
from repro.obs.trace import Tracer


@pytest.fixture(scope="module")
def profile() -> dict:
    g = erdos_renyi(400, 2000, seed=9)
    tracer = Tracer()
    result = ecl_mst(g, tracer=tracer)
    return RunProfile.from_result(result, tracer=tracer).to_dict()


class TestRenderDashboard:
    def test_renders_core_cards(self, profile):
        html = render_dashboard(profile)
        assert html.lstrip().startswith("<!DOCTYPE html")
        assert "<svg" in html
        assert "modeled time" in html
        assert "MST weight" in html
        # Kernel names from the profile appear in the share chart.
        for kernel in list(profile["kernels"])[:2]:
            assert kernel in html
        # The accessibility relief: a data table mirrors the timeline.
        assert "<table" in html
        assert "round" in html.lower()

    def test_self_contained_no_external_assets(self, profile):
        html = render_dashboard(profile)
        for needle in ("http://", "https://", "<link", "src="):
            assert needle not in html, f"external reference: {needle}"

    def test_round_log_drives_timeline(self, profile):
        assert profile["round_log"], "profile should carry round_log"
        html = render_dashboard(profile)
        assert "polyline" in html
        assert "data-tip" in html  # hover layer present

    def test_tolerates_pre_telemetry_profile(self, profile):
        old = dict(profile)
        old.pop("round_log", None)
        html = render_dashboard(old)
        assert "<svg" in html  # kernel chart still renders

    def test_title_override_and_escaping(self, profile):
        html = render_dashboard(profile, title="<b>run & fun</b>")
        assert "<b>run" not in html
        assert "&lt;b&gt;run &amp; fun&lt;/b&gt;" in html

    def test_service_section_renders_slos(self, profile):
        service = {"service.cache_hit_ratio": 0.5, "service.qps": 2.0}
        slos = [
            {
                "name": "availability",
                "kind": "availability",
                "objective": 0.99,
                "sli": 1.0,
                "burn_rate": 0.0,
                "alerting": False,
            }
        ]
        html = render_dashboard(profile, service=service, slos=slos)
        assert "availability" in html
        assert "ok" in html

    def test_dark_mode_is_selected_not_flipped(self, profile):
        html = render_dashboard(profile)
        assert "prefers-color-scheme: dark" in html


class TestLoadTrajectory:
    def test_classifies_and_skips(self, tmp_path):
        (tmp_path / "BENCH_20260101T000000Z.json").write_text(
            json.dumps({"entries": [{"input": "internet", "modeled_seconds": 1.0}]})
        )
        (tmp_path / "BENCH_SERVICE_20260102T000000Z.json").write_text(
            json.dumps({"cold": {"queries_per_second": 3.0}})
        )
        (tmp_path / "BENCH_20260103T000000Z.json").write_text("{nope")
        (tmp_path / "unrelated.json").write_text("{}")
        bench, service = load_trajectory(tmp_path)
        assert len(bench) == 1 and len(service) == 1
        assert bench[0]["entries"][0]["input"] == "internet"

    def test_missing_directory_is_empty(self, tmp_path):
        bench, service = load_trajectory(tmp_path / "nope")
        assert bench == [] and service == []

    def test_trajectory_feeds_the_dashboard(self, tmp_path, profile):
        for stamp, modeled in (("01", 1.0), ("02", 0.8)):
            (tmp_path / f"BENCH_202601{stamp}T000000Z.json").write_text(
                json.dumps(
                    {
                        "entries": [
                            {
                                "input": "internet",
                                "modeled_seconds": modeled,
                                "rounds": 4,
                            }
                        ]
                    }
                )
            )
        html = render_dashboard(profile, trajectory=tmp_path)
        assert "internet" in html


class TestDashboardCLI:
    def test_profile_round_trip(self, tmp_path, profile, capsys):
        src = tmp_path / "prof.json"
        src.write_text(json.dumps(profile))
        out = tmp_path / "dash.html"
        rc = main(
            ["dashboard", "--profile", str(src), "--out", str(out)]
        )
        assert rc == 0
        assert "dashboard written to" in capsys.readouterr().out
        html = out.read_text()
        assert "<svg" in html

    def test_missing_profile_is_input_error(self, tmp_path, capsys):
        rc = main(
            ["dashboard", "--profile", str(tmp_path / "missing.json")]
        )
        assert rc == EXIT_INPUT_ERROR
        assert "input error" in capsys.readouterr().err

    def test_no_input_no_profile_is_input_error(self, capsys):
        rc = main(["dashboard"])
        assert rc == EXIT_INPUT_ERROR
        assert "input error" in capsys.readouterr().err
