"""Section 3.1 convergence tests — the paper's fourth contribution.

"We demonstrate that Kruskal's and Borůvka's MST algorithms converge
to the same parallelization" — here checked *operationally*: the
unsorted-Kruskal and Borůvka parallelizations must select the same
winner edges in the same rounds on every input.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.convergence import (
    boruvka_parallel,
    kruskal_chunked_sorted,
    kruskal_unsorted,
    trace_equivalence,
)
from repro.core.verify import reference_mst_mask
from repro.generators import suite
from repro.graph.build import build_csr


class TestIndividualAlgorithms:
    @pytest.mark.parametrize(
        "algo",
        [kruskal_chunked_sorted, kruskal_unsorted, boruvka_parallel],
        ids=lambda f: f.__name__,
    )
    def test_computes_the_unique_msf(self, algo, medium_graph):
        trace = algo(medium_graph)
        assert np.array_equal(trace.in_mst, reference_mst_mask(medium_graph))

    def test_chunked_sorted_respects_chunks(self, medium_graph):
        small = kruskal_chunked_sorted(medium_graph, chunk_size=16)
        big = kruskal_chunked_sorted(medium_graph, chunk_size=10**9)
        assert small.edge_set() == big.edge_set()
        assert small.rounds >= big.rounds  # more chunks, more rounds

    def test_round_counts_logarithmic(self, medium_graph):
        import math

        trace = kruskal_unsorted(medium_graph)
        assert trace.rounds <= math.log2(medium_graph.num_vertices) + 4


class TestConvergence:
    def test_suite_inputs_converge(self):
        for name in ("USA-road-d.NY", "coPapersDBLP", "rmat16.sym"):
            g = suite.build(name, scale=0.1)
            rep = trace_equivalence(g)
            assert rep.converged, name

    def test_unsorted_and_boruvka_round_identical(self, medium_graph):
        ku = kruskal_unsorted(medium_graph)
        bo = boruvka_parallel(medium_graph)
        # The paper: "there is no actual difference in the codes" —
        # same winners, same rounds, round by round.
        assert ku.winners_per_round == bo.winners_per_round

    def test_report_fields(self, triangle):
        rep = trace_equivalence(triangle)
        assert rep.converged
        assert all(r >= 1 for r in rep.rounds)

    def test_msf_input(self, two_components):
        rep = trace_equivalence(two_components)
        assert rep.converged

    def test_empty_graph(self):
        from repro.graph.build import empty_graph

        rep = trace_equivalence(empty_graph(5))
        assert rep.same_edge_set and rep.same_round_structure


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(2, 35),
    m=st.integers(0, 100),
    seed=st.integers(0, 2**31 - 1),
    wmax=st.sampled_from([2, 10, 10_000]),
)
def test_property_convergence_on_random_graphs(n, m, seed, wmax):
    rng = np.random.default_rng(seed)
    g = build_csr(
        n,
        rng.integers(0, n, m),
        rng.integers(0, n, m),
        rng.integers(1, wmax + 1, m),
    )
    rep = trace_equivalence(g)
    assert rep.converged
    # And all three match the external reference.
    ref = reference_mst_mask(g)
    assert np.array_equal(kruskal_unsorted(g).in_mst, ref)
