"""First-principles MSF validator tests."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.eclmst import ecl_mst
from repro.core.validate import MsfValidationError, validate_msf
from repro.graph.build import build_csr

from helpers import make_graph


class TestAcceptsValid:
    def test_generator_results(self, medium_graph):
        validate_msf(ecl_mst(medium_graph))

    def test_msf(self, two_components):
        validate_msf(ecl_mst(two_components))

    def test_empty(self):
        from repro.graph.build import empty_graph

        validate_msf(ecl_mst(empty_graph(3)))


class TestRejectsInvalid:
    def test_cycle_detected(self, triangle):
        r = ecl_mst(triangle)
        r.in_mst[:] = True  # all three triangle edges = a cycle
        r.num_mst_edges = 3
        with pytest.raises(MsfValidationError, match="cycle"):
            validate_msf(r)

    def test_not_spanning_detected(self, paper_figure1):
        r = ecl_mst(paper_figure1)
        on = np.flatnonzero(r.in_mst)
        r.in_mst[on[0]] = False
        r.num_mst_edges -= 1
        u, v, w, eid = paper_figure1.undirected_edges()
        r.total_weight = int(w[r.in_mst[eid]].sum())
        with pytest.raises(MsfValidationError, match="spanning"):
            validate_msf(r)

    def test_non_minimal_detected(self):
        # A spanning tree that is NOT minimum: pick the heavy edge.
        g = make_graph(3, [(0, 1, 1), (1, 2, 2), (0, 2, 30)])
        r = ecl_mst(g)
        # Swap edge (1,2,w=2) for (0,2,w=30): still a spanning tree.
        u, v, w, eid = g.undirected_edges()
        mask = np.zeros(g.num_edges, dtype=bool)
        mask[eid[(w == 1) | (w == 30)]] = True
        r.in_mst = mask
        r.num_mst_edges = 2
        r.total_weight = 31
        with pytest.raises(MsfValidationError, match="non-minimal"):
            validate_msf(r)

    def test_wrong_weight_detected(self, medium_graph):
        r = ecl_mst(medium_graph)
        r.total_weight += 5
        with pytest.raises(MsfValidationError, match="weight"):
            validate_msf(r)

    def test_wrong_count_detected(self, medium_graph):
        r = ecl_mst(medium_graph)
        r.num_mst_edges += 1
        with pytest.raises(MsfValidationError, match="count"):
            validate_msf(r)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(2, 35),
    m=st.integers(0, 100),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_every_result_validates(n, m, seed):
    rng = np.random.default_rng(seed)
    g = build_csr(
        n,
        rng.integers(0, n, m),
        rng.integers(0, n, m),
        rng.integers(1, 500, m),
    )
    validate_msf(ecl_mst(g))
