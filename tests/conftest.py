"""Shared fixtures: small graphs covering the suite's structural variety."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.build import build_csr
from repro.graph.weights import hash_weight
from repro.generators import (
    delaunay_graph,
    grid2d,
    preferential_attachment,
    random_k_out,
    rmat,
    road_network,
)


from helpers import make_graph  # noqa: F401 (re-exported for tests)


@pytest.fixture
def triangle():
    """3-cycle with distinct weights; MST = the two lightest edges."""
    return make_graph(3, [(0, 1, 1), (1, 2, 2), (0, 2, 3)], "triangle")


@pytest.fixture
def paper_figure1():
    """The 5-vertex example of the paper's Figure 2 (labels a-e).

    Vertices A..E = 0..4; edges: a=(A,B,4), b=(A,C,1), c=(B,D,3),
    d=(C,D,5), e=(C,E,2) — the MST is {b, e, c, a-or...}; weights are
    distinct so the MST is unique: {b(1), e(2), c(3), a(4)}.
    """
    return make_graph(
        5,
        [(0, 1, 4), (0, 2, 1), (1, 3, 3), (2, 3, 5), (2, 4, 2)],
        "fig2",
    )


@pytest.fixture
def two_components():
    """Two triangles, disconnected — an MSF input."""
    return make_graph(
        6,
        [(0, 1, 1), (1, 2, 2), (0, 2, 3), (3, 4, 4), (4, 5, 5), (3, 5, 6)],
        "two-cc",
    )


@pytest.fixture
def path_graph():
    """A 12-vertex path: worst case for round counts."""
    edges = [(i, i + 1, int(hash_weight([i], [i + 1])[0])) for i in range(11)]
    return make_graph(12, edges, "path")


@pytest.fixture
def star_graph():
    """One hub with 20 spokes: degree-skew stress."""
    edges = [(0, i, i * 7 % 23 + 1) for i in range(1, 21)]
    return make_graph(21, edges, "star")


@pytest.fixture(
    params=["grid", "random", "rmat", "pa", "road", "delaunay"],
    ids=lambda p: p,
)
def medium_graph(request):
    """One representative per generator family, small enough for
    exhaustive cross-checking."""
    kind = request.param
    if kind == "grid":
        return grid2d(12, seed=3)
    if kind == "random":
        return random_k_out(300, 3, seed=3)
    if kind == "rmat":
        return rmat(8, edge_factor=6.0, seed=3)
    if kind == "pa":
        return preferential_attachment(300, 4, num_components=3, seed=3)
    if kind == "road":
        return road_network(300, target_avg_degree=2.6, seed=3)
    return delaunay_graph(300, seed=3)
