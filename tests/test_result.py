"""MstResult helper tests."""

import numpy as np
import pytest

from repro.core.eclmst import ecl_mst
from repro.gpusim.counters import RunCounters
from repro.core.result import MstResult


class TestHelpers:
    def test_with_memcpy_sums(self, medium_graph):
        r = ecl_mst(medium_graph)
        assert r.modeled_seconds_with_memcpy == pytest.approx(
            r.modeled_seconds + r.memcpy_seconds
        )

    def test_throughput_with_memcpy_lower(self, medium_graph):
        r = ecl_mst(medium_graph)
        assert r.throughput_meps(include_memcpy=True) < r.throughput_meps()

    def test_edges_sorted_by_id_order(self, paper_figure1):
        r = ecl_mst(paper_figure1)
        u, v, w = r.edges()
        assert np.all(u < v)
        assert sorted(w.tolist()) == [1, 2, 3, 4]

    def test_repr_mentions_algorithm_and_weight(self, triangle):
        r = ecl_mst(triangle)
        text = repr(r)
        assert "ecl-mst" in text and str(r.total_weight) in text

    def test_zero_time_throughput_infinite(self, triangle):
        r = MstResult(
            graph=triangle,
            in_mst=np.zeros(3, dtype=bool),
            total_weight=0,
            num_mst_edges=0,
            rounds=0,
            modeled_seconds=0.0,
            counters=RunCounters(),
        )
        assert r.throughput_meps() == float("inf")

    def test_extra_contains_config_and_plan(self, medium_graph):
        r = ecl_mst(medium_graph)
        assert "config" in r.extra and "filter_plan" in r.extra
