"""ScratchArena semantics: reuse, growth, and the two fill modes."""

import numpy as np

from repro.core.arena import ScratchArena


def test_same_name_reuses_backing_storage():
    a = ScratchArena()
    v1 = a.take("x", 8)
    v1[:] = 7
    v2 = a.take("x", 8)
    assert v2.base is v1.base or v2 is v1
    assert (v2 == 7).all()  # contents survive: reuse is free
    assert a.requests == 2 and a.reuses == 1


def test_growth_at_least_doubles():
    a = ScratchArena()
    a.take("x", 100)
    a.take("x", 101)  # near-miss grow
    assert a._buffers["x"].size >= 200
    v = a.take("x", 150)  # fits the doubled capacity: no realloc
    assert v.size == 150 and a.reuses == 1


def test_dtype_change_reallocates():
    a = ScratchArena()
    a.take("x", 8, np.int64)
    v = a.take("x", 8, np.float64)
    assert v.dtype == np.float64
    assert a.reuses == 0


def test_fill_initializes_every_call():
    a = ScratchArena()
    v = a.take("x", 4, fill=0)
    v[:] = 9
    v = a.take("x", 4, fill=0)
    assert (v == 0).all()


def test_fill_new_initializes_only_fresh_buffers():
    a = ScratchArena()
    v = a.take("mark", 4, np.bool_, fill_new=False)
    assert not v.any()  # fresh allocation was filled
    v[1] = True  # user breaks then restores the invariant...
    v[1] = False
    v[2] = True  # ...or doesn't
    v = a.take("mark", 4, np.bool_, fill_new=False)
    assert v[2]  # reuse does NOT re-fill: invariant is the caller's job
    big = a.take("mark", 64, np.bool_, fill_new=False)
    assert not big.any()  # growth reallocates -> whole buffer refilled


def test_nbytes_counts_backing_not_views():
    a = ScratchArena()
    a.take("x", 4, np.int64)
    a.take("y", 4, np.int8)
    assert a.nbytes == 4 * 8 + 4
