"""IO round-trip and format tests."""

import io

import numpy as np
import pytest

from repro.generators import random_k_out
from repro.graph.io import load_ecl, load_edge_list, save_ecl, save_edge_list


class TestEclBinary:
    def test_roundtrip_identical(self, tmp_path, medium_graph):
        path = tmp_path / "g.ecl"
        save_ecl(medium_graph, path)
        back = load_ecl(path)
        assert back.num_vertices == medium_graph.num_vertices
        assert np.array_equal(back.row_ptr, medium_graph.row_ptr)
        assert np.array_equal(back.col_idx, medium_graph.col_idx)
        assert np.array_equal(back.weights, medium_graph.weights)
        assert np.array_equal(back.edge_ids, medium_graph.edge_ids)

    def test_name_from_stem(self, tmp_path, triangle):
        path = tmp_path / "mygraph.ecl"
        save_ecl(triangle, path)
        assert load_ecl(path).name == "mygraph"

    def test_explicit_name(self, tmp_path, triangle):
        path = tmp_path / "x.ecl"
        save_ecl(triangle, path)
        assert load_ecl(path, name="other").name == "other"

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.ecl"
        path.write_bytes(b"NOTAGRAPH")
        with pytest.raises(ValueError, match="not an ECL graph"):
            load_ecl(path)

    def test_mst_weight_survives_roundtrip(self, tmp_path):
        from repro.core.verify import reference_mst_mask

        g = random_k_out(150, 3, seed=9)
        path = tmp_path / "r.ecl"
        save_ecl(g, path)
        back = load_ecl(path)
        assert np.array_equal(
            reference_mst_mask(g), reference_mst_mask(back)
        )


class TestEdgeList:
    def test_roundtrip(self, tmp_path, triangle):
        path = tmp_path / "g.txt"
        save_edge_list(triangle, path)
        back = load_edge_list(path)
        assert back.num_edges == triangle.num_edges
        assert np.array_equal(back.weights, triangle.weights)

    def test_comments_and_blank_lines(self):
        text = io.StringIO("# comment\n\n0 1 5\n1 2 6\n")
        g = load_edge_list(text)
        assert g.num_edges == 2
        assert g.num_vertices == 3

    def test_missing_weight_defaults_to_one(self):
        g = load_edge_list(io.StringIO("0 1\n"))
        assert g.weights.tolist() == [1, 1]

    def test_explicit_num_vertices(self):
        g = load_edge_list(io.StringIO("0 1 2\n"), num_vertices=10)
        assert g.num_vertices == 10
