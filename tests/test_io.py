"""IO round-trip and format tests."""

import io

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.generators import random_k_out
from repro.graph.io import load_ecl, load_edge_list, save_ecl, save_edge_list
from repro.graph.weights import WEIGHT_BOUND


class TestEclBinary:
    def test_roundtrip_identical(self, tmp_path, medium_graph):
        path = tmp_path / "g.ecl"
        save_ecl(medium_graph, path)
        back = load_ecl(path)
        assert back.num_vertices == medium_graph.num_vertices
        assert np.array_equal(back.row_ptr, medium_graph.row_ptr)
        assert np.array_equal(back.col_idx, medium_graph.col_idx)
        assert np.array_equal(back.weights, medium_graph.weights)
        assert np.array_equal(back.edge_ids, medium_graph.edge_ids)

    def test_name_from_stem(self, tmp_path, triangle):
        path = tmp_path / "mygraph.ecl"
        save_ecl(triangle, path)
        assert load_ecl(path).name == "mygraph"

    def test_explicit_name(self, tmp_path, triangle):
        path = tmp_path / "x.ecl"
        save_ecl(triangle, path)
        assert load_ecl(path, name="other").name == "other"

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.ecl"
        path.write_bytes(b"NOTAGRAPH")
        with pytest.raises(ValueError, match="not an ECL graph"):
            load_ecl(path)

    def test_mst_weight_survives_roundtrip(self, tmp_path):
        from repro.core.verify import reference_mst_mask

        g = random_k_out(150, 3, seed=9)
        path = tmp_path / "r.ecl"
        save_ecl(g, path)
        back = load_ecl(path)
        assert np.array_equal(
            reference_mst_mask(g), reference_mst_mask(back)
        )


class TestEdgeList:
    def test_roundtrip(self, tmp_path, triangle):
        path = tmp_path / "g.txt"
        save_edge_list(triangle, path)
        back = load_edge_list(path)
        assert back.num_edges == triangle.num_edges
        assert np.array_equal(back.weights, triangle.weights)

    def test_comments_and_blank_lines(self):
        text = io.StringIO("# comment\n\n0 1 5\n1 2 6\n")
        g = load_edge_list(text)
        assert g.num_edges == 2
        assert g.num_vertices == 3

    def test_missing_weight_defaults_to_one(self):
        g = load_edge_list(io.StringIO("0 1\n"))
        assert g.weights.tolist() == [1, 1]

    def test_explicit_num_vertices(self):
        g = load_edge_list(io.StringIO("0 1 2\n"), num_vertices=10)
        assert g.num_vertices == 10


class TestEclHardening:
    """Malformed binaries raise typed GraphFormatError, not garbage."""

    def _bytes(self, graph):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as d:
            path = Path(d) / "g.ecl"
            save_ecl(graph, path)
            return path.read_bytes()

    def test_truncated_header(self, tmp_path, triangle):
        data = self._bytes(triangle)
        path = tmp_path / "t.ecl"
        path.write_bytes(data[:10])
        with pytest.raises(GraphFormatError, match="truncated"):
            load_ecl(path)

    def test_truncated_arrays(self, tmp_path, triangle):
        data = self._bytes(triangle)
        path = tmp_path / "t.ecl"
        path.write_bytes(data[:-5])
        with pytest.raises(GraphFormatError, match="truncated"):
            load_ecl(path)

    def test_graph_format_error_is_value_error(self, tmp_path):
        path = tmp_path / "bad.ecl"
        path.write_bytes(b"NOTAGRAPH")
        with pytest.raises(GraphFormatError):
            load_ecl(path)
        assert issubclass(GraphFormatError, ValueError)


class TestEdgeListHardening:
    def test_too_few_fields(self):
        with pytest.raises(GraphFormatError, match=":2:"):
            load_edge_list(io.StringIO("0 1 3\n7\n"), name="x.txt")

    def test_non_integer_token(self):
        with pytest.raises(GraphFormatError, match="non-integer"):
            load_edge_list(io.StringIO("0 one 3\n"))

    def test_negative_vertex(self):
        with pytest.raises(GraphFormatError, match="negative vertex"):
            load_edge_list(io.StringIO("-1 2 3\n"))

    def test_negative_weight(self):
        with pytest.raises(GraphFormatError, match="negative edge weight"):
            load_edge_list(io.StringIO("0 1 -3\n"))

    def test_weight_bound(self):
        huge = WEIGHT_BOUND
        with pytest.raises(GraphFormatError, match="31-bit"):
            load_edge_list(io.StringIO(f"0 1 {huge}\n"))

    def test_max_legal_weight_accepted(self):
        g = load_edge_list(io.StringIO(f"0 1 {WEIGHT_BOUND - 1}\n"))
        assert g.weights.max() == WEIGHT_BOUND - 1


class TestBuildWeightBound:
    def test_build_rejects_out_of_range(self):
        from repro.graph.build import build_csr

        u = np.array([0], dtype=np.int64)
        v = np.array([1], dtype=np.int64)
        w = np.array([WEIGHT_BOUND], dtype=np.int64)
        with pytest.raises(GraphFormatError, match="31-bit"):
            build_csr(2, u, v, w)

    def test_build_rejects_negative(self):
        from repro.graph.build import build_csr

        u = np.array([0], dtype=np.int64)
        v = np.array([1], dtype=np.int64)
        w = np.array([-1], dtype=np.int64)
        with pytest.raises(GraphFormatError):
            build_csr(2, u, v, w)
