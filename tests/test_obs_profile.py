"""Run profile tests: metrics, serialization, and the golden de-opt diff."""

import json

import pytest

from repro.core.config import EclMstConfig, deopt_stages
from repro.core.eclmst import ecl_mst
from repro.obs import RunProfile, collect_result_metrics, diff, graph_fingerprint


class TestMetrics:
    def test_flat_scalar_dict(self, medium_graph):
        m = collect_result_metrics(ecl_mst(medium_graph))
        assert m  # non-empty
        for key, value in m.items():
            assert isinstance(key, str)
            assert isinstance(value, (int, float)), key

    def test_standard_names(self, medium_graph):
        m = collect_result_metrics(ecl_mst(medium_graph))
        for key in (
            "run.rounds",
            "kernel.launches",
            "atomics.executed",
            "atomics.elided",
            "dsu.find_jumps",
            "memory.bytes_per_edge",
            "worklist.shrink_rate.count",
            "dsu.find_jump_depth.count",
            "seconds.k1_reserve",
        ):
            assert key in m, key

    def test_consistency_with_counters(self, medium_graph):
        r = ecl_mst(medium_graph)
        m = collect_result_metrics(r)
        assert m["run.rounds"] == r.rounds
        assert m["kernel.launches"] == r.counters.num_launches
        assert m["atomics.executed"] == r.counters.total("atomics")

    def test_registry_type_conflict(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("x").inc()
        with pytest.raises(TypeError):
            reg.gauge("x")


class TestRunProfile:
    def test_kernel_breakdown_sums_to_total(self, medium_graph):
        r = ecl_mst(medium_graph)
        p = RunProfile.from_result(r)
        total = sum(b.seconds for b in p.kernels.values())
        assert abs(total - r.counters.total_seconds) <= 1e-9

    def test_fingerprint_stability(self, medium_graph):
        a = graph_fingerprint(medium_graph)
        b = graph_fingerprint(medium_graph)
        assert a == b
        assert a["vertices"] == medium_graph.num_vertices

    def test_fingerprint_distinguishes_graphs(self, triangle, star_graph):
        assert (
            graph_fingerprint(triangle)["digest"]
            != graph_fingerprint(star_graph)["digest"]
        )

    def test_json_round_trip(self, medium_graph, tmp_path):
        p = RunProfile.from_result(ecl_mst(medium_graph))
        text = p.to_json()
        json.loads(text)  # valid JSON
        q = RunProfile.from_json(text)
        assert q.to_dict() == p.to_dict()
        path = tmp_path / "profile.json"
        p.save(str(path))
        assert RunProfile.load(str(path)).to_dict() == p.to_dict()

    def test_config_captured(self, medium_graph):
        p = RunProfile.from_result(
            ecl_mst(medium_graph, EclMstConfig(atomic_guards=False))
        )
        assert p.config["atomic_guards"] is False
        assert p.algorithm == "ecl-mst"

    def test_render_mentions_hot_kernels(self, medium_graph):
        p = RunProfile.from_result(ecl_mst(medium_graph))
        text = p.render()
        assert "k1_reserve" in text and "ms modeled" in text

    def test_baseline_runner_profile(self):
        """Profiles work for any runner, not just ECL-MST."""
        from repro.baselines.jucele import jucele_mst
        from repro.generators import grid2d

        r = jucele_mst(grid2d(8, seed=1))
        p = RunProfile.from_result(r)
        total = sum(b.seconds for b in p.kernels.values())
        assert abs(total - r.counters.total_seconds) <= 1e-9
        assert p.config == {}  # baselines have no EclMstConfig


class TestProfileDiff:
    def test_golden_deopt_diff(self, medium_graph):
        """Table-5 grid: removing the atomic guards must show up as the
        elided-atomics metric collapsing to zero and executed atomics
        rising — the profile diff is how the regression is attributed."""
        stages = dict(deopt_stages())
        a = RunProfile.from_result(ecl_mst(medium_graph, stages["ECL-MST"]))
        b = RunProfile.from_result(
            ecl_mst(medium_graph, stages["No Atomic Guards"])
        )
        d = diff(a, b)
        assert d.comparable  # same graph fingerprint
        assert a.metrics["atomics.elided"] > 0
        elided = d.entries["atomics.elided"]
        assert elided["b"] == 0 and elided["delta"] == -elided["a"]
        executed = d.entries["atomics.executed"]
        assert executed["delta"] > 0
        # Same MSF either way — the de-opt only changes the cost.
        assert d.entries["run.total_weight"]["delta"] == 0
        assert d.entries["run.mst_edges"]["delta"] == 0

    def test_regressions_filter(self, medium_graph):
        stages = dict(deopt_stages())
        a = RunProfile.from_result(ecl_mst(medium_graph, stages["ECL-MST"]))
        b = RunProfile.from_result(
            ecl_mst(medium_graph, stages["Topology-Driven"])
        )
        regs = diff(a, b).regressions(threshold=1.5)
        # The heavily de-optimized config must regress something.
        assert any(k.startswith(("kernel.", "seconds.")) for k in regs)

    def test_incomparable_flag(self, triangle, star_graph):
        a = RunProfile.from_result(ecl_mst(triangle))
        b = RunProfile.from_result(ecl_mst(star_graph))
        d = diff(a, b)
        assert not d.comparable
        assert "WARNING" in d.render()

    def test_diff_json(self, medium_graph):
        p = RunProfile.from_result(ecl_mst(medium_graph))
        d = diff(p, p)
        payload = json.loads(d.to_json())
        assert payload["comparable"] is True
        for e in payload["entries"].values():
            assert e["delta"] == 0
            assert e["direction"] in ("lower", "higher", "exact", "info")

    def test_save_load_diff_self_is_clean(self, medium_graph, tmp_path):
        """The exporter round trip is lossless for gating purposes: a
        profile diffed against its own save→load copy reports nothing."""
        p = RunProfile.from_result(ecl_mst(medium_graph))
        path = tmp_path / "p.json"
        p.save(str(path))
        d = diff(RunProfile.load(str(path)), p)
        assert d.comparable
        assert d.regressions(threshold=1.0) == {}

    def test_regressions_direction_aware(self, medium_graph):
        """An improvement in a higher-is-better metric must not be
        flagged, and a drop must be — even at threshold 1.0."""
        a = RunProfile.from_result(ecl_mst(medium_graph))
        better = RunProfile.from_json(a.to_json())
        better.metrics = dict(a.metrics)
        better.metrics["atomics.elided"] = a.metrics["atomics.elided"] + 1
        assert "atomics.elided" not in diff(a, better).regressions(
            threshold=1.0
        )
        worse = RunProfile.from_json(a.to_json())
        worse.metrics = dict(a.metrics)
        worse.metrics["atomics.elided"] = a.metrics["atomics.elided"] - 1
        assert "atomics.elided" in diff(a, worse).regressions(threshold=1.0)
