"""Property-based IO roundtrips and determinism guarantees."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.eclmst import ecl_mst
from repro.graph.build import build_csr
from repro.graph.formats import load_dimacs, load_metis, save_dimacs, save_metis
from repro.graph.io import load_ecl, save_ecl


@st.composite
def random_graphs(draw):
    n = draw(st.integers(2, 40))
    m = draw(st.integers(0, 120))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return build_csr(
        n,
        rng.integers(0, n, m),
        rng.integers(0, n, m),
        rng.integers(1, 100_000, m),
        name="fuzz",
    )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(g=random_graphs())
@pytest.mark.parametrize(
    "save,load",
    [(save_ecl, load_ecl), (save_dimacs, load_dimacs), (save_metis, load_metis)],
    ids=["ecl", "dimacs", "metis"],
)
def test_property_format_roundtrip(save, load, g, tmp_path_factory):
    path = tmp_path_factory.mktemp("fuzz") / "g.bin"
    save(g, path)
    back = load(path)
    assert back.num_vertices == g.num_vertices
    assert back.num_edges == g.num_edges
    assert np.array_equal(back.row_ptr, g.row_ptr)
    assert np.array_equal(back.col_idx, g.col_idx)
    assert np.array_equal(back.weights, g.weights)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(g=random_graphs())
def test_property_model_deterministic(g):
    """Two identical runs produce bit-identical results *and* modeled
    times — the whole pipeline is free of hidden nondeterminism (the
    property that lets the harness use one run instead of 9)."""
    a = ecl_mst(g)
    b = ecl_mst(g)
    assert np.array_equal(a.in_mst, b.in_mst)
    assert a.modeled_seconds == b.modeled_seconds
    assert a.rounds == b.rounds
    assert a.counters.summary() == b.counters.summary()
