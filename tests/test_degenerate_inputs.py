"""Degenerate inputs through the full pipeline (issue: robustness).

Empty graphs, single vertices, self-loops, parallel multi-edges and
disconnected graphs must flow through ``ecl_mst`` + ``verify_mst`` and
the MSF-capable baselines without special-casing by the caller.
"""

import numpy as np
import pytest

from repro.baselines import kruskal_serial_mst, lonestar_cpu_mst, prim_mst
from repro.core.eclmst import ecl_mst
from repro.core.verify import reference_mst_mask, verify_mst
from repro.graph.build import build_csr, empty_graph

from helpers import make_graph

BASELINES = [kruskal_serial_mst, lonestar_cpu_mst, prim_mst]


def _check_all(graph, expect_edges, expect_weight):
    results = [ecl_mst(graph)] + [fn(graph) for fn in BASELINES]
    ref = reference_mst_mask(graph)
    for r in results:
        assert r.num_mst_edges == expect_edges
        assert r.total_weight == expect_weight
        assert np.array_equal(r.in_mst, ref)
        verify_mst(r)


class TestDegenerate:
    def test_empty_graph(self):
        g = empty_graph(0, "empty")
        _check_all(g, 0, 0)

    def test_edgeless_vertices(self):
        g = empty_graph(5, "edgeless")
        _check_all(g, 0, 0)

    def test_single_vertex(self):
        g = empty_graph(1, "one")
        _check_all(g, 0, 0)

    def test_single_edge(self):
        g = make_graph(2, [(0, 1, 7)])
        _check_all(g, 1, 7)

    def test_self_loops_dropped(self):
        u = np.array([0, 0, 1, 2], dtype=np.int64)
        v = np.array([0, 1, 1, 2], dtype=np.int64)
        w = np.array([9, 3, 9, 9], dtype=np.int64)
        g = build_csr(3, u, v, w, name="loops")
        assert g.num_edges == 1  # only the 0-1 edge survives
        _check_all(g, 1, 3)

    def test_parallel_edges_keep_min_weight(self):
        u = np.array([0, 1, 0, 0], dtype=np.int64)
        v = np.array([1, 0, 1, 2], dtype=np.int64)
        w = np.array([5, 2, 8, 4], dtype=np.int64)
        g = build_csr(3, u, v, w, name="multi")
        assert g.num_edges == 2  # 0-1 merged to weight 2, plus 0-2
        _check_all(g, 2, 6)

    def test_disconnected_components(self):
        g = make_graph(
            6,
            [(0, 1, 1), (1, 2, 2), (3, 4, 3), (4, 5, 4)],
            name="two-comps",
        )
        _check_all(g, 4, 10)

    def test_isolated_vertex_amid_component(self):
        g = make_graph(4, [(0, 1, 1), (1, 2, 2)], name="isolated")
        _check_all(g, 2, 3)

    def test_degenerate_with_resilience(self):
        from repro.resilience import ResilienceConfig

        g = make_graph(6, [(0, 1, 1), (3, 4, 3)], name="res-degenerate")
        r = ecl_mst(g, resilience=ResilienceConfig())
        assert np.array_equal(r.in_mst, reference_mst_mask(g))
        verify_mst(r)

    def test_empty_with_resilience(self):
        from repro.resilience import ResilienceConfig

        g = empty_graph(0, "res-empty")
        r = ecl_mst(g, resilience=ResilienceConfig())
        assert r.num_mst_edges == 0
