"""Property-based end-to-end tests: ECL-MST equals the unique reference
MSF on arbitrary random graphs, and its weight matches networkx."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import EclMstConfig
from repro.core.eclmst import ecl_mst
from repro.core.verify import reference_mst_mask
from repro.graph.build import build_csr


@st.composite
def random_graphs(draw):
    n = draw(st.integers(2, 40))
    m = draw(st.integers(0, 120))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, m)
    v = rng.integers(0, n, m)
    w = rng.integers(1, draw(st.sampled_from([2, 5, 100, 10_000])), size=m)
    return build_csr(n, u, v, w, name=f"hyp-{n}-{m}")


@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(g=random_graphs())
def test_ecl_equals_reference(g):
    r = ecl_mst(g)
    assert np.array_equal(r.in_mst, reference_mst_mask(g))


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(g=random_graphs(), stage=st.integers(0, 8))
def test_every_deopt_stage_equals_reference(g, stage):
    from repro.core.config import deopt_stages

    _, cfg = deopt_stages()[stage]
    r = ecl_mst(g, cfg)
    assert np.array_equal(r.in_mst, reference_mst_mask(g))


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(g=random_graphs())
def test_weight_matches_networkx(g):
    nx = pytest.importorskip("networkx")
    G = nx.Graph()
    G.add_nodes_from(range(g.num_vertices))
    u, v, w, _ = g.undirected_edges()
    for i in range(u.size):
        G.add_edge(int(u[i]), int(v[i]), weight=int(w[i]))
    expected = sum(
        d["weight"]
        for _, _, d in nx.minimum_spanning_edges(G, algorithm="kruskal", data=True)
    )
    r = ecl_mst(g)
    assert r.total_weight == expected


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(g=random_graphs())
def test_forest_invariants(g):
    """The selected edges form an acyclic subgraph spanning each
    component: |MSF| = |V| - #components and no cycles."""
    from repro.graph.properties import connected_components

    r = ecl_mst(g)
    n_cc, _ = connected_components(g)
    assert r.num_mst_edges == g.num_vertices - n_cc
    # Acyclicity via union-find over the chosen edges.
    parent = list(range(g.num_vertices))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    u, v, w = r.edges()
    for i in range(u.size):
        a, b = find(int(u[i])), find(int(v[i]))
        assert a != b, "cycle in reported MSF"
        parent[a] = b


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_filter_seed_invariance(seed):
    """Different sampling seeds change the threshold but never the MSF."""
    rng = np.random.default_rng(7)
    u = rng.integers(0, 30, 200)
    v = rng.integers(0, 30, 200)
    w = rng.integers(1, 1000, 200)
    g = build_csr(30, u, v, w)
    ref = reference_mst_mask(g)
    r = ecl_mst(g, EclMstConfig(seed=seed))
    assert np.array_equal(r.in_mst, ref)
