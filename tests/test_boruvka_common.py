"""Invariant tests for the shared Borůvka round machinery."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines._boruvka_common import (
    boruvka_round,
    graph_flood_iterations,
    propagate_colors,
)
from repro.graph.build import build_csr


def _slots(g):
    return (
        g.edge_sources().astype(np.int64),
        g.col_idx.astype(np.int64),
        g.weights.astype(np.int64),
        g.edge_ids.astype(np.int64),
    )


def _graph(n, m, seed):
    rng = np.random.default_rng(seed)
    return build_csr(
        n,
        rng.integers(0, n, m),
        rng.integers(0, n, m),
        rng.integers(1, 1000, m),
    )


class TestBoruvkaRound:
    def test_winners_nonempty_while_cross_edges_exist(self):
        g = _graph(30, 80, 0)
        src, dst, w, eid = _slots(g)
        comp = np.arange(30, dtype=np.int64)
        rnd = boruvka_round(src, dst, w, eid, comp)
        if rnd.cross_edges:
            assert rnd.winner_eids.size > 0

    def test_components_strictly_decrease(self):
        g = _graph(40, 120, 1)
        src, dst, w, eid = _slots(g)
        comp = np.arange(40, dtype=np.int64)
        prev = 40
        for _ in range(20):
            rnd = boruvka_round(src, dst, w, eid, comp)
            if rnd.cross_edges == 0:
                break
            assert rnd.num_components < prev
            prev = rnd.num_components
            comp = rnd.new_comp
        else:
            pytest.fail("Borůvka did not converge in 20 rounds")

    def test_winner_edges_are_mst_edges(self):
        from repro.core.verify import reference_mst_mask

        g = _graph(40, 150, 2)
        ref = reference_mst_mask(g)
        src, dst, w, eid = _slots(g)
        comp = np.arange(40, dtype=np.int64)
        while True:
            rnd = boruvka_round(src, dst, w, eid, comp)
            assert ref[rnd.winner_eids].all()  # winners ⊆ unique MST
            if rnd.cross_edges == 0:
                break
            comp = rnd.new_comp

    def test_terminal_round_reports_components(self, two_components=None):
        g = _graph(10, 0, 3)  # edgeless
        src, dst, w, eid = _slots(g)
        rnd = boruvka_round(src, dst, w, eid, np.arange(10, dtype=np.int64))
        assert rnd.cross_edges == 0
        assert rnd.num_components == 10
        assert rnd.winner_eids.size == 0

    def test_contention_bounded_by_cross_edges(self):
        g = _graph(25, 100, 4)
        src, dst, w, eid = _slots(g)
        rnd = boruvka_round(src, dst, w, eid, np.arange(25, dtype=np.int64))
        assert 0 < rnd.atomic_contention <= 2 * rnd.cross_edges

    def test_flood_at_least_jumping(self):
        # One-hop flooding can never need fewer steps than doubling.
        g = _graph(60, 90, 5)
        src, dst, w, eid = _slots(g)
        rnd = boruvka_round(src, dst, w, eid, np.arange(60, dtype=np.int64))
        assert rnd.flood_iterations >= rnd.prop_iterations - 1


class TestPropagateColors:
    def test_flattens_chain(self):
        labels = np.array([0, 0, 1, 2, 3], dtype=np.int64)
        flat, iters = propagate_colors(labels)
        assert np.array_equal(flat, np.zeros(5, dtype=np.int64))
        assert iters <= 4  # doubling: log2(depth) + 1

    def test_identity_stable(self):
        labels = np.arange(6, dtype=np.int64)
        flat, iters = propagate_colors(labels)
        assert np.array_equal(flat, labels)
        assert iters == 1


class TestGraphFlood:
    def test_path_flood_is_linear(self):
        # A path graph merged into one component floods in ~n hops.
        n = 20
        u = np.arange(n - 1)
        v = np.arange(1, n)
        g = build_csr(n, u, v, np.arange(1, n))
        src, dst, w, eid = _slots(g)
        old = np.arange(n, dtype=np.int64)
        new = np.zeros(n, dtype=np.int64)
        iters = graph_flood_iterations(src, dst, old, new)
        assert iters >= n - 2  # label 0 travels the whole path

    def test_star_flood_is_constant(self):
        n = 20
        u = np.zeros(n - 1, dtype=np.int64)
        v = np.arange(1, n)
        g = build_csr(n, u, v, np.arange(1, n))
        src, dst, w, eid = _slots(g)
        iters = graph_flood_iterations(
            src, dst, np.arange(n, dtype=np.int64), np.zeros(n, dtype=np.int64)
        )
        assert iters <= 3

    def test_no_merge_no_flood(self):
        g = _graph(10, 20, 6)
        src, dst, w, eid = _slots(g)
        comp = np.arange(10, dtype=np.int64)
        assert graph_flood_iterations(src, dst, comp, comp) == 0


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(2, 40),
    m=st.integers(1, 120),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_repeated_rounds_build_the_msf(n, m, seed):
    """Iterating boruvka_round to fixpoint yields exactly the MSF."""
    from repro.core.verify import reference_mst_mask

    g = _graph(n, m, seed)
    ref = reference_mst_mask(g)
    src, dst, w, eid = _slots(g)
    comp = np.arange(n, dtype=np.int64)
    selected = np.zeros(g.num_edges, dtype=bool)
    for _ in range(n + 2):
        rnd = boruvka_round(src, dst, w, eid, comp)
        selected[rnd.winner_eids] = True
        comp = rnd.new_comp
        if rnd.cross_edges == 0:
            break
    assert np.array_equal(selected, ref)
