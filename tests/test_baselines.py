"""Baseline correctness: every comparator computes the identical MSF."""

import numpy as np
import pytest

from repro.baselines import (
    NotConnectedError,
    RUNNERS,
    TABLE_CODES,
    cugraph_mst,
    filter_kruskal_mst,
    get_runner,
    gunrock_mst,
    jucele_mst,
    kruskal_serial_mst,
    lonestar_cpu_mst,
    pbbs_parallel_mst,
    prim_mst,
    qkruskal_mst,
    uminho_cpu_mst,
    uminho_gpu_mst,
)
from repro.core.verify import reference_mst_mask
from repro.generators import suite

MSF_RUNNERS = [
    cugraph_mst,
    uminho_gpu_mst,
    uminho_cpu_mst,
    lonestar_cpu_mst,
    pbbs_parallel_mst,
    kruskal_serial_mst,
    qkruskal_mst,
    filter_kruskal_mst,
    prim_mst,
]
MST_ONLY_RUNNERS = [jucele_mst, gunrock_mst]


@pytest.mark.parametrize(
    "runner", MSF_RUNNERS, ids=lambda f: f.__name__
)
class TestMsfRunners:
    def test_matches_reference(self, runner, medium_graph):
        r = runner(medium_graph)
        assert np.array_equal(r.in_mst, reference_mst_mask(medium_graph))

    def test_two_components(self, runner, two_components):
        r = runner(two_components)
        assert r.num_mst_edges == 4
        assert r.total_weight == 1 + 2 + 4 + 5

    def test_modeled_time_positive(self, runner, triangle):
        assert runner(triangle).modeled_seconds > 0


@pytest.mark.parametrize(
    "runner", MST_ONLY_RUNNERS, ids=lambda f: f.__name__
)
class TestMstOnlyRunners:
    def test_matches_reference_when_connected(self, runner, paper_figure1):
        r = runner(paper_figure1)
        assert np.array_equal(r.in_mst, reference_mst_mask(paper_figure1))

    def test_raises_nc_on_msf_input(self, runner, two_components):
        with pytest.raises(NotConnectedError):
            runner(two_components)

    def test_medium_connected_inputs(self, runner):
        g = suite.build("delaunay_n24", scale=0.05)
        r = runner(g)
        assert np.array_equal(r.in_mst, reference_mst_mask(g))


class TestCugraphPrecision:
    def test_float_faster_than_double(self):
        g = suite.build("coPapersDBLP", scale=0.2)
        d = cugraph_mst(g, precision="double")
        f = cugraph_mst(g, precision="float")
        assert f.modeled_seconds < d.modeled_seconds
        assert np.array_equal(f.in_mst, d.in_mst)

    def test_invalid_precision(self, triangle):
        with pytest.raises(ValueError):
            cugraph_mst(triangle, precision="half")


class TestRegistry:
    def test_table_codes_resolvable(self):
        for code in TABLE_CODES:
            assert get_runner(code).name == code

    def test_unknown_code(self):
        with pytest.raises(KeyError, match="unknown MST code"):
            get_runner("FasterThanLight")

    def test_msf_capability_flags(self):
        assert not RUNNERS["Jucele GPU"].supports_msf
        assert not RUNNERS["Gunrock GPU"].supports_msf
        assert RUNNERS["cuGraph GPU"].supports_msf
        assert RUNNERS["PBBS Ser."].supports_msf

    def test_hardware_kinds(self):
        assert RUNNERS["ECL-MST"].kind == "gpu"
        assert RUNNERS["PBBS CPU"].kind == "cpu-parallel"
        assert RUNNERS["PBBS Ser."].kind == "cpu-serial"

    def test_runner_run_dispatch(self, triangle):
        from repro.gpusim.spec import RTX_3080_TI, XEON_GOLD_6226R_X2

        for code in ("ECL-MST", "PBBS CPU", "PBBS Ser."):
            r = get_runner(code).run(
                triangle, gpu=RTX_3080_TI, cpu=XEON_GOLD_6226R_X2
            )
            assert r.num_mst_edges == 2


class TestRelativePerformanceShape:
    """Key Table-3/4 relationships on representative inputs."""

    def test_ecl_fastest_on_every_suite_input(self):
        from repro.core.eclmst import ecl_mst

        for name in ("coPapersDBLP", "USA-road-d.NY", "r4-2e23.sym"):
            g = suite.build(name, scale=0.3)
            ecl = ecl_mst(g).modeled_seconds
            for runner in MSF_RUNNERS:
                assert ecl < runner(g).modeled_seconds, (name, runner.__name__)

    def test_uminho_gpu_best_baseline_on_roads(self):
        g = suite.build("europe_osm", scale=0.5)
        um = uminho_gpu_mst(g).modeled_seconds
        assert um < cugraph_mst(g).modeled_seconds
        assert um < pbbs_parallel_mst(g).modeled_seconds

    def test_cugraph_struggles_on_roads(self):
        # cuGraph's flood propagation is the paper's worst case on
        # europe_osm; UMinho GPU (jumping + contraction) is its best.
        g = suite.build("europe_osm", scale=0.5)
        assert (
            cugraph_mst(g).modeled_seconds
            > 5 * uminho_gpu_mst(g).modeled_seconds
        )

    def test_serial_slowest_cpu_family(self):
        g = suite.build("r4-2e23.sym", scale=0.3)
        assert (
            kruskal_serial_mst(g).modeled_seconds
            > pbbs_parallel_mst(g).modeled_seconds
        )

    def test_lonestar_slower_than_serial_on_scale_free(self):
        g = suite.build("kron_g500-logn21", scale=0.5)
        assert (
            lonestar_cpu_mst(g).modeled_seconds
            > kruskal_serial_mst(g).modeled_seconds * 0.8
        )

    def test_filter_kruskal_beats_plain_kruskal_dense(self):
        g = suite.build("coPapersDBLP", scale=0.3)
        assert (
            filter_kruskal_mst(g).modeled_seconds
            < kruskal_serial_mst(g).modeled_seconds
        )
