"""Span tracer tests: nesting invariants and the zero-overhead contract."""

import numpy as np

from repro.core.config import EclMstConfig
from repro.core.eclmst import ecl_mst
from repro.obs import NULL_TRACER, Span, Tracer


class TestSpanBasics:
    def test_nesting_and_attrs(self):
        tr = Tracer()
        with tr.span("outer", kind="run", graph="g") as outer:
            assert tr.current is outer
            with tr.span("inner", kind="round"):
                tr.annotate(survivors=7)
        assert tr.current is None
        assert len(tr.roots) == 1
        assert outer.attrs["graph"] == "g"
        assert outer.children[0].attrs["survivors"] == 7
        assert outer.wall_end is not None
        assert outer.wall_seconds >= outer.children[0].wall_seconds

    def test_walk_depths(self):
        tr = Tracer()
        with tr.span("a"):
            with tr.span("b"):
                with tr.span("c"):
                    pass
        depths = [d for _, d, _ in tr.walk()]
        assert depths == [0, 1, 2]
        parents = [p.name if p else None for _, _, p in tr.walk()]
        assert parents == [None, "a", "b"]

    def test_exception_closes_span(self):
        tr = Tracer()
        try:
            with tr.span("boom"):
                raise ValueError()
        except ValueError:
            pass
        assert tr.current is None
        assert tr.roots[0].wall_end is not None

    def test_span_to_dict(self):
        sp = Span(name="x", kind="round", attrs={"k": 1})
        d = sp.to_dict()
        assert d["name"] == "x" and d["kind"] == "round"
        assert d["attrs"] == {"k": 1}


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", kind="run") as sp:
            sp.annotate(x=1)
        NULL_TRACER.annotate(y=2)
        NULL_TRACER.kernel(None)
        assert not NULL_TRACER.enabled


class TestEclMstTracing:
    def test_run_phase_round_kernel_hierarchy(self, medium_graph):
        tr = Tracer()
        r = ecl_mst(medium_graph, tracer=tr)
        assert len(tr.roots) == 1
        run = tr.roots[0]
        assert run.kind == "run"
        # Direct children: the host-side "build state" span plus the
        # algorithm phases.
        assert all(ch.kind in ("phase", "host") for ch in run.children)
        assert [ch.kind for ch in run.children].count("host") == 1
        rounds = [
            sp for phase in run.children for sp in phase.children
            if sp.kind == "round"
        ]
        assert len(rounds) == r.rounds
        # Every kernel span sits under the run (init under a phase,
        # k1/k2/k3/host_sync under rounds), one per recorded launch.
        kernels = tr.spans(kind="kernel")
        assert len(kernels) == r.counters.num_launches
        names = {sp.name for sp in kernels}
        assert {"init", "k1_reserve", "host_sync"} <= names

    def test_round_spans_carry_stats(self, medium_graph):
        tr = Tracer()
        r = ecl_mst(medium_graph, EclMstConfig(filtering=False), tracer=tr)
        rounds = tr.spans(kind="round")
        for sp, stats in zip(rounds, r.round_stats):
            assert sp.attrs["entries"] == stats.entries
            assert sp.attrs["survivors"] == stats.survivors
            assert sp.attrs["added"] == stats.added

    def test_modeled_clock_matches_counters(self, medium_graph):
        tr = Tracer()
        r = ecl_mst(medium_graph, tracer=tr)
        run = tr.roots[0]
        assert run.modeled_seconds is not None
        assert np.isclose(
            run.modeled_seconds, r.counters.total_seconds, rtol=0, atol=1e-12
        )
        # Kernel spans tile the run's modeled interval.
        kernel_sum = sum(
            sp.modeled_seconds for sp in tr.spans(kind="kernel")
        )
        assert np.isclose(kernel_sum, run.modeled_seconds, atol=1e-12)

    def test_tracing_is_a_pure_observer(self, medium_graph):
        """Solver output and counters are identical with tracing on/off."""
        base = ecl_mst(medium_graph)
        traced = ecl_mst(medium_graph, tracer=Tracer())
        assert traced.total_weight == base.total_weight
        assert traced.num_mst_edges == base.num_mst_edges
        assert np.array_equal(traced.in_mst, base.in_mst)
        assert traced.modeled_seconds == base.modeled_seconds  # bitwise
        assert traced.counters.summary() == base.counters.summary()
        assert traced.rounds == base.rounds

    def test_topology_driven_rounds_traced(self, medium_graph):
        tr = Tracer()
        r = ecl_mst(medium_graph, EclMstConfig(data_driven=False), tracer=tr)
        rounds = tr.spans(kind="round")
        assert len(rounds) == r.rounds
        assert rounds[-1].attrs["survivors"] == 0


class TestBaselineTracing:
    def test_jucele_traced(self):
        from repro.baselines.jucele import jucele_mst
        from repro.generators import grid2d

        g = grid2d(8, seed=1)
        tr = Tracer()
        r = jucele_mst(g, tracer=tr)
        run = tr.roots[0]
        assert run.kind == "run"
        rounds = [sp for sp in run.children if sp.kind == "round"]
        assert len(rounds) == r.rounds
        # boruvka_round annotates the open round span.
        assert "cross_edges" in rounds[0].attrs
        assert len(tr.spans(kind="kernel")) == r.counters.num_launches

    def test_baseline_untraced_unchanged(self):
        from repro.baselines.jucele import jucele_mst
        from repro.generators import grid2d

        g = grid2d(8, seed=1)
        base = jucele_mst(g)
        traced = jucele_mst(g, tracer=Tracer())
        assert base.total_weight == traced.total_weight
        assert base.counters.summary() == traced.counters.summary()


class TestHarnessTracing:
    def test_run_cell_wraps_in_cell_span(self):
        from repro.baselines.registry import get_runner
        from repro.bench.harness import SYSTEM2, run_cell
        from repro.generators import grid2d

        g = grid2d(8, seed=1)
        tr = Tracer()
        cell = run_cell(get_runner("ECL-MST"), g, SYSTEM2, tracer=tr)
        assert cell.seconds is not None
        root = tr.roots[0]
        assert root.kind == "cell"
        assert root.attrs["outcome"] == "ok"
        assert root.children[0].kind == "run"

    def test_run_cell_nc_annotated(self):
        from repro.baselines.registry import get_runner
        from repro.bench.harness import SYSTEM2, run_cell
        from repro.generators import preferential_attachment

        g = preferential_attachment(60, 2, num_components=3, seed=1)
        tr = Tracer()
        cell = run_cell(get_runner("Jucele GPU"), g, SYSTEM2, tracer=tr)
        assert cell.is_nc
        assert tr.roots[0].attrs["outcome"] == "NC"
