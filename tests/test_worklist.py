"""Double-buffered worklist protocol tests."""

import numpy as np

from repro.core.worklist import EdgeList, Worklist


def _entries(k, offset=0):
    idx = np.arange(k, dtype=np.int64) + offset
    return EdgeList(idx, idx + 1, idx * 10 + 1, idx)


class TestEdgeList:
    def test_len(self):
        assert len(_entries(5)) == 5
        assert len(EdgeList.empty()) == 0

    def test_select(self):
        e = _entries(6)
        mask = np.array([True, False, True, False, True, False])
        sel = e.select(mask)
        assert len(sel) == 3
        assert sel.v.tolist() == [0, 2, 4]


class TestWorklist:
    def test_fill_front(self):
        wl = Worklist()
        wl.fill_front(_entries(4))
        assert len(wl) == 4
        assert wl.appends == 4

    def test_swap_moves_back_to_front(self):
        wl = Worklist()
        wl.fill_front(_entries(4))
        wl.append_back(_entries(2, offset=100))
        wl.append_back(_entries(3, offset=200))
        wl.swap()
        assert len(wl) == 5
        assert wl.front.v.tolist() == [100, 101, 200, 201, 202]

    def test_swap_with_empty_back(self):
        wl = Worklist()
        wl.fill_front(_entries(4))
        wl.swap()
        assert len(wl) == 0

    def test_append_empty_is_noop(self):
        wl = Worklist()
        before = wl.appends
        wl.append_back(EdgeList.empty())
        assert wl.appends == before

    def test_appends_count_atomic_adds(self):
        wl = Worklist()
        wl.fill_front(_entries(4))
        wl.append_back(_entries(2))
        assert wl.appends == 6

    def test_double_buffer_cycles(self):
        # Emulate three rounds of drain/fill.
        wl = Worklist()
        wl.fill_front(_entries(8))
        for k in (5, 3, 1):
            wl.append_back(_entries(k))
            wl.swap()
            assert len(wl) == k
        wl.swap()
        assert len(wl) == 0
