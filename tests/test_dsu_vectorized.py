"""Vectorized multi-find tests (the kernel-side DSU operations)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dsu.arrays import DisjointSet
from repro.dsu.vectorized import compress_halving_many, find_many


def _random_forest(n: int, seed: int) -> np.ndarray:
    """A random parent forest with edges pointing to lower IDs."""
    rng = np.random.default_rng(seed)
    parent = np.arange(n, dtype=np.int64)
    for v in range(1, n):
        if rng.random() < 0.8:
            parent[v] = rng.integers(0, v)
    return parent


class TestFindMany:
    def test_identity_on_roots(self):
        parent = np.arange(10, dtype=np.int64)
        roots, loads = find_many(parent, np.arange(10))
        assert np.array_equal(roots, np.arange(10))
        assert loads == 10  # one load per lane

    def test_matches_scalar_finds(self):
        parent = _random_forest(50, 1)
        d = DisjointSet(50)
        d.parent = parent.copy()
        roots, _ = find_many(parent, np.arange(50))
        assert all(roots[i] == d.find(i) for i in range(50))

    def test_does_not_mutate(self):
        parent = _random_forest(30, 2)
        before = parent.copy()
        find_many(parent, np.arange(30))
        assert np.array_equal(parent, before)

    def test_load_count_is_path_lengths(self):
        # Chain 3 -> 2 -> 1 -> 0: find(3) loads parent 4 times
        # (3,2,1,0), find(0) loads once.
        parent = np.array([0, 0, 1, 2], dtype=np.int64)
        _, loads = find_many(parent, np.array([3]))
        assert loads == 4
        _, loads = find_many(parent, np.array([0]))
        assert loads == 1

    def test_empty(self):
        parent = np.arange(5, dtype=np.int64)
        roots, loads = find_many(parent, np.empty(0, dtype=np.int64))
        assert roots.size == 0 and loads == 0

    def test_duplicates_allowed(self):
        parent = np.array([0, 0, 1], dtype=np.int64)
        roots, _ = find_many(parent, np.array([2, 2, 2]))
        assert roots.tolist() == [0, 0, 0]


class TestHalvingMany:
    def test_roots_unchanged_by_halving(self):
        parent = _random_forest(60, 3)
        expected, _ = find_many(parent.copy(), np.arange(60))
        roots, loads, writes = compress_halving_many(parent, np.arange(60))
        assert np.array_equal(roots, expected)

    def test_halving_compresses(self):
        parent = np.array([0, 0, 1, 2, 3, 4], dtype=np.int64)
        _, _, writes = compress_halving_many(parent, np.array([5]))
        assert writes > 0
        # Second traversal must be cheaper than the first.
        _, loads2, _ = compress_halving_many(parent, np.array([5]))
        assert loads2 <= 5

    def test_counts_zero_on_empty(self):
        parent = np.arange(4, dtype=np.int64)
        roots, loads, writes = compress_halving_many(
            parent, np.empty(0, dtype=np.int64)
        )
        assert roots.size == 0 and loads == 0 and writes == 0


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(1, 120))
def test_property_halving_preserves_partition(seed, n):
    parent = _random_forest(n, seed)
    expected, _ = find_many(parent.copy(), np.arange(n))
    work = parent.copy()
    roots, _, _ = compress_halving_many(work, np.arange(n))
    assert np.array_equal(roots, expected)
    # Post-compression finds still agree.
    after, _ = find_many(work, np.arange(n))
    assert np.array_equal(after, expected)
