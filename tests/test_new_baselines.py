"""Tests for the extension baselines: Setia parallel Prim and
ECL-MST-CPU (the independent second implementation)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import ecl_mst_cpu, setia_prim_mst
from repro.core.config import EclMstConfig
from repro.core.eclmst import ecl_mst
from repro.core.verify import reference_mst_mask
from repro.generators import suite
from repro.graph.build import build_csr


@pytest.mark.parametrize(
    "runner", [setia_prim_mst, ecl_mst_cpu], ids=lambda f: f.__name__
)
class TestCorrectness:
    def test_matches_reference(self, runner, medium_graph):
        r = runner(medium_graph)
        assert np.array_equal(r.in_mst, reference_mst_mask(medium_graph))

    def test_msf(self, runner, two_components):
        r = runner(two_components)
        assert r.num_mst_edges == 4
        assert r.total_weight == 1 + 2 + 4 + 5

    def test_empty(self, runner):
        from repro.graph.build import empty_graph

        r = runner(empty_graph(4))
        assert r.num_mst_edges == 0

    def test_star(self, runner, star_graph):
        r = runner(star_graph)
        assert r.num_mst_edges == 20


class TestSetiaSpecifics:
    def test_merge_count_bounded(self, medium_graph):
        r = setia_prim_mst(medium_graph, threads=8)
        # At most threads-1 merges among the initial trees, plus later
        # spawns; never more than trees spawned.
        assert 0 <= r.extra["merges"] < medium_graph.num_vertices

    def test_seed_changes_starts_not_result(self, medium_graph):
        ref = reference_mst_mask(medium_graph)
        for seed in range(4):
            r = setia_prim_mst(medium_graph, seed=seed)
            assert np.array_equal(r.in_mst, ref)

    def test_single_thread_degenerates_to_prim(self, paper_figure1):
        r = setia_prim_mst(paper_figure1, threads=1)
        assert r.extra["threads"] == 1
        assert r.total_weight == 1 + 2 + 3 + 4

    def test_merge_cost_charged(self, medium_graph):
        r = setia_prim_mst(medium_graph, threads=16)
        names = {k.name for k in r.counters.kernels}
        assert "tree_merges" in names


class TestEclCpuSpecifics:
    def test_agrees_with_gpu_version_exactly(self, medium_graph):
        gpu = ecl_mst(medium_graph)
        cpu = ecl_mst_cpu(medium_graph)
        assert np.array_equal(gpu.in_mst, cpu.in_mst)

    def test_filtering_respected(self):
        g = suite.build("coPapersDBLP", scale=0.1)
        r = ecl_mst_cpu(g, EclMstConfig())
        assert r.extra["filter_plan"].active
        r2 = ecl_mst_cpu(g, EclMstConfig(filtering=False))
        assert not r2.extra["filter_plan"].active
        assert np.array_equal(r.in_mst, r2.in_mst)

    def test_round_structure_similar_to_gpu(self, medium_graph):
        gpu = ecl_mst(medium_graph)
        cpu = ecl_mst_cpu(medium_graph)
        assert abs(gpu.rounds - cpu.rounds) <= 2

    def test_slower_than_gpu_model(self):
        g = suite.build("r4-2e23.sym", scale=0.5)
        assert ecl_mst_cpu(g).modeled_seconds > ecl_mst(g).modeled_seconds


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(2, 30),
    m=st.integers(0, 80),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_new_baselines_match(n, m, seed):
    rng = np.random.default_rng(seed)
    g = build_csr(
        n,
        rng.integers(0, n, m),
        rng.integers(0, n, m),
        rng.integers(1, 1000, m),
    )
    ref = reference_mst_mask(g)
    assert np.array_equal(setia_prim_mst(g).in_mst, ref)
    assert np.array_equal(ecl_mst_cpu(g).in_mst, ref)
