"""Hash-weight determinism and distribution tests."""

import numpy as np
from hypothesis import given, strategies as st

from repro.graph.weights import MAX_WEIGHT, hash_weight, randomize_weights


class TestHashWeight:
    def test_deterministic(self):
        a = hash_weight([1, 2, 3], [4, 5, 6])
        b = hash_weight([1, 2, 3], [4, 5, 6])
        assert np.array_equal(a, b)

    def test_order_independent_of_array_position(self):
        a = hash_weight([1, 2], [4, 5])
        b = hash_weight([2, 1], [5, 4])
        assert a[0] == b[1] and a[1] == b[0]

    def test_range(self):
        w = hash_weight(np.arange(10_000), np.arange(10_000) + 1)
        assert w.min() >= 1
        assert w.max() <= MAX_WEIGHT

    def test_seed_changes_weights(self):
        a = hash_weight(np.arange(100), np.arange(100) + 1, seed=0)
        b = hash_weight(np.arange(100), np.arange(100) + 1, seed=1)
        assert not np.array_equal(a, b)

    def test_roughly_uniform(self):
        w = hash_weight(np.arange(50_000), np.arange(50_000) + 1)
        # Mean of Uniform[1, MAX] is ~MAX/2; allow 5% slack.
        assert abs(w.mean() / (MAX_WEIGHT / 2) - 1) < 0.05

    @given(
        st.integers(0, 2**31 - 1),
        st.integers(0, 2**31 - 1),
        st.integers(0, 1000),
    )
    def test_scalar_inputs_in_range(self, lo, hi, seed):
        w = hash_weight(np.array([lo]), np.array([hi]), seed=seed)
        assert 1 <= int(w[0]) <= MAX_WEIGHT


class TestRandomizeWeights:
    def test_mirrors_agree(self, medium_graph):
        g = randomize_weights(medium_graph, seed=42)
        g.validate()  # validate() checks mirrored slots share weights

    def test_structure_preserved(self, medium_graph):
        g = randomize_weights(medium_graph, seed=42)
        assert np.array_equal(g.row_ptr, medium_graph.row_ptr)
        assert np.array_equal(g.col_idx, medium_graph.col_idx)
        assert np.array_equal(g.edge_ids, medium_graph.edge_ids)

    def test_original_untouched(self, triangle):
        before = triangle.weights.copy()
        randomize_weights(triangle, seed=1)
        assert np.array_equal(triangle.weights, before)


class TestQuantizeWeights:
    def test_order_preserved(self):
        import numpy as np
        from repro.graph.weights import quantize_weights

        rng = np.random.default_rng(0)
        vals = rng.random(1000) * 100 - 50
        q = quantize_weights(vals, bits=20)
        order = np.argsort(vals, kind="stable")
        assert np.all(np.diff(q[order]) >= 0)

    def test_range(self):
        from repro.graph.weights import quantize_weights

        q = quantize_weights([0.0, 0.5, 1.0], bits=10)
        assert q.min() >= 1 and q.max() <= 1 << 10

    def test_constant_weights(self):
        from repro.graph.weights import quantize_weights

        q = quantize_weights([3.14] * 5)
        assert set(q.tolist()) == {1}

    def test_empty(self):
        from repro.graph.weights import quantize_weights

        assert quantize_weights([]).size == 0

    def test_rejects_nan(self):
        import pytest
        from repro.graph.weights import quantize_weights

        with pytest.raises(ValueError, match="finite"):
            quantize_weights([1.0, float("nan")])

    def test_rejects_bad_bits(self):
        import pytest
        from repro.graph.weights import quantize_weights

        with pytest.raises(ValueError, match="bits"):
            quantize_weights([1.0], bits=40)

    def test_clamp_range(self):
        from repro.graph.weights import quantize_weights

        q = quantize_weights([-10.0, 0.5, 10.0], bits=8, lo=0.0, hi=1.0)
        assert q[0] == 1 and q[2] == 256

    def test_mst_on_quantized_floats(self):
        """End to end: float-weighted spatial graph -> quantize -> MSF."""
        import numpy as np
        from repro.core.eclmst import ecl_mst
        from repro.graph.build import build_csr
        from repro.graph.weights import quantize_weights

        rng = np.random.default_rng(1)
        pts = rng.random((100, 2))
        u = rng.integers(0, 100, 400)
        v = rng.integers(0, 100, 400)
        d = np.linalg.norm(pts[u] - pts[v], axis=1)
        g = build_csr(100, u, v, quantize_weights(d, bits=24))
        r = ecl_mst(g, verify=True)
        assert r.num_mst_edges > 0
