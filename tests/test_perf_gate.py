"""Benchmark-regression gate tests: baselines, verdicts, CLI exit codes."""

import json
from pathlib import Path

import pytest

from repro.bench.gate import (
    DEFAULT_WALL_CELLS,
    GateReport,
    WallCell,
    perf_check,
    perf_compare,
    perf_record,
    record_wall_trajectory,
    render_wall_report,
)
from repro.cli import main
from repro.obs import (
    Baseline,
    BaselineStore,
    RunProfile,
    WallStats,
    compare_to_baseline,
    median_mad,
    metric_direction,
)

# Tiny-but-real gate settings so the whole record/check cycle stays in
# unit-test territory.
INPUTS = ("internet",)
SCALE = 0.04
REPEATS = 2


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One shared record run: (store_dir, trajectory_dir, paths)."""
    root = tmp_path_factory.mktemp("gate")
    store, traj = root / "baselines", root / "trajectory"
    paths, traj_path = perf_record(
        INPUTS,
        scale=SCALE,
        repeats=REPEATS,
        store_dir=store,
        trajectory_dir=traj,
        stamp="TEST",
    )
    return store, traj, paths, traj_path


class TestWallStats:
    def test_median_mad(self):
        med, mad = median_mad([1.0, 2.0, 3.0, 4.0, 100.0])
        assert med == 3.0 and mad == 1.0
        assert median_mad([]) == (0.0, 0.0)

    def test_band_uses_wider_of_mad_and_relative(self):
        tight = WallStats(samples=[1.0, 1.0, 1.0])  # MAD 0
        assert tight.band() == pytest.approx(1.5)  # 50% relative floor
        noisy = WallStats(samples=[1.0, 2.0, 3.0])  # MAD 1
        assert noisy.band() == pytest.approx(2.0 + 5.0 * 1.0)

    def test_round_trip(self):
        w = WallStats(samples=[0.5, 0.7])
        d = w.to_dict()
        assert d["repeats"] == 2
        assert WallStats.from_dict(d).samples == w.samples


class TestDirectionRegistry:
    def test_directions(self):
        assert metric_direction("seconds.k1_reserve") == "lower"
        assert metric_direction("atomics.elided") == "higher"
        assert metric_direction("filter.edges_elided") == "higher"
        assert metric_direction("run.total_weight") == "exact"
        assert metric_direction("filter.threshold") == "info"


def _profile(metrics: dict) -> RunProfile:
    return RunProfile(
        algorithm="ECL-MST", graph={"digest": "g0"}, metrics=metrics
    )


def _baseline(metrics: dict, walls=(1.0, 1.0)) -> Baseline:
    return Baseline(
        input="x",
        code="ECL-MST",
        system=2,
        scale=SCALE,
        graph={"digest": "g0"},
        metrics=metrics,
        wall=WallStats(samples=list(walls)),
    )


class TestCompareToBaseline:
    def test_identical_passes(self):
        m = {"seconds.k1": 1.0, "atomics.elided": 10, "run.total_weight": 5}
        c = compare_to_baseline(_baseline(m), _profile(dict(m)), [1.0])
        assert c.passed and not c.modeled_regressions

    def test_lower_is_better_increase_fails(self):
        c = compare_to_baseline(
            _baseline({"seconds.k1": 1.0}), _profile({"seconds.k1": 1.01}), []
        )
        assert not c.passed
        assert "seconds.k1" in c.modeled_regressions
        assert "FAIL" in c.render()

    def test_higher_is_better_drop_fails_increase_passes(self):
        base = _baseline({"atomics.elided": 100})
        drop = compare_to_baseline(base, _profile({"atomics.elided": 90}), [])
        assert "atomics.elided" in drop.modeled_regressions
        gain = compare_to_baseline(base, _profile({"atomics.elided": 110}), [])
        assert gain.passed

    def test_exact_metric_any_change_fails(self):
        base = _baseline({"run.total_weight": 100})
        # Even an "improvement" in weight means the MSF changed: fail.
        c = compare_to_baseline(base, _profile({"run.total_weight": 99}), [])
        assert "run.total_weight" in c.modeled_regressions

    def test_info_metric_ignored(self):
        base = _baseline({"filter.threshold": 7})
        c = compare_to_baseline(base, _profile({"filter.threshold": 99}), [])
        assert c.passed

    def test_new_cost_from_zero_fails(self):
        base = _baseline({"seconds.extra_kernel": 0.0})
        c = compare_to_baseline(
            base, _profile({"seconds.extra_kernel": 1e-9}), []
        )
        assert "seconds.extra_kernel" in c.modeled_regressions

    def test_threshold_loosens_lower_metrics(self):
        base = _baseline({"seconds.k1": 1.0})
        c = compare_to_baseline(
            base, _profile({"seconds.k1": 1.04}), [], threshold=1.05
        )
        assert c.passed

    def test_wall_regression_is_advisory(self):
        m = {"seconds.k1": 1.0}
        c = compare_to_baseline(
            _baseline(m, walls=[0.001, 0.001]), _profile(dict(m)), [10.0]
        )
        assert c.wall_regressed
        assert c.passed  # wall never gates
        assert "REGRESSED" in c.render() and "advisory" in c.render()

    def test_wall_regression_gates_when_promoted(self):
        m = {"seconds.k1": 1.0}
        c = compare_to_baseline(
            _baseline(m, walls=[0.001, 0.001]),
            _profile(dict(m)),
            [10.0],
            gate_wall=True,
        )
        assert c.wall_regressed and not c.passed
        assert "gated" in c.render()
        # Inside the band the promoted gate still passes.
        ok = compare_to_baseline(
            _baseline(m, walls=[0.001, 0.001]),
            _profile(dict(m)),
            [0.001],
            gate_wall=True,
        )
        assert ok.passed

    def test_fingerprint_drift_incomparable(self):
        base = _baseline({"seconds.k1": 1.0})
        p = RunProfile(
            algorithm="ECL-MST",
            graph={"digest": "OTHER"},
            metrics={"seconds.k1": 1.0},
        )
        c = compare_to_baseline(base, p, [])
        assert not c.comparable and not c.passed
        assert "INCOMPARABLE" in c.render()


class TestBaselineStore:
    def test_save_load_round_trip(self, tmp_path):
        store = BaselineStore(tmp_path / "b")
        b = _baseline({"seconds.k1": 1.0})
        path = store.save(b)
        assert path.exists()
        assert store.exists("x", "ECL-MST", 2)
        loaded = store.load("x", "ECL-MST", 2)
        assert loaded.to_dict() == b.to_dict()
        assert store.list()[0].input == "x"

    def test_path_slugs_unsafe_chars(self, tmp_path):
        store = BaselineStore(tmp_path)
        p = store.path("road/usa (full)", "Gunrock", 1)
        assert "/" not in p.name and " " not in p.name
        assert p.name.endswith("__sys1.json")

    def test_empty_store_lists_nothing(self, tmp_path):
        assert BaselineStore(tmp_path / "missing").list() == []


class TestRecordCheck:
    def test_record_writes_baseline_and_trajectory(self, recorded):
        store, traj, paths, traj_path = recorded
        assert all(p.exists() for p in paths)
        payload = json.loads(paths[0].read_text())
        assert payload["schema"].startswith("repro.obs.baseline/")
        assert payload["metrics"]["run.modeled_seconds"] > 0
        assert payload["wall"]["repeats"] == REPEATS
        entry = json.loads(traj_path.read_text())
        assert entry["schema"].startswith("repro.bench.trajectory/")
        assert traj_path.name == "BENCH_TEST.json"
        assert entry["entries"][0]["bounds"]  # roofline labels captured
        assert entry["entries"][0]["graph_digest"]

    def test_clean_check_passes(self, recorded):
        store, *_ = recorded
        report = perf_check(INPUTS, repeats=1, store_dir=store)
        assert report.passed
        assert "PASS" in report.render()

    def test_slowdown_trips_the_gate(self, recorded):
        store, *_ = recorded
        report = perf_check(INPUTS, repeats=1, store_dir=store, slowdown=2.0)
        assert not report.passed
        regs = report.comparisons[0].modeled_regressions
        assert regs["run.modeled_seconds"]["ratio"] == pytest.approx(2.0)
        # Direction-aware: the throughput *drop* is flagged too.
        assert "run.throughput_meps" in regs

    def test_missing_baseline_fails(self, tmp_path):
        report = perf_check(
            ("internet",), repeats=1, store_dir=tmp_path / "none"
        )
        assert not report.passed and report.missing == ["internet"]
        assert "MISSING" in report.render()

    def test_compare_renders_diff(self, recorded):
        store, *_ = recorded
        text = perf_compare(INPUTS, repeats=1, store_dir=store)
        assert "vs baseline" in text
        assert "run.modeled_seconds" in text
        assert "PASS" in text

    def test_gate_report_empty(self):
        assert GateReport().passed  # nothing missing, nothing failed


class TestPerfCli:
    def test_record_then_check_exit_codes(self, recorded, capsys):
        store, *_ = recorded
        argv = [
            "perf", "check", "--inputs", "internet", "--repeats", "1",
            "--store", str(store),
        ]
        assert main(argv) == 0
        assert "PASS" in capsys.readouterr().out
        assert main(argv + ["--slowdown", "2.0"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_cli_record(self, tmp_path, capsys):
        code = main(
            [
                "perf", "record", "--inputs", "internet", "--repeats", "1",
                "--scale", str(SCALE), "--store", str(tmp_path / "b"),
                "--trajectory", str(tmp_path / "t"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline written" in out and "trajectory entry" in out
        assert list((tmp_path / "t").glob("BENCH_*.json"))

    def test_cli_compare(self, recorded, capsys):
        store, *_ = recorded
        code = main(
            [
                "perf", "compare", "--inputs", "internet", "--repeats", "1",
                "--store", str(store), "--min-ratio", "0.1",
            ]
        )
        assert code == 0
        assert "vs baseline" in capsys.readouterr().out


class TestWallTrajectory:
    """Engine head-to-head recording (BENCH_WALL) and its gate."""

    CELLS = (WallCell("internet", 0.05), WallCell("2d-2e20.sym", 0.05, gated=True))

    def test_record_wall_trajectory_payload(self, tmp_path):
        path, payload = record_wall_trajectory(
            self.CELLS,
            repeats=1,
            trajectory_dir=tmp_path,
            stamp="TEST",
            min_speedup=0.0,
            floor=0.0,
        )
        assert path.name == "BENCH_WALL_TEST.json"
        assert payload["schema"] == "repro.bench.wall/v1"
        assert json.loads(path.read_text()) == payload
        assert len(payload["entries"]) == 2
        for e in payload["entries"]:
            assert e["speedup"] > 0
            assert set(e["wall_median_s"]) == {"vectorized", "scalar"}
            assert e["modeled_seconds"] > 0
        assert [e["gated"] for e in payload["entries"]] == [False, True]
        # min_speedup/floor of 0 always pass — noise-proof for CI units.
        assert payload["gate"]["passed"]
        report = render_wall_report(payload)
        assert "wall gate: PASS" in report and "GATED" in report

    def test_unreachable_min_speedup_fails_gate(self, tmp_path):
        _, payload = record_wall_trajectory(
            self.CELLS,
            repeats=1,
            trajectory_dir=tmp_path,
            stamp="TEST2",
            min_speedup=1e9,
            floor=0.0,
        )
        assert not payload["gate"]["passed"]
        assert "wall gate: FAIL" in render_wall_report(payload)

    def test_cli_perf_wall(self, tmp_path, capsys):
        code = main(
            [
                "perf", "wall", "--cells", "internet:0.05:gated",
                "--repeats", "1", "--trajectory", str(tmp_path),
                "--min-speedup", "0", "--floor", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine head-to-head" in out and "trajectory entry" in out
        assert list(tmp_path.glob("BENCH_WALL_*.json"))

    def test_cli_bad_cell_spec(self):
        with pytest.raises(SystemExit):
            main(["perf", "wall", "--cells", "nocolon", "--repeats", "1"])

    def test_default_cells_gate_the_union_heavy_flagship(self):
        gated = [c.input for c in DEFAULT_WALL_CELLS if c.gated]
        assert gated == ["USA-road-d.NY"]


class TestCheckedInBaselines:
    """The repo ships recorded baselines; a clean checkout must pass
    its own gate (this is what the CI perf-gate job asserts)."""

    STORE = Path(__file__).resolve().parent.parent / "benchmarks/baselines"

    def test_checked_in_baselines_pass(self):
        assert self.STORE.is_dir(), "seed baselines missing"
        report = perf_check(repeats=1, store_dir=self.STORE)
        assert report.comparisons, "no baselines compared"
        assert report.passed, report.render()
