"""Per-round diagnostics (MstResult.extra['round_log']) tests."""

import numpy as np

from repro.core.config import EclMstConfig
from repro.core.eclmst import ecl_mst
from repro.graph.properties import connected_components


class TestRoundLog:
    def test_log_length_matches_rounds(self, medium_graph):
        r = ecl_mst(medium_graph)
        assert len(r.extra["round_log"]) == r.rounds

    def test_total_added_equals_msf_size(self, medium_graph):
        r = ecl_mst(medium_graph)
        added = sum(e["added"] for e in r.extra["round_log"])
        assert added == r.num_mst_edges

    def test_entries_shrink_within_phase(self, medium_graph):
        # Survivors of round i become (a superset of) round i+1's
        # entries; within one phase the worklist never grows.
        r = ecl_mst(medium_graph, EclMstConfig(filtering=False))
        log = r.extra["round_log"]
        for prev, cur in zip(log, log[1:]):
            assert cur["entries"] == prev["survivors"]
            assert cur["entries"] <= prev["entries"]

    def test_last_round_empty_survivors(self, medium_graph):
        r = ecl_mst(medium_graph, EclMstConfig(filtering=False))
        assert r.extra["round_log"][-1]["survivors"] == 0

    def test_first_round_entries_counts_edges(self, medium_graph):
        r = ecl_mst(medium_graph, EclMstConfig(filtering=False))
        assert r.extra["round_log"][0]["entries"] == medium_graph.num_edges

    def test_geometric_decay(self, medium_graph):
        """The paper: parallelization works because each round either
        commits or discards many edges — entries decay fast, bounding
        rounds at O(log |V|)."""
        r = ecl_mst(medium_graph, EclMstConfig(filtering=False))
        log = r.extra["round_log"]
        n_cc, _ = connected_components(medium_graph)
        needed = medium_graph.num_vertices - n_cc
        # At least half the needed edges commit within the first
        # ceil(log2) rounds on all our generator families.
        half_point = sum(e["added"] for e in log[: max(1, len(log) // 2 + 1)])
        assert half_point >= needed // 2

    def test_topology_mode_has_no_log(self, medium_graph):
        r = ecl_mst(medium_graph, EclMstConfig(data_driven=False))
        assert r.extra["round_log"] == []


class TestRoundStatsTyped:
    """The typed promotion of round_log (RoundStats + deprecated alias)."""

    def test_round_stats_field_aliases_round_log(self, medium_graph):
        from repro.core.result import RoundStats

        r = ecl_mst(medium_graph)
        assert r.round_stats is r.extra["round_log"]
        assert all(isinstance(rs, RoundStats) for rs in r.round_stats)

    def test_attribute_and_mapping_access_agree(self, medium_graph):
        r = ecl_mst(medium_graph)
        for rs in r.round_stats:
            assert rs.entries == rs["entries"]
            assert rs.survivors == rs["survivors"]
            assert rs.added == rs["added"]
            assert dict(rs) == rs.to_dict()

    def test_unknown_key_raises(self, medium_graph):
        r = ecl_mst(medium_graph)
        if r.round_stats:
            import pytest

            with pytest.raises(KeyError):
                r.round_stats[0]["nope"]

    def test_shrink_rate(self):
        from repro.core.result import RoundStats

        assert RoundStats(entries=10, survivors=4, added=3).shrink_rate == 0.4
        assert RoundStats(entries=0, survivors=0, added=0).shrink_rate == 0.0
