"""Property-based cross-validation of every baseline against the
reference MSF on random graphs."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import (
    NotConnectedError,
    cugraph_mst,
    filter_kruskal_mst,
    gunrock_mst,
    jucele_mst,
    kruskal_serial_mst,
    lonestar_cpu_mst,
    pbbs_parallel_mst,
    prim_mst,
    qkruskal_mst,
    uminho_cpu_mst,
    uminho_gpu_mst,
)
from repro.core.verify import reference_mst_mask
from repro.graph.build import build_csr

ALL_RUNNERS = [
    cugraph_mst,
    uminho_gpu_mst,
    uminho_cpu_mst,
    lonestar_cpu_mst,
    pbbs_parallel_mst,
    kruskal_serial_mst,
    qkruskal_mst,
    filter_kruskal_mst,
    prim_mst,
]


@st.composite
def random_graphs(draw):
    n = draw(st.integers(2, 30))
    m = draw(st.integers(0, 90))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, m)
    v = rng.integers(0, n, m)
    w = rng.integers(1, draw(st.sampled_from([3, 50, 5000])), size=m)
    return build_csr(n, u, v, w)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(g=random_graphs())
@pytest.mark.parametrize("runner", ALL_RUNNERS, ids=lambda f: f.__name__)
def test_baseline_equals_reference(runner, g):
    r = runner(g)
    assert np.array_equal(r.in_mst, reference_mst_mask(g))


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(g=random_graphs())
@pytest.mark.parametrize(
    "runner", [jucele_mst, gunrock_mst], ids=lambda f: f.__name__
)
def test_mst_only_baselines(runner, g):
    from repro.graph.properties import connected_components

    n_cc, _ = connected_components(g)
    if n_cc > 1:
        with pytest.raises(NotConnectedError):
            runner(g)
    else:
        r = runner(g)
        assert np.array_equal(r.in_mst, reference_mst_mask(g))


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(g=random_graphs())
def test_all_runners_agree_on_weight(g):
    """Total MSF weight is identical across every implementation."""
    weights = {runner(g).total_weight for runner in ALL_RUNNERS}
    assert len(weights) == 1
