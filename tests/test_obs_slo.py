"""Declarative SLOs: burn rates, windows, and alert transitions."""

import pytest

from repro.obs.events import EventLog, ListSink
from repro.obs.slo import DEFAULT_SLOS, SLOSpec, SLOTracker


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


class ListSinkLog:
    """Minimal stand-in: records evaluate()'s transition emits."""

    enabled = True

    def __init__(self) -> None:
        self.sink = ListSink()
        self._log = EventLog(level="debug", sinks=[self.sink])

    def emit(self, name, level="info", **fields):
        self._log.emit(name, level=level, **fields)

    @property
    def names(self):
        return [e.name for e in self.sink.events]


# ---------------------------------------------------------------------------
# Spec validation
# ---------------------------------------------------------------------------
class TestSLOSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="uptime")

    def test_objective_bounds(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="availability", objective=0.0)
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="availability", objective=1.5)

    def test_latency_needs_threshold(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="latency", objective=0.9)

    def test_defaults_cover_the_four_promises(self):
        kinds = {s.kind for s in DEFAULT_SLOS}
        assert kinds == {"availability", "latency", "zero", "shed"}


# ---------------------------------------------------------------------------
# Burn-rate arithmetic
# ---------------------------------------------------------------------------
class TestBurn:
    def test_idle_window_burns_nothing(self):
        spec = SLOSpec(name="avail", kind="availability", objective=0.99)
        t = SLOTracker((spec,), window_s=60.0)
        (st,) = t.evaluate()
        assert st.sli == 1.0 and st.burn_rate == 0.0 and not st.alerting

    def test_availability_burn_formula(self):
        spec = SLOSpec(name="avail", kind="availability", objective=0.99)
        t = SLOTracker((spec,), window_s=60.0)
        for ok in [True] * 95 + [False] * 5:
            t.record(ok=ok, latency_s=0.01)
        (st,) = t.evaluate()
        assert st.sli == pytest.approx(0.95)
        assert st.burn_rate == pytest.approx(0.05 / 0.01)  # 5x the budget
        assert st.alerting

    def test_latency_slo_counts_fast_queries(self):
        spec = SLOSpec(
            name="lat", kind="latency", objective=0.5, threshold_s=1.0
        )
        t = SLOTracker((spec,), window_s=60.0)
        t.record(ok=True, latency_s=0.2)
        t.record(ok=True, latency_s=5.0)
        (st,) = t.evaluate()
        assert st.sli == pytest.approx(0.5)
        assert st.burn_rate == pytest.approx(1.0)
        assert not st.alerting  # burn must *exceed* alert_burn

    def test_zero_kind_saturates_on_any_escape(self):
        spec = SLOSpec(name="esc", kind="zero", objective=1.0)
        t = SLOTracker((spec,), window_s=60.0)
        t.record(ok=True, latency_s=0.1)
        (st,) = t.evaluate()
        assert st.burn_rate == 0.0
        t.record(ok=True, latency_s=0.1, escaped=1)
        (st,) = t.evaluate()
        assert st.sli == 0.0
        assert st.burn_rate == float("inf")
        assert st.alerting


# ---------------------------------------------------------------------------
# Alert transitions (events fire on edges, not levels)
# ---------------------------------------------------------------------------
class TestTransitions:
    def test_burn_and_recover_emit_once_each(self):
        spec = SLOSpec(name="avail", kind="availability", objective=0.99)
        clk = FakeClock(1000.0)
        log = ListSinkLog()
        t = SLOTracker((spec,), window_s=60.0, events=log, clock=clk)
        for _ in range(10):
            t.record(ok=False, latency_s=0.1, ts=clk.t)
        t.evaluate(now=clk.t)
        t.evaluate(now=clk.t)  # still burning: no duplicate event
        assert log.names == ["slo.burn"]
        clk.t += 120.0  # the window rolls clean
        t.evaluate(now=clk.t)
        t.evaluate(now=clk.t)
        assert log.names == ["slo.burn", "slo.recovered"]

    def test_burn_event_carries_identity(self):
        spec = SLOSpec(name="avail", kind="availability", objective=0.99)
        log = ListSinkLog()
        t = SLOTracker((spec,), window_s=60.0, events=log)
        t.record(ok=False, latency_s=0.1)
        t.evaluate()
        (ev,) = log.sink.events
        assert ev.level == "error"
        assert ev.fields["slo"] == "avail"
        assert "burn_rate" in ev.fields


# ---------------------------------------------------------------------------
# Windowing
# ---------------------------------------------------------------------------
class TestWindowing:
    def test_failures_age_out(self):
        spec = SLOSpec(name="avail", kind="availability", objective=0.99)
        clk = FakeClock(0.0)
        t = SLOTracker((spec,), window_s=60.0, clock=clk)
        t.record(ok=False, latency_s=0.1, ts=0.0)
        clk.t = 30.0
        (st,) = t.evaluate(now=clk.t)
        assert st.alerting
        clk.t = 120.0
        (st,) = t.evaluate(now=clk.t)
        assert st.sli == 1.0 and not st.alerting
