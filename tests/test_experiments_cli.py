"""Experiment registry and CLI tests (tiny scales for speed)."""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    exp_deopt,
    exp_filter_accuracy,
    exp_kernel_profile,
    exp_runtime_table,
    exp_seed_variability,
    exp_table2,
    exp_throughput_figure,
)
from repro.cli import main

SCALE = 0.06


class TestExperiments:
    def test_registry_covers_all_paper_artifacts(self):
        expected = {
            "table2",
            "table3",
            "table4",
            "table5",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "profile",
        }
        assert expected <= set(EXPERIMENTS)

    def test_table2(self):
        out = exp_table2(SCALE)
        assert "kron_g500-logn21" in out
        assert out.count("\n") >= 17

    def test_runtime_table_system2(self):
        out = exp_runtime_table(2, SCALE)
        assert "cuGraph GPU" in out
        assert "MST GeoMean" in out

    def test_runtime_table_system1_omits_cugraph(self):
        out = exp_runtime_table(1, SCALE)
        assert "cuGraph" not in out
        assert "Titan V" in out

    def test_throughput_figure(self):
        out = exp_throughput_figure(2, SCALE)
        assert "millions of edges per second" in out

    def test_deopt_table(self):
        out = exp_deopt(SCALE)
        assert "No Impl. Path Compr." in out
        assert "Vertex-Centric" in out

    def test_deopt_figure(self):
        out = exp_deopt(SCALE, as_figure=True)
        assert out.startswith("input,ECL-MST")

    def test_seed_variability(self):
        out = exp_seed_variability(SCALE, seeds=3)
        assert "relative_spread" in out

    def test_filter_accuracy(self):
        out = exp_filter_accuracy(SCALE)
        assert "relative_distance_pct" in out

    def test_kernel_profile(self):
        out = exp_kernel_profile(SCALE)
        header, first = out.splitlines()[:2]
        assert header.startswith("input,init_pct")
        cols = first.split(",")
        pcts = [float(x) for x in cols[1:5]]
        assert all(0.0 <= p < 100.0 for p in pcts)
        assert int(cols[5]) >= 1  # at least one k1 launch
        assert int(cols[6]) >= 1  # at least one round

    @pytest.mark.slow
    def test_kernel_profile_shape_at_scale(self):
        """Section 5.1: at realistic sizes the init kernel dominates
        (~40%) and kernel 1 is next (~35%)."""
        out = exp_kernel_profile(1.0)
        for line in out.splitlines()[1:]:
            cols = line.split(",")
            init, k1 = float(cols[1]), float(cols[2])
            if cols[0] in ("coPapersDBLP", "r4-2e23.sym"):
                assert init > 15.0, line
                assert k1 > 10.0, line


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out and "fig7" in out

    def test_unknown_experiment(self, capsys):
        assert main(["tableX"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_table2_runs(self, capsys):
        assert main(["table2", "--scale", str(SCALE)]) == 0
        assert "Graph Name" in capsys.readouterr().out

    def test_fig7_runs(self, capsys):
        assert main(["fig7", "--scale", str(SCALE)]) == 0
        assert "%" in capsys.readouterr().out

    def test_fig6_seed_flag(self, capsys):
        assert main(["fig6", "--scale", str(SCALE), "--seeds", "2"]) == 0
        assert "median" in capsys.readouterr().out
